//! # isambard-dri — umbrella crate
//!
//! Re-exports the full workspace so examples, integration tests, and
//! downstream users can depend on a single crate. See the README for the
//! architecture overview and DESIGN.md for the system inventory.

pub use dri_core::prelude;

pub use dri_broker as broker;
pub use dri_clock as clock;
pub use dri_cluster as cluster;
pub use dri_core as core;
pub use dri_crypto as crypto;
pub use dri_fault as fault;
pub use dri_federation as federation;
pub use dri_netsim as netsim;
pub use dri_policy as policy;
pub use dri_portal as portal;
pub use dri_siem as siem;
pub use dri_sshca as sshca;
pub use dri_trace as trace;
pub use dri_workload as workload;
