//! Determinism of the fault plane over the assembled co-design: the
//! same seed and fault plan yield *byte-identical* trace exports and
//! identical resilience counters whether the storm runs serially or
//! fanned out over eight workers — chaos is replayable.

use isambard_dri::core::{InfraConfig, Infrastructure, MetricsSnapshot};
use isambard_dri::fault::FaultPlan;
use isambard_dri::trace::{chrome_trace, well_formed, SpanRecord};
use isambard_dri::workload::{build_population, run_storm, StormMode, StormResult};
use proptest::prelude::*;

/// The chaos plan layered over the storm: a flaky IdP, a dragging
/// broker, and a flaky edge, all windowed over the whole run.
fn chaos_plan(seed: u64, now: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .flaky("idp", 200, now, now + 3_600_000)
        .latency("broker", 2, now, now + 3_600_000)
        .flaky("edge", 150, now, now + 3_600_000)
}

/// Build the population, arm the chaos plan, run the storm in `mode`.
fn chaos_run(
    seed: u64,
    projects: usize,
    researchers: usize,
    mode: StormMode,
) -> (MetricsSnapshot, StormResult, Vec<SpanRecord>) {
    let config = InfraConfig::builder()
        .seed(seed)
        .jupyter_capacity(4096)
        .interactive_nodes(4096)
        .edge_threshold(usize::MAX / 2)
        .build()
        .unwrap();
    let infra = Infrastructure::new(config);
    let pop = build_population(&infra, projects, researchers).unwrap();
    let users: Vec<(String, String)> = pop
        .projects
        .iter()
        .flat_map(|p| {
            std::iter::once((p.pi_label.clone(), p.name.clone())).chain(
                p.researcher_labels
                    .iter()
                    .map(|r| (r.clone(), p.name.clone())),
            )
        })
        .collect();
    infra.install_fault_plan(chaos_plan(seed, infra.clock.now_ms()));
    let result = run_storm(&infra, &users, mode);
    let spans = infra.tracer.all_spans();
    (infra.metrics(), result, spans)
}

#[test]
fn chaos_storm_traces_are_bit_identical_serial_vs_parallel() {
    let (sm, sr, ss) = chaos_run(11, 9, 4, StormMode::Serial);
    let (pm, pr, ps) = chaos_run(11, 9, 4, StormMode::Parallel(8));

    well_formed(&ss).unwrap();
    well_formed(&ps).unwrap();

    // The chaos actually happened, identically on both runs.
    assert!(sm.faults_injected > 0, "the plan fired");
    assert!(sm.retries > 0, "transient faults were retried");
    assert_eq!(sm.faults_injected, pm.faults_injected);
    assert_eq!(sm.retries, pm.retries);
    assert_eq!(sm.breaker_trips, pm.breaker_trips);
    assert_eq!(sm.breaker_rejections, pm.breaker_rejections);
    assert_eq!(sr.completed, pr.completed);
    assert_eq!(sr.failures.len(), pr.failures.len());

    // And the trace record is byte-for-byte the same: fault injections,
    // retry spans and all are scheduling-invariant.
    assert_eq!(
        chrome_trace(&ss),
        chrome_trace(&ps),
        "chaos must not make the trace export depend on interleaving"
    );
}

#[test]
fn retry_and_fault_markers_appear_in_the_trace() {
    let (_m, _r, spans) = chaos_run(11, 4, 3, StormMode::Parallel(4));
    assert!(
        spans.iter().any(|s| s.name == "retry.backoff"),
        "retry spans are recorded"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.attrs.iter().any(|(k, _)| k == "fault.injected")),
        "injected faults stamp their span"
    );
    assert!(
        spans.iter().any(|s| s.name == "fault.latency"),
        "latency faults materialise as spans"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // For any seed and worker count, the chaos storm is replayable:
    // identical counters and byte-identical exports vs the serial run.
    #[test]
    fn chaos_storm_deterministic_for_any_seed_and_worker_count(
        seed in 0u64..1_000,
        workers in 2usize..9,
    ) {
        let (sm, sr, ss) = chaos_run(seed, 2, 2, StormMode::Serial);
        let (pm, pr, ps) = chaos_run(seed, 2, 2, StormMode::Parallel(workers));
        prop_assert_eq!(sm.faults_injected, pm.faults_injected);
        prop_assert_eq!(sm.retries, pm.retries);
        prop_assert_eq!(sm.breaker_trips, pm.breaker_trips);
        prop_assert_eq!(sr.completed, pr.completed);
        prop_assert!(well_formed(&ss).is_ok());
        prop_assert!(well_formed(&ps).is_ok());
        prop_assert_eq!(chrome_trace(&ss), chrome_trace(&ps));
    }
}
