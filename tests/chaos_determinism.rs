//! Determinism of the fault plane over the assembled co-design: the
//! same seed and fault plan yield *byte-identical* trace exports,
//! breaker timelines, and error-budget ledgers — and identical SIEM
//! feedback decisions — whether the storm runs serially or fanned out
//! over eight workers. Chaos is replayable end to end.

use isambard_dri::core::{InfraConfig, Infrastructure, MetricsSnapshot};
use isambard_dri::fault::{BreakerTransition, FaultPlan};
use isambard_dri::trace::{chrome_trace, well_formed, SpanRecord};
use isambard_dri::workload::{build_population, run_storm, StormMode, StormResult};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// The chaos plan layered over the storm: a flaky IdP, a dragging
/// broker, and a flaky edge, all windowed over the whole run.
fn chaos_plan(seed: u64, now: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .flaky("idp", 200, now, now + 3_600_000)
        .latency("broker", 2, now, now + 3_600_000)
        .flaky("edge", 150, now, now + 3_600_000)
}

/// Everything a chaos run leaves behind, rendered in a scheduling-
/// invariant form so two runs can be diffed byte-for-byte.
struct ChaosLedger {
    metrics: MetricsSnapshot,
    result: StormResult,
    spans: Vec<SpanRecord>,
    /// `ErrorBudgets::export` — sorted `(dependency, window)` rows.
    budget_export: String,
    /// Breaker transitions sorted by `(dependency, lane, seq)`.
    breaker_timeline: String,
    /// SIEM feedback adjustments applied at the first window boundary
    /// after the storm, formatted one per line.
    feedback: Vec<String>,
    /// Breaker config overrides installed by the feedback pass.
    breaker_overrides: Vec<String>,
    /// Retry policy overrides installed by the feedback pass.
    retry_overrides: Vec<String>,
}

/// Build the population, arm the chaos plan, run the storm in `mode`,
/// then step past the budget-window boundary and run the SIEM feedback
/// pass — capturing every artefact in canonical form.
fn chaos_ledger(seed: u64, projects: usize, researchers: usize, mode: StormMode) -> ChaosLedger {
    let config = InfraConfig::builder()
        .seed(seed)
        .jupyter_capacity(4096)
        .interactive_nodes(4096)
        .edge_threshold(usize::MAX / 2)
        .build()
        .unwrap();
    let infra = Infrastructure::new(config);

    // Collect every breaker transition. `(dependency, lane, seq)`
    // totally orders them, so the sorted rendering is byte-comparable
    // across worker counts. (Replacing the sink detaches the SIEM feed
    // of breaker events; this suite only cares about the timeline.)
    let transitions: Arc<Mutex<Vec<BreakerTransition>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let collected = Arc::clone(&transitions);
        infra
            .resilience
            .breakers()
            .set_sink(Arc::new(move |t: &BreakerTransition| {
                collected.lock().unwrap().push(t.clone());
            }));
    }

    let pop = build_population(&infra, projects, researchers).unwrap();
    let users: Vec<(String, String)> = pop
        .projects
        .iter()
        .flat_map(|p| {
            std::iter::once((p.pi_label.clone(), p.name.clone())).chain(
                p.researcher_labels
                    .iter()
                    .map(|r| (r.clone(), p.name.clone())),
            )
        })
        .collect();
    infra.install_fault_plan(chaos_plan(seed, infra.clock.now_ms()));
    let result = run_storm(&infra, &users, mode);
    let spans = infra.tracer.all_spans();

    // Quiesce: step past the window boundary (default window is 60 s of
    // sim time) so the storm's window is complete, then let the SIEM
    // feedback loop react to it.
    infra.clock.advance(61_000);
    let feedback: Vec<String> = infra
        .apply_siem_feedback()
        .iter()
        .map(|f| {
            format!(
                "{} window={} burn={} anomalous={} action={:?}",
                f.dependency, f.window, f.burn_per_mille, f.anomalous, f.action
            )
        })
        .collect();
    let breaker_overrides: Vec<String> = infra
        .resilience
        .breakers()
        .dependency_overrides()
        .iter()
        .map(|(d, c)| {
            format!(
                "{d} failure_threshold={} open_ms={} probe_budget={}",
                c.failure_threshold, c.open_ms, c.probe_budget
            )
        })
        .collect();
    let retry_overrides: Vec<String> = infra
        .resilience
        .retry_overrides()
        .iter()
        .map(|(d, p)| {
            format!(
                "{d} max_attempts={} base_ms={} max_ms={} jitter_ms={}",
                p.max_attempts, p.base_ms, p.max_ms, p.jitter_ms
            )
        })
        .collect();

    let mut ts = transitions.lock().unwrap().clone();
    ts.sort_by(|a, b| (&a.dependency, &a.lane, a.seq).cmp(&(&b.dependency, &b.lane, b.seq)));
    let breaker_timeline: String = ts
        .iter()
        .map(|t| {
            format!(
                "{}|{}#{} {}->{} @{}\n",
                t.dependency,
                t.lane,
                t.seq,
                t.from.as_str(),
                t.to.as_str(),
                t.at_ms
            )
        })
        .collect();

    ChaosLedger {
        budget_export: infra.resilience.budgets().export(),
        metrics: infra.metrics(),
        result,
        spans,
        breaker_timeline,
        feedback,
        breaker_overrides,
        retry_overrides,
    }
}

#[test]
fn chaos_storm_traces_are_bit_identical_serial_vs_parallel() {
    let s = chaos_ledger(11, 9, 4, StormMode::Serial);
    let p = chaos_ledger(11, 9, 4, StormMode::Parallel(8));

    well_formed(&s.spans).unwrap();
    well_formed(&p.spans).unwrap();

    // The chaos actually happened, identically on both runs.
    assert!(s.metrics.faults_injected > 0, "the plan fired");
    assert!(s.metrics.retries > 0, "transient faults were retried");
    assert_eq!(s.metrics.faults_injected, p.metrics.faults_injected);
    assert_eq!(s.metrics.retries, p.metrics.retries);
    assert_eq!(s.metrics.breaker_trips, p.metrics.breaker_trips);
    assert_eq!(s.metrics.breaker_rejections, p.metrics.breaker_rejections);
    assert_eq!(s.result.completed, p.result.completed);
    assert_eq!(s.result.failures.len(), p.result.failures.len());

    // Per-dependency breakdowns are scheduling-invariant too.
    assert!(!s.metrics.faults_by_dependency.is_empty());
    assert_eq!(
        s.metrics.faults_by_dependency,
        p.metrics.faults_by_dependency
    );
    assert_eq!(
        s.metrics.retries_by_dependency,
        p.metrics.retries_by_dependency
    );
    assert_eq!(
        s.metrics.budget_windows_exhausted,
        p.metrics.budget_windows_exhausted
    );

    // And the trace record is byte-for-byte the same: fault injections,
    // retry spans and all are scheduling-invariant.
    assert_eq!(
        chrome_trace(&s.spans),
        chrome_trace(&p.spans),
        "chaos must not make the trace export depend on interleaving"
    );
}

#[test]
fn budget_and_breaker_timelines_are_bit_identical_serial_vs_parallel() {
    let s = chaos_ledger(11, 9, 4, StormMode::Serial);
    let p = chaos_ledger(11, 9, 4, StormMode::Parallel(8));

    // The error-budget ledger is a pure function of the outcome
    // multiset: identical bytes under any worker count.
    assert!(
        s.budget_export.contains("idp "),
        "the flaky IdP recorded budget outcomes"
    );
    assert_eq!(
        s.budget_export, p.budget_export,
        "budget ledger must not depend on interleaving"
    );

    // Breaker transitions, sorted by (dependency, lane, seq), render
    // to the same bytes whether one thread or eight drove the lanes.
    assert_eq!(
        s.breaker_timeline, p.breaker_timeline,
        "breaker timeline must not depend on interleaving"
    );
}

#[test]
fn siem_feedback_is_deterministic_and_tightens_burned_dependencies() {
    let s = chaos_ledger(11, 9, 4, StormMode::Serial);
    let p = chaos_ledger(11, 9, 4, StormMode::Parallel(8));

    // The feedback pass saw identical budget state, so it made
    // identical decisions and installed identical overrides.
    assert_eq!(s.feedback, p.feedback);
    assert_eq!(s.breaker_overrides, p.breaker_overrides);
    assert_eq!(s.retry_overrides, p.retry_overrides);

    // The storm reuses broker sessions, so the flaky IdP spec never
    // fires on this workload — but the 150‰ flaky edge burns far past
    // the 100‰ budget, so the loop must have tightened it: breaker
    // threshold down, open window doubled, retry budget down.
    assert!(
        s.feedback
            .iter()
            .any(|l| l.starts_with("edge ") && l.contains("action=Tightened")),
        "flaky edge should be tightened, got {:?}",
        s.feedback
    );
    assert!(
        s.breaker_overrides.iter().any(|l| l.starts_with("edge ")),
        "tightened breaker config installed for edge"
    );
    assert!(
        s.retry_overrides.iter().any(|l| l.starts_with("edge ")),
        "tightened retry policy installed for edge"
    );
}

#[test]
fn retry_and_fault_markers_appear_in_the_trace() {
    let l = chaos_ledger(11, 4, 3, StormMode::Parallel(4));
    let spans = &l.spans;
    assert!(
        spans.iter().any(|s| s.name == "retry.backoff"),
        "retry spans are recorded"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.attrs.iter().any(|(k, _)| k == "fault.injected")),
        "injected faults stamp their span"
    );
    assert!(
        spans.iter().any(|s| s.name == "fault.latency"),
        "latency faults materialise as spans"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.attrs.iter().any(|(k, _)| k == "budget.burn_per_mille")),
        "final outcomes stamp the budget burn rate"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // For any seed and worker count, the chaos storm is replayable:
    // identical counters, byte-identical exports, identical feedback
    // decisions vs the serial run.
    #[test]
    fn chaos_storm_deterministic_for_any_seed_and_worker_count(
        seed in 0u64..1_000,
        workers in 2usize..9,
    ) {
        let s = chaos_ledger(seed, 2, 2, StormMode::Serial);
        let p = chaos_ledger(seed, 2, 2, StormMode::Parallel(workers));
        prop_assert_eq!(s.metrics.faults_injected, p.metrics.faults_injected);
        prop_assert_eq!(s.metrics.retries, p.metrics.retries);
        prop_assert_eq!(s.metrics.breaker_trips, p.metrics.breaker_trips);
        prop_assert_eq!(s.result.completed, p.result.completed);
        prop_assert!(well_formed(&s.spans).is_ok());
        prop_assert!(well_formed(&p.spans).is_ok());
        prop_assert_eq!(chrome_trace(&s.spans), chrome_trace(&p.spans));
        prop_assert_eq!(s.budget_export, p.budget_export);
        prop_assert_eq!(s.breaker_timeline, p.breaker_timeline);
        prop_assert_eq!(s.feedback, p.feedback);
        prop_assert_eq!(s.breaker_overrides, p.breaker_overrides);
        prop_assert_eq!(s.retry_overrides, p.retry_overrides);
    }
}
