//! Failure-injection tests: the co-design under component failures —
//! the availability half of the paper's "balancing security,
//! availability, usability, and cost-efficiency".

use isambard_dri::core::{FlowError, InfraConfig, Infrastructure};
use isambard_dri::netsim::BastionError;

fn onboarded() -> Infrastructure {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 100.0).unwrap();
    infra
}

#[test]
fn bastion_instance_failures_are_transparent_until_the_last() {
    let infra = onboarded();
    // Kill instances one by one; the HA set keeps serving.
    infra.bastion.drain_instance(0);
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
    infra.bastion.drain_instance(1);
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
    infra.bastion.drain_instance(2);
    assert!(matches!(
        infra.story4_ssh_connect("alice", "p"),
        Err(FlowError::Bastion(BastionError::Unavailable))
    ));
    // Recovery restores service.
    infra.bastion.restore_instance(1);
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
}

#[test]
fn broker_key_rotation_fails_closed_until_jwks_distributed() {
    let infra = onboarded();
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
    // Rotate the broker signing key. New tokens carry the new kid, which
    // the CA's stale JWKS snapshot does not know: the system fails
    // *closed*, never accepting a token it cannot verify.
    infra.broker.rotate_keys([201u8; 32]);
    assert!(matches!(
        infra.story4_ssh_connect("alice", "p"),
        Err(FlowError::Ca(_)) | Err(FlowError::Device(_))
    ));
    // Distributing the refreshed JWKS (both keys published) restores
    // service; in-flight old-key tokens stay valid too.
    infra.ssh_ca.update_jwks(infra.broker.jwks());
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
    // Pruning the retired key narrows trust without breaking new tokens.
    infra.broker.prune_keys(1);
    infra.ssh_ca.update_jwks(infra.broker.jwks());
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
}

#[test]
fn isolated_login_node_blocks_ssh_but_not_identity_plane() {
    let infra = onboarded();
    infra.network.isolate("mdc/login01");
    // SSH path dies at the fabric.
    assert!(matches!(
        infra.story4_ssh_connect("alice", "p"),
        Err(FlowError::Bastion(BastionError::Network(_)))
    ));
    // But the identity plane is unaffected: fresh logins and tokens work.
    assert!(infra.federated_login("alice").is_ok());
    assert!(infra.token_for("alice", "ssh-ca", vec![]).is_ok());
    infra.network.deisolate("mdc/login01");
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
}

#[test]
fn edge_outage_leaves_ssh_path_alive() {
    let infra = onboarded();
    infra.edge.set_down(true);
    assert!(infra.story6_jupyter("alice", "p", "198.51.100.77").is_err());
    // Independent access path still up — zoning pays off.
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
    infra.edge.set_down(false);
    assert!(infra.story6_jupyter("alice", "p", "198.51.100.77").is_ok());
}

#[test]
fn retired_idp_locks_out_its_users_only() {
    let infra = onboarded();
    // A partner IdP joins, a user onboards through it.
    let idp = infra.register_partner_idp(
        "Partner Uni",
        "partner.example",
        isambard_dri::federation::LevelOfAssurance::Medium,
    );
    infra.create_federated_user_at(&idp, "pat", "pw");
    infra
        .story1_onboard_pi("partner-proj", "pat", 10.0)
        .unwrap();
    // The federation retires the partner IdP (e.g. compromise).
    infra.registry.deregister_entity(&idp).unwrap();
    // pat can no longer authenticate (proxy refuses the unknown IdP) …
    assert!(matches!(
        infra.federated_login("pat"),
        Err(FlowError::Proxy(_))
    ));
    // … while Bristol users are untouched.
    assert!(infra.federated_login("alice").is_ok());
}

#[test]
fn jupyter_capacity_exhaustion_fails_closed_and_recovers() {
    let cfg = InfraConfig::builder().jupyter_capacity(1).build().unwrap();
    let infra = Infrastructure::new(cfg);
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 100.0).unwrap();
    let first = infra.story6_jupyter("alice", "p", "198.51.100.1").unwrap();
    assert!(matches!(
        infra.story6_jupyter("alice", "p", "198.51.100.2"),
        Err(FlowError::UnexpectedStatus(503, _))
    ));
    // Stopping the first frees capacity.
    infra.jupyter.stop(&first.notebook.id);
    assert!(infra.story6_jupyter("alice", "p", "198.51.100.3").is_ok());
}
