//! Failure-injection tests: the co-design under component failures —
//! the availability half of the paper's "balancing security,
//! availability, usability, and cost-efficiency".

use isambard_dri::core::{FlowError, InfraConfig, Infrastructure};
use isambard_dri::fault::FaultPlan;
use isambard_dri::federation::AuthnError;
use isambard_dri::netsim::BastionError;
use isambard_dri::sshca::CaError;

fn onboarded() -> Infrastructure {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 100.0).unwrap();
    infra
}

#[test]
fn bastion_instance_failures_are_transparent_until_the_last() {
    let infra = onboarded();
    // Kill instances one by one; the HA set keeps serving.
    infra.bastion.drain_instance(0).unwrap();
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
    infra.bastion.drain_instance(1).unwrap();
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
    infra.bastion.drain_instance(2).unwrap();
    assert!(matches!(
        infra.story4_ssh_connect("alice", "p"),
        Err(FlowError::Bastion(BastionError::Unavailable))
    ));
    // Recovery restores service.
    infra.bastion.restore_instance(1).unwrap();
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
    // Out-of-range instance indices are refused, not silently ignored.
    assert!(matches!(
        infra.bastion.drain_instance(99),
        Err(BastionError::UnknownInstance(99))
    ));
    assert!(matches!(
        infra.bastion.restore_instance(99),
        Err(BastionError::UnknownInstance(99))
    ));
}

#[test]
fn broker_key_rotation_fails_closed_until_jwks_distributed() {
    let infra = onboarded();
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
    // Rotate the broker signing key. New tokens carry the new kid, which
    // the CA's stale JWKS snapshot does not know: the system fails
    // *closed*, never accepting a token it cannot verify.
    infra.broker.rotate_keys([201u8; 32]);
    assert!(matches!(
        infra.story4_ssh_connect("alice", "p"),
        Err(FlowError::Ca(_)) | Err(FlowError::Device(_))
    ));
    // Distributing the refreshed JWKS (both keys published) restores
    // service; in-flight old-key tokens stay valid too.
    infra.ssh_ca.update_jwks(infra.broker.jwks());
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
    // Pruning the retired key narrows trust without breaking new tokens.
    infra.broker.prune_keys(1);
    infra.ssh_ca.update_jwks(infra.broker.jwks());
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
}

#[test]
fn isolated_login_node_blocks_ssh_but_not_identity_plane() {
    let infra = onboarded();
    infra.network.isolate("mdc/login01").unwrap();
    // SSH path dies at the fabric.
    assert!(matches!(
        infra.story4_ssh_connect("alice", "p"),
        Err(FlowError::Bastion(BastionError::Network(_)))
    ));
    // But the identity plane is unaffected: fresh logins and tokens work.
    assert!(infra.federated_login("alice").is_ok());
    assert!(infra.token_for("alice", "ssh-ca", vec![]).is_ok());
    infra.network.deisolate("mdc/login01").unwrap();
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
}

#[test]
fn edge_outage_leaves_ssh_path_alive() {
    let infra = onboarded();
    infra.edge.set_down(true);
    assert!(infra.story6_jupyter("alice", "p", "198.51.100.77").is_err());
    // Independent access path still up — zoning pays off.
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
    infra.edge.set_down(false);
    assert!(infra.story6_jupyter("alice", "p", "198.51.100.77").is_ok());
}

#[test]
fn retired_idp_locks_out_its_users_only() {
    let infra = onboarded();
    // A partner IdP joins, a user onboards through it.
    let idp = infra.register_partner_idp(
        "Partner Uni",
        "partner.example",
        isambard_dri::federation::LevelOfAssurance::Medium,
    );
    infra.create_federated_user_at(&idp, "pat", "pw");
    infra
        .story1_onboard_pi("partner-proj", "pat", 10.0)
        .unwrap();
    // The federation retires the partner IdP (e.g. compromise).
    infra.registry.deregister_entity(&idp).unwrap();
    // pat can no longer authenticate (proxy refuses the unknown IdP) …
    assert!(matches!(
        infra.federated_login("pat"),
        Err(FlowError::Proxy(_))
    ));
    // … while Bristol users are untouched.
    assert!(infra.federated_login("alice").is_ok());
}

#[test]
fn jupyter_capacity_exhaustion_fails_closed_and_recovers() {
    let cfg = InfraConfig::builder().jupyter_capacity(1).build().unwrap();
    let infra = Infrastructure::new(cfg);
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 100.0).unwrap();
    let first = infra.story6_jupyter("alice", "p", "198.51.100.1").unwrap();
    assert!(matches!(
        infra.story6_jupyter("alice", "p", "198.51.100.2"),
        Err(FlowError::UnexpectedStatus(503, _))
    ));
    // Stopping the first frees capacity.
    infra.jupyter.stop(&first.notebook.id);
    assert!(infra.story6_jupyter("alice", "p", "198.51.100.3").is_ok());
}

#[test]
fn flaky_idp_window_is_ridden_out_by_retries() {
    let infra = onboarded();
    infra.enroll_last_resort_fallback("alice").unwrap();
    let now = infra.clock.now_ms();
    let plane =
        infra.install_fault_plan(FaultPlan::new(42).flaky("idp", 300, now, now + 3_600_000));
    // Fresh logins during the flaky window: transient failures are
    // retried with deterministic backoff, and every login lands — on the
    // primary path when a retry got through, on the last-resort fallback
    // when the whole budget was exhausted.
    for _ in 0..6 {
        infra.federated_login("alice").unwrap();
    }
    assert!(plane.failures_injected() > 0, "the plan actually fired");
    let m = infra.metrics();
    assert!(m.retries > 0, "transient failures were retried");
    assert_eq!(m.faults_injected, plane.failures_injected());
}

#[test]
fn flaky_edge_is_ridden_out_by_retries() {
    let infra = onboarded();
    let now = infra.clock.now_ms();
    infra.install_fault_plan(FaultPlan::new(7).flaky("edge", 500, now, now + 3_600_000));
    let mut ok = 0;
    for i in 0..8 {
        let ip = format!("198.51.100.{}", 10 + i);
        ok += usize::from(infra.story6_jupyter("alice", "p", &ip).is_ok());
    }
    assert!(
        ok >= 5,
        "most notebook flows ride out the flaky edge: {ok}/8"
    );
    assert!(infra.metrics().retries > 0);
}

#[test]
fn sshca_outage_fails_new_issuance_closed_but_existing_sessions_survive() {
    let infra = onboarded();
    infra.story4_ssh_connect("alice", "p").unwrap();
    let shells_before = infra.login_node.session_count();
    let now = infra.clock.now_ms();
    infra.install_fault_plan(FaultPlan::new(42).outage("sshca", now, now + 60_000));
    // New issuance fails *closed* — no retry, no degraded path: the CA
    // is the trust anchor.
    assert!(matches!(
        infra.story4_ssh_connect("alice", "p"),
        Err(FlowError::Ca(CaError::Unavailable))
    ));
    // Certs issued before the outage stay valid: the session opened
    // earlier is untouched.
    assert_eq!(infra.login_node.session_count(), shells_before);
    // Window passes: issuance resumes.
    infra.clock.advance(60_001);
    assert!(infra.story4_ssh_connect("alice", "p").is_ok());
}

#[test]
fn broker_outage_trips_the_breaker_and_fails_fast() {
    let infra = onboarded();
    let now = infra.clock.now_ms();
    infra.install_fault_plan(FaultPlan::new(42).outage("broker", now, now + 60_000));
    // Three exhausted retry rounds trip the per-lane breaker…
    for _ in 0..3 {
        assert!(matches!(
            infra.federated_login("alice"),
            Err(FlowError::Broker(_))
        ));
    }
    let m = infra.metrics();
    assert!(m.breaker_trips >= 1, "third failure opens the breaker");
    assert!(
        m.retries >= 6,
        "each round retried twice, saw {}",
        m.retries
    );
    // …so the fourth call is rejected fast, without touching the broker.
    let injected_before = infra.resilience.plane().unwrap().failures_injected();
    assert!(matches!(
        infra.federated_login("alice"),
        Err(FlowError::CircuitOpen(dep)) if dep == "broker"
    ));
    assert_eq!(
        infra.resilience.plane().unwrap().failures_injected(),
        injected_before,
        "open breaker shields the dependency"
    );
    assert!(infra.metrics().breaker_rejections >= 1);
    // Outage over and cool-down elapsed: the half-open probe succeeds
    // and service restores.
    infra.clock.advance(60_000 + 30_000 + 1);
    assert!(infra.federated_login("alice").is_ok());
}

#[test]
fn idp_outage_without_fallback_enrollment_fails_with_the_idp_error() {
    let infra = onboarded();
    let now = infra.clock.now_ms();
    infra.install_fault_plan(FaultPlan::new(42).outage("idp", now, now + 60_000));
    // No last-resort credential enrolled: the degraded path cannot help,
    // and the caller sees the real upstream error.
    assert!(matches!(
        infra.federated_login("alice"),
        Err(FlowError::Idp(AuthnError::IdpUnavailable))
    ));
    assert_eq!(infra.metrics().degraded_logins, 0);
}

#[test]
fn idp_outage_fails_over_to_last_resort_and_recovers() {
    let infra = onboarded();
    let outcome = infra.chaos_idp_outage("alice", 60_000).unwrap();
    assert!(outcome.passed(), "failed checks: {:?}", outcome.failures());
    assert_eq!(outcome.fault_ids.len(), 1);
    assert!(outcome.retries >= 6);
    assert!(
        outcome.degraded_logins >= 4,
        "three slow + one fast failover"
    );
    assert_eq!(outcome.breaker_trips, 1);
    let m = infra.metrics();
    assert!(m.degraded_logins >= 4 && m.retries >= 6 && m.breaker_trips >= 1);
}

#[test]
fn chaos_bastion_and_killswitch_drills_pass() {
    let infra = onboarded();
    let bastion = infra.chaos_bastion_loss("alice", "p").unwrap();
    assert!(bastion.passed(), "failed checks: {:?}", bastion.failures());

    let infra = onboarded();
    let drill = infra.chaos_killswitch_drill("alice", "p", 60_000).unwrap();
    assert!(drill.passed(), "failed checks: {:?}", drill.failures());
    assert_eq!(drill.fault_ids.len(), 1);
}
