//! E16 (extension) — the paper's stated next step, made executable:
//! NCSC CAF baseline-profile assessment of the deployed co-design.

use isambard_dri::core::{InfraConfig, Infrastructure};
use isambard_dri::policy::Achievement;

fn exercised() -> Infrastructure {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 100.0).unwrap();
    infra.story2_register_admin("dave").unwrap();
    infra.story4_ssh_connect("alice", "p").unwrap();
    infra.story6_jupyter("alice", "p", "198.51.100.30").unwrap();
    infra.pump_network_logs();
    infra
}

#[test]
fn deployed_codesign_meets_caf_baseline() {
    let infra = exercised();
    let assessment = infra.caf_assessment();
    assert!(
        assessment.baseline_compliant(),
        "gaps: {:?}",
        assessment
            .gaps()
            .iter()
            .map(|p| (p.id, &p.evidence))
            .collect::<Vec<_>>()
    );
    assert_eq!(assessment.baseline_score(), (14, 14));
}

#[test]
fn devsecops_gap_is_reported_honestly() {
    // The paper admits the DevSecOps culture is still being grown; the
    // assessment must show B6 as partially achieved, not achieved.
    let infra = exercised();
    let assessment = infra.caf_assessment();
    let b6 = assessment.principles.iter().find(|p| p.id == "B6").unwrap();
    assert_eq!(b6.achieved, Achievement::PartiallyAchieved);
    assert!(b6.meets_baseline());
}

#[test]
fn fresh_deployment_fails_monitoring_principles() {
    // Never-exercised infrastructure has no telemetry; C1 cannot be met.
    let infra = Infrastructure::new(InfraConfig::default());
    let assessment = infra.caf_assessment();
    assert!(
        assessment.gaps().iter().any(|p| p.id == "C1"),
        "gaps: {:?}",
        assessment.gaps().iter().map(|p| p.id).collect::<Vec<_>>()
    );
}

#[test]
fn single_bastion_deployment_still_meets_baseline() {
    let cfg = InfraConfig {
        bastion_instances: 1,
        ..InfraConfig::default()
    };
    let infra = Infrastructure::new(cfg);
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 100.0).unwrap();
    infra.story4_ssh_connect("alice", "p").unwrap();
    infra.story6_jupyter("alice", "p", "198.51.100.30").unwrap();
    infra.story2_register_admin("dave").unwrap();
    infra.pump_network_logs();
    let assessment = infra.caf_assessment();
    let b5 = assessment.principles.iter().find(|p| p.id == "B5").unwrap();
    assert_eq!(b5.achieved, Achievement::PartiallyAchieved);
    assert!(assessment.baseline_compliant());
}

#[test]
fn future_work_toggle_closes_the_cis_gap() {
    // Enabling the in-progress HPC-fabric encryption (paper §V) brings
    // the CIS-style score to 12/12.
    let cfg = InfraConfig::builder()
        .hpc_fabric_encryption(true)
        .build()
        .unwrap();
    let infra = Infrastructure::new(cfg);
    let report = infra.cis_report();
    assert_eq!(report.score(), (12, 12));
    assert!(report.failures().is_empty());
}
