//! Property-based tests over the core data structures and invariants.

use isambard_dri::crypto::{base64, ed25519, hex, json, sha2};
use isambard_dri::sshca::SshCertificate;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- codecs ---------------------------------------------------------

    #[test]
    fn base64_url_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let encoded = base64::encode_url(&data);
        prop_assert_eq!(base64::decode_url(&encoded).unwrap(), data);
    }

    #[test]
    fn base64_std_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let encoded = base64::encode(&data, base64::Variant::Standard);
        prop_assert_eq!(base64::decode(&encoded, base64::Variant::Standard).unwrap(), data);
    }

    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(hex::decode(&hex::encode(&data)).unwrap(), data);
    }

    #[test]
    fn json_string_roundtrip(s in "\\PC{0,64}") {
        let v = json::Value::Str(s.clone());
        let parsed = json::Value::parse(&v.to_json()).unwrap();
        prop_assert_eq!(parsed, json::Value::Str(s));
    }

    #[test]
    fn json_nested_roundtrip(
        keys in proptest::collection::vec("[a-z]{1,8}", 1..6),
        nums in proptest::collection::vec(-1_000_000i64..1_000_000, 1..6),
    ) {
        let mut obj = json::Value::Obj(Default::default());
        for (k, n) in keys.iter().zip(nums.iter()) {
            obj.set(k.clone(), json::Value::i(*n));
        }
        let parsed = json::Value::parse(&obj.to_json()).unwrap();
        prop_assert_eq!(parsed, obj);
    }

    // --- hashing --------------------------------------------------------

    #[test]
    fn sha256_streaming_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        let mut h = sha2::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha2::sha256(&data));
    }

    // --- signatures -----------------------------------------------------

    #[test]
    fn ed25519_sign_verify(seed in any::<[u8; 32]>(), msg in proptest::collection::vec(any::<u8>(), 0..128)) {
        let sk = ed25519::SigningKey::from_seed(&seed);
        let sig = sk.sign(&msg);
        prop_assert!(sk.verifying_key().verify(&msg, &sig));
    }

    #[test]
    fn ed25519_rejects_bitflips(
        seed in any::<[u8; 32]>(),
        msg in proptest::collection::vec(any::<u8>(), 1..64),
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        let sk = ed25519::SigningKey::from_seed(&seed);
        let mut sig = sk.sign(&msg);
        sig[flip_byte] ^= 1 << flip_bit;
        prop_assert!(!sk.verifying_key().verify(&msg, &sig));
    }

    #[test]
    fn scalar_mul_commutes(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let sa = ed25519::Scalar::from_bytes(&a);
        let sb = ed25519::Scalar::from_bytes(&b);
        prop_assert_eq!(sa.mul(sb), sb.mul(sa));
        prop_assert_eq!(sa.add(sb), sb.add(sa));
    }

    // --- SSH certificates -------------------------------------------------

    #[test]
    fn cert_wire_roundtrip(
        seed in any::<[u8; 32]>(),
        serial in any::<u64>(),
        key_id in "[a-z0-9-]{1,24}",
        principals in proptest::collection::vec("[a-z0-9]{4,12}", 0..5),
        start in 0u64..1_000_000,
        ttl in 1u64..1_000_000,
    ) {
        let ca = ed25519::SigningKey::from_seed(&seed);
        let cert = SshCertificate {
            public_key: [7u8; 32],
            serial,
            key_id: key_id.clone(),
            principals: principals.clone(),
            valid_after: start,
            valid_before: start + ttl,
            critical_options: vec![],
            extensions: vec!["permit-pty".into()],
            signature: [0u8; 64],
        }.signed(&ca);
        let parsed = SshCertificate::from_wire(&cert.to_wire()).unwrap();
        prop_assert_eq!(&parsed, &cert);
        // Verification succeeds inside the window, fails outside.
        prop_assert!(parsed.verify(&ca.verifying_key(), start, None).is_ok());
        prop_assert!(parsed.verify(&ca.verifying_key(), start + ttl, None).is_err());
        // Unlisted principals always rejected.
        prop_assert!(parsed.verify(&ca.verifying_key(), start, Some("not-a-principal")).is_err());
    }
}

// --- infrastructure invariants (non-proptest: expensive to build) --------

mod infra_invariants {
    use isambard_dri::broker::AuthorizationSource;
    use isambard_dri::core::{InfraConfig, Infrastructure};

    /// Default-deny: the attacker host can never reach any non-Access
    /// service regardless of name, for several seeds.
    #[test]
    fn no_seed_opens_hidden_paths() {
        for seed in [1u64, 7, 42, 1234] {
            let cfg = InfraConfig::builder().seed(seed).build().unwrap();
            let infra = Infrastructure::new(cfg);
            for (src, dst, service, allowed) in infra.reachability_matrix() {
                if src.starts_with("internet") && allowed {
                    assert!(
                        (dst.starts_with("fds/") && service == "https")
                            || (dst == "sws/bastion" && service == "ssh"),
                        "seed {seed}: leak {src}->{dst} {service}"
                    );
                }
            }
        }
    }

    /// No global admin: no single subject holds roles on every audience.
    #[test]
    fn no_subject_has_global_roles() {
        let infra = Infrastructure::new(InfraConfig::default());
        infra.create_federated_user("alice", "pw");
        infra.story1_onboard_pi("p", "alice", 10.0).unwrap();
        infra.story2_register_admin("dave").unwrap();
        let audiences = [
            "ssh-ca",
            "jupyter",
            "slurm",
            "portal",
            "mgmt-tailnet",
            "mgmt-cluster",
        ];
        for subject in [
            infra.subject_of("alice").unwrap(),
            infra.subject_of("dave").unwrap(),
            "admin:ops".to_string(),
        ] {
            let covered = audiences
                .iter()
                .filter(|a| !infra.portal.roles_for(&subject, a).is_empty())
                .count();
            assert!(
                covered < audiences.len(),
                "{subject} holds roles on every audience"
            );
        }
    }
}
