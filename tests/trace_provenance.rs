//! Flow-trace determinism and provenance over the assembled co-design.
//!
//! The tentpole guarantee: a given seed yields *byte-identical* trace
//! exports whether the RSECon storm runs serially or fanned out over
//! eight workers, the trace trees are well-formed, and one trace covers
//! the whole discovery → broker → portal → SSH CA → bastion → cluster
//! chain.

use isambard_dri::core::{InfraConfig, Infrastructure};
use isambard_dri::crypto::json::Value;
use isambard_dri::trace::{chrome_trace, flamegraph, well_formed, SpanRecord, TraceCtx};
use isambard_dri::workload::{build_population, run_storm, StormMode};
use proptest::prelude::*;

const RSECON_USERS: usize = 45;

/// Build the RSECon-workshop population (9 projects × 5 members = 45
/// users), run one SSH story for coverage of the CA/bastion stages, then
/// run the notebook storm in `mode`. Returns the collected spans.
fn rsecon_run(seed: u64, mode: StormMode) -> (Infrastructure, Vec<SpanRecord>) {
    let config = InfraConfig::builder()
        .seed(seed)
        .jupyter_capacity(4096)
        .interactive_nodes(4096)
        .edge_threshold(usize::MAX / 2)
        .build()
        .unwrap();
    let infra = Infrastructure::new(config);
    let pop = build_population(&infra, 9, 4).unwrap();
    let users: Vec<(String, String)> = pop
        .projects
        .iter()
        .flat_map(|p| {
            std::iter::once((p.pi_label.clone(), p.name.clone())).chain(
                p.researcher_labels
                    .iter()
                    .map(|r| (r.clone(), p.name.clone())),
            )
        })
        .collect();
    assert_eq!(users.len(), RSECON_USERS);

    // One SSH connection exercises the CA, bastion, and login-node hops.
    infra.story4_ssh_connect(&users[0].0, &users[0].1).unwrap();

    let result = run_storm(&infra, &users, mode);
    assert_eq!(result.completed, RSECON_USERS, "{:?}", result.failures);

    let spans = infra.tracer.all_spans();
    (infra, spans)
}

#[test]
fn rsecon_storm_traces_are_bit_identical_serial_vs_parallel() {
    let (serial_infra, serial_spans) = rsecon_run(9, StormMode::Serial);
    let (parallel_infra, parallel_spans) = rsecon_run(9, StormMode::Parallel(8));

    well_formed(&serial_spans).unwrap();
    well_formed(&parallel_spans).unwrap();

    // Same trace ids were minted, and the canonical exports match byte
    // for byte — parallelism is unobservable in the trace record.
    assert_eq!(
        serial_infra.tracer.trace_count(),
        parallel_infra.tracer.trace_count()
    );
    assert_eq!(
        chrome_trace(&serial_spans),
        chrome_trace(&parallel_spans),
        "chrome-trace export must not depend on thread interleaving"
    );
    assert_eq!(flamegraph(&serial_spans), flamegraph(&parallel_spans));
}

#[test]
fn rsecon_storm_chrome_trace_is_valid_and_covers_the_flow_chain() {
    let (_infra, spans) = rsecon_run(9, StormMode::Parallel(8));

    // Every stage of the end-to-end chain appears in the span record.
    let stages: std::collections::BTreeSet<&str> = spans.iter().map(|s| s.stage.as_str()).collect();
    for expected in [
        "discovery",
        "broker",
        "portal",
        "sshca",
        "bastion",
        "cluster",
        "edge",
        "tunnel",
    ] {
        assert!(stages.contains(expected), "missing stage {expected}");
    }

    // The export is valid JSON with one event per span, all fields
    // deterministic (sim steps, not wall-clock).
    let exported = chrome_trace(&spans);
    let parsed = Value::parse(&exported).expect("chrome trace parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), spans.len());
    for event in events {
        assert_eq!(event.get("ph").and_then(Value::as_str), Some("X"));
        assert!(event.get("ts").and_then(Value::as_u64).is_some());
        assert!(event.get("dur").and_then(Value::as_u64).is_some());
    }
}

#[test]
fn traceparent_header_crosses_the_http_hop() {
    let (_infra, spans) = rsecon_run(9, StormMode::Serial);

    // The Jupyter authenticator surfaces the inbound W3C header as a
    // span attribute; it must cite the very trace the span belongs to.
    let spawn_spans: Vec<&SpanRecord> =
        spans.iter().filter(|s| s.name == "jupyter.spawn").collect();
    assert_eq!(spawn_spans.len(), RSECON_USERS);
    for span in spawn_spans {
        let header = span
            .attrs
            .iter()
            .find(|(k, _)| k == "traceparent")
            .map(|(_, v)| v.as_str())
            .expect("jupyter.spawn carries the traceparent attribute");
        let ctx = TraceCtx::parse(header).expect("well-formed traceparent");
        assert_eq!(ctx.trace_id, span.trace_id, "header cites its own trace");
    }
}

#[test]
fn disabled_tracing_records_nothing() {
    let config = InfraConfig::builder()
        .seed(9)
        .tracing(false)
        .build()
        .unwrap();
    let infra = Infrastructure::new(config);
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 10.0).unwrap();
    assert_eq!(infra.tracer.span_count(), 0);
    assert_eq!(infra.tracer.trace_count(), 0);
    assert!(infra.tracer.stage_summaries().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Satellite property: for any seed and worker count, the parallel
    // storm's trace forest is well-formed and byte-identical to a serial
    // run of the same seed.
    #[test]
    fn storm_trace_forest_well_formed_and_deterministic(
        seed in 0u64..1_000,
        workers in 2usize..9,
    ) {
        let run = |mode: StormMode| {
            let config = InfraConfig::builder()
                .seed(seed)
                .jupyter_capacity(4096)
                .interactive_nodes(4096)
                .edge_threshold(usize::MAX / 2)
                .build()
                .unwrap();
            let infra = Infrastructure::new(config);
            let pop = build_population(&infra, 2, 2).unwrap();
            let users: Vec<(String, String)> = pop
                .projects
                .iter()
                .flat_map(|p| {
                    std::iter::once((p.pi_label.clone(), p.name.clone())).chain(
                        p.researcher_labels
                            .iter()
                            .map(|r| (r.clone(), p.name.clone())),
                    )
                })
                .collect();
            let result = run_storm(&infra, &users, mode);
            assert_eq!(result.completed, users.len(), "{:?}", result.failures);
            infra.tracer.all_spans()
        };
        let serial = run(StormMode::Serial);
        let parallel = run(StormMode::Parallel(workers));
        prop_assert!(well_formed(&serial).is_ok());
        prop_assert!(well_formed(&parallel).is_ok());
        prop_assert_eq!(chrome_trace(&serial), chrome_trace(&parallel));
    }
}
