//! E9 — the RSECon24 scale claim as an integration test: 45 trainees log
//! in and run notebooks simultaneously with zero authorisation errors.

use isambard_dri::core::{InfraConfig, Infrastructure};
use isambard_dri::workload::{build_population, run_storm, StormMode};

fn users_for(infra: &Infrastructure, projects: usize, per: usize) -> Vec<(String, String)> {
    let pop = build_population(infra, projects, per).unwrap();
    pop.projects
        .iter()
        .flat_map(|p| {
            std::iter::once((p.pi_label.clone(), p.name.clone())).chain(
                p.researcher_labels
                    .iter()
                    .map(|r| (r.clone(), p.name.clone())),
            )
        })
        .collect()
}

#[test]
fn forty_five_concurrent_trainees() {
    let infra = Infrastructure::new(InfraConfig::default());
    let users = users_for(&infra, 9, 4); // 9 x 5 = 45
    assert_eq!(users.len(), 45);
    let result = run_storm(&infra, &users, StormMode::Parallel(8));
    assert_eq!(result.completed, 45, "failures: {:?}", result.failures);
    assert!(result.failures.is_empty());
    // 45 live notebooks, each on its own scheduler job and account.
    assert_eq!(infra.jupyter.session_count(), 45);
    let (_, running) = infra.scheduler.queue_depth();
    assert_eq!(running, 45);
}

#[test]
fn tenant_isolation_holds_under_load() {
    let infra = Infrastructure::new(InfraConfig::default());
    let users = users_for(&infra, 6, 4); // 30 users
    run_storm(&infra, &users, StormMode::Parallel(8));
    // Every project's members hold distinct unix accounts, and no account
    // appears in two projects.
    let mut seen = std::collections::HashSet::new();
    for p in 1..=6 {
        let project = infra.portal.project(&format!("proj-{p:06}")).unwrap();
        for m in &project.members {
            assert!(
                seen.insert(m.unix_account.clone()),
                "unix account {} reused across tenants",
                m.unix_account
            );
        }
    }
}

#[test]
fn post_storm_telemetry_is_complete() {
    let infra = Infrastructure::new(InfraConfig::default());
    let users = users_for(&infra, 9, 4);
    run_storm(&infra, &users, StormMode::Serial);
    // One AuthnSuccess per onboarding login + storm logins, one
    // TokenIssued + NotebookSpawned per storm flow.
    use isambard_dri::siem::EventKind;
    assert!(infra.siem.events_of_kind(EventKind::NotebookSpawned).len() >= 45);
    assert!(infra.siem.events_of_kind(EventKind::TokenIssued).len() >= 45);
    assert!(infra.siem.alerts().is_empty(), "benign load must not alert");
}
