//! E5 — user story 3: researcher onboarding, privilege boundaries, and
//! lifecycle revocation (removal by PI, IdP deprovisioning).

use isambard_dri::broker::AuthorizationSource;
use isambard_dri::broker::BrokerError;
use isambard_dri::core::{Cuid, FlowError, InfraConfig, Infrastructure, ProjectId};
use isambard_dri::federation::AuthnError;
use isambard_dri::portal::PortalError;

struct Setup {
    infra: Infrastructure,
    project_id: ProjectId,
    researcher_cuid: Cuid,
}

fn onboard() -> Setup {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    let pi = infra.story1_onboard_pi("genomics", "alice", 100.0).unwrap();
    infra.create_federated_user("ravi", "pw2");
    let researcher = infra
        .story3_onboard_researcher("alice", &pi.project_id, "genomics", "ravi")
        .unwrap();
    Setup {
        infra,
        project_id: pi.project_id,
        researcher_cuid: researcher.cuid,
    }
}

#[test]
fn researcher_gets_researcher_role_not_pi() {
    let s = onboard();
    let roles = s.infra.portal.roles_for(&s.researcher_cuid, "jupyter");
    assert_eq!(roles, vec!["researcher"]);
    let (_, claims) = s.infra.token_for("ravi", "ssh-ca", vec![]).unwrap();
    assert!(claims.has_role("researcher"));
    assert!(!claims.has_role("pi"));
}

#[test]
fn researcher_cannot_invite_others() {
    let s = onboard();
    assert_eq!(
        s.infra
            .portal
            .invite_researcher(&s.researcher_cuid, &s.project_id, "friend@x")
            .unwrap_err(),
        PortalError::Forbidden
    );
}

#[test]
fn pi_removal_revokes_researcher() {
    let s = onboard();
    let pi_subject = s.infra.subject_of("alice").unwrap();
    s.infra
        .portal
        .remove_member(&pi_subject, &s.project_id, &s.researcher_cuid)
        .unwrap();
    assert!(s
        .infra
        .portal
        .roles_for(&s.researcher_cuid, "jupyter")
        .is_empty());
    // Fresh login now fails — no authorisation remains.
    assert!(matches!(
        s.infra.federated_login("ravi"),
        Err(FlowError::Broker(BrokerError::NotAuthorized))
    ));
}

#[test]
fn idp_deprovisioning_blocks_authentication() {
    let s = onboard();
    // Ravi leaves his university: the institutional IdP deprovisions him.
    assert!(s.infra.university_idp.deprovision_user("ravi"));
    // "Authentication will fail if a user is no longer affiliated with
    // the organisational IdP" — the failure is at the IdP layer.
    assert!(matches!(
        s.infra.federated_login("ravi"),
        Err(FlowError::Idp(AuthnError::Deprovisioned))
    ));
}

#[test]
fn researcher_identity_is_persistent_across_logins() {
    let s = onboard();
    let before = s.infra.subject_of("ravi").unwrap();
    s.infra.federated_login("ravi").unwrap();
    s.infra.federated_login("ravi").unwrap();
    assert_eq!(s.infra.subject_of("ravi").unwrap(), before);
    // Exactly two community accounts exist (alice + ravi).
    assert_eq!(s.infra.proxy.account_count(), 2);
}

#[test]
fn removed_then_reinvited_keeps_same_cuid_but_new_grant() {
    let s = onboard();
    let pi_subject = s.infra.subject_of("alice").unwrap();
    s.infra
        .portal
        .remove_member(&pi_subject, &s.project_id, &s.researcher_cuid)
        .unwrap();
    let invitation = s
        .infra
        .portal
        .invite_researcher(&pi_subject, &s.project_id, "ravi@again")
        .unwrap();
    let membership = s
        .infra
        .portal
        .accept_invitation(&invitation.token, &s.researcher_cuid, true)
        .unwrap();
    assert_eq!(membership.subject, s.researcher_cuid);
    assert!(!s
        .infra
        .portal
        .roles_for(&s.researcher_cuid, "jupyter")
        .is_empty());
}
