//! E8 — user story 6: Jupyter via the edge, the reverse tunnel, and the
//! token-validating authenticator.

use isambard_dri::cluster::JobState;
use isambard_dri::core::{FlowError, InfraConfig, Infrastructure};
use isambard_dri::netsim::{EdgeError, HttpRequest, TunnelError};

fn onboarded() -> Infrastructure {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    infra
        .story1_onboard_pi("climate-llm", "alice", 100.0)
        .unwrap();
    infra
}

#[test]
fn jupyter_story_end_to_end() {
    let infra = onboarded();
    let outcome = infra
        .story6_jupyter("alice", "climate-llm", "198.51.100.10")
        .unwrap();
    // A real job backs the notebook, on the interactive partition,
    // running as the per-project UNIX account.
    let job = infra.scheduler.job(&outcome.notebook.job_id).unwrap();
    assert_eq!(job.state, JobState::Running);
    assert_eq!(job.partition, "interactive");
    assert_eq!(job.user, outcome.notebook.unix_account);
    assert_eq!(outcome.notebook.project, "climate-llm");
    // The trace names every hop of Fig. 1's web path.
    assert!(outcome.trace.iter().any(|s| s.contains("edge")));
    assert!(outcome.trace.iter().any(|s| s.contains("reverse tunnel")));
    assert!(outcome.trace.iter().any(|s| s.contains("notebook spawned")));
}

#[test]
fn unauthenticated_request_gets_401_through_the_whole_path() {
    let infra = onboarded();
    let response = infra
        .edge
        .handle(
            &infra.tunnel,
            "203.0.113.50",
            HttpRequest {
                path: "/jupyter".into(),
                headers: vec![],
                body: vec![],
            },
        )
        .unwrap();
    assert_eq!(response.status, 401);
    assert_eq!(infra.jupyter.session_count(), 0);
}

#[test]
fn expired_token_rejected_by_authenticator() {
    let infra = onboarded();
    let (token, _) = infra
        .token_for(
            "alice",
            "jupyter",
            vec![(
                "unix_account".into(),
                isambard_dri::crypto::json::Value::s("u-x"),
            )],
        )
        .unwrap();
    infra
        .clock
        .advance_secs(infra.config.jupyter_token_ttl_secs + 1);
    let response = infra
        .edge
        .handle(
            &infra.tunnel,
            "203.0.113.51",
            HttpRequest {
                path: "/jupyter".into(),
                headers: vec![("x-auth-token".into(), token)],
                body: vec![],
            },
        )
        .unwrap();
    assert_eq!(response.status, 401);
}

#[test]
fn ddos_source_is_absorbed_at_the_edge() {
    let infra = onboarded();
    let req = || HttpRequest {
        path: "/jupyter".into(),
        headers: vec![],
        body: vec![],
    };
    // Hammer from one source: after the threshold the source is blocked
    // and the origin stops seeing its traffic entirely.
    let mut blocked = false;
    for _ in 0..(infra.config.edge_threshold + 5) {
        infra.clock.advance(5);
        match infra.edge.handle(&infra.tunnel, "203.0.113.66", req()) {
            Err(EdgeError::RateLimited) | Err(EdgeError::Blocked) => blocked = true,
            _ => {}
        }
    }
    assert!(blocked);
    let served_before = infra.tunnel.requests_served("/jupyter");
    let _ = infra.edge.handle(&infra.tunnel, "203.0.113.66", req());
    assert_eq!(infra.tunnel.requests_served("/jupyter"), served_before);
    // A legitimate user still gets through.
    assert!(infra
        .story6_jupyter("alice", "climate-llm", "198.51.100.10")
        .is_ok());
}

#[test]
fn tunnel_kill_switch_stops_web_access() {
    let infra = onboarded();
    infra.kill_tunnels();
    assert!(matches!(
        infra.story6_jupyter("alice", "climate-llm", "198.51.100.10"),
        Err(FlowError::Edge(EdgeError::Origin(TunnelError::Closed)))
    ));
    infra.tunnel.reopen_tunnel("/jupyter");
    assert!(infra
        .story6_jupyter("alice", "climate-llm", "198.51.100.10")
        .is_ok());
}

#[test]
fn stopping_notebook_frees_the_node() {
    let infra = onboarded();
    let outcome = infra
        .story6_jupyter("alice", "climate-llm", "198.51.100.10")
        .unwrap();
    let part_before = infra
        .scheduler
        .partition("interactive")
        .unwrap()
        .allocated_nodes;
    assert!(infra.jupyter.stop(&outcome.notebook.id));
    let part_after = infra
        .scheduler
        .partition("interactive")
        .unwrap()
        .allocated_nodes;
    assert_eq!(part_after, part_before - 1);
}
