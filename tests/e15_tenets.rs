//! E15 — the seven NIST zero-trust tenets, audited against the running
//! co-design and against ablated variants.

use isambard_dri::core::{InfraConfig, Infrastructure};
use isambard_dri::policy::{TenetAudit, TenetEvidence};

/// Exercise the infrastructure enough to generate real evidence.
fn exercised_infra() -> Infrastructure {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    infra
        .story1_onboard_pi("climate-llm", "alice", 100.0)
        .unwrap();
    infra.story2_register_admin("dave").unwrap();
    infra.story4_ssh_connect("alice", "climate-llm").unwrap();
    infra
        .story6_jupyter("alice", "climate-llm", "198.51.100.10")
        .unwrap();
    infra
        .story5_privileged_op("dave", isambard_dri::cluster::MgmtOp::Health)
        .unwrap();
    infra.pump_network_logs();
    infra
}

#[test]
fn full_codesign_passes_all_seven_tenets() {
    let infra = exercised_infra();
    let audit = infra.tenet_audit();
    assert!(
        audit.compliant(),
        "failing tenets: {:?}\n{:#?}",
        audit.failing(),
        audit.results
    );
    assert_eq!(audit.score(), (7, 7));
}

#[test]
fn evidence_is_live_not_configured() {
    let infra = exercised_infra();
    let ev = infra.tenet_evidence();
    // Real counters, not constants.
    assert!(ev.pdp_consultations >= 3, "stories consult the PDP");
    assert!(ev.events_collected > 10, "telemetry flowed");
    assert!(ev.telemetry_sources >= 3, "multiple domains ship logs");
    assert!(ev.assets_inventoried >= 5);
    assert!(ev.revocation_effective, "live revocation probe");
}

#[test]
fn long_lived_credentials_fail_tenet_3() {
    let cfg = InfraConfig {
        cert_ttl_secs: 365 * 24 * 3600, // year-long certs, the old way
        ..InfraConfig::default()
    };
    let infra = Infrastructure::new(cfg);
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 10.0).unwrap();
    infra.story4_ssh_connect("alice", "p").unwrap();
    let audit = infra.tenet_audit();
    assert!(
        audit.failing().contains(&3),
        "failing: {:?}",
        audit.failing()
    );
}

#[test]
fn no_telemetry_fails_tenet_7() {
    // A fresh, never-exercised deployment has no events and thus cannot
    // demonstrate tenet 7 — evidence must be earned.
    let infra = Infrastructure::new(InfraConfig::default());
    let audit = infra.tenet_audit();
    assert!(
        audit.failing().contains(&7),
        "failing: {:?}",
        audit.failing()
    );
}

#[test]
fn perimeter_baseline_fails_most_tenets() {
    // The hand-built evidence of a perimeter deployment (long-lived keys,
    // plaintext interior, no PDP / SIEM) — the paper's "typical
    // supercomputing environment".
    let ev = TenetEvidence {
        services_total: 6,
        services_with_policy: 1,
        channels_total: 5,
        channels_encrypted: 1,
        max_credential_ttl_secs: 10 * 365 * 24 * 3600,
        tokens_session_bound: false,
        pdp_signals: 1,
        pdp_consultations: 0,
        assets_inventoried: 0,
        config_checks_run: 0,
        reauth_enforced: false,
        revocation_effective: false,
        events_collected: 0,
        telemetry_sources: 0,
    };
    let audit = TenetAudit::run(&ev);
    let (passed, _) = audit.score();
    assert_eq!(passed, 0);
}

#[test]
fn cis_report_matches_paper_self_assessment() {
    let infra = exercised_infra();
    let report = infra.cis_report();
    let (passed, total) = report.score();
    assert_eq!(total, 12);
    assert_eq!(passed, 11, "all but HPC-fabric encryption");
    assert_eq!(report.failures()[0].id, "DRI-12");
}
