//! E1 — Fig. 1 reproduced as an executable reachability matrix.
//!
//! Verifies that exactly the designed paths are open and everything else
//! is default-denied, including the properties the paper calls out:
//! only the Access zone is internet-facing, the Management zone is not
//! reachable from any user-facing path, and the Security zone only
//! accepts log shipping.

use isambard_dri::core::{InfraConfig, Infrastructure};

fn infra() -> Infrastructure {
    Infrastructure::new(InfraConfig::default())
}

#[test]
fn designed_entry_points_are_exactly_two() {
    let infra = infra();
    let matrix = infra.reachability_matrix();
    // All paths originating from the internet:
    let from_internet: Vec<_> = matrix
        .iter()
        .filter(|(src, _, _, allowed)| src.starts_with("internet") && *allowed)
        .collect();
    // Internet may reach: FDS https (4 hosts x 2 internet sources) and
    // the bastion's ssh (x2 sources). Zenith also exposes https.
    for (_, dst, service, _) in &from_internet {
        let ok = (dst.starts_with("fds/") && service == "https")
            || (dst == "sws/bastion" && service == "ssh");
        assert!(ok, "unexpected internet-reachable path: {dst} {service}");
    }
    assert!(!from_internet.is_empty());
}

#[test]
fn management_zone_unreachable_from_user_paths() {
    let infra = infra();
    for src in [
        "internet/user",
        "internet/attacker",
        "mdc/login01",
        "fds/broker",
    ] {
        assert!(
            infra.network.check(src, "mdc/mgmt01", "admin-api").is_err(),
            "{src} must not reach the management plane"
        );
    }
    // Only the management zone itself administers HPC hosts.
    assert!(infra
        .network
        .check("mdc/mgmt01", "mdc/login01", "ssh")
        .is_ok());
}

#[test]
fn security_zone_accepts_only_log_shipping() {
    let infra = infra();
    let matrix = infra.reachability_matrix();
    for (src, dst, service, allowed) in matrix {
        if dst == "sec/siem" && allowed {
            assert_eq!(service, "syslog", "{src} reached SEC via {service}");
            assert!(
                src == "sws/logs" || src.starts_with("fds/"),
                "only the log path may reach SEC, not {src}"
            );
        }
    }
}

#[test]
fn hpc_zone_cannot_originate_into_fds_except_zenith() {
    let infra = infra();
    let matrix = infra.reachability_matrix();
    for (src, dst, service, allowed) in matrix {
        if src.starts_with("mdc/") && dst.starts_with("fds/") && allowed {
            assert!(
                service == "zenith" || service == "syslog",
                "MDC may only dial out via reverse tunnels or logs: {src}->{dst} {service}"
            );
        }
    }
}

#[test]
fn matrix_shape_is_stable() {
    // The matrix is a deterministic artefact: same config, same matrix.
    let a = infra().reachability_matrix();
    let b = infra().reachability_matrix();
    assert_eq!(a, b);
    // Expected scale: 13 hosts, ~15 services across destinations.
    assert!(a.len() >= 150, "matrix has {} entries", a.len());
    let allowed = a.iter().filter(|(_, _, _, ok)| *ok).count();
    let denied = a.len() - allowed;
    assert!(
        denied as f64 / a.len() as f64 > 0.6,
        "default-deny: {denied}/{} denied",
        a.len()
    );
}

#[test]
fn storage_reachable_only_from_hpc() {
    let infra = infra();
    let matrix = infra.reachability_matrix();
    for (src, dst, _service, allowed) in matrix {
        if dst == "mdc/storage01" && allowed {
            assert!(
                src.starts_with("mdc/login") || src.starts_with("mdc/compute"),
                "storage reached from {src}"
            );
        }
    }
}
