//! Property tests over the scheduler and IAM invariants under random
//! operation sequences.

use isambard_dri::clock::SimClock;
use isambard_dri::cluster::{JobState, Scheduler};
use proptest::prelude::*;

/// A random scheduler operation.
#[derive(Debug, Clone)]
enum Op {
    Submit { nodes: u32, walltime: u64 },
    Advance { secs: u64 },
    Tick,
    CancelNewest,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..9, 1u64..5000).prop_map(|(nodes, walltime)| Op::Submit { nodes, walltime }),
        (1u64..5000).prop_map(|secs| Op::Advance { secs }),
        Just(Op::Tick),
        Just(Op::CancelNewest),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any operation sequence: allocated nodes never exceed the
    /// partition size, never go "negative" (underflow would panic), and
    /// running jobs always equal the allocated node accounting.
    #[test]
    fn scheduler_never_overcommits(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let clock = SimClock::new();
        let sched = Scheduler::new(clock.clone());
        sched.add_partition("gh", 8, 8);
        let mut job_ids: Vec<String> = Vec::new();

        for op in ops {
            match op {
                Op::Submit { nodes, walltime } => {
                    if let Ok(id) = sched.submit("u", "p", "gh", nodes, walltime) {
                        job_ids.push(id);
                    }
                }
                Op::Advance { secs } => {
                    clock.advance_secs(secs);
                }
                Op::Tick => sched.tick(),
                Op::CancelNewest => {
                    if let Some(id) = job_ids.pop() {
                        sched.cancel(&id);
                    }
                }
            }
            let part = sched.partition("gh").unwrap();
            prop_assert!(part.allocated_nodes <= part.total_nodes,
                "allocated {} > total {}", part.allocated_nodes, part.total_nodes);
        }

        // Final consistency: sum of nodes of running jobs == allocated.
        sched.tick();
        let part = sched.partition("gh").unwrap();
        let mut running_nodes = 0;
        for id in &job_ids {
            if let Some(j) = sched.job(id) {
                if j.state == JobState::Running {
                    running_nodes += j.nodes;
                }
            }
        }
        prop_assert!(running_nodes <= part.allocated_nodes);
    }

    /// Usage accounting is conserved: drained node-hours never exceed
    /// what completed/cancelled jobs could have consumed.
    #[test]
    fn usage_accounting_bounded(
        walltimes in proptest::collection::vec(1u64..1000, 1..20),
    ) {
        let clock = SimClock::new();
        let sched = Scheduler::new(clock.clone());
        sched.add_partition("gh", 4, 4);
        let mut max_possible_node_secs = 0u64;
        for w in &walltimes {
            if sched.submit("u", "p", "gh", 1, *w).is_ok() {
                max_possible_node_secs += w;
            }
            sched.tick();
        }
        // Run everything to completion.
        clock.advance_secs(walltimes.iter().sum::<u64>() + 1000);
        for _ in 0..walltimes.len() {
            sched.tick();
        }
        let drained: f64 = sched.drain_usage().iter().map(|(_, h)| h * 3600.0).sum();
        prop_assert!(drained <= max_possible_node_secs as f64 + 1e-6,
            "drained {drained} > possible {max_possible_node_secs}");
    }
}

mod iam_properties {
    use isambard_dri::core::{InfraConfig, Infrastructure};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Unique UNIX accounts: any set of users across any set of
        /// projects never collides.
        #[test]
        fn unix_accounts_never_collide(users in 1usize..6, projects in 1usize..4) {
            let infra = Infrastructure::new(InfraConfig::default());
            let mut accounts = std::collections::HashSet::new();
            for p in 0..projects {
                let pi = format!("pi-{p}");
                infra.create_federated_user(&pi, "pw");
                let outcome = infra
                    .story1_onboard_pi(&format!("proj-{p}"), &pi, 10.0)
                    .unwrap();
                prop_assert!(accounts.insert(outcome.unix_account.clone()));
                for u in 0..users {
                    let label = format!("res-{p}-{u}");
                    infra.create_federated_user(&label, "pw");
                    let r = infra
                        .story3_onboard_researcher(&pi, &outcome.project_id, &format!("proj-{p}"), &label)
                        .unwrap();
                    prop_assert!(accounts.insert(r.unix_account.clone()),
                        "collision at {}", r.unix_account);
                }
            }
        }
    }
}
