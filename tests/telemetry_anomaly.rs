//! Telemetry depth: the statistical anomaly loop and the metrics surface
//! (the "increased telemetry needed for introducing DevSecOps" of §V).

use isambard_dri::core::{InfraConfig, Infrastructure};
use isambard_dri::siem::{EventKind, Severity};

#[test]
fn steady_operations_produce_no_rate_anomalies() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 100.0).unwrap();
    // A calm hour: one token per minute.
    for _ in 0..60 {
        infra.clock.advance_secs(60);
        let _ = infra.token_for("alice", "ssh-ca", vec![]);
    }
    assert!(infra.rate_anomalies().is_empty());
}

#[test]
fn event_burst_is_flagged_statistically() {
    let infra = Infrastructure::new(InfraConfig::default());
    // Baseline: one benign event per minute from one source for an hour.
    for _ in 0..60 {
        infra.clock.advance_secs(60);
        infra.emit(
            "mdc/login01",
            EventKind::ConnAllowed,
            "",
            "routine",
            Severity::Info,
        );
    }
    assert!(infra.rate_anomalies().is_empty());
    // Burst: 500 events inside one minute (e.g. a runaway scanner),
    // using an event kind the signature rules ignore.
    for _ in 0..500 {
        infra.clock.advance(100);
        infra.emit(
            "mdc/login01",
            EventKind::ConnAllowed,
            "",
            "scan burst",
            Severity::Info,
        );
    }
    // Roll into the next bucket so the burst bucket is scored.
    infra.clock.advance_secs(120);
    infra.emit(
        "mdc/login01",
        EventKind::ConnAllowed,
        "",
        "after",
        Severity::Info,
    );
    let anomalies = infra.rate_anomalies();
    assert!(
        !anomalies.is_empty(),
        "burst must be flagged; sources tracked: {}",
        infra.anomaly.tracked_sources()
    );
    assert_eq!(anomalies[0].source, "mdc/login01");
    assert!(anomalies[0].z_score > 4.0);
}

#[test]
fn siem_indexes_events_by_trace_id() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 100.0).unwrap();
    infra.story4_ssh_connect("alice", "p").unwrap();
    // Traced flows stamp their events; the SIEM's trace index joins
    // them back so one trace id answers "what did this flow touch?".
    assert!(infra.siem.indexed_trace_count() > 0);
    let session = infra
        .broker
        .sessions_of_subject(&infra.subject_of("alice").unwrap());
    let trace = session
        .iter()
        .find_map(|s| s.trace_id.clone())
        .expect("login session carries its origin trace id");
    assert!(
        !infra.siem.events_for_trace(&trace).is_empty(),
        "the login trace joins to at least one SIEM event"
    );
}

#[test]
fn anomaly_and_signature_rules_are_complementary() {
    let infra = Infrastructure::new(InfraConfig::default());
    // Signature rules catch *semantic* badness at low volume (5 failures)…
    for _ in 0..5 {
        infra.clock.advance(1000);
        infra.emit(
            "fds/broker",
            EventKind::AuthnFailure,
            "victim",
            "bad password",
            Severity::Warning,
        );
    }
    assert!(!infra.siem.alerts().is_empty(), "signature rule fired");
    // …which is far below the statistical radar (needs history + volume).
    assert!(infra.rate_anomalies().is_empty());
}
