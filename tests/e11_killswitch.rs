//! E11 — kill switches: from SIEM alert to severed sessions.

use isambard_dri::core::{InfraConfig, Infrastructure};
use isambard_dri::siem::EventKind;

fn victim_with_footholds() -> (Infrastructure, String) {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    infra
        .story1_onboard_pi("climate-llm", "alice", 100.0)
        .unwrap();
    // Alice holds every kind of live access: an SSH shell, a bastion
    // relay, a notebook, and a batch job.
    let ssh = infra.story4_ssh_connect("alice", "climate-llm").unwrap();
    infra
        .story6_jupyter("alice", "climate-llm", "198.51.100.10")
        .unwrap();
    infra
        .scheduler
        .submit(&ssh.shell.account, "climate-llm", "gh", 2, 3600)
        .unwrap();
    infra.scheduler.tick();
    let subject = infra.subject_of("alice").unwrap();
    (infra, subject)
}

#[test]
fn kill_user_severs_every_foothold_instantly() {
    let (infra, subject) = victim_with_footholds();
    assert_eq!(infra.bastion.session_count(), 1);
    assert_eq!(infra.login_node.session_count(), 1);
    assert_eq!(infra.jupyter.session_count(), 1);

    let t0 = infra.clock.now_ms();
    let report = infra.kill_user(&subject);

    assert_eq!(report.at_ms, t0, "kill is immediate in simulated time");
    assert_eq!(report.bastion_sessions_cut, 1);
    assert_eq!(report.shells_cut, 1);
    assert_eq!(report.notebooks_cut, 1);
    // The notebook's backing job is cancelled by the notebook teardown;
    // the batch job by the account sweep.
    assert!(report.jobs_cancelled >= 1, "batch job cancelled");
    let (_pending, running) = infra.scheduler.queue_depth();
    assert_eq!(running, 0, "no job of the subject survives");
    assert!(report.proxy_suspended);

    assert_eq!(infra.bastion.session_count(), 0);
    assert_eq!(infra.login_node.session_count(), 0);
    assert_eq!(infra.jupyter.session_count(), 0);
    // New logins are refused at two independent layers.
    assert!(infra.federated_login("alice").is_err());
    // And the kill itself is in the SIEM.
    assert_eq!(infra.siem.events_of_kind(EventKind::KillSwitch).len(), 1);
}

#[test]
fn kill_switch_event_carries_originating_login_trace_id() {
    let (infra, subject) = victim_with_footholds();
    // The trace id stamped on the victim's broker session at login time
    // is the provenance link the SOC pivots on.
    let login_trace = infra
        .broker
        .sessions_of_subject(&subject)
        .into_iter()
        .rev()
        .find_map(|s| s.trace_id)
        .expect("login stamped a trace id on the session");

    infra.kill_user(&subject);

    let events = infra.siem.events_of_kind(EventKind::KillSwitch);
    assert_eq!(events.len(), 1);
    assert_eq!(
        events[0].trace_id.as_deref(),
        Some(login_trace.as_str()),
        "severed-session event must cite the originating login's trace"
    );
}

#[test]
fn reinstatement_restores_access() {
    let (infra, subject) = victim_with_footholds();
    infra.kill_user(&subject);
    infra.reinstate_user(&subject);
    assert!(infra.federated_login("alice").is_ok());
    assert!(infra.story4_ssh_connect("alice", "climate-llm").is_ok());
}

#[test]
fn bastion_global_kill_severs_all_users() {
    let infra = Infrastructure::new(InfraConfig::default());
    for (i, name) in ["alice", "bob", "carol"].iter().enumerate() {
        infra.create_federated_user(name, "pw");
        infra
            .story1_onboard_pi(&format!("proj-{i}"), name, 10.0)
            .unwrap();
        infra
            .story4_ssh_connect(name, &format!("proj-{i}"))
            .unwrap();
    }
    assert_eq!(infra.bastion.session_count(), 3);
    let severed = infra.kill_bastion();
    assert_eq!(severed, 3);
    // Everyone is locked out until restore.
    assert!(infra.story4_ssh_connect("alice", "proj-0").is_err());
    infra.bastion.global_restore();
    assert!(infra.story4_ssh_connect("alice", "proj-0").is_ok());
}

#[test]
fn alert_driven_response_contains_live_attacker() {
    let (infra, subject) = victim_with_footholds();
    // Simulate the SOC deciding alice's account is compromised: feed the
    // SIEM enough token rejections to fire the token-abuse rule.
    for _ in 0..infra.config.detection.token_reject_threshold {
        infra.clock.advance(100);
        infra.emit(
            "mdc/login01",
            EventKind::TokenRejected,
            &subject,
            "replayed token",
            isambard_dri::siem::Severity::Warning,
        );
    }
    let alert = infra
        .siem
        .alerts()
        .into_iter()
        .find(|a| a.rule == "token-abuse")
        .expect("alert fired");
    let action = infra.respond_to_alert(&alert);
    assert!(action.contains("killed subject"));
    assert_eq!(infra.login_node.session_count(), 0);
    assert_eq!(infra.jupyter.session_count(), 0);
}

#[test]
fn detection_to_containment_latency_is_bounded() {
    let (infra, subject) = victim_with_footholds();
    let attack_start = infra.clock.now_ms();
    for _ in 0..infra.config.detection.token_reject_threshold {
        infra.clock.advance(1_000);
        infra.emit(
            "mdc/login01",
            EventKind::TokenRejected,
            &subject,
            "replayed token",
            isambard_dri::siem::Severity::Warning,
        );
    }
    let alert = infra.siem.alerts().into_iter().next().expect("alert");
    infra.respond_to_alert(&alert);
    let contained_at = infra.clock.now_ms();
    let latency_ms = contained_at - attack_start;
    // Containment happens within the detection window, not after it.
    assert!(
        latency_ms <= infra.config.detection.token_window_ms,
        "latency {latency_ms}ms"
    );
}
