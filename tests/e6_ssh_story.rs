//! E6 — user story 4: SSH to the AI platform with short-lived
//! certificates and the transparent bastion.

use isambard_dri::core::{FlowError, InfraConfig, Infrastructure};
use isambard_dri::sshca::CertError;

fn onboarded() -> Infrastructure {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    infra
        .story1_onboard_pi("climate-llm", "alice", 100.0)
        .unwrap();
    infra
}

#[test]
fn ssh_story_end_to_end() {
    let infra = onboarded();
    let outcome = infra.story4_ssh_connect("alice", "climate-llm").unwrap();
    // The shell runs as the per-project account, and the audit trail
    // names the human behind it.
    let cuid = infra.subject_of("alice").unwrap();
    assert_eq!(outcome.shell.key_id, cuid);
    assert_eq!(outcome.shell.project, "climate-llm");
    assert_eq!(outcome.relay.principal, outcome.shell.account);
    assert!(infra.bastion.session_alive(&outcome.relay.id));
    assert!(infra.login_node.session_alive(&outcome.shell.id));
    // The trace covers every designed hop.
    assert!(outcome.trace.iter().any(|s| s.contains("device flow")));
    assert!(outcome.trace.iter().any(|s| s.contains("bastion")));
    assert!(outcome.trace.iter().any(|s| s.contains("possession")));
}

#[test]
fn certificate_expiry_forces_reissuance() {
    let infra = onboarded();
    let first = infra.story4_ssh_connect("alice", "climate-llm").unwrap();
    // Let the certificate expire.
    infra.clock.advance_secs(infra.config.cert_ttl_secs + 1);
    // The retained certificate no longer opens sessions.
    let users = infra.users.read();
    let cert = users
        .get("alice")
        .unwrap()
        .ssh
        .as_ref()
        .unwrap()
        .certificate
        .clone()
        .unwrap();
    drop(users);
    assert_eq!(
        cert.verify(&infra.ssh_ca.public_key(), infra.clock.now_secs(), None),
        Err(CertError::Expired)
    );
    // A fresh run of the story re-issues (requires re-login first: the
    // broker session has also aged out, enforcing re-authentication).
    assert!(matches!(
        infra.story4_ssh_connect("alice", "climate-llm"),
        Err(FlowError::NotLoggedIn(_)) | Err(FlowError::PolicyDenied(_))
    ));
    infra.federated_login("alice").unwrap();
    let second = infra.story4_ssh_connect("alice", "climate-llm").unwrap();
    assert!(second.cert_serial > first.cert_serial);
}

#[test]
fn unique_unix_account_per_project_in_cert_principals() {
    let infra = onboarded();
    // Put alice on a second project.
    let now = infra.clock.now_secs();
    let (_, inv) = infra
        .portal
        .create_project(
            "admin:ops",
            "genomics",
            isambard_dri::portal::Allocation::gpu(5.0),
            now,
            now + 100_000,
            "alice@x",
        )
        .unwrap();
    let cuid = infra.subject_of("alice").unwrap();
    let m2 = infra
        .portal
        .accept_invitation(&inv.token, &cuid, true)
        .unwrap();
    infra
        .login_node
        .provision_account(&m2.unix_account, "genomics");

    infra.story4_ssh_connect("alice", "climate-llm").unwrap();
    let users = infra.users.read();
    let client = users.get("alice").unwrap().ssh.as_ref().unwrap();
    let cert = client.certificate.as_ref().unwrap();
    assert_eq!(cert.principals.len(), 2);
    assert_ne!(cert.principals[0], cert.principals[1]);
    // The aliases hide the bastion and per-project user.
    let config = client.ssh_config();
    assert!(config.contains("ProxyJump sws/bastion"));
    assert!(config.contains("Host climate-llm.ai.isambard"));
    assert!(config.contains("Host genomics.ai.isambard"));
}

#[test]
fn wrong_project_principal_is_refused() {
    let infra = onboarded();
    infra.story4_ssh_connect("alice", "climate-llm").unwrap();
    let users = infra.users.read();
    let client = users.get("alice").unwrap().ssh.as_ref().unwrap();
    let cert = client.certificate.clone().unwrap();
    drop(users);
    // Try to use the cert as a principal it does not certify.
    assert!(matches!(
        infra.bastion.relay(
            &infra.network,
            "internet/user",
            "mdc/login01",
            &cert,
            "uDEADBEEF"
        ),
        Err(isambard_dri::netsim::BastionError::Cert(
            CertError::PrincipalNotAllowed
        ))
    ));
}

#[test]
fn ssh_requires_membership() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("outsider", "pw");
    // No project: login itself is refused (authorisation-led).
    assert!(infra.story4_ssh_connect("outsider", "anything").is_err());
}
