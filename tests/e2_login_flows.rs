//! E2 — Fig. 2: the login page's three identity routes, plus federation
//! growth (partner IdPs appearing in discovery).

use isambard_dri::core::{InfraConfig, Infrastructure};
use isambard_dri::federation::LevelOfAssurance;

#[test]
fn discovery_list_grows_with_partner_idps() {
    let infra = Infrastructure::new(InfraConfig::default());
    assert_eq!(infra.proxy.discovery_list().len(), 1);
    infra.register_partner_idp("University of Tartu", "ut.ee", LevelOfAssurance::Medium);
    infra.register_partner_idp("EPCC", "epcc.ed.ac.uk", LevelOfAssurance::High);
    let list = infra.proxy.discovery_list();
    assert_eq!(list.len(), 3);
    let names: Vec<&str> = list.iter().map(|d| d.display_name.as_str()).collect();
    assert!(names.contains(&"University of Tartu"));
    assert!(names.contains(&"EPCC"));
}

#[test]
fn partner_idp_user_full_journey() {
    let infra = Infrastructure::new(InfraConfig::default());
    let idp = infra.register_partner_idp("University of Tartu", "ut.ee", LevelOfAssurance::Medium);
    infra.create_federated_user_at(&idp, "mari", "pw");
    // Full story 1 via a partner IdP.
    let outcome = infra.story1_onboard_pi("estonia-ai", "mari", 50.0).unwrap();
    assert!(outcome.cuid.starts_with("maid-"));
    // And the SSH story works identically.
    let ssh = infra.story4_ssh_connect("mari", "estonia-ai").unwrap();
    assert_eq!(ssh.shell.project, "estonia-ai");
}

#[test]
fn same_human_two_idps_one_community_identity() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    let outcome = infra.story1_onboard_pi("p", "alice", 10.0).unwrap();
    // Alice also has a Tartu identity; she links it.
    let idp = infra.register_partner_idp("University of Tartu", "ut.ee", LevelOfAssurance::Medium);
    infra
        .proxy
        .link_identity(&outcome.cuid, &idp, "alice@ut.ee")
        .unwrap();
    let account = infra.proxy.account(&outcome.cuid).unwrap();
    assert_eq!(account.linked_identities.len(), 2);
    // Uniqueness guarantee: the Tartu identity cannot be linked again.
    assert!(infra
        .proxy
        .link_identity(&outcome.cuid, &idp, "alice@ut.ee")
        .is_err());
}

#[test]
fn three_routes_yield_distinct_acr_classes() {
    let infra = Infrastructure::new(InfraConfig::default());
    // Federated.
    infra.create_federated_user("alice", "pw");
    let pi = infra.story1_onboard_pi("p", "alice", 10.0).unwrap();
    let federated = infra.broker.session(&pi.session_id).unwrap();
    assert_eq!(federated.acr, "pwd");
    assert_eq!(federated.loa, LevelOfAssurance::Medium);

    // Last resort (password + TOTP).
    infra.create_last_resort_user("vendor", "pw");
    let now = infra.clock.now_secs();
    let (_, inv) = infra
        .portal
        .create_project(
            "admin:ops",
            "vp",
            isambard_dri::portal::Allocation::gpu(1.0),
            now,
            now + 100_000,
            "v@c",
        )
        .unwrap();
    infra
        .portal
        .accept_invitation(&inv.token, "last-resort:vendor", true)
        .unwrap();
    let session = infra.last_resort_login("vendor").unwrap();
    assert_eq!(session.acr, "mfa-totp");
    assert_eq!(session.loa, LevelOfAssurance::High);

    // Admin (hardware key).
    let admin = infra.story2_register_admin("dave").unwrap();
    let session = infra.broker.session(&admin.session_id).unwrap();
    assert_eq!(session.acr, "mfa-hw");
}

#[test]
fn login_steps_are_constant_per_route() {
    // Protocol step counts don't depend on how many users exist.
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("u0", "pw");
    let first = infra.story1_onboard_pi("p0", "u0", 1.0).unwrap();
    for i in 1..10 {
        infra.create_federated_user(&format!("u{i}"), "pw");
        let outcome = infra
            .story1_onboard_pi(&format!("p{i}"), format!("u{i}"), 1.0)
            .unwrap();
        assert_eq!(outcome.trace.len(), first.trace.len());
    }
}
