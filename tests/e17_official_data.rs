//! E17 (extension) — GSCP Official-class projects: the dynamic policy
//! raises the bar for handling-controlled workloads, exactly the "OFF"
//! tier the paper says applies to the Isambard DRIs.

use isambard_dri::core::{FlowError, InfraConfig, Infrastructure, ProjectId};
use isambard_dri::portal::DataClass;

fn with_official_project(label: &str, mfa: bool) -> (Infrastructure, ProjectId) {
    let infra = Infrastructure::new(InfraConfig::default());
    if mfa {
        infra.create_federated_user_mfa(label, "pw");
    } else {
        infra.create_federated_user(label, "pw");
    }
    let outcome = infra.story1_onboard_pi("aisi-evals", label, 500.0).unwrap();
    infra
        .portal
        .set_data_class("admin:ops", &outcome.project_id, DataClass::Official)
        .unwrap();
    (infra, outcome.project_id)
}

#[test]
fn password_only_user_blocked_from_official_project() {
    let (infra, _) = with_official_project("alice", false);
    // Open-class access would pass, but the Official project demands the
    // Elevated threshold, and a pwd-only login can't reach it.
    let err = infra.story4_ssh_connect("alice", "aisi-evals").unwrap_err();
    assert!(matches!(err, FlowError::PolicyDenied(_)), "{err:?}");
    let err = infra
        .story6_jupyter("alice", "aisi-evals", "198.51.100.40")
        .unwrap_err();
    assert!(matches!(err, FlowError::PolicyDenied(_)));
}

#[test]
fn mfa_enrolled_user_passes_official_threshold() {
    let (infra, _) = with_official_project("bob", true);
    // bob authenticated with pwd+totp at his IdP: over the Elevated bar.
    let session_subject = infra.subject_of("bob").unwrap();
    let session_id = infra.session_of("bob").unwrap();
    let session = infra.broker.session(&session_id).unwrap();
    assert_eq!(session.acr, "pwd+totp");
    assert_eq!(session.subject, session_subject);
    let ssh = infra.story4_ssh_connect("bob", "aisi-evals").unwrap();
    assert_eq!(ssh.shell.project, "aisi-evals");
    assert!(infra
        .story6_jupyter("bob", "aisi-evals", "198.51.100.41")
        .is_ok());
}

#[test]
fn same_user_open_project_unaffected() {
    let (infra, _) = with_official_project("alice", false);
    // Give alice a second, open project.
    let now = infra.clock.now_secs();
    let (_, inv) = infra
        .portal
        .create_project(
            "admin:ops",
            "open-science",
            isambard_dri::portal::Allocation::gpu(10.0),
            now,
            now + 100_000,
            "alice@x",
        )
        .unwrap();
    let cuid = infra.subject_of("alice").unwrap();
    let m = infra
        .portal
        .accept_invitation(&inv.token, &cuid, true)
        .unwrap();
    infra
        .login_node
        .provision_account(&m.unix_account, "open-science");
    // Open project works with password-only auth; Official still blocked.
    assert!(infra.story4_ssh_connect("alice", "open-science").is_ok());
    assert!(infra.story4_ssh_connect("alice", "aisi-evals").is_err());
}

#[test]
fn only_allocators_classify_projects() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    let outcome = infra.story1_onboard_pi("p", "alice", 1.0).unwrap();
    assert!(infra
        .portal
        .set_data_class(&outcome.cuid, &outcome.project_id, DataClass::Official)
        .is_err());
    assert!(infra
        .portal
        .set_data_class("admin:ops", &outcome.project_id, DataClass::Official)
        .is_ok());
    assert_eq!(
        infra
            .portal
            .project(&outcome.project_id)
            .unwrap()
            .data_class,
        DataClass::Official
    );
}
