//! E3 — user story 1: PI onboarding with authorisation-led registration.

use isambard_dri::broker::AuthorizationSource;
use isambard_dri::broker::BrokerError;
use isambard_dri::core::{FlowError, InfraConfig, Infrastructure};

#[test]
fn full_pi_onboarding_pipeline() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    let outcome = infra
        .story1_onboard_pi("climate-llm", "alice", 5000.0)
        .unwrap();

    // The project exists and alice is its PI.
    let project = infra.portal.project(&outcome.project_id).unwrap();
    assert_eq!(project.name, "climate-llm");
    let member = project.member(&outcome.cuid).unwrap();
    assert_eq!(member.role.as_str(), "pi");
    assert_eq!(member.unix_account, outcome.unix_account);
    assert!(member.terms_accepted_at > 0);

    // Her session is live and she can mint tokens for member services.
    assert!(infra.broker.session(&outcome.session_id).is_some());
    let (_, claims) = infra.token_for("alice", "ssh-ca", vec![]).unwrap();
    assert!(claims.has_role("pi"));

    // The trace shows the designed step order.
    assert_eq!(
        outcome.trace.first().unwrap(),
        &"allocator: create project + PI invitation"
    );
    assert!(outcome.trace.contains(&"portal: accept invitation + T&C"));
    assert!(outcome.trace.last().unwrap().contains("broker"));
}

#[test]
fn registration_without_grant_fails_after_myaccessid() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("mallory", "pw");
    // MyAccessID registration itself succeeds...
    let (cuid, _) = infra.proxy_authenticate("mallory").unwrap();
    assert!(infra.proxy.account(&cuid).is_some());
    // ...but the broker refuses the unauthorised subject — the paper's
    // "registration process will fail after the MyAccessID registration".
    assert!(matches!(
        infra.federated_login("mallory"),
        Err(FlowError::Broker(BrokerError::NotAuthorized))
    ));
}

#[test]
fn project_expiry_revokes_everything() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    let outcome = infra
        .story1_onboard_pi("shortlived", "alice", 100.0)
        .unwrap();
    assert!(!infra.portal.roles_for(&outcome.cuid, "ssh-ca").is_empty());

    // 91 days later the project is past its end date.
    infra.clock.advance_secs(91 * 24 * 3600);
    assert!(infra.portal.roles_for(&outcome.cuid, "ssh-ca").is_empty());
    // Re-login is refused: no active grants remain.
    assert!(matches!(
        infra.federated_login("alice"),
        Err(FlowError::Broker(BrokerError::NotAuthorized))
    ));
}

#[test]
fn on_demand_revocation_works_immediately() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    let outcome = infra
        .story1_onboard_pi("revocable", "alice", 100.0)
        .unwrap();
    infra
        .portal
        .revoke_project("admin:ops", &outcome.project_id)
        .unwrap();
    assert!(infra.portal.roles_for(&outcome.cuid, "jupyter").is_empty());
    assert!(infra
        .broker
        .issue_token(&outcome.session_id, "jupyter")
        .is_err());
}

#[test]
fn declining_terms_blocks_membership() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("bob", "pw");
    let now = infra.clock.now_secs();
    let (_, invitation) = infra
        .portal
        .create_project(
            "admin:ops",
            "p",
            isambard_dri::portal::Allocation::gpu(1.0),
            now,
            now + 1000,
            "bob@x",
        )
        .unwrap();
    let (cuid, _) = infra.proxy_authenticate("bob").unwrap();
    assert!(infra
        .portal
        .accept_invitation(&invitation.token, &cuid, false)
        .is_err());
    assert!(!infra.portal.is_authorized_subject(&cuid));
}

#[test]
fn same_person_two_projects_two_unix_accounts() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    let p1 = infra.story1_onboard_pi("proj-a", "alice", 100.0).unwrap();
    let now = infra.clock.now_secs();
    let (_, inv2) = infra
        .portal
        .create_project(
            "admin:ops",
            "proj-b",
            isambard_dri::portal::Allocation::gpu(1.0),
            now,
            now + 10_000,
            "alice@x",
        )
        .unwrap();
    let m2 = infra
        .portal
        .accept_invitation(&inv2.token, &p1.cuid, true)
        .unwrap();
    assert_ne!(p1.unix_account, m2.unix_account);
}
