//! Cross-crate token lifecycle: refresh rotation, token exchange, step-up
//! authentication, and leeway semantics — the broker extensions beyond
//! the paper's deployed feature set.

use isambard_dri::broker::{OidcClient, OidcError};
use isambard_dri::core::{InfraConfig, Infrastructure};
use isambard_dri::crypto::json::Value;

fn onboarded() -> Infrastructure {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 100.0).unwrap();
    infra
}

#[test]
fn refresh_token_keeps_a_web_session_alive_without_reauth() {
    let infra = onboarded();
    let session_id = infra.session_of("alice").unwrap();
    let verifier = "portal-verifier";
    let code = infra
        .oidc
        .authorize(
            "portal-web",
            "https://isambard.example/portal/callback",
            &isambard_dri::broker::OidcProvider::s256(verifier),
            &session_id,
        )
        .unwrap();
    let (_access, claims, refresh) = infra
        .oidc
        .exchange_code_with_refresh("portal-web", &code, verifier)
        .unwrap();
    assert_eq!(claims.audience, "portal");
    // The access token expires; the refresh grant renews it silently.
    infra.clock.advance_secs(3601);
    let (access2, claims2, refresh2) = infra.oidc.refresh("portal-web", &refresh).unwrap();
    assert!(infra
        .broker
        .jwks()
        .validate(&access2, "portal", infra.clock.now_secs())
        .is_ok());
    assert_eq!(claims2.subject, claims.subject);
    assert_ne!(refresh, refresh2, "rotation");
}

#[test]
fn stolen_refresh_token_replay_is_contained() {
    let infra = onboarded();
    let session_id = infra.session_of("alice").unwrap();
    let verifier = "v";
    let code = infra
        .oidc
        .authorize(
            "portal-web",
            "https://isambard.example/portal/callback",
            &isambard_dri::broker::OidcProvider::s256(verifier),
            &session_id,
        )
        .unwrap();
    let (_t, _c, rt) = infra
        .oidc
        .exchange_code_with_refresh("portal-web", &code, verifier)
        .unwrap();
    // Legitimate client refreshes…
    let _ = infra.oidc.refresh("portal-web", &rt).unwrap();
    // …then a thief replays the old token: the session is revoked.
    assert_eq!(
        infra.oidc.refresh("portal-web", &rt),
        Err(OidcError::BadCode)
    );
    assert!(infra.broker.session(&session_id).is_none());
    // The owner re-authenticates and continues (containment, not lockout).
    assert!(infra.federated_login("alice").is_ok());
}

#[test]
fn token_exchange_lets_jupyter_submit_on_behalf_of_user() {
    let infra = onboarded();
    // The user's jupyter token…
    let (jupyter_token, jc) = infra
        .token_for(
            "alice",
            "jupyter",
            vec![("unix_account".into(), Value::s("u-x"))],
        )
        .unwrap();
    // …is exchanged by the Jupyter service for a slurm-scoped token.
    let (slurm_token, sc) = infra
        .broker
        .exchange_token(&jupyter_token, "jupyter", "slurm")
        .unwrap();
    assert_eq!(sc.subject, jc.subject);
    assert_eq!(
        sc.extra_claim("act").and_then(Value::as_str),
        Some("jupyter")
    );
    assert!(sc.expires_at <= jc.expires_at);
    assert!(infra
        .broker
        .jwks()
        .validate(&slurm_token, "slurm", infra.clock.now_secs())
        .is_ok());
    // A revoked user's token cannot be exchanged.
    let subject = infra.subject_of("alice").unwrap();
    infra.broker.revoke_subject(&subject);
    assert!(infra
        .broker
        .exchange_token(&jupyter_token, "jupyter", "slurm")
        .is_err());
}

#[test]
fn step_up_unlocks_official_class_work_mid_session() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw"); // password-only IdP login
    let outcome = infra
        .story1_onboard_pi("aisi-evals", "alice", 100.0)
        .unwrap();
    infra
        .portal
        .set_data_class(
            "admin:ops",
            &outcome.project_id,
            isambard_dri::portal::DataClass::Official,
        )
        .unwrap();
    // pwd-only: blocked by the Elevated threshold.
    assert!(infra.story4_ssh_connect("alice", "aisi-evals").is_err());
    // She completes a second factor; the broker steps the session up.
    infra
        .broker
        .step_up_session(&outcome.session_id, "pwd+totp")
        .unwrap();
    assert!(infra.story4_ssh_connect("alice", "aisi-evals").is_ok());
}

#[test]
fn oidc_client_registration_is_exact_match() {
    let infra = onboarded();
    infra.oidc.register_client(OidcClient {
        client_id: "new-app".into(),
        redirect_uri: "https://app.example/cb".into(),
        audience: "portal".into(),
    });
    let session_id = infra.session_of("alice").unwrap();
    let challenge = isambard_dri::broker::OidcProvider::s256("v");
    // Sub-path and scheme variations are rejected.
    for bad in [
        "https://app.example/cb/extra",
        "http://app.example/cb",
        "https://app.example/CB",
    ] {
        assert_eq!(
            infra
                .oidc
                .authorize("new-app", bad, &challenge, &session_id),
            Err(OidcError::RedirectMismatch),
            "{bad}"
        );
    }
    assert!(infra
        .oidc
        .authorize("new-app", "https://app.example/cb", &challenge, &session_id)
        .is_ok());
}
