//! E7 — user story 5: privileged operations through layered enforcement.

use isambard_dri::cluster::{MgmtError, MgmtOp, TransportPath};
use isambard_dri::core::{FlowError, InfraConfig, Infrastructure};

#[test]
fn privileged_op_end_to_end() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.story2_register_admin("dave").unwrap();
    // Seed a job to cancel.
    infra
        .scheduler
        .submit("u-rogue", "p", "gh", 1, 1000)
        .unwrap();
    infra.scheduler.tick();

    let outcome = infra
        .story5_privileged_op("dave", MgmtOp::CancelUserJobs("u-rogue".into()))
        .unwrap();
    assert_eq!(outcome.detail, "cancelled 1 jobs of u-rogue");
    // Every layer appears in the trace.
    assert!(outcome.trace.iter().any(|s| s.contains("tailnet: enrol")));
    assert!(outcome
        .trace
        .iter()
        .any(|s| s.contains("encrypted command")));
    assert!(outcome.trace.iter().any(|s| s.contains("cluster-ACL")));
    // And the op is in the management audit log.
    assert_eq!(infra.mgmt.audit_log().len(), 1);
}

#[test]
fn researcher_cannot_perform_privileged_ops() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 10.0).unwrap();
    // The PDP (critical sensitivity) or the broker stops her well before
    // the management plane.
    let err = infra
        .story5_privileged_op("alice", MgmtOp::Health)
        .unwrap_err();
    assert!(matches!(
        err,
        FlowError::PolicyDenied(_) | FlowError::Broker(_)
    ));
    assert!(infra.mgmt.audit_log().is_empty());
}

#[test]
fn direct_transport_rejected_even_with_valid_token() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.story2_register_admin("dave").unwrap();
    let (token, _) = infra.token_for("dave", "mgmt-cluster", vec![]).unwrap();
    assert_eq!(
        infra
            .mgmt
            .execute(TransportPath::Direct, &token, MgmtOp::Health)
            .unwrap_err(),
        MgmtError::WrongTransport
    );
}

#[test]
fn tailnet_kill_switch_stops_admin_ops() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.story2_register_admin("dave").unwrap();
    infra.kill_tailnet();
    assert!(matches!(
        infra.story5_privileged_op("dave", MgmtOp::Health),
        Err(FlowError::Tailnet(_))
    ));
    infra.tailnet.restore();
    assert!(infra.story5_privileged_op("dave", MgmtOp::Health).is_ok());
}

#[test]
fn cluster_acl_removal_is_an_independent_layer() {
    let infra = Infrastructure::new(InfraConfig::default());
    let outcome = infra.story2_register_admin("dave").unwrap();
    infra.mgmt.acl_remove(&outcome.subject);
    assert!(matches!(
        infra.story5_privileged_op("dave", MgmtOp::Health),
        Err(FlowError::Mgmt(MgmtError::NotOnClusterAcl))
    ));
}

#[test]
fn admin_token_expiry_forces_fresh_issuance() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.story2_register_admin("dave").unwrap();
    let (token, _) = infra.token_for("dave", "mgmt-cluster", vec![]).unwrap();
    infra
        .clock
        .advance_secs(infra.config.admin_token_ttl_secs + 1);
    assert!(matches!(
        infra
            .mgmt
            .execute(TransportPath::Tailnet, &token, MgmtOp::Health),
        Err(MgmtError::BadToken(_))
    ));
    // A fresh token from the still-live session works.
    let (token2, _) = infra.token_for("dave", "mgmt-cluster", vec![]).unwrap();
    assert!(infra
        .mgmt
        .execute(TransportPath::Tailnet, &token2, MgmtOp::Health)
        .is_ok());
}
