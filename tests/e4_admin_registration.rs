//! E4 — user story 2: administrators-only accounts with hardware MFA.

use isambard_dri::broker::BrokerError;
use isambard_dri::core::{FlowError, InfraConfig, Infrastructure};

#[test]
fn admin_registration_and_login() {
    let infra = Infrastructure::new(InfraConfig::default());
    let outcome = infra.story2_register_admin("dave").unwrap();
    assert_eq!(outcome.subject, "admin:dave");
    // Hardware-key ACR on the session.
    let session = infra.broker.session(&outcome.session_id).unwrap();
    assert_eq!(session.acr, "mfa-hw");
    // He can mint admin tokens.
    let (_, claims) = infra.token_for("dave", "mgmt-tailnet", vec![]).unwrap();
    assert!(claims.has_role("sysadmin"));
    assert!(outcome.trace.contains(&"ops: human identity vetting"));
}

#[test]
fn unvetted_admin_cannot_login() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_admin("eve", "pw");
    // No vetting step: the hardware-key ceremony refuses at step one.
    assert!(matches!(
        infra.admin_login("eve"),
        Err(FlowError::ManagedIdp(
            isambard_dri::broker::ManagedIdpError::NotVetted
        ))
    ));
}

#[test]
fn admin_access_is_not_global() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.story2_register_admin("dave").unwrap();
    // Admin roles cover the management audiences, not research services.
    assert!(matches!(
        infra.token_for("dave", "ssh-ca", vec![]),
        Err(FlowError::Broker(BrokerError::NoRolesForAudience))
    ));
    assert!(matches!(
        infra.token_for("dave", "jupyter", vec![]),
        Err(FlowError::Broker(BrokerError::NoRolesForAudience))
    ));
}

#[test]
fn researcher_cannot_reach_admin_audiences() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 10.0).unwrap();
    let err = infra
        .token_for("alice", "mgmt-tailnet", vec![])
        .unwrap_err();
    // Whichever gate fires first, it must fire.
    assert!(matches!(
        err,
        FlowError::Broker(BrokerError::InsufficientLoa)
            | FlowError::Broker(BrokerError::AcrMismatch)
            | FlowError::Broker(BrokerError::AdminOnly)
            | FlowError::Broker(BrokerError::NoRolesForAudience)
    ));
}

#[test]
fn leaving_admin_loses_access() {
    let infra = Infrastructure::new(InfraConfig::default());
    let outcome = infra.story2_register_admin("dave").unwrap();
    // Dave leaves the group: directory deactivation + grant removal.
    infra.admin_idp.deactivate("dave").unwrap();
    infra.portal.revoke_admin(&outcome.subject, "mgmt-tailnet");
    infra.portal.revoke_admin(&outcome.subject, "mgmt-cluster");
    infra.mgmt.acl_remove(&outcome.subject);
    // New login fails at the IdP.
    assert!(infra.admin_login("dave").is_err());
    // The surviving session can no longer mint admin tokens.
    assert!(infra.token_for("dave", "mgmt-tailnet", vec![]).is_err());
}

#[test]
fn admin_population_stays_small_and_auditable() {
    let infra = Infrastructure::new(InfraConfig::default());
    for i in 0..19 {
        infra.story2_register_admin(format!("admin-{i}")).unwrap();
    }
    // ops + 19 = 20, the design size from the paper.
    assert_eq!(infra.admin_idp.user_count(), 20);
}
