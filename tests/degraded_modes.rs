//! Degraded-mode invariants for the cluster data plane, property-tested
//! over arbitrary seeds:
//!
//! * **No established session is dropped.** Scheduler outages never kill
//!   running jobs, login-node drains and outages never kill open shells,
//!   tailnet lease storms never kill broker sessions.
//! * **No stale allow.** A dark scheduler refuses every new submission
//!   (fail closed, never fail open), a draining or dark login node
//!   refuses every new shell, an expired tailnet lease cannot reach the
//!   overlay, and the kill switch stays authoritative mid-outage.

use isambard_dri::broker::authz::AuthorizationSource;
use isambard_dri::cluster::login::LoginError;
use isambard_dri::cluster::slurm::{JobState, SubmitError};
use isambard_dri::core::{FlowError, InfraConfig, Infrastructure};
use isambard_dri::fault::FaultPlan;
use isambard_dri::netsim::tailnet::{TailnetError, TailnetNode};
use proptest::prelude::*;

/// A seeded co-design with one onboarded PI (`alice` on `proj`).
fn onboarded(seed: u64) -> Infrastructure {
    let infra = Infrastructure::new(InfraConfig::builder().seed(seed).build().unwrap());
    infra.create_federated_user("alice", "pw");
    infra
        .story1_onboard_pi("proj", "alice", 100.0)
        .expect("onboarding");
    infra
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Scheduler outage: running jobs complete through the whole outage,
    // new submissions fail closed, service resumes on disarm.
    #[test]
    fn scheduler_outage_keeps_running_jobs_and_fails_new_work_closed(
        seed in 0u64..10_000,
    ) {
        let infra = onboarded(seed);
        infra.federated_login("alice").unwrap();
        let subject = infra.subject_of("alice").unwrap();
        let account = infra
            .portal
            .unix_accounts(&subject)
            .into_iter()
            .find(|(p, _)| p == "proj")
            .map(|(_, a)| a)
            .unwrap();

        let survivor = infra
            .scheduler
            .submit(&account, "proj", "gh", 1, 600)
            .unwrap();
        infra.scheduler.tick();
        prop_assert!(infra
            .scheduler
            .job(&survivor)
            .is_some_and(|j| j.state == JobState::Running));

        let now = infra.clock.now_ms();
        let plane =
            infra.install_fault_plan(FaultPlan::new(seed).outage("slurm", now, u64::MAX));

        // No stale allow: every submission during the outage is refused
        // with the typed unavailable error — never silently queued.
        for _ in 0..5 {
            prop_assert!(matches!(
                infra.scheduler.submit(&account, "proj", "gh", 1, 60),
                Err(SubmitError::SchedulerUnavailable)
            ));
        }

        // No dropped work: tick/cancel never consult the fault plane, so
        // the running job completes on schedule mid-outage.
        infra.clock.advance_secs(600);
        infra.scheduler.tick();
        prop_assert!(infra
            .scheduler
            .job(&survivor)
            .is_some_and(|j| j.state == JobState::Completed));

        // Disarm: submissions flow again.
        plane.set_enabled(false);
        prop_assert!(infra.scheduler.submit(&account, "proj", "gh", 1, 60).is_ok());
    }

    // Login node: drains and outages spare established shells, refuse
    // new ones, and never blunt the kill switch.
    #[test]
    fn login_degradation_keeps_shells_and_never_allows_stale_access(
        seed in 0u64..10_000,
    ) {
        let infra = onboarded(seed);
        let baseline = infra.story4_ssh_connect("alice", "proj").unwrap();
        let shell_id = baseline.shell.id.clone();

        // Drain: the open shell survives, new sessions are refused with
        // the typed draining error, restore resumes service.
        infra.login_node.set_draining(true);
        prop_assert!(infra.login_node.session_alive(&shell_id));
        prop_assert!(matches!(
            infra.story4_ssh_connect("alice", "proj"),
            Err(FlowError::Login(LoginError::Draining))
        ));
        infra.login_node.set_draining(false);
        prop_assert!(infra.story4_ssh_connect("alice", "proj").is_ok());

        // Hard outage: new shells fail closed, the established shell
        // stays alive.
        let now = infra.clock.now_ms();
        let plane =
            infra.install_fault_plan(FaultPlan::new(seed).outage("login", now, u64::MAX));
        prop_assert!(infra.story4_ssh_connect("alice", "proj").is_err());
        prop_assert!(infra.login_node.session_alive(&shell_id));

        // The kill switch stays authoritative mid-outage: no session
        // survives it, dark scheduler or not.
        let subject = infra.subject_of("alice").unwrap();
        infra.kill_user(&subject);
        prop_assert!(!infra.login_node.session_alive(&shell_id));
        prop_assert!(infra.broker.sessions_of_subject(&subject).is_empty());
        plane.set_enabled(false);
    }

    // Tailnet lease storm: expired leases force re-authentication, but
    // the broker session and infrastructure enrolments survive.
    #[test]
    fn tailnet_lease_storm_forces_reauth_without_dropping_sessions(
        seed in 0u64..10_000,
    ) {
        let infra = Infrastructure::new(InfraConfig::builder().seed(seed).build().unwrap());
        let admin = infra.story2_register_admin("dave").unwrap();
        let (token, _) = infra.token_for("dave", "mgmt-tailnet", Vec::new()).unwrap();
        let node = TailnetNode::generate("dave-node", &mut infra.rng.lock());
        infra.tailnet.enroll(&node, &token).unwrap();
        prop_assert!(infra.tailnet.send(&node, "mdc-mgmt01", b"ping").is_ok());

        let expired = infra.tailnet.expire_all_leases();
        prop_assert!(expired >= 1);

        // No stale allow: the expired lease cannot reach the overlay.
        prop_assert!(matches!(
            infra.tailnet.send(&node, "mdc-mgmt01", b"ping"),
            Err(TailnetError::NotEnrolled(_))
        ));

        // No dropped session: the broker session established before the
        // storm still stands, so re-auth is a token issuance, not a
        // fresh login ceremony.
        prop_assert!(!infra.broker.sessions_of_subject(&admin.subject).is_empty());
        let (fresh, _) = infra.token_for("dave", "mgmt-tailnet", Vec::new()).unwrap();
        infra.tailnet.enroll(&node, &fresh).unwrap();
        prop_assert!(infra.tailnet.send(&node, "mdc-mgmt01", b"ping").is_ok());

        // Infrastructure enrolments never lapse.
        prop_assert!(infra.tailnet.public_key_of("mdc-mgmt01").is_some());
    }
}
