//! Stale-allow regressions for the verification cache layer.
//!
//! The cache's one obligation: it may make the hot path cheaper, but it
//! must never make it *wronger*. Every security-state change — JWKS
//! rotation, token revocation, kill-switch — bumps the verifier epoch
//! *before* the state change lands ("invalidation leads caching"), so a
//! verification or policy decision cached under the old state can never
//! be served under the new one. These tests pin that property at the
//! integration level, plus the equivalence property: with the cache on
//! or off, serial or over 8 workers, the same seed yields the same
//! outcomes and byte-identical traces.

use isambard_dri::core::{InfraConfig, Infrastructure};
use isambard_dri::crypto::jwt::JwtError;
use isambard_dri::federation::types::LevelOfAssurance;
use isambard_dri::policy::{AccessRequest, DevicePosture, Sensitivity, SourceZone};
use isambard_dri::trace::chrome_trace;
use isambard_dri::workload::{build_population, run_storm, StormMode};
use proptest::prelude::*;

fn onboarded() -> Infrastructure {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 100.0).unwrap();
    infra
}

#[test]
fn token_cached_before_rotation_cannot_outlive_the_old_key() {
    let infra = onboarded();
    let (token, _) = infra.token_for("alice", "jupyter", vec![]).unwrap();
    let now = infra.clock.now_secs();

    // Sign-time seeding: the very first validation is already a hit.
    assert!(infra.broker.jwks().validate(&token, "jupyter", now).is_ok());
    assert!(infra.broker.token_cache().hits() >= 1);

    // Rotation republishes the JWKS and bumps the verifier epoch, so the
    // cached verification is *not* trusted across the rotation: the next
    // validation busts the stale entry and re-verifies in full. The old
    // key is still published, so the re-verification legitimately
    // succeeds — but it is a fresh signature check, not a cache hit.
    let busts_before = infra.broker.token_cache().epoch_busts();
    infra.broker.rotate_keys([7u8; 32]);
    assert!(infra.broker.jwks().validate(&token, "jupyter", now).is_ok());
    assert!(infra.broker.token_cache().epoch_busts() > busts_before);

    // Once the old key is pruned, the token must fail outright — no
    // trace of the pre-rotation verification may survive.
    infra.broker.prune_keys(1);
    assert_eq!(
        infra.broker.jwks().validate(&token, "jupyter", now),
        Err(JwtError::BadSignature)
    );
}

#[test]
fn revoked_token_is_refused_despite_a_warm_cache() {
    let infra = onboarded();
    let (token, claims) = infra.token_for("alice", "jupyter", vec![]).unwrap();
    let now = infra.clock.now_secs();

    // Warm the cache and prove the token is live.
    assert!(infra.broker.jwks().validate(&token, "jupyter", now).is_ok());
    assert!(infra.broker.introspect(&claims.token_id));

    // Revocation bumps the verifier epoch before the token dies.
    let busts_before = infra.broker.token_cache().epoch_busts();
    infra.broker.revoke_token(&claims.token_id);

    // Introspection (the revocation authority) refuses, and the derived
    // credential path refuses with it.
    assert!(!infra.broker.introspect(&claims.token_id));
    assert!(infra
        .broker
        .exchange_token(&token, "jupyter", "slurm")
        .is_err());

    // The signature itself is still mathematically valid, so pure JWKS
    // validation re-verifies — but through a fresh signature check, not
    // the pre-revocation cache entry.
    assert!(infra.broker.jwks().validate(&token, "jupyter", now).is_ok());
    assert!(infra.broker.token_cache().epoch_busts() > busts_before);
}

#[test]
fn kill_switch_busts_both_caches_before_severing_access() {
    let infra = onboarded();
    infra.story4_ssh_connect("alice", "p").unwrap();
    infra.story6_jupyter("alice", "p", "198.51.100.9").unwrap();
    let subject = infra.subject_of("alice").unwrap();

    let token_epoch = infra.broker.token_cache().epoch();
    let pdp_epoch = infra.pdp.epoch();
    infra.kill_user(&subject);

    // Both epochs moved: nothing verified or decided pre-kill can be
    // served post-kill.
    assert!(infra.broker.token_cache().epoch() > token_epoch);
    assert!(infra.pdp.epoch() > pdp_epoch);

    // And the user is actually dead: a fresh flow fails.
    assert!(infra.story6_jupyter("alice", "p", "198.51.100.9").is_err());
}

#[test]
fn memoized_allow_does_not_survive_posture_downgrade_or_killswitch() {
    let infra = onboarded();
    let healthy = AccessRequest {
        subject: "maid-1".into(),
        loa: LevelOfAssurance::Medium,
        acr: "mfa-totp".into(),
        device: DevicePosture::healthy(),
        source: SourceZone::Access,
        session_age_secs: 60,
        resource: "jupyter".into(),
        sensitivity: Sensitivity::Standard,
        has_role: true,
    };

    // Decide twice: second consultation is a memo hit, same answer.
    let first = infra.pdp_decide(&healthy);
    assert!(first.allow);
    let hits_before = infra.pdp.hits();
    assert_eq!(infra.pdp_decide(&healthy), first);
    assert!(infra.pdp.hits() > hits_before);

    // Posture downgrade changes the memo key, so the compromised device
    // can never collide with the healthy device's cached allow.
    let mut downgraded = healthy.clone();
    downgraded.device.compromised = true;
    assert!(!infra.pdp_decide(&downgraded).allow);

    // Kill-switch bumps the memo epoch: the healthy allow must be
    // re-derived (epoch bust), not served from the pre-kill cache.
    let busts_before = infra.pdp.epoch_busts();
    infra.kill_user(&infra.subject_of("alice").unwrap());
    let after = infra.pdp_decide(&healthy);
    assert!(infra.pdp.epoch_busts() > busts_before);
    // "maid-1" held no session, so the fresh evaluation still allows —
    // the point is that it *was* a fresh evaluation.
    assert_eq!(after, first);
}

/// Mangle the last signature character so the token fails verification.
fn tampered(token: &str) -> String {
    let mut t: Vec<char> = token.chars().collect();
    let last = t.len() - 1;
    t[last] = if t[last] == 'A' { 'B' } else { 'A' };
    t.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cached and uncached validation agree on everything: same `Ok`
    /// claims, same `Err` kind, across audiences, clock advances past
    /// token expiry, and tampered tokens. Same seed, so the two
    /// infrastructures issue byte-identical tokens.
    #[test]
    fn cached_and_uncached_validation_agree(
        aud_idx in 0usize..3,
        advance_secs in 0u64..5000,
        tamper in any::<bool>(),
    ) {
        let warm = Infrastructure::new(InfraConfig::default());
        let cold = Infrastructure::new(
            InfraConfig::builder()
                .verification_cache(false)
                .build()
                .unwrap(),
        );
        for infra in [&warm, &cold] {
            infra.create_federated_user("alice", "pw");
            infra.story1_onboard_pi("p", "alice", 100.0).unwrap();
        }
        let (warm_token, _) = warm.token_for("alice", "jupyter", vec![]).unwrap();
        let (cold_token, _) = cold.token_for("alice", "jupyter", vec![]).unwrap();
        // Same seed must yield byte-identical tokens from both infras.
        prop_assert_eq!(&warm_token, &cold_token);

        let token = if tamper { tampered(&warm_token) } else { warm_token };
        let audience = ["jupyter", "slurm", "portal"][aud_idx];
        warm.clock.advance_secs(advance_secs);
        cold.clock.advance_secs(advance_secs);

        let from_cache = warm
            .broker
            .jwks()
            .validate(&token, audience, warm.clock.now_secs());
        let from_verify = cold
            .broker
            .jwks()
            .validate(&token, audience, cold.clock.now_secs());
        prop_assert_eq!(&from_cache, &from_verify);

        // A second warm validation exercises the hit path (claim-time
        // checks re-run against the cached claims) — still identical.
        let from_hit = warm
            .broker
            .jwks()
            .validate(&token, audience, warm.clock.now_secs());
        prop_assert_eq!(&from_hit, &from_verify);
    }
}

fn storm_config(cache: bool) -> InfraConfig {
    InfraConfig::builder()
        .jupyter_capacity(4096)
        .interactive_nodes(4096)
        .edge_threshold(usize::MAX / 2)
        .verification_cache(cache)
        .build()
        .unwrap()
}

/// Run a 16-user storm; return the deterministic outcome tuple plus the
/// exported chrome trace.
fn storm_outcome(cache: bool, mode: StormMode) -> (usize, Vec<(String, String)>, usize, String) {
    let infra = Infrastructure::new(storm_config(cache));
    let pop = build_population(&infra, 2, 7).unwrap();
    let users: Vec<(String, String)> = pop
        .projects
        .iter()
        .flat_map(|p| {
            std::iter::once((p.pi_label.clone(), p.name.clone())).chain(
                p.researcher_labels
                    .iter()
                    .map(|r| (r.clone(), p.name.clone())),
            )
        })
        .collect();
    let r = run_storm(&infra, &users, mode);
    (
        r.completed,
        r.failures.clone(),
        r.steps_per_flow,
        chrome_trace(&infra.tracer.all_spans()),
    )
}

#[test]
fn storm_outcomes_and_traces_identical_cache_on_or_off_serial_or_parallel() {
    let baseline = storm_outcome(false, StormMode::Serial);
    assert_eq!(baseline.0, 16, "failures: {:?}", baseline.1);
    for (cache, mode) in [
        (false, StormMode::Parallel(8)),
        (true, StormMode::Serial),
        (true, StormMode::Parallel(8)),
    ] {
        let run = storm_outcome(cache, mode);
        assert_eq!(
            run, baseline,
            "cache={cache} mode={mode:?} diverged from the cold serial baseline"
        );
    }
}
