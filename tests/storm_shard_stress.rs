//! Shard-correctness stress: the sharded identity/session hot path must
//! be *exact*, not just fast. A parallel login storm (128 users over 8
//! workers) has to complete with zero authorisation failures, the
//! per-shard token counters have to agree with a serial run of the same
//! seed (routing is a stable subject hash), metrics must aggregate
//! identically across shards, and the kill switch must sever every
//! session a subject holds no matter which shards they landed on.

use isambard_dri::core::{InfraConfig, Infrastructure};
use isambard_dri::workload::{build_population, run_storm, StormMode};

const STORM_USERS: usize = 128;

fn storm_setup(seed: u64) -> (Infrastructure, Vec<(String, String)>) {
    let config = InfraConfig::builder()
        .seed(seed)
        .jupyter_capacity(4096)
        .interactive_nodes(4096)
        .edge_threshold(usize::MAX / 2)
        .build()
        .expect("stress config is valid");
    let infra = Infrastructure::new(config);
    let pop = build_population(&infra, STORM_USERS / 8, 7).unwrap();
    let users: Vec<(String, String)> = pop
        .projects
        .iter()
        .flat_map(|p| {
            std::iter::once((p.pi_label.clone(), p.name.clone())).chain(
                p.researcher_labels
                    .iter()
                    .map(|r| (r.clone(), p.name.clone())),
            )
        })
        .collect();
    assert_eq!(users.len(), STORM_USERS);
    (infra, users)
}

#[test]
fn parallel_storm_128_users_zero_auth_failures() {
    let (infra, users) = storm_setup(42);
    let result = run_storm(&infra, &users, StormMode::Parallel(8));
    assert_eq!(
        result.completed, STORM_USERS,
        "failures: {:?}",
        result.failures
    );
    assert!(result.failures.is_empty());
    assert_eq!(infra.jupyter.session_count(), STORM_USERS);
    // The notebooks really landed spread over the session shards.
    let occupied = infra
        .jupyter
        .session_shard_lens()
        .iter()
        .filter(|&&n| n > 0)
        .count();
    assert!(occupied > 1, "128 sessions all hashed to one shard");
}

#[test]
fn per_shard_counters_match_serial_run_exactly() {
    let (serial_infra, serial_users) = storm_setup(7);
    let serial = run_storm(&serial_infra, &serial_users, StormMode::Serial);
    let (parallel_infra, parallel_users) = storm_setup(7);
    let parallel = run_storm(&parallel_infra, &parallel_users, StormMode::Parallel(8));

    assert_eq!(serial.completed, STORM_USERS);
    assert_eq!(parallel.completed, STORM_USERS);

    // Token routing is a stable hash of the subject, so the per-shard
    // counter *vector* — not just its sum — is identical whether the
    // storm ran on one thread or eight.
    assert_eq!(
        serial_infra.broker.shard_token_counts(),
        parallel_infra.broker.shard_token_counts()
    );
    assert_eq!(
        serial_infra.broker.tokens_issued(),
        parallel_infra.broker.tokens_issued()
    );

    // The cross-shard aggregated metrics snapshot is exact: a parallel
    // run is indistinguishable from a serial run of the same seed. The
    // only nondeterministic fields are the wall-clock stage percentiles
    // (real elapsed time differs run to run by design); zero those
    // before comparing — every sim-step field must match bit for bit.
    let normalize = |mut m: isambard_dri::core::MetricsSnapshot| {
        for s in &mut m.stage_latencies {
            s.p50_wall_us = 0;
            s.p99_wall_us = 0;
        }
        m
    };
    assert_eq!(
        normalize(serial_infra.metrics()),
        normalize(parallel_infra.metrics())
    );
}

#[test]
fn coarse_baseline_matches_sharded_results() {
    // broker_shards(1) is the coarse-lock baseline the E9 bench compares
    // against. It must produce the same outcome, just slower: the shard
    // count is a pure performance knob.
    let config = InfraConfig::builder()
        .seed(7)
        .jupyter_capacity(4096)
        .interactive_nodes(4096)
        .edge_threshold(usize::MAX / 2)
        .broker_shards(1)
        .build()
        .unwrap();
    let infra = Infrastructure::new(config);
    assert_eq!(infra.broker.shard_count(), 1);
    let pop = build_population(&infra, 4, 7).unwrap();
    let users: Vec<(String, String)> = pop
        .projects
        .iter()
        .flat_map(|p| {
            std::iter::once((p.pi_label.clone(), p.name.clone())).chain(
                p.researcher_labels
                    .iter()
                    .map(|r| (r.clone(), p.name.clone())),
            )
        })
        .collect();
    let result = run_storm(&infra, &users, StormMode::Parallel(8));
    assert_eq!(result.completed, 32, "failures: {:?}", result.failures);
    assert_eq!(infra.broker.shard_token_counts().len(), 1);
}

#[test]
fn kill_user_severs_sessions_spanning_shards() {
    let (infra, users) = storm_setup(42);
    run_storm(&infra, &users, StormMode::Parallel(8));

    let victim_label = &users[0].0;
    let victim = infra.subject_of(victim_label).unwrap();

    // Pile up extra broker sessions for the victim: session ids hash to
    // different shards, so one subject's sessions genuinely span the map.
    let mut victim_sessions = vec![infra.session_of(victim_label).unwrap().into_string()];
    for _ in 0..8 {
        victim_sessions.push(infra.federated_login(victim_label).unwrap().session_id);
    }
    for sid in &victim_sessions {
        assert!(infra.broker.session(sid).is_some());
    }

    let report = infra.kill_user(&victim);
    assert!(report.broker_revoked);
    assert!(report.notebooks_cut >= 1);

    // No session of the victim survives on *any* shard: every known
    // session id is gone, and a second sweep over each sharded map cuts
    // nothing.
    for sid in &victim_sessions {
        assert!(
            infra.broker.session(sid).is_none(),
            "session {sid} survived the kill"
        );
    }
    assert_eq!(infra.jupyter.sever_subject(&victim), 0);
    assert_eq!(infra.login_node.sever_by_key_id(&victim), 0);
    assert!(infra
        .broker
        .issue_token(&victim_sessions[0], "jupyter")
        .is_err());

    // Everyone else is untouched: their sessions are live and the
    // notebook population only lost the victim's.
    let survivor_label = &users[1].0;
    assert!(infra.session_of(survivor_label).is_ok());
    assert_eq!(
        infra.jupyter.session_count(),
        STORM_USERS - report.notebooks_cut
    );
}
