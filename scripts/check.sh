#!/usr/bin/env bash
# Full local gate: formatting, lints, and the tier-1 build+test cycle.
# Everything runs offline against the vendored shims — no network needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== examples build =="
cargo build --release --offline --examples

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== trace subsystem tests =="
cargo test -q --offline -p dri-trace
cargo test -q --offline -p isambard-dri --test trace_provenance

echo "== resilience: fault plane + breaker/budget determinism =="
cargo test -q --offline -p dri-fault
cargo test -q --offline -p isambard-dri --test failure_injection
cargo test -q --offline -p isambard-dri --test chaos_determinism

echo "== degraded modes: no dropped sessions, no stale allows =="
cargo test -q --offline -p isambard-dri --test degraded_modes

echo "== chaos day (drills incl. data plane, budget ledger, siem feedback, trace shape, overhead guard) =="
cargo run --release --offline --example chaos_day

echo "== verification cache: stale-allow regressions + cached/uncached equivalence =="
cargo test -q --offline -p dri-broker token_cache
cargo test -q --offline -p dri-policy trust
cargo test -q --offline -p isambard-dri --test token_cache

echo "== login-storm gate (warm >= 2x cold; auto-skipped below 4 cores) =="
BENCH_LOGIN_STORM_JSON=0 cargo bench --offline -p dri-bench --bench login_storm -- skip_criterion_timing_loop

echo "All checks passed."
