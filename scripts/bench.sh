#!/usr/bin/env bash
# Run the login-storm verification-cache benchmark and refresh
# BENCH_login_storm.json at the repo root.
#
# The report (cold/warm x serial/parallel storms, cache counters, trace
# determinism checks, and the warm >= 2x cold gate — enforced only on
# hosts with >= 4 cores) runs before criterion's timing loop. By default
# the criterion loop is skipped; pass --full to run it too.
set -euo pipefail
cd "$(dirname "$0")/.."

filter="skip_criterion_timing_loop"
if [[ "${1:-}" == "--full" ]]; then
  filter=""
fi

# shellcheck disable=SC2086 # an empty filter must expand to no argument
cargo bench --offline -p dri-bench --bench login_storm -- ${filter}
