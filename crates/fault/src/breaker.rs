//! Per-dependency circuit breakers: closed → open → half-open with a
//! probe budget.
//!
//! Breaker state is kept per `(dependency, lane)` where the lane is the
//! flow key (the client identity). This models *client-side* breakers —
//! each caller tracks its own view of a dependency's health — and it is
//! what makes the state machine deterministic under parallel execution:
//! a lane's admits and records happen in program order on whichever
//! thread runs that flow, and lanes never share mutable state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dri_sync::ShardMap;
use parking_lot::RwLock;

/// Breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Healthy: calls flow through.
    Closed,
    /// Tripped: calls are rejected without touching the dependency.
    Open,
    /// Cooling off: a budgeted number of probe calls may pass.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name (span attributes, SIEM details).
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Breaker thresholds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// How long an Open breaker rejects before allowing probes (ms).
    pub open_ms: u64,
    /// Probe calls admitted per half-open episode.
    pub probe_budget: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            open_ms: 30_000,
            probe_budget: 1,
        }
    }
}

/// A state transition, surfaced to the sink (dri-core forwards these to
/// the SIEM and stamps them onto trace spans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerTransition {
    /// Dependency the breaker guards (`idp`, `broker`, …).
    pub dependency: String,
    /// Lane (flow key) whose breaker moved.
    pub lane: String,
    /// Previous state.
    pub from: BreakerState,
    /// New state.
    pub to: BreakerState,
    /// Simulated time of the transition (ms).
    pub at_ms: u64,
    /// 1-based position of this transition in its lane's history. The
    /// triple `(dependency, lane, seq)` totally orders a run's
    /// transitions regardless of thread interleaving — sorting by it
    /// yields the byte-comparable breaker timeline the determinism
    /// tests diff serial vs parallel.
    pub seq: u64,
}

/// Observer for breaker transitions.
pub type TransitionSink = Arc<dyn Fn(&BreakerTransition) + Send + Sync>;

/// Rejection returned when an Open breaker fails a call fast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerOpen {
    /// Dependency that is open.
    pub dependency: String,
    /// Lane that was rejected.
    pub lane: String,
}

impl std::fmt::Display for BreakerOpen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "circuit open for {} (lane {})",
            self.dependency, self.lane
        )
    }
}

impl std::error::Error for BreakerOpen {}

#[derive(Debug, Clone, Default)]
struct LaneState {
    state: u8, // 0 = Closed, 1 = Open, 2 = HalfOpen
    consecutive_failures: u32,
    opened_at_ms: u64,
    probes_used: u32,
    /// Transitions this lane has emitted (feeds `BreakerTransition::seq`).
    transitions: u64,
}

impl LaneState {
    fn next_seq(&mut self) -> u64 {
        self.transitions += 1;
        self.transitions
    }
}

impl LaneState {
    fn state(&self) -> BreakerState {
        match self.state {
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }
}

/// Shards for the per-(dependency, lane) breaker map.
const BREAKER_SHARDS: usize = 16;

/// The breaker registry: one logical breaker per `(dependency, lane)`.
pub struct CircuitBreakers {
    config: BreakerConfig,
    /// Per-dependency threshold overrides installed by the SIEM
    /// feedback loop; absent dependencies use the base `config`.
    overrides: RwLock<HashMap<String, BreakerConfig>>,
    lanes: ShardMap<LaneState>,
    trips: AtomicU64,
    rejections: AtomicU64,
    sink: RwLock<Option<TransitionSink>>,
}

impl CircuitBreakers {
    /// A registry with the given thresholds.
    pub fn new(config: BreakerConfig) -> CircuitBreakers {
        CircuitBreakers {
            config,
            overrides: RwLock::new(HashMap::new()),
            lanes: ShardMap::new(BREAKER_SHARDS),
            trips: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
            sink: RwLock::new(None),
        }
    }

    /// The base thresholds (ignoring per-dependency overrides).
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// The thresholds in effect for one dependency: its override if the
    /// feedback loop installed one, the base config otherwise.
    pub fn config_for(&self, dependency: &str) -> BreakerConfig {
        self.overrides
            .read()
            .get(dependency)
            .cloned()
            .unwrap_or_else(|| self.config.clone())
    }

    /// Install (or replace) a per-dependency threshold override. Only
    /// call this at quiescent points (window boundaries) — changing
    /// thresholds mid-storm would make breaker timelines depend on
    /// thread interleaving.
    pub fn set_dependency_config(&self, dependency: &str, config: BreakerConfig) {
        self.overrides
            .write()
            .insert(dependency.to_string(), config);
    }

    /// Drop a per-dependency override, reverting to the base config.
    pub fn clear_dependency_config(&self, dependency: &str) {
        self.overrides.write().remove(dependency);
    }

    /// All installed overrides, sorted by dependency (deterministic for
    /// feedback-loop assertions).
    pub fn dependency_overrides(&self) -> Vec<(String, BreakerConfig)> {
        let mut out: Vec<(String, BreakerConfig)> = self
            .overrides
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Install the transition observer.
    pub fn set_sink(&self, sink: TransitionSink) {
        *self.sink.write() = Some(sink);
    }

    /// Closed → Open trips so far.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Calls rejected without reaching the dependency.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }

    fn key(dependency: &str, lane: &str) -> String {
        format!("{dependency}|{lane}")
    }

    fn emit(&self, transitions: &[BreakerTransition]) {
        if transitions.is_empty() {
            return;
        }
        let sink = self.sink.read();
        if let Some(sink) = sink.as_ref() {
            for t in transitions {
                sink(t);
            }
        }
    }

    /// Ask to place a call on `dependency` for `lane`. Returns the state
    /// the call is admitted under, or [`BreakerOpen`] for a fast
    /// rejection. An Open breaker whose `open_ms` has elapsed moves to
    /// HalfOpen here and admits up to `probe_budget` probes.
    pub fn admit(
        &self,
        dependency: &str,
        lane: &str,
        now_ms: u64,
    ) -> Result<BreakerState, BreakerOpen> {
        let key = Self::key(dependency, lane);
        let config = self.config_for(dependency);
        let mut transitions = Vec::new();
        let decision = {
            let mut shard = self.lanes.write_shard(&key);
            let st = shard.entry(key.clone()).or_default();
            match st.state() {
                BreakerState::Closed => Ok(BreakerState::Closed),
                BreakerState::Open => {
                    if now_ms >= st.opened_at_ms.saturating_add(config.open_ms) {
                        st.state = 2;
                        st.probes_used = 0;
                        transitions.push(BreakerTransition {
                            dependency: dependency.to_string(),
                            lane: lane.to_string(),
                            from: BreakerState::Open,
                            to: BreakerState::HalfOpen,
                            at_ms: now_ms,
                            seq: st.next_seq(),
                        });
                        if st.probes_used < config.probe_budget {
                            st.probes_used += 1;
                            Ok(BreakerState::HalfOpen)
                        } else {
                            Err(())
                        }
                    } else {
                        Err(())
                    }
                }
                BreakerState::HalfOpen => {
                    if st.probes_used < config.probe_budget {
                        st.probes_used += 1;
                        Ok(BreakerState::HalfOpen)
                    } else {
                        Err(())
                    }
                }
            }
        };
        self.emit(&transitions);
        decision.map_err(|()| {
            self.rejections.fetch_add(1, Ordering::Relaxed);
            BreakerOpen {
                dependency: dependency.to_string(),
                lane: lane.to_string(),
            }
        })
    }

    /// Report the outcome of an admitted call.
    pub fn record(&self, dependency: &str, lane: &str, now_ms: u64, success: bool) {
        let key = Self::key(dependency, lane);
        let config = self.config_for(dependency);
        let mut transitions = Vec::new();
        {
            let mut shard = self.lanes.write_shard(&key);
            let st = shard.entry(key.clone()).or_default();
            let from = st.state();
            match (from, success) {
                (BreakerState::Closed, true) => st.consecutive_failures = 0,
                (BreakerState::Closed, false) => {
                    st.consecutive_failures += 1;
                    if st.consecutive_failures >= config.failure_threshold {
                        st.state = 1;
                        st.opened_at_ms = now_ms;
                        self.trips.fetch_add(1, Ordering::Relaxed);
                        transitions.push(BreakerTransition {
                            dependency: dependency.to_string(),
                            lane: lane.to_string(),
                            from,
                            to: BreakerState::Open,
                            at_ms: now_ms,
                            seq: st.next_seq(),
                        });
                    }
                }
                (BreakerState::HalfOpen, true) => {
                    st.state = 0;
                    st.consecutive_failures = 0;
                    st.probes_used = 0;
                    transitions.push(BreakerTransition {
                        dependency: dependency.to_string(),
                        lane: lane.to_string(),
                        from,
                        to: BreakerState::Closed,
                        at_ms: now_ms,
                        seq: st.next_seq(),
                    });
                }
                (BreakerState::HalfOpen, false) => {
                    st.state = 1;
                    st.opened_at_ms = now_ms;
                    st.probes_used = 0;
                    self.trips.fetch_add(1, Ordering::Relaxed);
                    transitions.push(BreakerTransition {
                        dependency: dependency.to_string(),
                        lane: lane.to_string(),
                        from,
                        to: BreakerState::Open,
                        at_ms: now_ms,
                        seq: st.next_seq(),
                    });
                }
                // A late record against an Open breaker (shouldn't
                // happen when callers admit first) changes nothing.
                (BreakerState::Open, _) => {}
            }
        }
        self.emit(&transitions);
    }

    /// The current state of one breaker, projecting an elapsed Open
    /// window as HalfOpen (read-only; no transition is emitted).
    pub fn state(&self, dependency: &str, lane: &str, now_ms: u64) -> BreakerState {
        let key = Self::key(dependency, lane);
        let open_ms = self.config_for(dependency).open_ms;
        let shard = self.lanes.read_shard(&key);
        match shard.get(&key) {
            Some(st) => match st.state() {
                BreakerState::Open if now_ms >= st.opened_at_ms.saturating_add(open_ms) => {
                    BreakerState::HalfOpen
                }
                s => s,
            },
            None => BreakerState::Closed,
        }
    }
}

impl std::fmt::Debug for CircuitBreakers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreakers")
            .field("trips", &self.trips())
            .field("rejections", &self.rejections())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn breakers() -> CircuitBreakers {
        CircuitBreakers::new(BreakerConfig::default())
    }

    #[test]
    fn trips_after_consecutive_failures_and_rejects() {
        let b = breakers();
        for _ in 0..3 {
            assert!(b.admit("idp", "alice", 0).is_ok());
            b.record("idp", "alice", 0, false);
        }
        assert_eq!(b.state("idp", "alice", 0), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        let err = b.admit("idp", "alice", 1_000).unwrap_err();
        assert_eq!(err.dependency, "idp");
        assert_eq!(b.rejections(), 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = breakers();
        for _ in 0..2 {
            b.admit("idp", "alice", 0).unwrap();
            b.record("idp", "alice", 0, false);
        }
        b.admit("idp", "alice", 0).unwrap();
        b.record("idp", "alice", 0, true);
        for _ in 0..2 {
            b.admit("idp", "alice", 0).unwrap();
            b.record("idp", "alice", 0, false);
        }
        assert_eq!(b.state("idp", "alice", 0), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn half_open_probe_budget_then_close_or_reopen() {
        let b = breakers();
        for _ in 0..3 {
            b.admit("ca", "bob", 0).unwrap();
            b.record("ca", "bob", 0, false);
        }
        // Before the open window elapses: rejected.
        assert!(b.admit("ca", "bob", 29_999).is_err());
        // After: one probe passes, the second is rejected.
        assert_eq!(b.admit("ca", "bob", 30_000), Ok(BreakerState::HalfOpen));
        assert!(b.admit("ca", "bob", 30_000).is_err());
        // Probe failure reopens and the window restarts.
        b.record("ca", "bob", 30_000, false);
        assert_eq!(b.state("ca", "bob", 30_001), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // Next half-open probe succeeds: closed again.
        assert_eq!(b.admit("ca", "bob", 60_000), Ok(BreakerState::HalfOpen));
        b.record("ca", "bob", 60_000, true);
        assert_eq!(b.state("ca", "bob", 60_000), BreakerState::Closed);
        assert!(b.admit("ca", "bob", 60_000).is_ok());
    }

    #[test]
    fn lanes_are_independent() {
        let b = breakers();
        for _ in 0..3 {
            b.admit("broker", "alice", 0).unwrap();
            b.record("broker", "alice", 0, false);
        }
        assert_eq!(b.state("broker", "alice", 0), BreakerState::Open);
        assert_eq!(b.state("broker", "bob", 0), BreakerState::Closed);
        assert!(b.admit("broker", "bob", 0).is_ok());
        // And dependencies are independent per lane too.
        assert!(b.admit("idp", "alice", 0).is_ok());
    }

    #[test]
    fn transitions_are_emitted_in_order() {
        let b = breakers();
        let seen: Arc<Mutex<Vec<(BreakerState, BreakerState)>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = seen.clone();
        b.set_sink(Arc::new(move |t| {
            s2.lock().unwrap().push((t.from, t.to));
        }));
        for _ in 0..3 {
            b.admit("idp", "alice", 0).unwrap();
            b.record("idp", "alice", 0, false);
        }
        b.admit("idp", "alice", 30_000).unwrap();
        b.record("idp", "alice", 30_000, true);
        assert_eq!(
            *seen.lock().unwrap(),
            vec![
                (BreakerState::Closed, BreakerState::Open),
                (BreakerState::Open, BreakerState::HalfOpen),
                (BreakerState::HalfOpen, BreakerState::Closed),
            ]
        );
    }

    #[test]
    fn transition_seq_totally_orders_a_lane() {
        let b = breakers();
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = seen.clone();
        b.set_sink(Arc::new(move |t| {
            s2.lock().unwrap().push(t.seq);
        }));
        for _ in 0..3 {
            b.admit("idp", "alice", 0).unwrap();
            b.record("idp", "alice", 0, false);
        }
        b.admit("idp", "alice", 30_000).unwrap();
        b.record("idp", "alice", 30_000, true);
        assert_eq!(*seen.lock().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn dependency_overrides_tighten_and_revert() {
        let b = breakers();
        b.set_dependency_config(
            "idp",
            BreakerConfig {
                failure_threshold: 1,
                open_ms: 60_000,
                probe_budget: 1,
            },
        );
        // One failure now trips the tightened breaker...
        b.admit("idp", "alice", 0).unwrap();
        b.record("idp", "alice", 0, false);
        assert_eq!(b.state("idp", "alice", 0), BreakerState::Open);
        // ...and the longer open window applies.
        assert!(b.admit("idp", "alice", 30_000).is_err());
        assert_eq!(b.admit("idp", "alice", 60_000), Ok(BreakerState::HalfOpen));
        // Other dependencies keep the base thresholds.
        b.admit("broker", "alice", 0).unwrap();
        b.record("broker", "alice", 0, false);
        assert_eq!(b.state("broker", "alice", 0), BreakerState::Closed);
        assert_eq!(b.dependency_overrides().len(), 1);
        b.clear_dependency_config("idp");
        assert_eq!(b.config_for("idp"), *b.config());
        assert!(b.dependency_overrides().is_empty());
    }

    #[test]
    fn parallel_lanes_reach_the_same_states_as_serial() {
        let drive = |b: &CircuitBreakers, lane: &str| {
            for _ in 0..3 {
                let _ = b.admit("idp", lane, 0);
                b.record("idp", lane, 0, false);
            }
            let _ = b.admit("idp", lane, 30_000);
            b.record("idp", lane, 30_000, true);
        };
        let states = |b: &CircuitBreakers| {
            (0..32)
                .map(|i| b.state("idp", &format!("user-{i}"), 30_000))
                .collect::<Vec<_>>()
        };
        let serial = {
            let b = breakers();
            for i in 0..32 {
                drive(&b, &format!("user-{i}"));
            }
            (states(&b), b.trips())
        };
        let parallel = {
            let b = breakers();
            crossbeam::thread::scope(|scope| {
                for w in 0..8 {
                    let b = &b;
                    scope.spawn(move |_| {
                        for i in (w..32).step_by(8) {
                            drive(b, &format!("user-{i}"));
                        }
                    });
                }
            })
            .unwrap();
            (states(&b), b.trips())
        };
        assert_eq!(serial, parallel);
    }
}
