//! The per-component attachment point for the fault plane.
//!
//! Substrate components embed a [`FaultHook`] (default = no plane, zero
//! behaviour change) and consult it at the top of their instrumented
//! hops. dri-core installs one shared [`FaultPlane`] into every hook
//! after assembly, so a single plan drives the whole co-design.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::plan::{FaultPlane, InjectedFault};

/// A late-installed, optional pointer to the shared fault plane.
#[derive(Default)]
pub struct FaultHook {
    slot: RwLock<Option<Arc<FaultPlane>>>,
}

impl FaultHook {
    /// An empty hook (no plane installed; [`check`](FaultHook::check) is
    /// a read-lock + `None` test).
    pub fn new() -> FaultHook {
        FaultHook::default()
    }

    /// Install (or replace) the plane.
    pub fn install(&self, plane: Arc<FaultPlane>) {
        *self.slot.write() = Some(plane);
    }

    /// Remove the plane.
    pub fn clear(&self) {
        *self.slot.write() = None;
    }

    /// The installed plane, if any.
    pub fn plane(&self) -> Option<Arc<FaultPlane>> {
        self.slot.read().clone()
    }

    /// Consult the plane for a hop of `component`. `Ok(())` when no
    /// plane is installed.
    pub fn check(&self, component: &str) -> Result<(), InjectedFault> {
        match self.slot.read().as_ref() {
            Some(plane) => plane.apply(component),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for FaultHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultHook")
            .field("installed", &self.slot.read().is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use dri_clock::SimClock;

    #[test]
    fn empty_hook_is_transparent() {
        let hook = FaultHook::new();
        assert!(hook.check("broker").is_ok());
        assert!(hook.plane().is_none());
    }

    #[test]
    fn installed_plane_is_consulted_and_clearable() {
        let hook = FaultHook::new();
        let clock = SimClock::new();
        clock.advance(10);
        let plane = Arc::new(FaultPlane::new(
            FaultPlan::new(1).outage("broker", 0, 1_000),
            clock,
        ));
        hook.install(plane);
        assert!(hook.check("broker").is_err());
        assert!(hook.check("edge").is_ok());
        hook.clear();
        assert!(hook.check("broker").is_ok());
    }
}
