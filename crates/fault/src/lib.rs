//! # dri-fault — deterministic fault injection and resilience
//!
//! The availability half of the paper's co-design, made first-class:
//!
//! * [`FaultPlan`] / [`FaultPlane`] — a **seeded schedule** of component
//!   outages, flaky windows, and latency spikes, applied at the same hop
//!   points `dri-trace` already instruments. Decisions are pure
//!   functions of `(plan seed, spec index, flow lane, per-lane counter)`,
//!   so the same seed yields byte-identical fault timelines whether the
//!   simulation runs serially or across eight workers.
//! * [`RetryPolicy`] — bounded retry with deterministic exponential
//!   backoff plus seeded jitter. No thread ever sleeps; backoff shows up
//!   as `retry.backoff` spans in the flow trace instead.
//! * [`CircuitBreakers`] — per-dependency closed → open → half-open
//!   breakers with probe budgets. State is kept per *(dependency, lane)*
//!   where the lane is the flow key, so breaker behaviour is identical
//!   under any worker count; transitions are surfaced through a sink
//!   (dri-core wires it to the SIEM). Per-dependency config overrides
//!   let the SIEM feedback loop tighten or relax thresholds at window
//!   boundaries.
//! * [`ErrorBudgets`] — SRE-style per-dependency, per-window error
//!   budgets (SLO target + burn-rate accounting over sim-time windows).
//!   Commutative counters make the budget state a pure function of the
//!   outcome multiset, independent of thread interleaving.
//!
//! The crate is substrate-only: it knows nothing about IdPs or bastions.
//! dri-core owns the wiring (which hops consult the plane, what counts
//! as a transient error, how degradation falls back).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod budget;
pub mod hook;
pub mod plan;
pub mod retry;

pub use breaker::{
    BreakerConfig, BreakerOpen, BreakerState, BreakerTransition, CircuitBreakers, TransitionSink,
};
pub use budget::{BudgetConfig, BudgetWindow, ErrorBudgets};
pub use hook::FaultHook;
pub use plan::{FaultKind, FaultPlan, FaultPlane, FaultSpec, InjectedFault};
pub use retry::RetryPolicy;

/// splitmix64 finalizer: the shared bit mixer behind fault ids, flaky
/// rolls, and backoff jitter. Pure, allocation-free, stable.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
