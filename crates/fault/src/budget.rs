//! SRE-style error budgets over deterministic sim-time windows.
//!
//! Each dependency gets a per-window budget derived from an SLO target:
//! with an SLO of `slo_per_mille` (e.g. `900` = 99.0%-style "90.0% of
//! calls succeed"), the window may spend up to `1000 - slo_per_mille`
//! per-mille of its calls on errors before the budget is **exhausted**.
//!
//! The accounting is a pure function of the event stream: windows are
//! indexed by `at_ms / window_ms` (sim time only — no wall clock), and
//! each window holds two commutative counters `(ok, err)`. Because
//! addition commutes, a serial run and an 8-worker run that observe the
//! same multiset of outcomes land on byte-identical budget state; the
//! [`ErrorBudgets::export`] timeline is sorted by `(dependency, window)`
//! so the rendering is totally ordered too. That is the determinism
//! contract the chaos tests assert.
//!
//! Burn rate is reported in per-mille of the window's calls:
//! `burn = err * 1000 / (ok + err)`, and the window is exhausted when
//! `err * 1000 > (ok + err) * (1000 - slo_per_mille)`.

use dri_sync::ShardMap;

/// Number of shards for the window-counter map. Budgets are touched on
/// every resilient call, so contention matters in parallel storms.
const BUDGET_SHARDS: usize = 16;

/// SLO target and window geometry for the error-budget plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetConfig {
    /// Width of one accounting window in simulated milliseconds.
    pub window_ms: u64,
    /// Required success rate in per-mille of calls (e.g. `900` = 90.0%).
    /// The error budget of a window is `1000 - slo_per_mille` per-mille.
    pub slo_per_mille: u16,
}

impl Default for BudgetConfig {
    fn default() -> BudgetConfig {
        BudgetConfig {
            window_ms: 60_000,
            slo_per_mille: 900,
        }
    }
}

/// One (dependency, window) row of the budget timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetWindow {
    /// Dependency the counters belong to (`"idp"`, `"slurm"`, …).
    pub dependency: String,
    /// Window index (`at_ms / window_ms`).
    pub window: u64,
    /// Window start in simulated milliseconds.
    pub start_ms: u64,
    /// Successful calls observed in the window.
    pub ok: u64,
    /// Failed calls observed in the window.
    pub err: u64,
    /// Burn rate in per-mille of the window's calls.
    pub burn_per_mille: u64,
    /// Whether the window has spent its error budget.
    pub exhausted: bool,
}

/// Per-dependency, per-window error-budget accounting.
///
/// State is held in a sharded map keyed `"{dependency}|{window}"`; the
/// counters commute, so recording order (and thread interleaving) does
/// not affect the final state.
pub struct ErrorBudgets {
    config: BudgetConfig,
    /// `"{dependency}|{window}"` → `(ok, err)`.
    windows: ShardMap<(u64, u64)>,
}

impl ErrorBudgets {
    /// New budget plane with the given SLO/window geometry.
    pub fn new(config: BudgetConfig) -> ErrorBudgets {
        ErrorBudgets {
            config,
            windows: ShardMap::new(BUDGET_SHARDS),
        }
    }

    /// The configured SLO/window geometry.
    pub fn config(&self) -> BudgetConfig {
        self.config
    }

    /// Window index containing the given sim time.
    pub fn window_of(&self, at_ms: u64) -> u64 {
        at_ms / self.config.window_ms
    }

    fn key(dependency: &str, window: u64) -> String {
        format!("{dependency}|{window}")
    }

    /// Record one call outcome for `dependency` at sim time `at_ms`.
    pub fn record(&self, dependency: &str, at_ms: u64, success: bool) {
        let key = Self::key(dependency, self.window_of(at_ms));
        let mut shard = self.windows.write_shard(&key);
        let counters = shard.entry(key).or_insert((0, 0));
        if success {
            counters.0 += 1;
        } else {
            counters.1 += 1;
        }
    }

    /// `(ok, err)` counters for a (dependency, window) pair.
    pub fn counts(&self, dependency: &str, window: u64) -> (u64, u64) {
        self.windows
            .get_cloned(&Self::key(dependency, window))
            .unwrap_or((0, 0))
    }

    fn burn_of(ok: u64, err: u64) -> u64 {
        (err * 1000).checked_div(ok + err).unwrap_or(0)
    }

    fn exhausted_of(&self, ok: u64, err: u64) -> bool {
        let total = ok + err;
        total > 0 && err * 1000 > total * u64::from(1000 - self.config.slo_per_mille)
    }

    /// Burn rate (per-mille of calls spent on errors) for a window.
    pub fn burn_per_mille(&self, dependency: &str, window: u64) -> u64 {
        let (ok, err) = self.counts(dependency, window);
        Self::burn_of(ok, err)
    }

    /// Whether the (dependency, window) pair has spent its error budget.
    pub fn exhausted(&self, dependency: &str, window: u64) -> bool {
        let (ok, err) = self.counts(dependency, window);
        self.exhausted_of(ok, err)
    }

    /// Whether the dependency's *current* window still has budget
    /// headroom — the admission check for budget-driven chaos drills.
    pub fn has_headroom(&self, dependency: &str, now_ms: u64) -> bool {
        !self.exhausted(dependency, self.window_of(now_ms))
    }

    /// All dependencies that have recorded at least one outcome, sorted.
    pub fn dependencies(&self) -> Vec<String> {
        let mut deps: Vec<String> = Vec::new();
        self.windows.for_each(|key, _| {
            if let Some((dep, _)) = key.rsplit_once('|') {
                if !deps.iter().any(|d| d == dep) {
                    deps.push(dep.to_string());
                }
            }
        });
        deps.sort();
        deps
    }

    /// The full budget timeline, sorted by `(dependency, window)` so two
    /// runs with identical budget state render identically.
    pub fn timeline(&self) -> Vec<BudgetWindow> {
        let mut rows: Vec<BudgetWindow> = Vec::new();
        self.windows.for_each(|key, &(ok, err)| {
            let Some((dep, win)) = key.rsplit_once('|') else {
                return;
            };
            let Ok(window) = win.parse::<u64>() else {
                return;
            };
            rows.push(BudgetWindow {
                dependency: dep.to_string(),
                window,
                start_ms: window * self.config.window_ms,
                ok,
                err,
                burn_per_mille: Self::burn_of(ok, err),
                exhausted: self.exhausted_of(ok, err),
            });
        });
        rows.sort_by(|a, b| (&a.dependency, a.window).cmp(&(&b.dependency, b.window)));
        rows
    }

    /// Render the timeline as one line per window — the byte-comparable
    /// artifact the determinism tests diff between serial and parallel
    /// runs.
    pub fn export(&self) -> String {
        let mut out = String::new();
        for row in self.timeline() {
            out.push_str(&format!(
                "{} window={} start_ms={} ok={} err={} burn={} exhausted={}\n",
                row.dependency,
                row.window,
                row.start_ms,
                row.ok,
                row.err,
                row.burn_per_mille,
                row.exhausted
            ));
        }
        out
    }

    /// Total outcomes recorded across all dependencies and windows.
    pub fn recorded(&self) -> u64 {
        let mut total = 0;
        self.windows.for_each(|_, &(ok, err)| total += ok + err);
        total
    }
}

impl std::fmt::Debug for ErrorBudgets {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ErrorBudgets")
            .field("config", &self.config)
            .field("windows", &self.windows.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budgets() -> ErrorBudgets {
        ErrorBudgets::new(BudgetConfig::default())
    }

    #[test]
    fn counters_accumulate_per_window() {
        let b = budgets();
        b.record("idp", 1_000, true);
        b.record("idp", 2_000, false);
        b.record("idp", 61_000, true);
        assert_eq!(b.counts("idp", 0), (1, 1));
        assert_eq!(b.counts("idp", 1), (1, 0));
        assert_eq!(b.counts("broker", 0), (0, 0));
    }

    #[test]
    fn burn_and_exhaustion_follow_the_slo() {
        let b = budgets();
        // 20 ok: plenty of headroom.
        for i in 0..20 {
            b.record("slurm", i, true);
        }
        assert_eq!(b.burn_per_mille("slurm", 0), 0);
        assert!(b.has_headroom("slurm", 0));
        // SLO 900 ⇒ budget 100‰. err=2 of 22 ⇒ 90‰: still inside.
        b.record("slurm", 10, false);
        b.record("slurm", 11, false);
        assert!(!b.exhausted("slurm", 0));
        // err=3 of 23 ⇒ 130‰ > 100‰: exhausted.
        b.record("slurm", 12, false);
        assert!(b.exhausted("slurm", 0));
        assert!(!b.has_headroom("slurm", 30_000));
        // The next window starts fresh.
        assert!(b.has_headroom("slurm", 60_000));
    }

    #[test]
    fn empty_window_has_headroom() {
        let b = budgets();
        assert!(b.has_headroom("edge", 0));
        assert_eq!(b.burn_per_mille("edge", 0), 0);
    }

    #[test]
    fn a_single_failure_in_an_empty_window_exhausts_it() {
        // With no successes, burn is 1000‰ — any budget below 100% is
        // spent immediately. Drills therefore seed windows with healthy
        // traffic before injecting.
        let b = budgets();
        b.record("tailnet", 5, false);
        assert!(b.exhausted("tailnet", 0));
    }

    #[test]
    fn export_is_sorted_and_stable() {
        let b = budgets();
        b.record("idp", 61_000, false);
        b.record("broker", 1, true);
        b.record("idp", 1, true);
        let export = b.export();
        let lines: Vec<&str> = export.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("broker window=0 "));
        assert!(lines[1].starts_with("idp window=0 "));
        assert!(lines[2].starts_with("idp window=1 "));
        // Same outcomes in a different order ⇒ identical bytes.
        let c = budgets();
        c.record("broker", 1, true);
        c.record("idp", 1, true);
        c.record("idp", 61_000, false);
        assert_eq!(export, c.export());
    }

    #[test]
    fn recording_order_does_not_matter_across_threads() {
        let b = std::sync::Arc::new(budgets());
        crossbeam::thread::scope(|scope| {
            for worker in 0..8u64 {
                let b = std::sync::Arc::clone(&b);
                scope.spawn(move |_| {
                    for i in 0..100u64 {
                        b.record("broker", i * 500, (i + worker) % 3 != 0);
                    }
                });
            }
        })
        .expect("threads join");
        let serial = budgets();
        for worker in 0..8u64 {
            for i in 0..100u64 {
                serial.record("broker", i * 500, (i + worker) % 3 != 0);
            }
        }
        assert_eq!(b.export(), serial.export());
        assert_eq!(b.recorded(), 800);
    }

    #[test]
    fn dependencies_are_sorted_and_deduped() {
        let b = budgets();
        b.record("idp", 0, true);
        b.record("broker", 0, true);
        b.record("idp", 61_000, true);
        assert_eq!(b.dependencies(), vec!["broker", "idp"]);
    }
}
