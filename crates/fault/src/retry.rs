//! Bounded retry with deterministic exponential backoff + seeded jitter.
//!
//! Nothing here sleeps: the simulation is step-driven, so "waiting" is
//! represented by the caller opening a `retry.backoff` span carrying the
//! computed delay. The delay itself is a pure function of
//! `(seed, dependency key, attempt)` so serial and parallel runs agree.

use dri_sync::hash_key;

use crate::mix64;

/// Retry budget and backoff curve for one class of transient hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retry.
    pub max_attempts: u32,
    /// Base backoff before jitter (ms), doubled per retry.
    pub base_ms: u64,
    /// Backoff ceiling before jitter (ms).
    pub max_ms: u64,
    /// Maximum seeded jitter added per backoff (ms).
    pub jitter_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_ms: 50,
            max_ms: 2_000,
            jitter_ms: 25,
        }
    }
}

impl RetryPolicy {
    /// How many retries remain after attempt number `attempt` (1-based)
    /// failed.
    pub fn retries_left(&self, attempt: u32) -> u32 {
        self.max_attempts.saturating_sub(attempt)
    }

    /// The backoff before retry number `attempt` (1 = backoff after the
    /// first failure): `min(max_ms, base_ms * 2^(attempt-1))` plus a
    /// seeded jitter in `[0, jitter_ms]` derived from `(seed, key,
    /// attempt)` — deterministic, but decorrelated across dependencies
    /// and flows so synchronized retry storms don't re-align.
    pub fn backoff_ms(&self, seed: u64, key: &str, attempt: u32) -> u64 {
        let attempt = attempt.max(1);
        let exp = self
            .base_ms
            .saturating_mul(1u64 << (attempt - 1).min(32))
            .min(self.max_ms);
        let jitter = if self.jitter_ms == 0 {
            0
        } else {
            mix64(seed ^ hash_key(key) ^ u64::from(attempt)) % (self.jitter_ms + 1)
        };
        exp + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let p = RetryPolicy {
            jitter_ms: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_ms(1, "idp", 1), 50);
        assert_eq!(p.backoff_ms(1, "idp", 2), 100);
        assert_eq!(p.backoff_ms(1, "idp", 3), 200);
        assert_eq!(p.backoff_ms(1, "idp", 8), 2_000, "capped at max_ms");
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy::default();
        for attempt in 1..=5 {
            let a = p.backoff_ms(42, "broker|alice", attempt);
            let b = p.backoff_ms(42, "broker|alice", attempt);
            assert_eq!(a, b);
            let base = RetryPolicy {
                jitter_ms: 0,
                ..p.clone()
            }
            .backoff_ms(42, "broker|alice", attempt);
            assert!(a >= base && a <= base + p.jitter_ms);
        }
    }

    #[test]
    fn jitter_decorrelates_keys_and_seeds() {
        let p = RetryPolicy::default();
        let spread: std::collections::HashSet<u64> = (0..20)
            .map(|i| p.backoff_ms(42, &format!("dep|user-{i}"), 1))
            .collect();
        assert!(spread.len() > 1, "different lanes see different jitter");
        let schedules_match = p.backoff_ms(1, "dep|u", 1) == p.backoff_ms(2, "dep|u", 1)
            && p.backoff_ms(1, "dep|u", 2) == p.backoff_ms(2, "dep|u", 2)
            && p.backoff_ms(1, "dep|u", 3) == p.backoff_ms(2, "dep|u", 3);
        assert!(
            !schedules_match,
            "different seeds diverge somewhere in the schedule"
        );
    }

    #[test]
    fn retries_left_counts_down() {
        let p = RetryPolicy::default();
        assert_eq!(p.retries_left(1), 2);
        assert_eq!(p.retries_left(3), 0);
        assert_eq!(p.retries_left(9), 0);
    }
}
