//! Seeded fault plans and the injection plane.
//!
//! A [`FaultPlan`] is a declarative schedule: *which component* misbehaves
//! *how* during *which simulated-time window*. The [`FaultPlane`] holds a
//! plan plus the shared [`SimClock`] and answers one question at every
//! instrumented hop: "does this call fail, and under which fault id?"
//!
//! Determinism contract: outage decisions depend only on the clock and
//! the plan; flaky decisions additionally depend on the calling flow's
//! *lane* (its trace id) and a per-lane attempt counter, both of which
//! are identical however flows are scheduled across worker threads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use dri_clock::SimClock;
use dri_sync::{hash_key, ShardMap};

use crate::mix64;

/// How a matched component misbehaves inside its window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Hard outage: every call fails.
    Outage,
    /// Flaky window: each call fails with probability
    /// `fail_per_mille / 1000`, decided deterministically per lane.
    Flaky {
        /// Failure probability in 1/1000ths (e.g. 500 = 50%).
        fail_per_mille: u16,
    },
    /// Latency spike: calls succeed but drag `extra_steps` logical
    /// steps of `fault.latency` spans into the flow trace.
    Latency {
        /// Extra sibling spans injected per call (capped at 16).
        extra_steps: u32,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Component selector: either a full component id
    /// (`idp:https://idp.bristol.ac.uk`) or a bare category (`idp`,
    /// `broker`, `bastion`, …) matching every instance of the category.
    pub component: String,
    /// Failure mode.
    pub kind: FaultKind,
    /// Window start, simulated ms (inclusive).
    pub from_ms: u64,
    /// Window end, simulated ms (exclusive).
    pub until_ms: u64,
}

/// A deterministic, seeded schedule of faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed folded into every fault id and flaky roll.
    pub seed: u64,
    /// Scheduled faults, in declaration order.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan under `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Schedule a hard outage of `component` for `[from_ms, until_ms)`.
    pub fn outage(mut self, component: impl Into<String>, from_ms: u64, until_ms: u64) -> Self {
        self.specs.push(FaultSpec {
            component: component.into(),
            kind: FaultKind::Outage,
            from_ms,
            until_ms,
        });
        self
    }

    /// Schedule a flaky window: each call fails with probability
    /// `fail_per_mille / 1000`.
    pub fn flaky(
        mut self,
        component: impl Into<String>,
        fail_per_mille: u16,
        from_ms: u64,
        until_ms: u64,
    ) -> Self {
        self.specs.push(FaultSpec {
            component: component.into(),
            kind: FaultKind::Flaky { fail_per_mille },
            from_ms,
            until_ms,
        });
        self
    }

    /// Schedule a latency spike adding `extra_steps` trace steps per call.
    pub fn latency(
        mut self,
        component: impl Into<String>,
        extra_steps: u32,
        from_ms: u64,
        until_ms: u64,
    ) -> Self {
        self.specs.push(FaultSpec {
            component: component.into(),
            kind: FaultKind::Latency { extra_steps },
            from_ms,
            until_ms,
        });
        self
    }

    /// The deterministic id of the `index`-th scheduled fault: a pure
    /// function of the plan seed and the spec position, so operators,
    /// SIEM events, and trace attributes all cite the same handle.
    pub fn fault_id(&self, index: usize) -> String {
        format!("fault-{:016x}", mix64(self.seed ^ mix64(index as u64)))
    }
}

/// A failure injected by the plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Deterministic id of the fault spec that fired.
    pub fault_id: String,
    /// The component id the caller presented.
    pub component: String,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault {} on {}", self.fault_id, self.component)
    }
}

impl std::error::Error for InjectedFault {}

/// Shards for the per-(spec, lane) flaky attempt counters.
const LANE_SHARDS: usize = 16;

/// The runtime half: a plan bound to the simulation clock, consulted at
/// every instrumented hop.
pub struct FaultPlane {
    plan: FaultPlan,
    clock: SimClock,
    enabled: AtomicBool,
    failures_injected: AtomicU64,
    latency_spans_injected: AtomicU64,
    /// Failures injected per component *category* (`idp`, `slurm`, …) —
    /// the per-dependency breakdown surfaced through `MetricsSnapshot`.
    failures_by_component: ShardMap<u64>,
    /// Per `(spec index, component, lane)` attempt counters feeding the
    /// flaky roll. Each lane (= flow) advances its own counter in
    /// program order, so rolls are identical under any worker count.
    flaky_counters: ShardMap<u64>,
}

impl FaultPlane {
    /// Bind a plan to the simulation clock. Starts enabled.
    pub fn new(plan: FaultPlan, clock: SimClock) -> FaultPlane {
        FaultPlane {
            plan,
            clock,
            enabled: AtomicBool::new(true),
            failures_injected: AtomicU64::new(0),
            latency_spans_injected: AtomicU64::new(0),
            failures_by_component: ShardMap::new(LANE_SHARDS),
            flaky_counters: ShardMap::new(LANE_SHARDS),
        }
    }

    /// The bound plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Arm or disarm the plane without uninstalling it (the overhead
    /// guard measures the disarmed cost).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
    }

    /// Whether the plane is armed.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Failures injected so far (outages + flaky hits).
    pub fn failures_injected(&self) -> u64 {
        self.failures_injected.load(Ordering::Relaxed)
    }

    /// `fault.latency` spans injected so far.
    pub fn latency_spans_injected(&self) -> u64 {
        self.latency_spans_injected.load(Ordering::Relaxed)
    }

    /// Failures injected so far, broken down by component category and
    /// sorted by name. The sum over all categories equals
    /// [`failures_injected`](Self::failures_injected).
    pub fn failures_by_component(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        self.failures_by_component
            .for_each(|k, &v| out.push((k.to_string(), v)));
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Does `spec` target `component` (exact id or bare category)?
    fn matches(spec: &FaultSpec, component: &str) -> bool {
        if spec.component == component {
            return true;
        }
        let category = component.split(':').next().unwrap_or(component);
        spec.component == category
    }

    /// The trace stage latency spans of `component` belong to.
    fn stage_of(component: &str) -> dri_trace::Stage {
        match component.split(':').next().unwrap_or(component) {
            "idp" | "proxy" => dri_trace::Stage::Discovery,
            "broker" => dri_trace::Stage::Broker,
            "sshca" => dri_trace::Stage::SshCa,
            "bastion" => dri_trace::Stage::Bastion,
            "edge" => dri_trace::Stage::Edge,
            "tunnel" => dri_trace::Stage::Tunnel,
            "slurm" | "login" => dri_trace::Stage::Cluster,
            "tailnet" => dri_trace::Stage::Tailnet,
            _ => dri_trace::Stage::Flow,
        }
    }

    /// Consult the plane at a hop of `component`. `Ok(())` lets the call
    /// proceed; `Err` means the active fault fires here. On failure the
    /// fault id and component are attached to the innermost open trace
    /// span (`fault.injected` / `fault.component`); latency faults
    /// materialise as `fault.latency` child spans instead of failing.
    pub fn apply(&self, component: &str) -> Result<(), InjectedFault> {
        if !self.enabled() {
            return Ok(());
        }
        let now = self.clock.now_ms();
        for (index, spec) in self.plan.specs.iter().enumerate() {
            if now < spec.from_ms || now >= spec.until_ms || !Self::matches(spec, component) {
                continue;
            }
            match spec.kind {
                FaultKind::Outage => {
                    return Err(self.fail(index, component));
                }
                FaultKind::Flaky { fail_per_mille } => {
                    if self.flaky_roll(index, component, fail_per_mille) {
                        return Err(self.fail(index, component));
                    }
                }
                FaultKind::Latency { extra_steps } => {
                    let fault_id = self.plan.fault_id(index);
                    let n = extra_steps.min(16);
                    for _ in 0..n {
                        let _s = dri_trace::span_with(
                            "fault.latency",
                            Self::stage_of(component),
                            &[("fault.component", component), ("fault.id", &fault_id)],
                        );
                    }
                    self.latency_spans_injected
                        .fetch_add(u64::from(n), Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }

    /// The id of an outage currently covering `component`, if any — the
    /// handle kill-switch drills cite in their SIEM events.
    pub fn active_outage(&self, component: &str) -> Option<String> {
        if !self.enabled() {
            return None;
        }
        let now = self.clock.now_ms();
        self.plan.specs.iter().enumerate().find_map(|(i, spec)| {
            (spec.kind == FaultKind::Outage
                && now >= spec.from_ms
                && now < spec.until_ms
                && Self::matches(spec, component))
            .then(|| self.plan.fault_id(i))
        })
    }

    /// Deterministic per-lane coin flip for a flaky spec. The lane is
    /// the calling flow's trace id (empty outside a traced flow), so
    /// the K-th attempt of a given flow always rolls the same value.
    fn flaky_roll(&self, index: usize, component: &str, fail_per_mille: u16) -> bool {
        let lane = dri_trace::current_trace_id().unwrap_or_default();
        let key = format!("{index}|{component}|{lane}");
        let attempt = {
            let mut shard = self.flaky_counters.write_shard(&key);
            let n = shard.entry(key.clone()).or_insert(0);
            *n += 1;
            *n
        };
        let roll = mix64(self.plan.seed ^ mix64(index as u64) ^ hash_key(&key) ^ attempt) % 1000;
        roll < u64::from(fail_per_mille)
    }

    fn fail(&self, index: usize, component: &str) -> InjectedFault {
        let fault_id = self.plan.fault_id(index);
        self.failures_injected.fetch_add(1, Ordering::Relaxed);
        let category = component.split(':').next().unwrap_or(component);
        {
            let mut shard = self.failures_by_component.write_shard(category);
            *shard.entry(category.to_string()).or_insert(0) += 1;
        }
        dri_trace::add_attr("fault.injected", &fault_id);
        dri_trace::add_attr("fault.component", component);
        InjectedFault {
            fault_id,
            component: component.to_string(),
        }
    }
}

impl std::fmt::Debug for FaultPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlane")
            .field("specs", &self.plan.specs.len())
            .field("enabled", &self.enabled())
            .field("failures_injected", &self.failures_injected())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(plan: FaultPlan) -> (FaultPlane, SimClock) {
        let clock = SimClock::new();
        (FaultPlane::new(plan, clock.clone()), clock)
    }

    #[test]
    fn outage_fails_only_inside_window() {
        let (p, clock) = plane(FaultPlan::new(7).outage("broker", 2_000, 3_000));
        assert!(p.apply("broker").is_ok(), "before window");
        clock.set(2_000);
        let err = p.apply("broker").unwrap_err();
        assert_eq!(err.component, "broker");
        assert_eq!(err.fault_id, p.plan().fault_id(0));
        clock.set(3_000);
        assert!(p.apply("broker").is_ok(), "window end is exclusive");
        assert_eq!(p.failures_injected(), 1);
        assert_eq!(p.failures_by_component(), vec![("broker".to_string(), 1)]);
    }

    #[test]
    fn per_component_counters_aggregate_instances_by_category() {
        let (p, clock) = plane(
            FaultPlan::new(7)
                .outage("idp", 0, 10_000)
                .outage("slurm", 0, 10_000),
        );
        clock.set(500);
        assert!(p.apply("idp:https://idp.bristol.ac.uk").is_err());
        assert!(p.apply("idp:https://idp.cardiff.ac.uk").is_err());
        assert!(p.apply("slurm").is_err());
        assert_eq!(
            p.failures_by_component(),
            vec![("idp".to_string(), 2), ("slurm".to_string(), 1)]
        );
        assert_eq!(p.failures_injected(), 3);
    }

    #[test]
    fn category_prefix_matches_instances() {
        let (p, clock) = plane(FaultPlan::new(7).outage("idp", 0, 10_000));
        clock.set(500);
        assert!(p.apply("idp:https://idp.bristol.ac.uk").is_err());
        assert!(p.apply("idp:https://idp.cardiff.ac.uk").is_err());
        assert!(p.apply("broker").is_ok());
    }

    #[test]
    fn exact_component_does_not_hit_siblings() {
        let (p, clock) =
            plane(FaultPlan::new(7).outage("idp:https://idp.bristol.ac.uk", 0, 10_000));
        clock.set(500);
        assert!(p.apply("idp:https://idp.bristol.ac.uk").is_err());
        assert!(
            p.apply("idp:https://idp.cardiff.ac.uk").is_ok(),
            "other IdPs of the category stay up"
        );
    }

    #[test]
    fn disabled_plane_is_transparent() {
        let (p, clock) = plane(FaultPlan::new(7).outage("broker", 0, 10_000));
        clock.set(500);
        p.set_enabled(false);
        assert!(p.apply("broker").is_ok());
        assert_eq!(p.failures_injected(), 0);
        assert_eq!(p.active_outage("broker"), None);
        p.set_enabled(true);
        assert!(p.apply("broker").is_err());
    }

    #[test]
    fn flaky_rolls_are_deterministic_and_roughly_calibrated() {
        let run = || {
            let (p, clock) = plane(FaultPlan::new(99).flaky("edge", 500, 0, 1_000_000));
            clock.set(10);
            (0..200)
                .map(|_| p.apply("edge").is_err())
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "same plan, same outcomes");
        let failures = a.iter().filter(|f| **f).count();
        assert!(
            (60..=140).contains(&failures),
            "~50% failure rate, got {failures}/200"
        );
    }

    #[test]
    fn flaky_zero_and_full_rates_are_exact() {
        let (p, clock) = plane(
            FaultPlan::new(1)
                .flaky("a", 0, 0, 1_000_000)
                .flaky("b", 1000, 0, 1_000_000),
        );
        clock.set(10);
        for _ in 0..50 {
            assert!(p.apply("a").is_ok());
            assert!(p.apply("b").is_err());
        }
    }

    #[test]
    fn active_outage_reports_the_fault_id() {
        let (p, clock) = plane(
            FaultPlan::new(3)
                .latency("broker", 2, 0, 10_000)
                .outage("bastion", 100, 10_000),
        );
        clock.set(500);
        assert_eq!(p.active_outage("broker"), None, "latency is not an outage");
        assert_eq!(p.active_outage("bastion"), Some(p.plan().fault_id(1)));
    }

    #[test]
    fn fault_ids_are_stable_per_seed_and_index() {
        let a = FaultPlan::new(5).outage("x", 0, 1);
        let b = FaultPlan::new(5).outage("x", 0, 1);
        assert_eq!(a.fault_id(0), b.fault_id(0));
        assert_ne!(a.fault_id(0), a.fault_id(1));
        assert_ne!(a.fault_id(0), FaultPlan::new(6).fault_id(0));
    }

    #[test]
    fn latency_fault_counts_spans_without_failing() {
        let (p, clock) = plane(FaultPlan::new(4).latency("sshca", 3, 0, 10_000));
        clock.set(10);
        assert!(p.apply("sshca").is_ok());
        // No flow is active in unit tests, so spans are no-ops, but the
        // injection counter still reflects the schedule.
        assert_eq!(p.latency_spans_injected(), 3);
    }
}
