//! Scheduling-independence of the fault plane and circuit breakers.
//!
//! The tentpole guarantee at the crate level: for any seed, flaky rate,
//! and worker count, running the same per-lane call sequences serially
//! or fanned out over threads yields identical injected-failure counts,
//! identical per-lane breaker end states, and identical trip/rejection
//! totals — whole lanes are the unit of work, and every decision is a
//! pure function of `(seed, lane, attempt)`.

use std::sync::Arc;

use dri_clock::SimClock;
use dri_fault::{BreakerConfig, CircuitBreakers, FaultPlan, FaultPlane};
use dri_trace::{flow, Stage, Tracer};
use proptest::prelude::*;

const LANES: usize = 24;
const CALLS_PER_LANE: usize = 6;

/// Drive every lane's calls through one shared plane + breaker set,
/// assigning whole lanes to workers round-robin. Returns per-lane final
/// breaker states plus the global counters.
fn run(seed: u64, fail_per_mille: u16, workers: usize) -> (Vec<&'static str>, u64, u64, u64) {
    let clock = SimClock::new();
    clock.set(10);
    let tracer = Arc::new(Tracer::new(seed, 16, clock.clone()));
    tracer.set_enabled(true);
    let plan = FaultPlan::new(seed).flaky("idp", fail_per_mille, 0, 1_000_000);
    let plane = FaultPlane::new(plan, clock.clone());
    let breakers = CircuitBreakers::new(BreakerConfig::default());

    let work = |lane: usize| {
        let label = format!("lane-{lane}");
        // One flow per lane: the lane's trace id keys the flaky rolls.
        let _flow = flow(&tracer, &label, "fault.lane", Stage::Flow);
        for _ in 0..CALLS_PER_LANE {
            if breakers.admit("idp", &label, clock.now_ms()).is_err() {
                continue;
            }
            let ok = plane.apply("idp:https://idp.example").is_ok();
            breakers.record("idp", &label, clock.now_ms(), ok);
        }
    };

    if workers <= 1 {
        for lane in 0..LANES {
            work(lane);
        }
    } else {
        std::thread::scope(|s| {
            for w in 0..workers {
                let work = &work;
                s.spawn(move || {
                    let mut lane = w;
                    while lane < LANES {
                        work(lane);
                        lane += workers;
                    }
                });
            }
        });
    }

    let states = (0..LANES)
        .map(|lane| {
            breakers
                .state("idp", &format!("lane-{lane}"), clock.now_ms())
                .as_str()
        })
        .collect();
    (
        states,
        breakers.trips(),
        breakers.rejections(),
        plane.failures_injected(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn breaker_outcomes_are_identical_serial_vs_eight_workers(
        seed in 0u64..10_000,
        fail_per_mille in 0u16..1000,
    ) {
        let serial = run(seed, fail_per_mille, 1);
        let parallel = run(seed, fail_per_mille, 8);
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn breaker_outcomes_are_identical_across_worker_counts(
        seed in 0u64..10_000,
        fail_per_mille in 200u16..900,
        workers in 2usize..9,
    ) {
        let serial = run(seed, fail_per_mille, 1);
        let parallel = run(seed, fail_per_mille, workers);
        prop_assert_eq!(serial, parallel);
    }
}

#[test]
fn high_failure_rates_trip_lanes_and_reject_fast() {
    // At a 95% failure rate every lane should trip within its six calls,
    // and later calls in the lane are rejected by the open breaker.
    let (states, trips, rejections, injected) = run(5, 950, 1);
    assert!(trips >= LANES as u64 / 2, "trips: {trips}");
    assert!(rejections > 0);
    assert!(injected > 0);
    assert!(states.contains(&"open"));
    assert_eq!(run(5, 950, 1), run(5, 950, 8));
}
