//! Attack scenario injectors for the SIEM detection experiment (E13).
//!
//! Each scenario drives the real control plane the way an attacker
//! would — wrong passwords at the IdPs, forged/expired tokens at
//! services, probing connections from a foothold — and returns ground
//! truth so the experiment can score detection rate and latency.

use dri_core::{Infrastructure, UNIVERSITY_IDP};
use dri_crypto::ed25519::SigningKey;
use dri_crypto::jwt::{sign, Claims, Signer};
use dri_siem::events::{EventKind, Severity};

/// Which attack to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackScenario {
    /// Password spraying against one federated account.
    CredentialStuffing {
        /// Number of attempts.
        attempts: usize,
    },
    /// Replay of forged / mis-signed tokens against the Jupyter
    /// authenticator.
    TokenForgery {
        /// Number of forged tokens presented.
        attempts: usize,
    },
    /// Lateral probing from a compromised login node.
    LateralMovement {
        /// Number of denied internal connections attempted.
        probes: usize,
    },
}

/// Ground truth + observed effects of an injected attack.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// The scenario.
    pub scenario: AttackScenario,
    /// Subject / source the attack ran against (what the SIEM should name).
    pub expected_alert_subject: String,
    /// The detection rule expected to fire.
    pub expected_rule: &'static str,
    /// Simulated time the attack began (ms).
    pub started_at_ms: u64,
    /// Attack operations that the control plane *rejected* (all of them,
    /// if the design holds).
    pub rejected: usize,
    /// Attack operations attempted.
    pub attempted: usize,
}

/// Run an attack scenario against the infrastructure.
///
/// Events flow into the SIEM exactly as they would in production: authn
/// failures from the broker path, token rejections from the services,
/// connection denials from the fabric (via `pump_network_logs`).
pub fn run_attack(infra: &Infrastructure, scenario: AttackScenario) -> AttackOutcome {
    let started_at_ms = infra.clock.now_ms();
    match scenario {
        AttackScenario::CredentialStuffing { attempts } => {
            // The victim exists; the attacker does not know the password.
            infra.create_federated_user("victim-cs", "the-real-password");
            let mut rejected = 0;
            for i in 0..attempts {
                infra.clock.advance(500);
                let result = infra.university_idp.authenticate(
                    "victim-cs",
                    &format!("guess-{i}"),
                    None,
                    UNIVERSITY_IDP,
                );
                if result.is_err() {
                    rejected += 1;
                    infra.emit(
                        "fds/broker",
                        EventKind::AuthnFailure,
                        "victim-cs",
                        format!("failed password attempt {i}"),
                        Severity::Warning,
                    );
                }
            }
            AttackOutcome {
                scenario,
                expected_alert_subject: "victim-cs".into(),
                expected_rule: "credential-stuffing",
                started_at_ms,
                rejected,
                attempted: attempts,
            }
        }
        AttackScenario::TokenForgery { attempts } => {
            // Attacker signs tokens with their own key, hoping services
            // don't really check. They do.
            let rogue = SigningKey::from_seed(&[0xEE; 32]);
            let mut rejected = 0;
            for i in 0..attempts {
                infra.clock.advance(500);
                let mut claims = Claims::new(
                    "https://broker.isambard.ac.uk",
                    "mallory",
                    "jupyter",
                    infra.clock.now_secs(),
                    900,
                );
                claims.roles = vec!["researcher".into()];
                claims.token_id = format!("forged-{i}");
                let forged = sign(&claims, &Signer::Ed25519(&rogue), "fds-key-1");
                let result = infra.jupyter.spawn(&[("x-auth-token".into(), forged)]);
                if result.is_err() {
                    rejected += 1;
                    infra.emit(
                        "mdc/login01",
                        EventKind::TokenRejected,
                        "mallory",
                        format!("forged token {i} rejected"),
                        Severity::Warning,
                    );
                }
            }
            AttackOutcome {
                scenario,
                expected_alert_subject: "mallory".into(),
                expected_rule: "token-abuse",
                started_at_ms,
                rejected,
                attempted: attempts,
            }
        }
        AttackScenario::LateralMovement { probes } => {
            // A compromised login node probes the zones it should never
            // reach.
            infra.network.mark_compromised("mdc/login01", true);
            let targets = [
                ("mdc/mgmt01", "admin-api"),
                ("sec/siem", "siem-api"),
                ("fds/broker", "https"),
            ];
            let mut rejected = 0;
            for i in 0..probes {
                infra.clock.advance(500);
                let (dst, svc) = targets[i % targets.len()];
                if infra.network.connect("mdc/login01", dst, svc).is_err() {
                    rejected += 1;
                }
            }
            // The SWS log forwarder ships the denials to SEC.
            infra.pump_network_logs();
            AttackOutcome {
                scenario,
                expected_alert_subject: "mdc/login01".into(),
                expected_rule: "lateral-movement",
                started_at_ms,
                rejected,
                attempted: probes,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dri_core::InfraConfig;

    #[test]
    fn credential_stuffing_is_rejected_and_detected() {
        let infra = Infrastructure::new(InfraConfig::default());
        let outcome = run_attack(&infra, AttackScenario::CredentialStuffing { attempts: 8 });
        assert_eq!(outcome.rejected, 8, "every guess fails");
        let alerts = infra.siem.alerts();
        assert!(alerts.iter().any(
            |a| a.rule == "credential-stuffing" && a.subject == outcome.expected_alert_subject
        ));
    }

    #[test]
    fn forged_tokens_rejected_and_detected() {
        let infra = Infrastructure::new(InfraConfig::default());
        let outcome = run_attack(&infra, AttackScenario::TokenForgery { attempts: 6 });
        assert_eq!(outcome.rejected, 6, "signature checks hold");
        assert!(infra
            .siem
            .alerts()
            .iter()
            .any(|a| a.rule == "token-abuse" && a.subject == "mallory"));
        // No notebook was spawned.
        assert_eq!(infra.jupyter.session_count(), 0);
    }

    #[test]
    fn lateral_probes_blocked_and_detected() {
        let infra = Infrastructure::new(InfraConfig::default());
        // Clear construction-time logs first.
        let _ = infra.network.drain_log();
        let outcome = run_attack(&infra, AttackScenario::LateralMovement { probes: 6 });
        assert_eq!(outcome.rejected, 6, "segmentation holds");
        let alerts = infra.siem.alerts();
        assert!(alerts
            .iter()
            .any(|a| a.rule == "lateral-movement" && a.subject == "mdc/login01"));
    }

    #[test]
    fn detection_feeds_the_kill_switch() {
        let infra = Infrastructure::new(InfraConfig::default());
        let _ = infra.network.drain_log();
        run_attack(&infra, AttackScenario::LateralMovement { probes: 6 });
        let alert = infra
            .siem
            .alerts()
            .into_iter()
            .find(|a| a.rule == "lateral-movement")
            .unwrap();
        let action = infra.respond_to_alert(&alert);
        assert!(action.contains("isolated host mdc/login01"));
        // The host really is cut off now.
        assert!(infra
            .network
            .check("sws/bastion", "mdc/login01", "ssh")
            .is_err());
    }
}
