//! # dri-workload — workload and attack generators
//!
//! Drives the assembled infrastructure the way the paper's evaluation
//! did: onboarding populations of projects and users, the RSECon24-style
//! concurrent login + notebook storm (45 trainees, swept to 1024 here),
//! injected attack scenarios for the SIEM detection experiment, and the
//! token-lifetime trade-off model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod lifetime;
pub mod population;
pub mod simulate;
pub mod storm;

pub use attacks::{run_attack, AttackOutcome, AttackScenario};
pub use lifetime::{best_lifetime, sweep_lifetimes, LifetimePoint};
pub use population::{build_population, Population, ProjectHandle};
pub use simulate::{run_day, DayConfig, DayReport};
pub use storm::{run_storm, StormMode, StormResult};
