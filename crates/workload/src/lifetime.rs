//! The token/certificate lifetime trade-off (E12).
//!
//! Design principle 1 of §III: *"All authentication and access is based
//! on short-lived role-based access tokens."* Short lifetimes bound the
//! window a stolen credential stays usable, but cost interactive
//! re-authentications. This module computes both sides of the trade for
//! a working pattern, producing the curve whose knee justifies the
//! paper's minutes-to-hours choices.

/// One point of the lifetime sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimePoint {
    /// Credential lifetime (seconds).
    pub ttl_secs: u64,
    /// Interactive re-authentications per working day.
    pub reauths_per_day: u64,
    /// Expected usable window of a credential stolen at a uniformly
    /// random moment of its life (seconds): TTL/2.
    pub mean_exposure_secs: f64,
    /// Worst-case exposure (seconds): the full TTL.
    pub worst_exposure_secs: u64,
    /// Combined cost under the given exposure weight (lower is better):
    /// `reauths + weight * mean_exposure_hours`.
    pub combined_cost: f64,
}

/// Sweep credential lifetimes for a `work_secs`-long day.
///
/// `exposure_weight` converts an hour of mean exposure into the
/// equivalent annoyance of one re-authentication; the default used by
/// the E12 bench is 2.0 (an hour of stolen-credential exposure is twice
/// as bad as one extra login).
pub fn sweep_lifetimes(
    ttls_secs: &[u64],
    work_secs: u64,
    exposure_weight: f64,
) -> Vec<LifetimePoint> {
    ttls_secs
        .iter()
        .map(|&ttl| {
            assert!(ttl > 0, "lifetime must be positive");
            let reauths = work_secs.div_ceil(ttl);
            let mean_exposure = ttl as f64 / 2.0;
            LifetimePoint {
                ttl_secs: ttl,
                reauths_per_day: reauths,
                mean_exposure_secs: mean_exposure,
                worst_exposure_secs: ttl,
                combined_cost: reauths as f64 + exposure_weight * (mean_exposure / 3600.0),
            }
        })
        .collect()
}

/// The TTL with the lowest combined cost.
pub fn best_lifetime(points: &[LifetimePoint]) -> Option<&LifetimePoint> {
    points
        .iter()
        .min_by(|a, b| a.combined_cost.partial_cmp(&b.combined_cost).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: u64 = 8 * 3600;

    #[test]
    fn reauth_count_decreases_with_ttl() {
        let ttls = [900, 3600, 4 * 3600, 8 * 3600, 24 * 3600];
        let points = sweep_lifetimes(&ttls, DAY, 2.0);
        let reauths: Vec<u64> = points.iter().map(|p| p.reauths_per_day).collect();
        assert_eq!(reauths, vec![32, 8, 2, 1, 1]);
    }

    #[test]
    fn exposure_increases_with_ttl() {
        let points = sweep_lifetimes(&[900, 3600, 86400], DAY, 2.0);
        assert!(points[0].mean_exposure_secs < points[1].mean_exposure_secs);
        assert!(points[1].mean_exposure_secs < points[2].mean_exposure_secs);
        assert_eq!(points[2].worst_exposure_secs, 86400);
    }

    #[test]
    fn crossover_favours_hours_not_extremes() {
        // With exposure weighted at 2 reauth-equivalents/hour, the best
        // TTL is neither 1 minute (reauth hell) nor 1 week (exposure).
        let ttls: Vec<u64> = vec![60, 900, 3600, 4 * 3600, 8 * 3600, 24 * 3600, 7 * 24 * 3600];
        let points = sweep_lifetimes(&ttls, DAY, 2.0);
        let best = best_lifetime(&points).unwrap();
        assert!(best.ttl_secs >= 3600, "not re-auth hell: {}", best.ttl_secs);
        assert!(
            best.ttl_secs <= 24 * 3600,
            "not unlimited exposure: {}",
            best.ttl_secs
        );
    }

    #[test]
    fn heavier_exposure_weight_shortens_best_ttl() {
        let ttls: Vec<u64> = vec![900, 3600, 4 * 3600, 8 * 3600, 24 * 3600];
        let casual = best_lifetime(&sweep_lifetimes(&ttls, DAY, 0.5))
            .unwrap()
            .ttl_secs;
        let strict = best_lifetime(&sweep_lifetimes(&ttls, DAY, 50.0))
            .unwrap()
            .ttl_secs;
        assert!(strict <= casual);
    }
}
