//! The RSECon24 storm: N users log in and spawn notebooks concurrently.
//!
//! §IV-B: "The conference tested the Jupyter notebook user story at
//! scale, with 45 trainees logging in and running notebooks
//! simultaneously." The storm runs user story 6 for every member of a
//! population, either serially or fanned out over crossbeam scoped
//! threads, and reports completion counts, per-flow protocol steps, and
//! wall-clock latency quantiles.

use std::time::Instant;

use dri_core::Infrastructure;
use parking_lot::Mutex;

/// Serial or thread-parallel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StormMode {
    /// One flow at a time.
    Serial,
    /// Fan out over `n` OS threads.
    Parallel(usize),
}

/// Outcome of a storm run.
#[derive(Debug, Clone)]
pub struct StormResult {
    /// Users attempted.
    pub attempted: usize,
    /// Notebook sessions successfully spawned.
    pub completed: usize,
    /// Failures (label, error text).
    pub failures: Vec<(String, String)>,
    /// Protocol steps per successful flow (constant by design — the
    /// experiment asserts flows do not degrade under load).
    pub steps_per_flow: usize,
    /// Wall-clock latency per flow in microseconds, sorted.
    pub latencies_us: Vec<u64>,
    /// Total wall time (µs).
    pub total_us: u64,
}

impl StormResult {
    /// Latency quantile (0.0–1.0) in microseconds.
    pub fn latency_quantile(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let idx = ((self.latencies_us.len() - 1) as f64 * q).round() as usize;
        self.latencies_us[idx]
    }

    /// Throughput in flows/second of wall time.
    pub fn throughput(&self) -> f64 {
        if self.total_us == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.total_us as f64 / 1e6)
    }
}

/// Run the storm: each `label` executes user story 6 against `project`
/// from a unique source IP (so the DDoS scorer sees distinct clients).
///
/// Users must already be onboarded members of their project and logged
/// in (the population builder leaves them logged in).
pub fn run_storm(
    infra: &Infrastructure,
    users: &[(String, String)], // (label, project_name)
    mode: StormMode,
) -> StormResult {
    let failures = Mutex::new(Vec::new());
    let latencies = Mutex::new(Vec::with_capacity(users.len()));
    let steps = Mutex::new(0usize);
    let start = Instant::now();

    let run_one = |idx: usize, label: &str, project: &str| {
        let source_ip = format!("198.51.{}.{}", idx / 250, idx % 250 + 1);
        let t0 = Instant::now();
        match infra.story6_jupyter(label, project, &source_ip) {
            Ok(outcome) => {
                latencies.lock().push(t0.elapsed().as_micros() as u64);
                let mut s = steps.lock();
                if *s == 0 {
                    *s = outcome.trace.len();
                }
            }
            Err(e) => {
                failures.lock().push((label.to_string(), e.to_string()));
            }
        }
    };

    match mode {
        StormMode::Serial => {
            for (idx, (label, project)) in users.iter().enumerate() {
                run_one(idx, label, project);
            }
        }
        StormMode::Parallel(threads) => {
            let threads = threads.max(1);
            let chunk_size = users.len().div_ceil(threads).max(1);
            crossbeam::thread::scope(|scope| {
                for (ci, chunk) in users.chunks(chunk_size).enumerate() {
                    let run_one = &run_one;
                    scope.spawn(move |_| {
                        for (i, (label, project)) in chunk.iter().enumerate() {
                            run_one(ci * chunk_size + i, label, project);
                        }
                    });
                }
            })
            .expect("storm threads");
        }
    }

    let total_us = start.elapsed().as_micros() as u64;
    let mut latencies = latencies.into_inner();
    latencies.sort_unstable();
    let failures = failures.into_inner();
    StormResult {
        attempted: users.len(),
        completed: latencies.len(),
        failures,
        steps_per_flow: steps.into_inner(),
        latencies_us: latencies,
        total_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::build_population;
    use dri_core::InfraConfig;

    fn storm_users(infra: &Infrastructure, projects: usize, per: usize) -> Vec<(String, String)> {
        let pop = build_population(infra, projects, per).unwrap();
        pop.projects
            .iter()
            .flat_map(|p| {
                std::iter::once((p.pi_label.clone(), p.name.clone())).chain(
                    p.researcher_labels
                        .iter()
                        .map(|r| (r.clone(), p.name.clone())),
                )
            })
            .collect()
    }

    #[test]
    fn serial_storm_45_users_all_succeed() {
        let infra = Infrastructure::new(InfraConfig::default());
        let users = storm_users(&infra, 9, 4); // 9 * (1 + 4) = 45
        assert_eq!(users.len(), 45);
        let result = run_storm(&infra, &users, StormMode::Serial);
        assert_eq!(result.completed, 45, "failures: {:?}", result.failures);
        assert_eq!(infra.jupyter.session_count(), 45);
        assert!(result.steps_per_flow >= 5);
        assert!(result.throughput() > 0.0);
    }

    #[test]
    fn parallel_storm_matches_serial_semantics() {
        let infra = Infrastructure::new(InfraConfig::default());
        let users = storm_users(&infra, 5, 3); // 20 users
        let result = run_storm(&infra, &users, StormMode::Parallel(4));
        assert_eq!(result.completed, 20, "failures: {:?}", result.failures);
        assert_eq!(infra.jupyter.session_count(), 20);
        // No cross-tenant leakage: every notebook runs under the unix
        // account of its own subject.
        for p in 0..5 {
            let project = infra.portal.project(&format!("proj-{:06}", p + 1)).unwrap();
            for m in &project.members {
                assert!(m.unix_account.starts_with('u'));
            }
        }
    }

    #[test]
    fn storm_respects_capacity() {
        let cfg = InfraConfig::builder().jupyter_capacity(10).build().unwrap();
        let infra = Infrastructure::new(cfg);
        let users = storm_users(&infra, 4, 3); // 16 users, capacity 10
        let result = run_storm(&infra, &users, StormMode::Serial);
        assert_eq!(result.completed, 10);
        assert_eq!(result.failures.len(), 6);
        assert!(result.failures.iter().all(|(_, e)| e.contains("capacity")));
    }

    #[test]
    fn quantiles_are_ordered() {
        let infra = Infrastructure::new(InfraConfig::default());
        let users = storm_users(&infra, 3, 2);
        let result = run_storm(&infra, &users, StormMode::Serial);
        assert!(result.latency_quantile(0.5) <= result.latency_quantile(0.99));
        assert_eq!(
            result.latency_quantile(1.0),
            *result.latencies_us.last().unwrap()
        );
    }
}
