//! A day-in-the-life simulation driver.
//!
//! Drives the infrastructure through a multi-hour simulated timeline with
//! Poisson arrivals: researchers show up, authenticate, fetch SSH
//! certificates, open notebooks, submit batch jobs; sessions and
//! credentials expire and renew on the paper's short-lived schedule. The
//! report quantifies the operational cost of zero trust (token volume,
//! re-authentications) against delivered work (jobs, notebooks).

use dri_clock::SimRng;
use dri_core::{FlowError, Infrastructure};

use crate::population::Population;

/// Parameters of the simulated day.
#[derive(Debug, Clone)]
pub struct DayConfig {
    /// Simulated duration (seconds).
    pub duration_secs: u64,
    /// Mean seconds between user activity events (Poisson).
    pub mean_interarrival_secs: f64,
    /// Probability an activity is a notebook (vs. an SSH+job session).
    pub notebook_fraction: f64,
    /// Nodes requested by each batch job.
    pub job_nodes: u32,
    /// Walltime of each batch job (seconds).
    pub job_walltime_secs: u64,
}

impl Default for DayConfig {
    fn default() -> Self {
        DayConfig {
            duration_secs: 8 * 3600,
            mean_interarrival_secs: 120.0,
            notebook_fraction: 0.4,
            job_nodes: 2,
            job_walltime_secs: 2 * 3600,
        }
    }
}

/// What happened during the simulated day.
#[derive(Debug, Clone, Default)]
pub struct DayReport {
    /// Activity events generated.
    pub activities: usize,
    /// Successful SSH sessions.
    pub ssh_sessions: usize,
    /// Batch jobs submitted.
    pub jobs_submitted: usize,
    /// Notebooks opened.
    pub notebooks: usize,
    /// Interactive re-authentications forced by session expiry.
    pub reauthentications: usize,
    /// Activities refused (policy or capacity) — should be 0 on a
    /// healthy day.
    pub refusals: usize,
    /// Broker tokens minted over the day.
    pub tokens_minted: u64,
    /// Scheduler node-hours delivered (from accounting).
    pub node_hours: f64,
}

/// Run the simulated day over an onboarded population.
pub fn run_day(
    infra: &Infrastructure,
    population: &Population,
    config: &DayConfig,
    rng: &mut SimRng,
) -> DayReport {
    let users: Vec<(String, String)> = population
        .projects
        .iter()
        .flat_map(|p| {
            std::iter::once((p.pi_label.clone(), p.name.clone())).chain(
                p.researcher_labels
                    .iter()
                    .map(|r| (r.clone(), p.name.clone())),
            )
        })
        .collect();
    assert!(!users.is_empty(), "population must be onboarded");

    let tokens_before = infra.broker.tokens_issued();
    let start = infra.clock.now_secs();
    let mut report = DayReport::default();
    let mut ip_counter = 0u64;

    loop {
        let wait = rng.next_exp(config.mean_interarrival_secs).max(1.0) as u64;
        if infra.clock.now_secs() + wait >= start + config.duration_secs {
            break;
        }
        infra.clock.advance_secs(wait);
        infra.scheduler.tick();
        report.activities += 1;

        let (label, project) = rng.choose(&users).expect("non-empty").clone();
        // Re-authenticate when the broker session has lapsed.
        if infra.session_of(&label).is_err() {
            match infra.federated_login(&label) {
                Ok(_) => report.reauthentications += 1,
                Err(_) => {
                    report.refusals += 1;
                    continue;
                }
            }
        }

        if rng.chance(config.notebook_fraction) {
            ip_counter += 1;
            let ip = format!("203.0.{}.{}", ip_counter / 200, ip_counter % 200 + 1);
            match infra.story6_jupyter(&label, &project, &ip) {
                Ok(_) => report.notebooks += 1,
                Err(FlowError::Jupyter(_)) => report.refusals += 1,
                Err(_) => report.refusals += 1,
            }
        } else {
            match infra.story4_ssh_connect(&label, &project) {
                Ok(outcome) => {
                    report.ssh_sessions += 1;
                    if infra
                        .scheduler
                        .submit(
                            &outcome.shell.account,
                            &project,
                            "gh",
                            config.job_nodes,
                            config.job_walltime_secs,
                        )
                        .is_ok()
                    {
                        report.jobs_submitted += 1;
                        infra.scheduler.tick();
                    }
                }
                Err(_) => report.refusals += 1,
            }
        }
    }

    // Let the tail of the queue finish.
    infra.clock.advance_secs(config.job_walltime_secs + 1);
    infra.scheduler.tick();

    report.tokens_minted = infra.broker.tokens_issued() - tokens_before;
    report.node_hours = infra
        .scheduler
        .accounting_report()
        .iter()
        .map(|r| r.node_hours)
        .sum();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::build_population;
    use dri_core::InfraConfig;

    #[test]
    fn a_quiet_day_delivers_work_without_refusals() {
        let infra = Infrastructure::new(InfraConfig::default());
        let population = build_population(&infra, 3, 2).unwrap();
        let mut rng = SimRng::seed_from_u64(7);
        let config = DayConfig {
            duration_secs: 4 * 3600,
            mean_interarrival_secs: 300.0,
            ..Default::default()
        };
        let report = run_day(&infra, &population, &config, &mut rng);
        assert!(report.activities > 10, "{report:?}");
        assert_eq!(report.refusals, 0, "{report:?}");
        assert!(report.jobs_submitted + report.notebooks > 0);
        assert!(report.tokens_minted as usize >= report.ssh_sessions + report.notebooks);
        assert!(report.node_hours > 0.0);
    }

    #[test]
    fn long_day_forces_reauthentication() {
        let cfg = InfraConfig {
            session_ttl_secs: 3600, // 1-hour sessions
            ..InfraConfig::default()
        };
        let infra = Infrastructure::new(cfg);
        let population = build_population(&infra, 2, 1).unwrap();
        let mut rng = SimRng::seed_from_u64(9);
        let config = DayConfig {
            duration_secs: 8 * 3600,
            mean_interarrival_secs: 600.0,
            ..Default::default()
        };
        let report = run_day(&infra, &population, &config, &mut rng);
        assert!(
            report.reauthentications > 0,
            "1h sessions across an 8h day must re-auth: {report:?}"
        );
        assert_eq!(report.refusals, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let infra = Infrastructure::new(InfraConfig::default());
            let population = build_population(&infra, 2, 2).unwrap();
            let mut rng = SimRng::seed_from_u64(11);
            let config = DayConfig {
                duration_secs: 2 * 3600,
                ..Default::default()
            };
            let r = run_day(&infra, &population, &config, &mut rng);
            (r.activities, r.ssh_sessions, r.notebooks, r.tokens_minted)
        };
        assert_eq!(run(), run());
    }
}
