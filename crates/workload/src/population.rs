//! Population builder: projects, PIs and researchers at scale.

use dri_core::{FlowError, Infrastructure, ProjectId};

/// One onboarded project with its people.
#[derive(Debug, Clone)]
pub struct ProjectHandle {
    /// Portal project id.
    pub project_id: ProjectId,
    /// Project name.
    pub name: String,
    /// The PI's user label.
    pub pi_label: String,
    /// Researcher labels.
    pub researcher_labels: Vec<String>,
}

/// A fully onboarded population.
#[derive(Debug, Clone)]
pub struct Population {
    /// The projects.
    pub projects: Vec<ProjectHandle>,
}

impl Population {
    /// Every user label, PIs first.
    pub fn all_labels(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.projects {
            out.push(p.pi_label.clone());
            out.extend(p.researcher_labels.iter().cloned());
        }
        out
    }

    /// Total humans.
    pub fn user_count(&self) -> usize {
        self.projects
            .iter()
            .map(|p| 1 + p.researcher_labels.len())
            .sum()
    }
}

/// Onboard `projects` projects, each with one PI and `researchers_per`
/// researchers, through the *full* user-story pipeline (stories 1 and 3
/// executed for real, not seeded behind the scenes).
pub fn build_population(
    infra: &Infrastructure,
    projects: usize,
    researchers_per: usize,
) -> Result<Population, FlowError> {
    let mut out = Vec::with_capacity(projects);
    for p in 0..projects {
        let name = format!("project-{p:03}");
        let pi_label = format!("pi-{p:03}");
        infra.create_federated_user(&pi_label, &format!("{pi_label}-pw"));
        let pi = infra.story1_onboard_pi(&name, &pi_label, 10_000.0)?;

        let mut researcher_labels = Vec::with_capacity(researchers_per);
        for r in 0..researchers_per {
            let label = format!("res-{p:03}-{r:03}");
            infra.create_federated_user(&label, &format!("{label}-pw"));
            infra.story3_onboard_researcher(&pi_label, &pi.project_id, &name, &label)?;
            researcher_labels.push(label);
        }
        out.push(ProjectHandle {
            project_id: pi.project_id,
            name,
            pi_label,
            researcher_labels,
        });
    }
    Ok(Population { projects: out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dri_core::InfraConfig;

    #[test]
    fn builds_projects_with_members() {
        let infra = Infrastructure::new(InfraConfig::default());
        let pop = build_population(&infra, 3, 2).unwrap();
        assert_eq!(pop.projects.len(), 3);
        assert_eq!(pop.user_count(), 9);
        assert_eq!(pop.all_labels().len(), 9);
        // Everyone is genuinely onboarded: portal knows all projects and
        // each project has 3 members.
        for p in &pop.projects {
            let project = infra.portal.project(&p.project_id).unwrap();
            assert_eq!(project.members.len(), 3);
        }
        assert_eq!(infra.portal.project_count(), 3);
    }
}
