//! Login nodes: the gateway to the supercomputer (user plane).
//!
//! A login node accepts an SSH session only when (1) the presented
//! certificate chains to the trusted CA, is in its validity window, and
//! names the requested UNIX account as a principal; (2) the account is
//! actually provisioned on the node; and (3) the connecting client proves
//! possession of the certified private key by signing a fresh challenge.

use std::sync::atomic::{AtomicBool, Ordering};

use dri_clock::{IdGen, SimClock, SimRng};
use dri_crypto::ed25519::{PreparedVerifyingKey, VerifyingKey};
use dri_sshca::cert::{CertError, SshCertificate};
use dri_sync::{ShardMap, Snapshot};
use parking_lot::Mutex;

/// Default shard count for the per-node account and session maps.
pub const DEFAULT_LOGIN_SHARDS: usize = 16;

/// Login failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoginError {
    /// Certificate rejected.
    Cert(CertError),
    /// The UNIX account is not provisioned on this node.
    NoSuchAccount(String),
    /// Possession proof failed (signature didn't verify against the
    /// certified public key).
    BadPossessionProof,
    /// Account locked (kill switch).
    AccountLocked,
    /// The node is draining (maintenance): new sessions are refused,
    /// established sessions keep running — the graceful counterpart of
    /// `set_locked`, mirroring bastion drain/restore.
    Draining,
    /// The node is unreachable (fault-plane outage). New sessions fail
    /// closed; established sessions are not severed.
    Unavailable,
}

impl std::fmt::Display for LoginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoginError::Cert(e) => write!(f, "certificate rejected: {e}"),
            LoginError::NoSuchAccount(a) => write!(f, "no such account {a}"),
            LoginError::BadPossessionProof => write!(f, "key possession proof failed"),
            LoginError::AccountLocked => write!(f, "account locked"),
            LoginError::Draining => write!(f, "login node draining"),
            LoginError::Unavailable => write!(f, "login node unavailable"),
        }
    }
}

impl std::error::Error for LoginError {}

/// A live shell session on a login node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShellSession {
    /// Session id.
    pub id: String,
    /// UNIX account.
    pub account: String,
    /// Project the account belongs to.
    pub project: String,
    /// Certificate key id (audit: which human).
    pub key_id: String,
    /// Start time (ms).
    pub started_at_ms: u64,
}

#[derive(Clone)]
struct AccountRecord {
    project: String,
    locked: bool,
}

/// A login node.
///
/// Account and session state is sharded by key hash
/// ([`dri_sync::ShardMap`]) so a login storm hitting many accounts
/// takes many different locks; the trusted CA key is a
/// [`dri_sync::Snapshot`] read lock-free on every certificate check,
/// stored pre-decompressed so the curve-point recovery is paid once at
/// trust time rather than on every login.
pub struct LoginNode {
    /// Fabric host id (`mdc/login01`).
    pub host_id: String,
    clock: SimClock,
    ca_key: Snapshot<PreparedVerifyingKey>,
    accounts: ShardMap<AccountRecord>,
    sessions: ShardMap<ShellSession>,
    rng: Mutex<SimRng>,
    ids: IdGen,
    /// Draining: refuse new sessions, keep established ones.
    draining: AtomicBool,
    /// Fault-plane hook consulted on `open_session` (component `login`).
    faults: dri_fault::FaultHook,
}

impl LoginNode {
    /// Create a login node trusting `ca_key` as the user CA.
    pub fn new(
        host_id: impl Into<String>,
        ca_key: VerifyingKey,
        clock: SimClock,
        rng: SimRng,
    ) -> LoginNode {
        LoginNode::with_shards(host_id, ca_key, clock, rng, DEFAULT_LOGIN_SHARDS)
    }

    /// Create a login node with an explicit shard count (1 reproduces a
    /// single coarse lock).
    pub fn with_shards(
        host_id: impl Into<String>,
        ca_key: VerifyingKey,
        clock: SimClock,
        rng: SimRng,
        shards: usize,
    ) -> LoginNode {
        LoginNode {
            host_id: host_id.into(),
            clock,
            ca_key: Snapshot::new(PreparedVerifyingKey::new(&ca_key)),
            accounts: ShardMap::new(shards),
            sessions: ShardMap::new(shards),
            rng: Mutex::new(rng),
            ids: IdGen::new("shell"),
            draining: AtomicBool::new(false),
            faults: dri_fault::FaultHook::new(),
        }
    }

    /// Update the trusted user-CA key.
    pub fn trust_ca(&self, key: VerifyingKey) {
        self.ca_key.store(PreparedVerifyingKey::new(&key));
    }

    /// Attach the shared fault-injection plane (chaos drills).
    pub fn install_fault_plane(&self, plane: std::sync::Arc<dri_fault::FaultPlane>) {
        self.faults.install(plane);
    }

    /// Start or stop draining the node. Draining refuses *new* sessions
    /// with [`LoginError::Draining`] but — unlike `set_locked` — leaves
    /// every established session running, so maintenance (or an HA
    /// failover drill) never cuts live shells.
    pub fn set_draining(&self, draining: bool) {
        self.draining.store(draining, Ordering::Release);
    }

    /// Whether the node is currently draining.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Provision a per-project UNIX account (driven from the portal).
    pub fn provision_account(&self, account: &str, project: &str) {
        self.accounts.insert(
            account.to_string(),
            AccountRecord {
                project: project.to_string(),
                locked: false,
            },
        );
    }

    /// Deprovision an account (project expiry / member removal).
    pub fn deprovision_account(&self, account: &str) -> bool {
        let removed = self.accounts.remove(account).is_some();
        if removed {
            self.sessions.retain(|_, s| s.account != account);
        }
        removed
    }

    /// Lock / unlock an account (kill switch; sessions are severed on lock).
    pub fn set_locked(&self, account: &str, locked: bool) -> bool {
        let known = self
            .accounts
            .with_mut(account, |rec| rec.locked = locked)
            .is_some();
        if known && locked {
            self.sessions.retain(|_, s| s.account != account);
        }
        known
    }

    /// Open an SSH session: certificate + possession proof.
    ///
    /// `sign_challenge` is the client's key operation (e.g.
    /// `SshCertClient::sign_auth_challenge`).
    pub fn open_session(
        &self,
        cert: &SshCertificate,
        account: &str,
        sign_challenge: impl FnOnce(&[u8]) -> [u8; 64],
    ) -> Result<ShellSession, LoginError> {
        let _span = dri_trace::span_with(
            "login.open_session",
            dri_trace::Stage::Cluster,
            &[("account", account)],
        );
        self.faults
            .check("login")
            .map_err(|_| LoginError::Unavailable)?;
        if self.draining() {
            return Err(LoginError::Draining);
        }
        cert.verify_prepared(&self.ca_key.load(), self.clock.now_secs(), Some(account))
            .map_err(LoginError::Cert)?;
        let project = self
            .accounts
            .with(account, |rec| {
                if rec.locked {
                    Err(LoginError::AccountLocked)
                } else {
                    Ok(rec.project.clone())
                }
            })
            .ok_or_else(|| LoginError::NoSuchAccount(account.to_string()))??;
        // Possession proof: fresh challenge signed by the certified key.
        let mut challenge = [0u8; 32];
        self.rng.lock().fill_bytes(&mut challenge);
        let signature = sign_challenge(&challenge);
        let user_key = VerifyingKey::from_bytes(cert.public_key);
        if !user_key.verify(&challenge, &signature) {
            return Err(LoginError::BadPossessionProof);
        }
        let session = ShellSession {
            id: self.ids.next(),
            account: account.to_string(),
            project,
            key_id: cert.key_id.clone(),
            started_at_ms: self.clock.now_ms(),
        };
        self.sessions.insert(session.id.clone(), session.clone());
        Ok(session)
    }

    /// Is a session alive?
    pub fn session_alive(&self, id: &str) -> bool {
        self.sessions.contains_key(id)
    }

    /// Close a session.
    pub fn close_session(&self, id: &str) -> bool {
        self.sessions.remove(id).is_some()
    }

    /// Sever every session belonging to a certificate key id (kill switch
    /// driven by subject, not account). Sweeps every shard.
    pub fn sever_by_key_id(&self, key_id: &str) -> usize {
        self.sessions.retain(|_, s| s.key_id != key_id)
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Live sessions per shard, in shard order.
    pub fn session_shard_lens(&self) -> Vec<usize> {
        self.sessions.shard_lens()
    }

    /// Number of provisioned accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dri_crypto::ed25519::SigningKey;

    struct Fixture {
        node: LoginNode,
        ca: SigningKey,
        user_key: SigningKey,
        clock: SimClock,
    }

    fn fixture() -> Fixture {
        let clock = SimClock::starting_at(500_000);
        let ca = SigningKey::from_seed(&[61u8; 32]);
        let user_key = SigningKey::from_seed(&[62u8; 32]);
        let node = LoginNode::new(
            "mdc/login01",
            ca.verifying_key(),
            clock.clone(),
            SimRng::seed_from_u64(7),
        );
        node.provision_account("u123", "climate-llm");
        Fixture {
            node,
            ca,
            user_key,
            clock,
        }
    }

    fn cert(f: &Fixture) -> SshCertificate {
        let now = f.clock.now_secs();
        SshCertificate {
            public_key: *f.user_key.verifying_key().as_bytes(),
            serial: 1,
            key_id: "maid-1".into(),
            principals: vec!["u123".into()],
            valid_after: now,
            valid_before: now + 3600,
            critical_options: vec![],
            extensions: vec![],
            signature: [0u8; 64],
        }
        .signed(&f.ca)
    }

    #[test]
    fn login_with_cert_and_possession_proof() {
        let f = fixture();
        let c = cert(&f);
        let session = f
            .node
            .open_session(&c, "u123", |ch| f.user_key.sign(ch))
            .unwrap();
        assert_eq!(session.project, "climate-llm");
        assert_eq!(session.key_id, "maid-1");
        assert!(f.node.session_alive(&session.id));
    }

    #[test]
    fn stolen_cert_without_private_key_fails() {
        let f = fixture();
        let c = cert(&f);
        let thief_key = SigningKey::from_seed(&[99u8; 32]);
        assert_eq!(
            f.node.open_session(&c, "u123", |ch| thief_key.sign(ch)),
            Err(LoginError::BadPossessionProof)
        );
    }

    #[test]
    fn unprovisioned_account_fails() {
        let f = fixture();
        let now = f.clock.now_secs();
        let c = SshCertificate {
            public_key: *f.user_key.verifying_key().as_bytes(),
            serial: 2,
            key_id: "maid-1".into(),
            principals: vec!["u999".into()],
            valid_after: now,
            valid_before: now + 3600,
            critical_options: vec![],
            extensions: vec![],
            signature: [0u8; 64],
        }
        .signed(&f.ca);
        assert_eq!(
            f.node.open_session(&c, "u999", |ch| f.user_key.sign(ch)),
            Err(LoginError::NoSuchAccount("u999".into()))
        );
    }

    #[test]
    fn expired_cert_fails() {
        let f = fixture();
        let c = cert(&f);
        f.clock.advance_secs(3601);
        assert_eq!(
            f.node.open_session(&c, "u123", |ch| f.user_key.sign(ch)),
            Err(LoginError::Cert(CertError::Expired))
        );
    }

    #[test]
    fn lock_severs_sessions_and_blocks_relogin() {
        let f = fixture();
        let c = cert(&f);
        let session = f
            .node
            .open_session(&c, "u123", |ch| f.user_key.sign(ch))
            .unwrap();
        assert!(f.node.set_locked("u123", true));
        assert!(!f.node.session_alive(&session.id));
        assert_eq!(
            f.node.open_session(&c, "u123", |ch| f.user_key.sign(ch)),
            Err(LoginError::AccountLocked)
        );
        f.node.set_locked("u123", false);
        assert!(f
            .node
            .open_session(&c, "u123", |ch| f.user_key.sign(ch))
            .is_ok());
    }

    #[test]
    fn drain_refuses_new_sessions_but_keeps_established_ones() {
        let f = fixture();
        let c = cert(&f);
        let session = f
            .node
            .open_session(&c, "u123", |ch| f.user_key.sign(ch))
            .unwrap();
        f.node.set_draining(true);
        assert!(f.node.draining());
        assert!(
            f.node.session_alive(&session.id),
            "drain must not sever live shells"
        );
        assert_eq!(
            f.node.open_session(&c, "u123", |ch| f.user_key.sign(ch)),
            Err(LoginError::Draining)
        );
        f.node.set_draining(false);
        assert!(f
            .node
            .open_session(&c, "u123", |ch| f.user_key.sign(ch))
            .is_ok());
    }

    #[test]
    fn fault_plane_outage_fails_new_sessions_closed() {
        let f = fixture();
        let c = cert(&f);
        let session = f
            .node
            .open_session(&c, "u123", |ch| f.user_key.sign(ch))
            .unwrap();
        let plan = dri_fault::FaultPlan::new(5).outage("login", 0, u64::MAX);
        let plane = std::sync::Arc::new(dri_fault::FaultPlane::new(plan, f.clock.clone()));
        f.node.install_fault_plane(plane.clone());
        assert_eq!(
            f.node.open_session(&c, "u123", |ch| f.user_key.sign(ch)),
            Err(LoginError::Unavailable)
        );
        assert!(f.node.session_alive(&session.id));
        plane.set_enabled(false);
        assert!(f
            .node
            .open_session(&c, "u123", |ch| f.user_key.sign(ch))
            .is_ok());
    }

    #[test]
    fn deprovision_removes_account_and_sessions() {
        let f = fixture();
        let c = cert(&f);
        let s = f
            .node
            .open_session(&c, "u123", |ch| f.user_key.sign(ch))
            .unwrap();
        assert!(f.node.deprovision_account("u123"));
        assert!(!f.node.session_alive(&s.id));
        assert_eq!(f.node.account_count(), 0);
        assert!(!f.node.deprovision_account("u123"));
    }

    #[test]
    fn sever_by_key_id_cuts_only_that_subject() {
        let f = fixture();
        f.node.provision_account("u456", "genomics");
        let c1 = cert(&f);
        let now = f.clock.now_secs();
        let other_key = SigningKey::from_seed(&[63u8; 32]);
        let c2 = SshCertificate {
            public_key: *other_key.verifying_key().as_bytes(),
            serial: 3,
            key_id: "maid-2".into(),
            principals: vec!["u456".into()],
            valid_after: now,
            valid_before: now + 3600,
            critical_options: vec![],
            extensions: vec![],
            signature: [0u8; 64],
        }
        .signed(&f.ca);
        let s1 = f
            .node
            .open_session(&c1, "u123", |ch| f.user_key.sign(ch))
            .unwrap();
        let s2 = f
            .node
            .open_session(&c2, "u456", |ch| other_key.sign(ch))
            .unwrap();
        assert_eq!(f.node.sever_by_key_id("maid-1"), 1);
        assert!(!f.node.session_alive(&s1.id));
        assert!(f.node.session_alive(&s2.id));
    }
}
