//! # dri-cluster — the supercomputer substrate
//!
//! Enough of an HPC system that every user story terminates in a real
//! resource action rather than a stub:
//!
//! * [`slurm`] — a miniature batch scheduler: partitions, FIFO + backfill
//!   scheduling, walltime enforcement, per-project usage accounting (fed
//!   back to the portal's allocations);
//! * [`login`] — login nodes: provisioned per-project UNIX accounts, SSH
//!   sessions authenticated by CA-signed certificates *and* a live
//!   challenge against the user's key (possession proof);
//! * [`jupyter`] — the notebook service: an authenticator that validates
//!   broker JWTs from the `x-auth-token` header against the broker JWKS,
//!   and a spawner that places notebook sessions on compute nodes;
//! * [`mgmt`] — the management plane: privileged operations require an
//!   admin token *and* arrival via the admin tailnet (transport check),
//!   modelling the paper's layered enforcement in user story 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod jupyter;
pub mod login;
pub mod mgmt;
pub mod slurm;

pub use jupyter::{JupyterError, JupyterService, NotebookSession};
pub use login::{LoginError, LoginNode, ShellSession};
pub use mgmt::{ManagementPlane, MgmtError, MgmtOp, TransportPath};
pub use slurm::{Job, JobState, Partition, ProjectAccounting, Scheduler, SubmitError};
