//! The cluster management plane (user story 5).
//!
//! Privileged operations are defended in layers, each checked
//! independently ("segmentation and policy enforcement at each level"):
//!
//! 1. **transport** — requests must arrive via the admin tailnet; a
//!    request presented over any other path is rejected before the token
//!    is even looked at;
//! 2. **token** — a valid broker JWT with audience `mgmt-cluster`, ACR
//!    `mfa-hw`, and the `sysadmin` role;
//! 3. **cluster ACL** — the subject must also appear on the cluster-local
//!    access control list (the paper's "separate access control list on
//!    the cluster level").

use std::collections::HashSet;
use std::sync::Arc;

use dri_broker::broker::Jwks;
use dri_clock::SimClock;
use dri_crypto::jwt::JwtError;
use dri_sync::Snapshot;
use parking_lot::RwLock;

use crate::slurm::Scheduler;

/// Privileged operations the management plane exposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MgmtOp {
    /// Drain a partition (no new jobs start).
    DrainPartition(String),
    /// Cancel every job of a UNIX account.
    CancelUserJobs(String),
    /// Lock a UNIX account on the login nodes.
    LockAccount(String),
    /// Read-only health query.
    Health,
}

/// How the request reached the management plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportPath {
    /// Through the admin tailnet (the only legitimate path).
    Tailnet,
    /// Any direct network path (always rejected).
    Direct,
}

/// Management-plane failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MgmtError {
    /// Arrived outside the tailnet.
    WrongTransport,
    /// Token validation failed.
    BadToken(JwtError),
    /// Token lacks the sysadmin role.
    RoleMissing,
    /// Token ACR is not hardware-key MFA.
    AcrTooWeak,
    /// Subject not on the cluster-local ACL.
    NotOnClusterAcl,
}

impl std::fmt::Display for MgmtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MgmtError::WrongTransport => write!(f, "request must arrive via the admin tailnet"),
            MgmtError::BadToken(e) => write!(f, "token rejected: {e}"),
            MgmtError::RoleMissing => write!(f, "sysadmin role required"),
            MgmtError::AcrTooWeak => write!(f, "hardware-key MFA required"),
            MgmtError::NotOnClusterAcl => write!(f, "subject not on cluster ACL"),
        }
    }
}

impl std::error::Error for MgmtError {}

/// Outcome of a privileged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpResult {
    /// Which op ran.
    pub op: MgmtOp,
    /// Human-readable result.
    pub detail: String,
}

/// The management plane service (runs on admin nodes in the MDC
/// Management zone).
pub struct ManagementPlane {
    /// Audience expected on tokens.
    pub audience: String,
    clock: SimClock,
    jwks: Snapshot<Jwks>,
    scheduler: Arc<Scheduler>,
    cluster_acl: RwLock<HashSet<String>>,
    ops_executed: RwLock<Vec<(u64, String, MgmtOp)>>,
}

impl ManagementPlane {
    /// Create the management plane.
    pub fn new(jwks: Jwks, scheduler: Arc<Scheduler>, clock: SimClock) -> ManagementPlane {
        ManagementPlane {
            audience: "mgmt-cluster".to_string(),
            clock,
            jwks: Snapshot::new(jwks),
            scheduler,
            cluster_acl: RwLock::new(HashSet::new()),
            ops_executed: RwLock::new(Vec::new()),
        }
    }

    /// Refresh the JWKS snapshot (key rotation).
    pub fn update_jwks(&self, jwks: Jwks) {
        self.jwks.store(jwks);
    }

    /// Add a subject to the cluster-local ACL.
    pub fn acl_add(&self, subject: &str) {
        self.cluster_acl.write().insert(subject.to_string());
    }

    /// Remove a subject from the cluster-local ACL.
    pub fn acl_remove(&self, subject: &str) {
        self.cluster_acl.write().remove(subject);
    }

    /// Execute a privileged operation through the layered checks.
    pub fn execute(
        &self,
        transport: TransportPath,
        token: &str,
        op: MgmtOp,
    ) -> Result<OpResult, MgmtError> {
        // Layer 1: transport.
        if transport != TransportPath::Tailnet {
            return Err(MgmtError::WrongTransport);
        }
        // Layer 2: token.
        let now = self.clock.now_secs();
        let claims = self
            .jwks
            .load()
            .validate(token, &self.audience, now)
            .map_err(MgmtError::BadToken)?;
        if !claims.has_role("sysadmin") {
            return Err(MgmtError::RoleMissing);
        }
        if claims.acr != "mfa-hw" {
            return Err(MgmtError::AcrTooWeak);
        }
        // Layer 3: cluster-local ACL.
        if !self.cluster_acl.read().contains(&claims.subject) {
            return Err(MgmtError::NotOnClusterAcl);
        }

        let detail = match &op {
            MgmtOp::DrainPartition(p) => {
                if self.scheduler.set_drained(p, true) {
                    format!("partition {p} drained")
                } else {
                    format!("partition {p} not found")
                }
            }
            MgmtOp::CancelUserJobs(user) => {
                let n = self.scheduler.cancel_user_jobs(user);
                format!("cancelled {n} jobs of {user}")
            }
            MgmtOp::LockAccount(account) => format!("account {account} locked"),
            MgmtOp::Health => {
                let (pending, running) = self.scheduler.queue_depth();
                format!("queue: {pending} pending, {running} running")
            }
        };
        self.ops_executed
            .write()
            .push((self.clock.now_ms(), claims.subject.clone(), op.clone()));
        Ok(OpResult { op, detail })
    }

    /// Audit log of executed operations.
    pub fn audit_log(&self) -> Vec<(u64, String, MgmtOp)> {
        self.ops_executed.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dri_broker::authz::StaticAuthz;
    use dri_broker::broker::{IdentityBroker, IdentitySource, TokenPolicy};
    use dri_broker::managed_idp::ManagedLogin;
    use dri_federation::metadata::FederationRegistry;

    struct Fixture {
        mgmt: ManagementPlane,
        broker: Arc<IdentityBroker>,
        scheduler: Arc<Scheduler>,
        admin_session: String,
    }

    fn fixture() -> Fixture {
        let clock = SimClock::starting_at(4_000_000_000);
        let authz = Arc::new(StaticAuthz::new());
        authz.grant("admin:dave", "mgmt-cluster", &["sysadmin"]);
        authz.grant("last-resort:vendor", "mgmt-cluster", &["sysadmin"]); // rogue grant
        let broker = Arc::new(IdentityBroker::new(
            "https://broker.isambard.ac.uk",
            [81u8; 32],
            3600,
            clock.clone(),
            Arc::new(FederationRegistry::new()),
            authz,
        ));
        broker.register_service(TokenPolicy::admin("mgmt-cluster", 600));
        let session = broker
            .login_managed(
                &ManagedLogin {
                    subject: "admin:dave".into(),
                    acr: "mfa-hw".into(),
                },
                IdentitySource::AdminIdp,
            )
            .unwrap();
        let scheduler = Arc::new(Scheduler::new(clock.clone()));
        scheduler.add_partition("gh", 8, 8);
        let mgmt = ManagementPlane::new(broker.jwks(), scheduler.clone(), clock);
        mgmt.acl_add("admin:dave");
        Fixture {
            mgmt,
            broker,
            scheduler,
            admin_session: session.session_id,
        }
    }

    fn admin_token(f: &Fixture) -> String {
        f.broker
            .issue_token(&f.admin_session, "mgmt-cluster")
            .unwrap()
            .0
    }

    #[test]
    fn privileged_op_through_all_layers() {
        let f = fixture();
        f.scheduler.submit("mallory", "p", "gh", 1, 100).unwrap();
        f.scheduler.tick();
        let result = f
            .mgmt
            .execute(
                TransportPath::Tailnet,
                &admin_token(&f),
                MgmtOp::CancelUserJobs("mallory".into()),
            )
            .unwrap();
        assert_eq!(result.detail, "cancelled 1 jobs of mallory");
        assert_eq!(f.mgmt.audit_log().len(), 1);
    }

    #[test]
    fn direct_transport_rejected_before_token_check() {
        let f = fixture();
        assert_eq!(
            f.mgmt
                .execute(TransportPath::Direct, &admin_token(&f), MgmtOp::Health),
            Err(MgmtError::WrongTransport)
        );
        // Even garbage tokens get the same error — transport first.
        assert_eq!(
            f.mgmt
                .execute(TransportPath::Direct, "garbage", MgmtOp::Health),
            Err(MgmtError::WrongTransport)
        );
    }

    #[test]
    fn cluster_acl_is_an_independent_layer() {
        let f = fixture();
        // Remove from the cluster ACL: valid admin token no longer enough.
        f.mgmt.acl_remove("admin:dave");
        assert_eq!(
            f.mgmt
                .execute(TransportPath::Tailnet, &admin_token(&f), MgmtOp::Health),
            Err(MgmtError::NotOnClusterAcl)
        );
        f.mgmt.acl_add("admin:dave");
        assert!(f
            .mgmt
            .execute(TransportPath::Tailnet, &admin_token(&f), MgmtOp::Health)
            .is_ok());
    }

    #[test]
    fn bad_tokens_rejected() {
        let f = fixture();
        assert!(matches!(
            f.mgmt
                .execute(TransportPath::Tailnet, "junk", MgmtOp::Health),
            Err(MgmtError::BadToken(_))
        ));
    }

    #[test]
    fn health_reports_queue() {
        let f = fixture();
        f.scheduler.submit("u", "p", "gh", 1, 100).unwrap();
        let r = f
            .mgmt
            .execute(TransportPath::Tailnet, &admin_token(&f), MgmtOp::Health)
            .unwrap();
        assert!(r.detail.contains("1 pending"));
    }
}
