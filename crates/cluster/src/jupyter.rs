//! The Jupyter notebook service (user story 6).
//!
//! Two halves, as in the deployed system:
//!
//! * the **authenticator** runs on the login node at the MDC end of the
//!   Zenith tunnel: it extracts the broker token from the `x-auth-token`
//!   header, validates it against the broker JWKS (issuer, audience
//!   `jupyter`, expiry, signature) and optionally introspects it;
//! * the **spawner** places a notebook session on a compute node via the
//!   scheduler's interactive partition, bound to the user's per-project
//!   UNIX account.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dri_broker::broker::Jwks;
use dri_clock::{IdGen, SimClock};
use dri_crypto::json::Value;
use dri_crypto::jwt::JwtError;
use dri_sync::{ShardMap, Snapshot};

use crate::slurm::{Scheduler, SubmitError};

/// Default shard count for the notebook session map.
pub const DEFAULT_JUPYTER_SHARDS: usize = 16;

/// Token-introspection callback (typically `IdentityBroker::introspect`).
pub type IntrospectFn = Arc<dyn Fn(&str) -> bool + Send + Sync>;

/// Jupyter failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JupyterError {
    /// Missing `x-auth-token` header.
    NoToken,
    /// Token validation failed.
    BadToken(JwtError),
    /// Token revoked per introspection.
    TokenRevoked,
    /// Token valid but carries no usable role.
    RoleMissing,
    /// The token has no UNIX account claim for this cluster.
    NoAccount,
    /// The spawner could not get resources.
    Spawn(SubmitError),
    /// Service at capacity.
    AtCapacity,
}

impl std::fmt::Display for JupyterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JupyterError::NoToken => write!(f, "missing x-auth-token header"),
            JupyterError::BadToken(e) => write!(f, "token rejected: {e}"),
            JupyterError::TokenRevoked => write!(f, "token revoked"),
            JupyterError::RoleMissing => write!(f, "token carries no usable role"),
            JupyterError::NoAccount => write!(f, "no unix account claim"),
            JupyterError::Spawn(e) => write!(f, "spawn failed: {e}"),
            JupyterError::AtCapacity => write!(f, "service at capacity"),
        }
    }
}

impl std::error::Error for JupyterError {}

/// A live notebook session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotebookSession {
    /// Session id.
    pub id: String,
    /// Subject (cuid).
    pub subject: String,
    /// UNIX account the kernel runs as.
    pub unix_account: String,
    /// Project charged.
    pub project: String,
    /// Scheduler job backing the session.
    pub job_id: String,
    /// Token id that opened the session (for revocation tracing).
    pub token_id: String,
    /// Start time (ms).
    pub started_at_ms: u64,
}

/// The notebook service.
///
/// The JWKS is a read-mostly [`dri_sync::Snapshot`]: every spawn
/// validates its token against an immutable snapshot with no lock held,
/// and the snapshot is republished only on broker key rotation. Session
/// state is sharded; capacity is an atomic reservation counter so
/// `AtCapacity` is exact even under a parallel storm.
pub struct JupyterService {
    /// Audience tokens must be scoped to.
    pub audience: String,
    /// Interactive partition used for kernels.
    pub partition: String,
    /// Maximum simultaneous sessions.
    pub capacity: usize,
    clock: SimClock,
    jwks: Snapshot<Jwks>,
    scheduler: Arc<Scheduler>,
    sessions: ShardMap<NotebookSession>,
    /// Live + in-flight session reservations.
    live: AtomicUsize,
    introspect: Option<IntrospectFn>,
    ids: IdGen,
}

impl JupyterService {
    /// Create the service.
    pub fn new(
        jwks: Jwks,
        scheduler: Arc<Scheduler>,
        partition: impl Into<String>,
        capacity: usize,
        clock: SimClock,
    ) -> JupyterService {
        JupyterService {
            audience: "jupyter".to_string(),
            partition: partition.into(),
            capacity,
            clock,
            jwks: Snapshot::new(jwks),
            scheduler,
            sessions: ShardMap::new(DEFAULT_JUPYTER_SHARDS),
            live: AtomicUsize::new(0),
            introspect: None,
            ids: IdGen::new("nb"),
        }
    }

    /// Attach a token-introspection callback.
    pub fn with_introspection(mut self, check: IntrospectFn) -> JupyterService {
        self.introspect = Some(check);
        self
    }

    /// Refresh the JWKS snapshot (key rotation).
    pub fn update_jwks(&self, jwks: Jwks) {
        self.jwks.store(jwks);
    }

    /// Epoch of the currently trusted JWKS snapshot.
    pub fn jwks_epoch(&self) -> u64 {
        self.jwks.load().epoch
    }

    /// Handle an authenticated spawn request arriving through the tunnel.
    /// `headers` are the forwarded HTTP headers.
    pub fn spawn(&self, headers: &[(String, String)]) -> Result<NotebookSession, JupyterError> {
        let _span = dri_trace::span("jupyter.spawn", dri_trace::Stage::Cluster);
        // Surface the propagated W3C context, proving the trace survived
        // the edge -> tunnel -> spawner boundary crossings.
        if let Some((_, tp)) = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("traceparent"))
        {
            dri_trace::add_attr("traceparent", tp);
        }
        let token = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("x-auth-token"))
            .map(|(_, v)| v.as_str())
            .ok_or(JupyterError::NoToken)?;
        let now = self.clock.now_secs();
        let claims = self
            .jwks
            .load()
            .validate(token, &self.audience, now)
            .map_err(JupyterError::BadToken)?;
        if let Some(check) = &self.introspect {
            if !check(&claims.token_id) {
                return Err(JupyterError::TokenRevoked);
            }
        }
        if !claims.has_role("pi") && !claims.has_role("researcher") {
            return Err(JupyterError::RoleMissing);
        }
        // The broker attaches the target unix account + project as claims.
        let account = claims
            .extra_claim("unix_account")
            .and_then(Value::as_str)
            .ok_or(JupyterError::NoAccount)?
            .to_string();
        let project = claims
            .extra_claim("project")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();

        // Atomically reserve a capacity slot; exact under parallel
        // storms (no read-check/insert race).
        if self
            .live
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.capacity).then_some(n + 1)
            })
            .is_err()
        {
            return Err(JupyterError::AtCapacity);
        }
        let job_id = match self
            .scheduler
            .submit(&account, &project, &self.partition, 1, 4 * 3600)
        {
            Ok(id) => id,
            Err(e) => {
                self.live.fetch_sub(1, Ordering::AcqRel);
                return Err(JupyterError::Spawn(e));
            }
        };
        self.scheduler.tick();

        let session = NotebookSession {
            id: self.ids.next(),
            subject: claims.subject.clone(),
            unix_account: account,
            project,
            job_id,
            token_id: claims.token_id.clone(),
            started_at_ms: self.clock.now_ms(),
        };
        self.sessions.insert(session.id.clone(), session.clone());
        Ok(session)
    }

    /// Stop a session (user action or expiry), cancelling its job.
    pub fn stop(&self, session_id: &str) -> bool {
        match self.sessions.remove(session_id) {
            Some(s) => {
                self.scheduler.cancel(&s.job_id);
                self.live.fetch_sub(1, Ordering::AcqRel);
                true
            }
            None => false,
        }
    }

    /// Sever every session of a subject (kill switch). Sweeps every
    /// shard so no session survives regardless of where it hashed.
    pub fn sever_subject(&self, subject: &str) -> usize {
        let victims = self.sessions.drain_matching(|_, s| s.subject == subject);
        for (_, s) in &victims {
            self.scheduler.cancel(&s.job_id);
        }
        self.live.fetch_sub(victims.len(), Ordering::AcqRel);
        victims.len()
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Live sessions per shard, in shard order.
    pub fn session_shard_lens(&self) -> Vec<usize> {
        self.sessions.shard_lens()
    }

    /// Session snapshot.
    pub fn session(&self, id: &str) -> Option<NotebookSession> {
        self.sessions.get_cloned(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dri_broker::authz::StaticAuthz;
    use dri_broker::broker::{IdentityBroker, IdentitySource, TokenPolicy};
    use dri_broker::managed_idp::ManagedLogin;
    use dri_federation::metadata::FederationRegistry;

    struct Fixture {
        service: JupyterService,
        broker: Arc<IdentityBroker>,
        scheduler: Arc<Scheduler>,
        session_id: String,
        clock: SimClock,
    }

    fn fixture(capacity: usize) -> Fixture {
        let clock = SimClock::starting_at(3_000_000_000);
        let authz = Arc::new(StaticAuthz::new());
        authz.grant("last-resort:alice", "jupyter", &["researcher"]);
        let broker = Arc::new(IdentityBroker::new(
            "https://broker.isambard.ac.uk",
            [71u8; 32],
            3600,
            clock.clone(),
            Arc::new(FederationRegistry::new()),
            authz,
        ));
        broker.register_service(TokenPolicy::standard("jupyter", 900));
        let session = broker
            .login_managed(
                &ManagedLogin {
                    subject: "last-resort:alice".into(),
                    acr: "mfa-totp".into(),
                },
                IdentitySource::LastResort,
            )
            .unwrap();
        let scheduler = Arc::new(Scheduler::new(clock.clone()));
        scheduler.add_partition("interactive", 64, 1);
        let broker2 = broker.clone();
        let service = JupyterService::new(
            broker.jwks(),
            scheduler.clone(),
            "interactive",
            capacity,
            clock.clone(),
        )
        .with_introspection(Arc::new(move |jti| broker2.introspect(jti)));
        Fixture {
            service,
            broker,
            scheduler,
            session_id: session.session_id,
            clock,
        }
    }

    fn token(f: &Fixture) -> String {
        f.broker
            .issue_token_with_extra(
                &f.session_id,
                "jupyter",
                vec![
                    ("unix_account".into(), Value::s("u123")),
                    ("project".into(), Value::s("climate-llm")),
                ],
            )
            .unwrap()
            .0
    }

    fn headers(token: &str) -> Vec<(String, String)> {
        vec![("x-auth-token".into(), token.into())]
    }

    #[test]
    fn spawn_happy_path() {
        let f = fixture(10);
        let session = f.service.spawn(&headers(&token(&f))).unwrap();
        assert_eq!(session.unix_account, "u123");
        assert_eq!(session.project, "climate-llm");
        // A job is really running behind it.
        let job = f.scheduler.job(&session.job_id).unwrap();
        assert_eq!(job.state, crate::slurm::JobState::Running);
        assert_eq!(job.user, "u123");
    }

    #[test]
    fn missing_or_bad_token_rejected() {
        let f = fixture(10);
        assert_eq!(f.service.spawn(&[]), Err(JupyterError::NoToken));
        assert!(matches!(
            f.service.spawn(&headers("junk")),
            Err(JupyterError::BadToken(_))
        ));
        // Expired token.
        let t = token(&f);
        f.clock.advance_secs(901);
        assert!(matches!(
            f.service.spawn(&headers(&t)),
            Err(JupyterError::BadToken(JwtError::Expired))
        ));
    }

    #[test]
    fn revoked_token_rejected_via_introspection() {
        let f = fixture(10);
        let (t, claims) = f
            .broker
            .issue_token_with_extra(
                &f.session_id,
                "jupyter",
                vec![("unix_account".into(), Value::s("u123"))],
            )
            .unwrap();
        f.broker.revoke_token(&claims.token_id);
        assert_eq!(
            f.service.spawn(&headers(&t)),
            Err(JupyterError::TokenRevoked)
        );
    }

    #[test]
    fn token_without_account_claim_rejected() {
        let f = fixture(10);
        let (t, _) = f.broker.issue_token(&f.session_id, "jupyter").unwrap();
        assert_eq!(f.service.spawn(&headers(&t)), Err(JupyterError::NoAccount));
    }

    #[test]
    fn capacity_enforced() {
        let f = fixture(2);
        f.service.spawn(&headers(&token(&f))).unwrap();
        f.service.spawn(&headers(&token(&f))).unwrap();
        assert_eq!(
            f.service.spawn(&headers(&token(&f))),
            Err(JupyterError::AtCapacity)
        );
        assert_eq!(f.service.session_count(), 2);
    }

    #[test]
    fn stop_cancels_job() {
        let f = fixture(10);
        let session = f.service.spawn(&headers(&token(&f))).unwrap();
        assert!(f.service.stop(&session.id));
        let job = f.scheduler.job(&session.job_id).unwrap();
        assert_eq!(job.state, crate::slurm::JobState::Cancelled);
        assert!(!f.service.stop(&session.id));
    }

    #[test]
    fn sever_subject_kills_all_their_notebooks() {
        let f = fixture(10);
        f.service.spawn(&headers(&token(&f))).unwrap();
        f.service.spawn(&headers(&token(&f))).unwrap();
        assert_eq!(f.service.sever_subject("last-resort:alice"), 2);
        assert_eq!(f.service.session_count(), 0);
        let (_pending, running) = f.scheduler.queue_depth();
        assert_eq!(running, 0);
    }
}
