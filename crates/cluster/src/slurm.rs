//! A miniature Slurm: partitions, job queue, FIFO + backfill scheduling,
//! walltime enforcement, and per-project usage accounting.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use dri_clock::{IdGen, SimClock};
use parking_lot::RwLock;

/// Job lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Queued, awaiting nodes.
    Pending,
    /// Running on allocated nodes.
    Running,
    /// Finished (walltime reached or completed).
    Completed,
    /// Cancelled by user or admin.
    Cancelled,
}

/// A batch job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Job id (`job-000001`).
    pub id: String,
    /// UNIX account that submitted.
    pub user: String,
    /// Project charged.
    pub project: String,
    /// Partition name.
    pub partition: String,
    /// Nodes requested.
    pub nodes: u32,
    /// Maximum runtime in seconds.
    pub walltime_secs: u64,
    /// State.
    pub state: JobState,
    /// Submit time (seconds).
    pub submitted_at: u64,
    /// Start time (seconds), when running/complete.
    pub started_at: Option<u64>,
    /// End time (seconds), when complete/cancelled.
    pub ended_at: Option<u64>,
}

/// A partition (named pool of nodes).
#[derive(Debug, Clone)]
pub struct Partition {
    /// Partition name (`gh-grace-hopper`).
    pub name: String,
    /// Total nodes.
    pub total_nodes: u32,
    /// Nodes currently allocated.
    pub allocated_nodes: u32,
    /// Max nodes a single job may request.
    pub max_nodes_per_job: u32,
    /// Drained partitions accept submissions but start no new jobs.
    pub drained: bool,
}

/// Submission failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No such partition.
    UnknownPartition(String),
    /// More nodes than the partition allows per job.
    TooManyNodes,
    /// Zero nodes or zero walltime.
    InvalidRequest,
    /// The scheduler daemon is unreachable (fault-plane outage). New
    /// submissions fail closed; already-running jobs are unaffected.
    SchedulerUnavailable,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownPartition(p) => write!(f, "unknown partition {p}"),
            SubmitError::TooManyNodes => write!(f, "request exceeds per-job node limit"),
            SubmitError::InvalidRequest => write!(f, "invalid request"),
            SubmitError::SchedulerUnavailable => write!(f, "scheduler unavailable"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Default)]
struct SchedState {
    partitions: HashMap<String, Partition>,
    jobs: HashMap<String, Job>,
    queue: Vec<String>,
    /// (project, node-seconds) accumulated since last drain.
    usage: HashMap<String, u64>,
    /// Lifetime (project, node-seconds) for fairshare and reporting.
    lifetime_usage: HashMap<String, u64>,
    /// When true, the pending queue is ordered by fairshare (projects
    /// with less accumulated usage first) instead of submission order.
    fairshare: bool,
    /// Walltime expiry min-heap of `(deadline_secs, job_id)` for running
    /// jobs, so `tick` completes jobs in O(expired log n) instead of
    /// scanning every job. Entries for cancelled jobs go stale and are
    /// discarded lazily on pop.
    deadlines: BinaryHeap<Reverse<(u64, String)>>,
}

/// Per-project accounting row (sreport-like).
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectAccounting {
    /// Project name.
    pub project: String,
    /// Lifetime node-hours consumed.
    pub node_hours: f64,
    /// Completed job count.
    pub completed: usize,
    /// Cancelled job count.
    pub cancelled: usize,
    /// Running job count.
    pub running: usize,
    /// Pending job count.
    pub pending: usize,
}

/// The scheduler daemon.
pub struct Scheduler {
    clock: SimClock,
    state: RwLock<SchedState>,
    ids: IdGen,
    /// Fault-plane hook consulted on submission (component `slurm`). An
    /// active fault makes *new* submissions fail closed; `tick`/`cancel`
    /// stay fault-free so running jobs survive a scheduler outage.
    faults: dri_fault::FaultHook,
}

impl Scheduler {
    /// Create a scheduler.
    pub fn new(clock: SimClock) -> Scheduler {
        Scheduler {
            clock,
            state: RwLock::new(SchedState::default()),
            ids: IdGen::new("job"),
            faults: dri_fault::FaultHook::new(),
        }
    }

    /// Attach the shared fault-injection plane (chaos drills).
    pub fn install_fault_plane(&self, plane: std::sync::Arc<dri_fault::FaultPlane>) {
        self.faults.install(plane);
    }

    /// Add a partition.
    pub fn add_partition(&self, name: &str, total_nodes: u32, max_nodes_per_job: u32) {
        self.state.write().partitions.insert(
            name.to_string(),
            Partition {
                name: name.to_string(),
                total_nodes,
                allocated_nodes: 0,
                max_nodes_per_job,
                drained: false,
            },
        );
    }

    /// Submit a job (authentication/authorisation already happened at the
    /// login node / Jupyter layer).
    pub fn submit(
        &self,
        user: &str,
        project: &str,
        partition: &str,
        nodes: u32,
        walltime_secs: u64,
    ) -> Result<String, SubmitError> {
        let _span = dri_trace::span_with(
            "slurm.submit",
            dri_trace::Stage::Cluster,
            &[("partition", partition)],
        );
        self.faults
            .check("slurm")
            .map_err(|_| SubmitError::SchedulerUnavailable)?;
        if nodes == 0 || walltime_secs == 0 {
            return Err(SubmitError::InvalidRequest);
        }
        let mut state = self.state.write();
        let part = state
            .partitions
            .get(partition)
            .ok_or_else(|| SubmitError::UnknownPartition(partition.to_string()))?;
        if nodes > part.max_nodes_per_job || nodes > part.total_nodes {
            return Err(SubmitError::TooManyNodes);
        }
        let job = Job {
            id: self.ids.next(),
            user: user.to_string(),
            project: project.to_string(),
            partition: partition.to_string(),
            nodes,
            walltime_secs,
            state: JobState::Pending,
            submitted_at: self.clock.now_secs(),
            started_at: None,
            ended_at: None,
        };
        let id = job.id.clone();
        state.queue.push(id.clone());
        state.jobs.insert(id.clone(), job);
        Ok(id)
    }

    /// One scheduling pass: complete jobs past walltime, then start
    /// pending jobs FIFO with backfill (a later job may start if the head
    /// doesn't fit but it does).
    pub fn tick(&self) {
        let now = self.clock.now_secs();
        let mut state = self.state.write();

        // Completions first (frees nodes): pop expired deadlines from the
        // min-heap; stale entries (cancelled jobs) are skipped.
        let mut freed: Vec<(String, u32, String, u64)> = Vec::new();
        while state
            .deadlines
            .peek()
            .is_some_and(|Reverse((deadline, _))| *deadline <= now)
        {
            let Reverse((deadline, job_id)) = state.deadlines.pop().expect("peeked");
            if let Some(job) = state.jobs.get_mut(&job_id) {
                let live = job.state == JobState::Running
                    && job.started_at.map(|s| s + job.walltime_secs) == Some(deadline);
                if live {
                    job.state = JobState::Completed;
                    job.ended_at = Some(deadline);
                    freed.push((
                        job.partition.clone(),
                        job.nodes,
                        job.project.clone(),
                        (job.walltime_secs) * job.nodes as u64,
                    ));
                }
            }
        }
        for (partition, nodes, project, node_secs) in freed {
            if let Some(p) = state.partitions.get_mut(&partition) {
                p.allocated_nodes -= nodes;
            }
            *state.usage.entry(project.clone()).or_insert(0) += node_secs;
            *state.lifetime_usage.entry(project).or_insert(0) += node_secs;
        }

        // Starts: FIFO with backfill; under fairshare, pending jobs of
        // lightly-used projects go first (stable within a project).
        let mut queue = state.queue.clone();
        if state.fairshare {
            let usage_of = |job_id: &String| -> u64 {
                state
                    .jobs
                    .get(job_id)
                    .and_then(|j| state.lifetime_usage.get(&j.project))
                    .copied()
                    .unwrap_or(0)
            };
            queue.sort_by_key(usage_of);
        }
        let mut still_queued = Vec::with_capacity(queue.len());
        for job_id in queue {
            let (partition, nodes, cancelled) = match state.jobs.get(&job_id) {
                Some(j) if j.state == JobState::Pending => (j.partition.clone(), j.nodes, false),
                _ => (String::new(), 0, true),
            };
            if cancelled {
                continue;
            }
            let fits = state
                .partitions
                .get(&partition)
                .map(|p| !p.drained && p.allocated_nodes + nodes <= p.total_nodes)
                .unwrap_or(false);
            if fits {
                if let Some(p) = state.partitions.get_mut(&partition) {
                    p.allocated_nodes += nodes;
                }
                let deadline = {
                    let job = state.jobs.get_mut(&job_id).expect("exists");
                    job.state = JobState::Running;
                    job.started_at = Some(now);
                    now + job.walltime_secs
                };
                state.deadlines.push(Reverse((deadline, job_id)));
            } else {
                still_queued.push(job_id);
            }
        }
        state.queue = still_queued;
    }

    /// Cancel a job (user or kill switch). Frees nodes when running.
    pub fn cancel(&self, job_id: &str) -> bool {
        let now = self.clock.now_secs();
        let mut state = self.state.write();
        let (was_running, partition, nodes, project, elapsed) = match state.jobs.get_mut(job_id) {
            Some(j) if j.state == JobState::Pending || j.state == JobState::Running => {
                let was_running = j.state == JobState::Running;
                let elapsed = j.started_at.map(|s| now.saturating_sub(s)).unwrap_or(0);
                j.state = JobState::Cancelled;
                j.ended_at = Some(now);
                (
                    was_running,
                    j.partition.clone(),
                    j.nodes,
                    j.project.clone(),
                    elapsed,
                )
            }
            _ => return false,
        };
        if was_running {
            if let Some(p) = state.partitions.get_mut(&partition) {
                p.allocated_nodes -= nodes;
            }
            *state.usage.entry(project.clone()).or_insert(0) += elapsed * nodes as u64;
            *state.lifetime_usage.entry(project).or_insert(0) += elapsed * nodes as u64;
        }
        state.queue.retain(|id| id != job_id);
        true
    }

    /// Cancel every job belonging to a UNIX account (kill switch).
    pub fn cancel_user_jobs(&self, user: &str) -> usize {
        let ids: Vec<String> = {
            let state = self.state.read();
            state
                .jobs
                .values()
                .filter(|j| {
                    j.user == user && (j.state == JobState::Pending || j.state == JobState::Running)
                })
                .map(|j| j.id.clone())
                .collect()
        };
        let mut n = 0;
        for id in ids {
            if self.cancel(&id) {
                n += 1;
            }
        }
        n
    }

    /// Job snapshot.
    pub fn job(&self, id: &str) -> Option<Job> {
        self.state.read().jobs.get(id).cloned()
    }

    /// Partition snapshot.
    pub fn partition(&self, name: &str) -> Option<Partition> {
        self.state.read().partitions.get(name).cloned()
    }

    /// Drain or undrain a partition (admin operation): drained partitions
    /// keep running jobs but start no new ones. Returns false for an
    /// unknown partition.
    pub fn set_drained(&self, name: &str, drained: bool) -> bool {
        match self.state.write().partitions.get_mut(name) {
            Some(p) => {
                p.drained = drained;
                true
            }
            None => false,
        }
    }

    /// Drain accumulated usage as `(project, node_hours)` pairs (the core
    /// pushes these into the portal's allocations).
    pub fn drain_usage(&self) -> Vec<(String, f64)> {
        let mut state = self.state.write();
        let mut out: Vec<(String, f64)> = state
            .usage
            .drain()
            .map(|(p, secs)| (p, secs as f64 / 3600.0))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Enable / disable fairshare queue ordering.
    pub fn set_fairshare(&self, enabled: bool) {
        self.state.write().fairshare = enabled;
    }

    /// An sreport-style accounting summary: per project, lifetime
    /// node-hours plus (completed, cancelled, running, pending) job
    /// counts, sorted by project name.
    pub fn accounting_report(&self) -> Vec<ProjectAccounting> {
        let state = self.state.read();
        let mut by_project: HashMap<String, ProjectAccounting> = HashMap::new();
        for job in state.jobs.values() {
            let entry =
                by_project
                    .entry(job.project.clone())
                    .or_insert_with(|| ProjectAccounting {
                        project: job.project.clone(),
                        node_hours: 0.0,
                        completed: 0,
                        cancelled: 0,
                        running: 0,
                        pending: 0,
                    });
            match job.state {
                JobState::Completed => entry.completed += 1,
                JobState::Cancelled => entry.cancelled += 1,
                JobState::Running => entry.running += 1,
                JobState::Pending => entry.pending += 1,
            }
        }
        for (project, secs) in &state.lifetime_usage {
            by_project
                .entry(project.clone())
                .or_insert_with(|| ProjectAccounting {
                    project: project.clone(),
                    node_hours: 0.0,
                    completed: 0,
                    cancelled: 0,
                    running: 0,
                    pending: 0,
                })
                .node_hours = *secs as f64 / 3600.0;
        }
        let mut out: Vec<ProjectAccounting> = by_project.into_values().collect();
        out.sort_by(|a, b| a.project.cmp(&b.project));
        out
    }

    /// Counts of (pending, running) jobs.
    pub fn queue_depth(&self) -> (usize, usize) {
        let state = self.state.read();
        let pending = state
            .jobs
            .values()
            .filter(|j| j.state == JobState::Pending)
            .count();
        let running = state
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count();
        (pending, running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> (Scheduler, SimClock) {
        let clock = SimClock::starting_at(0);
        let s = Scheduler::new(clock.clone());
        s.add_partition("gh", 8, 4);
        (s, clock)
    }

    #[test]
    fn submit_and_run_to_completion() {
        let (s, clock) = sched();
        let id = s.submit("u123", "climate-llm", "gh", 2, 3600).unwrap();
        assert_eq!(s.job(&id).unwrap().state, JobState::Pending);
        s.tick();
        assert_eq!(s.job(&id).unwrap().state, JobState::Running);
        assert_eq!(s.partition("gh").unwrap().allocated_nodes, 2);
        clock.advance_secs(3600);
        s.tick();
        let job = s.job(&id).unwrap();
        assert_eq!(job.state, JobState::Completed);
        assert_eq!(s.partition("gh").unwrap().allocated_nodes, 0);
        // Usage: 2 nodes * 1 hour.
        assert_eq!(s.drain_usage(), vec![("climate-llm".to_string(), 2.0)]);
        // Draining twice yields nothing.
        assert!(s.drain_usage().is_empty());
    }

    #[test]
    fn scheduler_outage_fails_submission_closed_while_running_jobs_survive() {
        let (s, clock) = sched();
        let running = s.submit("u123", "climate-llm", "gh", 2, 3600).unwrap();
        s.tick();
        assert_eq!(s.job(&running).unwrap().state, JobState::Running);
        let plan = dri_fault::FaultPlan::new(5).outage("slurm", 0, u64::MAX);
        let plane = std::sync::Arc::new(dri_fault::FaultPlane::new(plan, clock.clone()));
        s.install_fault_plane(plane.clone());
        assert_eq!(
            s.submit("u123", "climate-llm", "gh", 1, 60),
            Err(SubmitError::SchedulerUnavailable)
        );
        // The running job keeps running and completes on schedule —
        // tick and cancel never consult the fault plane.
        clock.advance_secs(3600);
        s.tick();
        assert_eq!(s.job(&running).unwrap().state, JobState::Completed);
        plane.set_enabled(false);
        assert!(s.submit("u123", "climate-llm", "gh", 1, 60).is_ok());
    }

    #[test]
    fn validation_errors() {
        let (s, _) = sched();
        assert_eq!(
            s.submit("u", "p", "nope", 1, 10),
            Err(SubmitError::UnknownPartition("nope".into()))
        );
        assert_eq!(
            s.submit("u", "p", "gh", 5, 10),
            Err(SubmitError::TooManyNodes)
        );
        assert_eq!(
            s.submit("u", "p", "gh", 0, 10),
            Err(SubmitError::InvalidRequest)
        );
        assert_eq!(
            s.submit("u", "p", "gh", 1, 0),
            Err(SubmitError::InvalidRequest)
        );
    }

    #[test]
    fn fifo_with_backfill() {
        let (s, _clock) = sched();
        // Fill 6 of 8 nodes.
        let a = s.submit("u1", "p", "gh", 3, 100).unwrap();
        let b = s.submit("u2", "p", "gh", 3, 100).unwrap();
        // Head of queue wants 4 (doesn't fit: only 2 free), but a later
        // 2-node job can backfill.
        let big = s.submit("u3", "p", "gh", 4, 100).unwrap();
        let small = s.submit("u4", "p", "gh", 2, 100).unwrap();
        s.tick();
        assert_eq!(s.job(&a).unwrap().state, JobState::Running);
        assert_eq!(s.job(&b).unwrap().state, JobState::Running);
        assert_eq!(s.job(&big).unwrap().state, JobState::Pending);
        assert_eq!(s.job(&small).unwrap().state, JobState::Running);
        assert_eq!(s.partition("gh").unwrap().allocated_nodes, 8);
    }

    #[test]
    fn cancel_pending_and_running() {
        let (s, clock) = sched();
        let a = s.submit("u1", "p", "gh", 2, 1000).unwrap();
        let b = s.submit("u1", "p", "gh", 2, 1000).unwrap();
        s.tick();
        // Cancel running job after 600s: usage accrues pro rata.
        clock.advance_secs(600);
        assert!(s.cancel(&a));
        assert_eq!(s.job(&a).unwrap().state, JobState::Cancelled);
        // Cancel pending (b is running too... cancel it while pending?).
        let c = s.submit("u1", "p", "gh", 2, 1000).unwrap();
        assert!(s.cancel(&c));
        assert_eq!(s.job(&c).unwrap().state, JobState::Cancelled);
        // Double cancel fails.
        assert!(!s.cancel(&a));
        let usage = s.drain_usage();
        assert_eq!(usage.len(), 1);
        let (_, hours) = &usage[0];
        assert!(
            (hours - 2.0 * 600.0 / 3600.0).abs() < 1e-9,
            "pro-rata usage, got {hours}"
        );
        let _ = b;
    }

    #[test]
    fn cancel_user_jobs_kill_switch() {
        let (s, _) = sched();
        s.submit("mallory", "p", "gh", 1, 100).unwrap();
        s.submit("mallory", "p", "gh", 1, 100).unwrap();
        s.submit("alice", "p", "gh", 1, 100).unwrap();
        s.tick();
        assert_eq!(s.cancel_user_jobs("mallory"), 2);
        let (pending, running) = s.queue_depth();
        assert_eq!(pending + running, 1);
    }

    #[test]
    fn drained_partition_starts_no_jobs() {
        let (s, clock) = sched();
        let running = s.submit("u1", "p", "gh", 2, 1000).unwrap();
        s.tick();
        assert_eq!(s.job(&running).unwrap().state, JobState::Running);
        assert!(s.set_drained("gh", true));
        let queued = s.submit("u2", "p", "gh", 1, 1000).unwrap();
        s.tick();
        // Existing job unaffected, new job stays pending.
        assert_eq!(s.job(&running).unwrap().state, JobState::Running);
        assert_eq!(s.job(&queued).unwrap().state, JobState::Pending);
        // Undrain: the queued job starts.
        s.set_drained("gh", false);
        s.tick();
        assert_eq!(s.job(&queued).unwrap().state, JobState::Running);
        assert!(!s.set_drained("nope", true));
        let _ = clock;
    }

    #[test]
    fn fairshare_prefers_light_projects() {
        let (s, clock) = sched();
        s.set_fairshare(true);
        // Heavy project burns hours first.
        let h = s.submit("u1", "heavy", "gh", 4, 3600).unwrap();
        s.tick();
        clock.advance_secs(3600);
        s.tick();
        assert_eq!(s.job(&h).unwrap().state, JobState::Completed);
        // Fill most of the machine, then queue one job from each project;
        // only 4 nodes free and both want 4: light goes first.
        let filler = s.submit("u0", "other", "gh", 4, 10_000).unwrap();
        s.tick();
        assert_eq!(s.job(&filler).unwrap().state, JobState::Running);
        let heavy_again = s.submit("u1", "heavy", "gh", 4, 100).unwrap();
        let light = s.submit("u2", "light", "gh", 4, 100).unwrap();
        s.tick();
        assert_eq!(
            s.job(&light).unwrap().state,
            JobState::Running,
            "light project jumps the queue"
        );
        assert_eq!(s.job(&heavy_again).unwrap().state, JobState::Pending);
    }

    #[test]
    fn accounting_report_summarises_projects() {
        let (s, clock) = sched();
        let a = s.submit("u1", "alpha", "gh", 2, 3600).unwrap();
        let b = s.submit("u2", "beta", "gh", 1, 3600).unwrap();
        s.tick();
        clock.advance_secs(3600);
        s.tick();
        let _ = (a, b);
        s.submit("u2", "beta", "gh", 1, 50).unwrap();
        s.tick();
        let report = s.accounting_report();
        assert_eq!(report.len(), 2);
        let alpha = report.iter().find(|r| r.project == "alpha").unwrap();
        assert_eq!(alpha.completed, 1);
        assert!((alpha.node_hours - 2.0).abs() < 1e-9);
        let beta = report.iter().find(|r| r.project == "beta").unwrap();
        assert_eq!(beta.completed, 1);
        assert_eq!(beta.running, 1);
        assert!((beta.node_hours - 1.0).abs() < 1e-9);
    }

    #[test]
    fn walltime_is_exact() {
        let (s, clock) = sched();
        let id = s.submit("u", "p", "gh", 1, 100).unwrap();
        s.tick();
        clock.advance_secs(99);
        s.tick();
        assert_eq!(s.job(&id).unwrap().state, JobState::Running);
        clock.advance_secs(1);
        s.tick();
        let job = s.job(&id).unwrap();
        assert_eq!(job.state, JobState::Completed);
        assert_eq!(job.ended_at, Some(100));
    }
}
