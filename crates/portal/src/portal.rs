//! The portal service: project lifecycle, invitations, role queries.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use dri_broker::authz::AuthorizationSource;
use dri_clock::{IdGen, SimClock};
use dri_crypto::hex;
use dri_crypto::sha2::sha256;
use parking_lot::RwLock;

use crate::invitations::{Invitation, InvitationError};
use crate::project::{Allocation, DataClass, Membership, Project, ProjectRole, ProjectStatus};

/// Default invitation lifetime (seconds): 14 days.
const INVITATION_TTL_SECS: u64 = 14 * 24 * 3600;

/// Portal failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortalError {
    /// Caller lacks the required portal role.
    Forbidden,
    /// No such project.
    UnknownProject(String),
    /// No such member.
    UnknownMember,
    /// Invitation problem.
    Invitation(InvitationError),
    /// The subject is already a member of the project.
    AlreadyMember,
}

impl std::fmt::Display for PortalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortalError::Forbidden => write!(f, "caller lacks the required role"),
            PortalError::UnknownProject(p) => write!(f, "unknown project {p}"),
            PortalError::UnknownMember => write!(f, "unknown member"),
            PortalError::Invitation(e) => write!(f, "invitation error: {e}"),
            PortalError::AlreadyMember => write!(f, "already a member"),
        }
    }
}

impl std::error::Error for PortalError {}

struct PortalState {
    projects: HashMap<String, Project>,
    invitations: HashMap<String, Invitation>,
    /// Portal-level allocator subjects (can create projects).
    allocators: Vec<String>,
    /// Non-project grants: (subject, audience) -> roles. Used for admin
    /// audiences (mgmt-tailnet, sec-zone, portal-admin).
    admin_grants: HashMap<(String, String), Vec<String>>,
}

/// The user & project management portal.
pub struct Portal {
    clock: SimClock,
    state: RwLock<PortalState>,
    project_ids: IdGen,
    invite_counter: AtomicU64,
    /// Audiences every active project member is authorised for.
    member_audiences: Vec<String>,
}

impl Portal {
    /// Create an empty portal. `member_audiences` lists the services that
    /// project membership unlocks (typically `ssh-ca`, `jupyter`, `slurm`).
    pub fn new(clock: SimClock, member_audiences: Vec<String>) -> Portal {
        Portal {
            clock,
            state: RwLock::new(PortalState {
                projects: HashMap::new(),
                invitations: HashMap::new(),
                allocators: Vec::new(),
                admin_grants: HashMap::new(),
            }),
            project_ids: IdGen::new("proj"),
            invite_counter: AtomicU64::new(0),
            member_audiences,
        }
    }

    /// Register an allocator subject (portal operations staff).
    pub fn add_allocator(&self, subject: &str) {
        self.state.write().allocators.push(subject.to_string());
    }

    /// Record a non-project (admin) grant, e.g.
    /// `grant_admin("admin:dave", "mgmt-tailnet", &["sysadmin"])`.
    pub fn grant_admin(&self, subject: &str, audience: &str, roles: &[&str]) {
        self.state.write().admin_grants.insert(
            (subject.to_string(), audience.to_string()),
            roles.iter().map(|r| r.to_string()).collect(),
        );
    }

    /// Remove an admin grant ("access is revoked when an individual
    /// leaves the group").
    pub fn revoke_admin(&self, subject: &str, audience: &str) {
        self.state
            .write()
            .admin_grants
            .remove(&(subject.to_string(), audience.to_string()));
    }

    fn is_allocator(&self, subject: &str) -> bool {
        self.state.read().allocators.iter().any(|a| a == subject)
    }

    fn next_invite_token(&self, email: &str) -> String {
        let n = self.invite_counter.fetch_add(1, Ordering::Relaxed);
        let digest = sha256(format!("invite:{n}:{email}").as_bytes());
        format!("inv-{}", hex::encode(&digest[..12]))
    }

    /// User story 1, step 1: an allocator creates a project and invites
    /// the PI by email. Returns `(project_id, invitation)`.
    pub fn create_project(
        &self,
        allocator: &str,
        name: &str,
        allocation: Allocation,
        starts_at: u64,
        ends_at: u64,
        pi_email: &str,
    ) -> Result<(String, Invitation), PortalError> {
        let _span = dri_trace::span("portal.create_project", dri_trace::Stage::Portal);
        if !self.is_allocator(allocator) {
            return Err(PortalError::Forbidden);
        }
        let id = self.project_ids.next();
        let project = Project {
            id: id.clone(),
            name: name.to_string(),
            allocation,
            usage: Default::default(),
            starts_at,
            ends_at,
            status: ProjectStatus::Active,
            services: self.member_audiences.clone(),
            data_class: DataClass::default(),
            members: Vec::new(),
        };
        let invitation = Invitation {
            token: self.next_invite_token(pi_email),
            email: pi_email.to_string(),
            project_id: id.clone(),
            role: ProjectRole::Pi,
            invited_by: allocator.to_string(),
            expires_at: self.clock.now_secs() + INVITATION_TTL_SECS,
            accepted_by: None,
        };
        let mut state = self.state.write();
        state.projects.insert(id.clone(), project);
        state
            .invitations
            .insert(invitation.token.clone(), invitation.clone());
        Ok((id, invitation))
    }

    /// User story 3, step 1: a PI invites a researcher. Researchers cannot
    /// invite (role check), and neither can non-members.
    pub fn invite_researcher(
        &self,
        pi_subject: &str,
        project_id: &str,
        email: &str,
    ) -> Result<Invitation, PortalError> {
        let _span = dri_trace::span("portal.invite_researcher", dri_trace::Stage::Portal);
        let mut state = self.state.write();
        let project = state
            .projects
            .get(project_id)
            .ok_or_else(|| PortalError::UnknownProject(project_id.to_string()))?;
        let is_pi = project
            .member(pi_subject)
            .map(|m| m.role == ProjectRole::Pi)
            .unwrap_or(false);
        if !is_pi {
            return Err(PortalError::Forbidden);
        }
        let invitation = Invitation {
            token: self.next_invite_token(email),
            email: email.to_string(),
            project_id: project_id.to_string(),
            role: ProjectRole::Researcher,
            invited_by: pi_subject.to_string(),
            expires_at: self.clock.now_secs() + INVITATION_TTL_SECS,
            accepted_by: None,
        };
        state
            .invitations
            .insert(invitation.token.clone(), invitation.clone());
        Ok(invitation)
    }

    /// Accept an invitation after authenticating: binds `subject` to the
    /// project with the invited role and mints the unique per-project UNIX
    /// account. Fails if terms were not accepted — the paper's login page
    /// requires accepting T&C and privacy policies.
    pub fn accept_invitation(
        &self,
        token: &str,
        subject: &str,
        accept_terms: bool,
    ) -> Result<Membership, PortalError> {
        let _span = dri_trace::span("portal.accept_invitation", dri_trace::Stage::Portal);
        if !accept_terms {
            return Err(PortalError::Invitation(InvitationError::TermsNotAccepted));
        }
        let now = self.clock.now_secs();
        let mut state = self.state.write();
        let invitation = state
            .invitations
            .get_mut(token)
            .ok_or(PortalError::Invitation(InvitationError::Unknown))?;
        if invitation.accepted_by.is_some() {
            return Err(PortalError::Invitation(InvitationError::AlreadyUsed));
        }
        if now >= invitation.expires_at {
            return Err(PortalError::Invitation(InvitationError::Expired));
        }
        invitation.accepted_by = Some(subject.to_string());
        let project_id = invitation.project_id.clone();
        let role = invitation.role;

        let project = state
            .projects
            .get_mut(&project_id)
            .ok_or_else(|| PortalError::UnknownProject(project_id.clone()))?;
        if project.member(subject).is_some() {
            return Err(PortalError::AlreadyMember);
        }
        // Unique UNIX account per (user, project): derived from both ids,
        // so the same human gets different accounts on different projects.
        let digest = sha256(format!("{subject}/{project_id}").as_bytes());
        let unix_account = format!("u{}", hex::encode(&digest[..4]));
        let membership = Membership {
            subject: subject.to_string(),
            role,
            unix_account,
            terms_accepted_at: now,
            joined_at: now,
        };
        project.members.push(membership.clone());
        Ok(membership)
    }

    /// A PI (or allocator) removes a member; their authorisation for the
    /// project vanishes immediately.
    pub fn remove_member(
        &self,
        caller: &str,
        project_id: &str,
        subject: &str,
    ) -> Result<(), PortalError> {
        let caller_is_allocator = self.is_allocator(caller);
        let mut state = self.state.write();
        let project = state
            .projects
            .get_mut(project_id)
            .ok_or_else(|| PortalError::UnknownProject(project_id.to_string()))?;
        let caller_is_pi = project
            .member(caller)
            .map(|m| m.role == ProjectRole::Pi)
            .unwrap_or(false);
        if !caller_is_pi && !caller_is_allocator {
            return Err(PortalError::Forbidden);
        }
        let before = project.members.len();
        project.members.retain(|m| m.subject != subject);
        if project.members.len() == before {
            return Err(PortalError::UnknownMember);
        }
        Ok(())
    }

    /// Revoke a project on demand — "Access is revoked after expiration or
    /// on-demand. All information related to the project ... is removed
    /// from the authorisation list."
    pub fn revoke_project(&self, caller: &str, project_id: &str) -> Result<(), PortalError> {
        if !self.is_allocator(caller) {
            return Err(PortalError::Forbidden);
        }
        let mut state = self.state.write();
        let project = state
            .projects
            .get_mut(project_id)
            .ok_or_else(|| PortalError::UnknownProject(project_id.to_string()))?;
        project.status = ProjectStatus::Revoked;
        Ok(())
    }

    /// Set a project's data classification (allocator action).
    pub fn set_data_class(
        &self,
        caller: &str,
        project_id: &str,
        class: DataClass,
    ) -> Result<(), PortalError> {
        if !self.is_allocator(caller) {
            return Err(PortalError::Forbidden);
        }
        let mut state = self.state.write();
        let project = state
            .projects
            .get_mut(project_id)
            .ok_or_else(|| PortalError::UnknownProject(project_id.to_string()))?;
        project.data_class = class;
        Ok(())
    }

    /// Record resource usage (from the scheduler). Exceeding the
    /// allocation suspends the project's authorisation.
    pub fn record_usage(&self, project_id: &str, gpu_hours: f64, cpu_hours: f64) {
        if let Some(p) = self.state.write().projects.get_mut(project_id) {
            p.usage.gpu_hours += gpu_hours;
            p.usage.cpu_hours += cpu_hours;
        }
    }

    /// Project snapshot.
    pub fn project(&self, project_id: &str) -> Option<Project> {
        self.state.read().projects.get(project_id).cloned()
    }

    /// All projects a subject belongs to that currently grant access.
    pub fn active_projects_for(&self, subject: &str) -> Vec<Project> {
        let now = self.clock.now_secs();
        let state = self.state.read();
        let mut out: Vec<Project> = state
            .projects
            .values()
            .filter(|p| p.grants_access(now) && p.member(subject).is_some())
            .cloned()
            .collect();
        out.sort_by(|a, b| a.id.cmp(&b.id));
        out
    }

    /// Count of projects (metrics).
    pub fn project_count(&self) -> usize {
        self.state.read().projects.len()
    }
}

impl AuthorizationSource for Portal {
    fn roles_for(&self, subject: &str, audience: &str) -> Vec<String> {
        let mut roles: Vec<String> = Vec::new();
        // Admin grants first.
        if let Some(r) = self
            .state
            .read()
            .admin_grants
            .get(&(subject.to_string(), audience.to_string()))
        {
            roles.extend(r.iter().cloned());
        }
        // Project-derived grants: audience must be a member service of an
        // active project the subject belongs to.
        if self.member_audiences.iter().any(|a| a == audience) {
            for project in self.active_projects_for(subject) {
                if !project.services.iter().any(|s| s == audience) {
                    continue;
                }
                if let Some(m) = project.member(subject) {
                    let role = m.role.as_str().to_string();
                    if !roles.contains(&role) {
                        roles.push(role);
                    }
                }
            }
        }
        roles
    }

    fn is_authorized_subject(&self, subject: &str) -> bool {
        let state = self.state.read();
        if state.allocators.iter().any(|a| a == subject) {
            return true;
        }
        if state.admin_grants.keys().any(|(s, _)| s == subject) {
            return true;
        }
        drop(state);
        // Membership of any active project, or a pending invitation being
        // claimed, authorises registration. (Invitation claiming is
        // handled by the acceptance flow; here membership suffices.)
        !self.active_projects_for(subject).is_empty()
    }

    fn unix_accounts(&self, subject: &str) -> Vec<(String, String)> {
        self.active_projects_for(subject)
            .into_iter()
            .filter_map(|p| {
                p.member(subject)
                    .map(|m| (p.name.clone(), m.unix_account.clone()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn portal() -> (Portal, SimClock) {
        let clock = SimClock::starting_at(1_000_000 * 1000);
        let portal = Portal::new(
            clock.clone(),
            vec!["ssh-ca".into(), "jupyter".into(), "slurm".into()],
        );
        portal.add_allocator("admin:ops");
        (portal, clock)
    }

    fn onboard_pi(portal: &Portal, clock: &SimClock) -> (String, String) {
        let now = clock.now_secs();
        let (project_id, invite) = portal
            .create_project(
                "admin:ops",
                "climate-llm",
                Allocation::gpu(1000.0),
                now,
                now + 90 * 24 * 3600,
                "pi@uni.example",
            )
            .unwrap();
        portal
            .accept_invitation(&invite.token, "maid-000001", true)
            .unwrap();
        (project_id, "maid-000001".to_string())
    }

    #[test]
    fn allocator_creates_project_pi_accepts() {
        let (portal, clock) = portal();
        let (project_id, pi) = onboard_pi(&portal, &clock);
        let project = portal.project(&project_id).unwrap();
        assert_eq!(project.members.len(), 1);
        assert_eq!(project.member(&pi).unwrap().role, ProjectRole::Pi);
        assert_eq!(portal.roles_for(&pi, "ssh-ca"), vec!["pi"]);
        assert!(portal.is_authorized_subject(&pi));
    }

    #[test]
    fn non_allocator_cannot_create_projects() {
        let (portal, clock) = portal();
        let now = clock.now_secs();
        assert_eq!(
            portal
                .create_project("maid-9", "x", Allocation::gpu(1.0), now, now + 10, "a@b")
                .unwrap_err(),
            PortalError::Forbidden
        );
    }

    #[test]
    fn terms_must_be_accepted() {
        let (portal, clock) = portal();
        let now = clock.now_secs();
        let (_, invite) = portal
            .create_project(
                "admin:ops",
                "p",
                Allocation::gpu(1.0),
                now,
                now + 100,
                "a@b",
            )
            .unwrap();
        assert_eq!(
            portal
                .accept_invitation(&invite.token, "maid-1", false)
                .unwrap_err(),
            PortalError::Invitation(InvitationError::TermsNotAccepted)
        );
        // The invitation is still claimable afterwards.
        assert!(portal
            .accept_invitation(&invite.token, "maid-1", true)
            .is_ok());
    }

    #[test]
    fn invitations_single_use_and_expiring() {
        let (portal, clock) = portal();
        let now = clock.now_secs();
        let (_, invite) = portal
            .create_project(
                "admin:ops",
                "p",
                Allocation::gpu(1.0),
                now,
                now + 10_000_000,
                "a@b",
            )
            .unwrap();
        portal
            .accept_invitation(&invite.token, "maid-1", true)
            .unwrap();
        assert_eq!(
            portal
                .accept_invitation(&invite.token, "maid-2", true)
                .unwrap_err(),
            PortalError::Invitation(InvitationError::AlreadyUsed)
        );
        assert_eq!(
            portal
                .accept_invitation("inv-nope", "maid-2", true)
                .unwrap_err(),
            PortalError::Invitation(InvitationError::Unknown)
        );

        let (project_id, _) = onboard_pi(&portal, &clock);
        let inv = portal
            .invite_researcher("maid-000001", &project_id, "r@uni")
            .unwrap();
        clock.advance_secs(INVITATION_TTL_SECS + 1);
        assert_eq!(
            portal
                .accept_invitation(&inv.token, "maid-3", true)
                .unwrap_err(),
            PortalError::Invitation(InvitationError::Expired)
        );
    }

    #[test]
    fn researcher_cannot_invite() {
        let (portal, clock) = portal();
        let (project_id, pi) = onboard_pi(&portal, &clock);
        let inv = portal.invite_researcher(&pi, &project_id, "r@uni").unwrap();
        portal
            .accept_invitation(&inv.token, "maid-000002", true)
            .unwrap();
        // The researcher tries to invite someone else.
        assert_eq!(
            portal
                .invite_researcher("maid-000002", &project_id, "friend@uni")
                .unwrap_err(),
            PortalError::Forbidden
        );
        // And a complete stranger cannot either.
        assert_eq!(
            portal
                .invite_researcher("maid-999", &project_id, "x@y")
                .unwrap_err(),
            PortalError::Forbidden
        );
    }

    #[test]
    fn pi_removes_researcher_revoking_authorisation() {
        let (portal, clock) = portal();
        let (project_id, pi) = onboard_pi(&portal, &clock);
        let inv = portal.invite_researcher(&pi, &project_id, "r@uni").unwrap();
        portal
            .accept_invitation(&inv.token, "maid-000002", true)
            .unwrap();
        assert_eq!(
            portal.roles_for("maid-000002", "jupyter"),
            vec!["researcher"]
        );
        portal
            .remove_member(&pi, &project_id, "maid-000002")
            .unwrap();
        assert!(portal.roles_for("maid-000002", "jupyter").is_empty());
        assert!(!portal.is_authorized_subject("maid-000002"));
        // Removing twice errors.
        assert_eq!(
            portal
                .remove_member(&pi, &project_id, "maid-000002")
                .unwrap_err(),
            PortalError::UnknownMember
        );
    }

    #[test]
    fn project_expiry_removes_all_authorisation() {
        let (portal, clock) = portal();
        let (_, pi) = onboard_pi(&portal, &clock);
        assert!(!portal.roles_for(&pi, "ssh-ca").is_empty());
        clock.advance_secs(91 * 24 * 3600);
        assert!(portal.roles_for(&pi, "ssh-ca").is_empty());
        assert!(!portal.is_authorized_subject(&pi));
    }

    #[test]
    fn project_revocation_removes_authorisation() {
        let (portal, clock) = portal();
        let (project_id, pi) = onboard_pi(&portal, &clock);
        portal.revoke_project("admin:ops", &project_id).unwrap();
        assert!(portal.roles_for(&pi, "ssh-ca").is_empty());
        // Only allocators can revoke.
        assert_eq!(
            portal.revoke_project(&pi, &project_id).unwrap_err(),
            PortalError::Forbidden
        );
    }

    #[test]
    fn over_allocation_suspends_access() {
        let (portal, clock) = portal();
        let (project_id, pi) = onboard_pi(&portal, &clock);
        portal.record_usage(&project_id, 999.0, 0.0);
        assert!(!portal.roles_for(&pi, "slurm").is_empty());
        portal.record_usage(&project_id, 2.0, 0.0);
        assert!(portal.roles_for(&pi, "slurm").is_empty());
    }

    #[test]
    fn unix_accounts_unique_per_project() {
        let (portal, clock) = portal();
        let (p1, pi) = onboard_pi(&portal, &clock);
        let now = clock.now_secs();
        let (_p2, invite2) = portal
            .create_project(
                "admin:ops",
                "genomics",
                Allocation::gpu(10.0),
                now,
                now + 1000,
                "pi@uni.example",
            )
            .unwrap();
        portal.accept_invitation(&invite2.token, &pi, true).unwrap();
        let accounts = portal.unix_accounts(&pi);
        assert_eq!(accounts.len(), 2);
        assert_ne!(
            accounts[0].1, accounts[1].1,
            "same user, different unix accounts"
        );
        let p1_account = portal
            .project(&p1)
            .unwrap()
            .member(&pi)
            .unwrap()
            .unix_account
            .clone();
        assert!(accounts.iter().any(|(_, a)| *a == p1_account));
    }

    #[test]
    fn admin_grants_flow_through_roles() {
        let (portal, _clock) = portal();
        portal.grant_admin("admin:dave", "mgmt-tailnet", &["sysadmin"]);
        assert_eq!(
            portal.roles_for("admin:dave", "mgmt-tailnet"),
            vec!["sysadmin"]
        );
        assert!(portal.is_authorized_subject("admin:dave"));
        portal.revoke_admin("admin:dave", "mgmt-tailnet");
        assert!(portal.roles_for("admin:dave", "mgmt-tailnet").is_empty());
    }
}
