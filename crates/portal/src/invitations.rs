//! Email invitations binding a future login to a pre-granted role.
//!
//! This is the mechanism behind "authorisation leads authentication": the
//! *grant* (invitation) exists before the user has ever authenticated;
//! accepting it binds their community identity to the project role.

use crate::project::ProjectRole;

/// A single-use, time-limited invitation.
#[derive(Debug, Clone)]
pub struct Invitation {
    /// Opaque invitation token (sent by email).
    pub token: String,
    /// Email address invited.
    pub email: String,
    /// Target project.
    pub project_id: String,
    /// Role to grant on acceptance.
    pub role: ProjectRole,
    /// Who issued it (allocator or PI subject).
    pub invited_by: String,
    /// Expiry (seconds).
    pub expires_at: u64,
    /// Set when accepted (subject that claimed it).
    pub accepted_by: Option<String>,
}

/// Invitation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvitationError {
    /// Unknown token.
    Unknown,
    /// Already accepted.
    AlreadyUsed,
    /// Past expiry.
    Expired,
    /// Terms and conditions were not accepted.
    TermsNotAccepted,
}

impl std::fmt::Display for InvitationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            InvitationError::Unknown => "unknown invitation",
            InvitationError::AlreadyUsed => "invitation already used",
            InvitationError::Expired => "invitation expired",
            InvitationError::TermsNotAccepted => "terms and conditions not accepted",
        };
        f.write_str(s)
    }
}

impl std::error::Error for InvitationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invitation_fields() {
        let inv = Invitation {
            token: "tok".into(),
            email: "pi@uni.example".into(),
            project_id: "proj-1".into(),
            role: ProjectRole::Pi,
            invited_by: "allocator:ops".into(),
            expires_at: 99,
            accepted_by: None,
        };
        assert!(inv.accepted_by.is_none());
        assert_eq!(inv.role, ProjectRole::Pi);
    }
}
