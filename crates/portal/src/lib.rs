//! # dri-portal — the user and project management portal
//!
//! The Waldur/Puhuri-style portal of the paper's FDS domain. It is the
//! *source of authorisation truth*: the broker consults it (via
//! [`dri_broker::AuthorizationSource`]) before establishing sessions or
//! minting tokens, which is what makes registration *authorisation-led*.
//!
//! Concepts, mirroring §IV-A of the paper:
//!
//! * **Allocator** — portal-level admin who creates projects and grants the
//!   PI role (user story 1).
//! * **PI** — project owner; invites/removes Researchers (user stories 1, 3).
//! * **Researcher** — project member; cannot invite others.
//! * **Projects** are time- and resource-limited; expiry or revocation
//!   removes every member's authorisation at once.
//! * Each member gets a **unique per-project UNIX account** (user story 4's
//!   ZTA requirement) minted at join time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod invitations;
pub mod portal;
pub mod project;

pub use invitations::{Invitation, InvitationError};
pub use portal::{Portal, PortalError};
pub use project::{Allocation, DataClass, Membership, Project, ProjectRole, ProjectStatus};
