//! Project, allocation and membership records.

/// Role inside a project.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProjectRole {
    /// Principal investigator / project owner.
    Pi,
    /// Ordinary project member.
    Researcher,
}

impl ProjectRole {
    /// Stable role name used in token claims.
    pub fn as_str(self) -> &'static str {
        match self {
            ProjectRole::Pi => "pi",
            ProjectRole::Researcher => "researcher",
        }
    }
}

/// GSCP-style data classification of a project's workloads.
///
/// The paper: only the Official (OFF) tier of the UK Government Security
/// Classifications Policy applies to the Isambard DRIs; Official projects
/// attract stricter dynamic-policy thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataClass {
    /// Open research data.
    #[default]
    Open,
    /// GSCP Official: handling requirements apply.
    Official,
}

impl DataClass {
    /// Stable display name.
    pub fn as_str(self) -> &'static str {
        match self {
            DataClass::Open => "open",
            DataClass::Official => "official",
        }
    }
}

/// Lifecycle state of a project.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjectStatus {
    /// Active: members are authorised.
    Active,
    /// Past its end date: all authorisation lapsed.
    Expired,
    /// Revoked on demand (incident, policy breach).
    Revoked,
}

/// A time- and resource-limited compute allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Allocation {
    /// GPU-hours granted.
    pub gpu_hours: f64,
    /// CPU-core-hours granted.
    pub cpu_hours: f64,
    /// Storage quota in GiB.
    pub storage_gib: f64,
}

impl Allocation {
    /// An allocation with only GPU hours (typical Isambard-AI project).
    pub fn gpu(gpu_hours: f64) -> Allocation {
        Allocation {
            gpu_hours,
            cpu_hours: 0.0,
            storage_gib: 100.0,
        }
    }
}

/// Resource usage recorded against an allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Usage {
    /// GPU-hours consumed.
    pub gpu_hours: f64,
    /// CPU-core-hours consumed.
    pub cpu_hours: f64,
}

impl Usage {
    /// True when usage exceeds the allocation on any axis.
    pub fn exceeds(&self, alloc: &Allocation) -> bool {
        self.gpu_hours > alloc.gpu_hours || self.cpu_hours > alloc.cpu_hours
    }
}

/// One user's membership of one project.
#[derive(Debug, Clone)]
pub struct Membership {
    /// Subject (community id) of the member.
    pub subject: String,
    /// Role held.
    pub role: ProjectRole,
    /// The unique per-project UNIX account minted for this member.
    pub unix_account: String,
    /// When the member accepted the terms & conditions (seconds).
    pub terms_accepted_at: u64,
    /// Join time (seconds).
    pub joined_at: u64,
}

/// A project record.
#[derive(Debug, Clone)]
pub struct Project {
    /// Project id (`proj-000001`).
    pub id: String,
    /// Human name (also used as the SSH alias prefix).
    pub name: String,
    /// Allocation limits.
    pub allocation: Allocation,
    /// Usage against the allocation.
    pub usage: Usage,
    /// Start time (seconds).
    pub starts_at: u64,
    /// Hard end time (seconds) — "each project is time limited".
    pub ends_at: u64,
    /// Lifecycle state (expiry is also derived from the clock).
    pub status: ProjectStatus,
    /// Services enabled for this project (audiences, e.g. `ssh-ca`).
    pub services: Vec<String>,
    /// Data classification (drives PDP sensitivity).
    pub data_class: DataClass,
    /// Members.
    pub members: Vec<Membership>,
}

impl Project {
    /// Effective status at time `now`, accounting for the end date.
    pub fn status_at(&self, now_secs: u64) -> ProjectStatus {
        match self.status {
            ProjectStatus::Revoked => ProjectStatus::Revoked,
            _ if now_secs >= self.ends_at => ProjectStatus::Expired,
            s => s,
        }
    }

    /// Whether members still confer authorisation at `now`.
    pub fn grants_access(&self, now_secs: u64) -> bool {
        self.status_at(now_secs) == ProjectStatus::Active
            && now_secs >= self.starts_at
            && !self.usage.exceeds(&self.allocation)
    }

    /// Find a member by subject.
    pub fn member(&self, subject: &str) -> Option<&Membership> {
        self.members.iter().find(|m| m.subject == subject)
    }

    /// The PI memberships (usually exactly one).
    pub fn pis(&self) -> impl Iterator<Item = &Membership> {
        self.members.iter().filter(|m| m.role == ProjectRole::Pi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn project() -> Project {
        Project {
            id: "proj-000001".into(),
            name: "climate-llm".into(),
            allocation: Allocation::gpu(1000.0),
            usage: Usage::default(),
            starts_at: 100,
            ends_at: 1000,
            status: ProjectStatus::Active,
            services: vec!["ssh-ca".into()],
            data_class: DataClass::Open,
            members: vec![],
        }
    }

    #[test]
    fn status_respects_end_date() {
        let p = project();
        assert_eq!(p.status_at(500), ProjectStatus::Active);
        assert_eq!(p.status_at(1000), ProjectStatus::Expired);
        assert!(p.grants_access(500));
        assert!(!p.grants_access(1000));
        // Before the start date there is no access either.
        assert!(!p.grants_access(50));
    }

    #[test]
    fn revocation_wins_over_activity() {
        let mut p = project();
        p.status = ProjectStatus::Revoked;
        assert_eq!(p.status_at(500), ProjectStatus::Revoked);
        assert!(!p.grants_access(500));
    }

    #[test]
    fn over_allocation_suspends_access() {
        let mut p = project();
        p.usage.gpu_hours = 1000.5;
        assert!(p.usage.exceeds(&p.allocation));
        assert!(!p.grants_access(500));
    }

    #[test]
    fn role_names_are_stable() {
        assert_eq!(ProjectRole::Pi.as_str(), "pi");
        assert_eq!(ProjectRole::Researcher.as_str(), "researcher");
    }
}
