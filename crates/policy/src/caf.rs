//! NCSC Cyber Assessment Framework (CAF) baseline-profile assessment.
//!
//! §V: *"Our next steps is to achieve CAF compliance for the baseline
//! profile."* This module implements that next step as an executable
//! assessment: the 14 CAF principles (objectives A–D) scored from
//! evidence the infrastructure produces, with the baseline profile's
//! expectation per principle.

/// Achievement level for one principle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Achievement {
    /// Not achieved.
    NotAchieved,
    /// Partially achieved.
    PartiallyAchieved,
    /// Achieved.
    Achieved,
}

impl Achievement {
    /// Stable display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Achievement::NotAchieved => "not-achieved",
            Achievement::PartiallyAchieved => "partially-achieved",
            Achievement::Achieved => "achieved",
        }
    }
}

/// Evidence bundle for the CAF assessment (gathered live by `dri-core`).
#[derive(Debug, Clone, Default)]
pub struct CafEvidence {
    // Objective A — managing security risk.
    /// Governance: are roles (allocator/PI/researcher/admin) separated?
    pub roles_separated: bool,
    /// Risk: is there a documented asset inventory?
    pub assets_inventoried: usize,
    /// Asset management: configuration checks run?
    pub config_checks_run: usize,
    /// Supply chain: are external IdPs trust-anchored via metadata?
    pub federation_metadata_verified: bool,

    // Objective B — protecting against cyber attack.
    /// Service protection policies: per-service token policies.
    pub services_with_policy: usize,
    /// Total services.
    pub services_total: usize,
    /// Identity & access: MFA enforced, no global admin.
    pub mfa_enforced: bool,
    /// No global admin exists.
    pub no_global_admin: bool,
    /// Data security: encryption on IAM flows.
    pub iam_encrypted: bool,
    /// System security: default-deny segmentation.
    pub default_deny: bool,
    /// Resilient networks: HA bastion instances.
    pub bastion_instances: usize,
    /// Staff awareness (modelled: DevSecOps culture flag; the paper says
    /// this is still being grown — expect partial).
    pub devsecops_established: bool,

    // Objective C — detecting cyber security events.
    /// Monitoring coverage: distinct telemetry sources.
    pub telemetry_sources: usize,
    /// Events collected.
    pub events_collected: u64,
    /// Proactive discovery: detection rules active.
    pub detection_rules_active: usize,

    // Objective D — minimising impact.
    /// Response: kill switches present and tested.
    pub kill_switches_tested: bool,
    /// Recovery: reinstatement paths exist.
    pub reinstatement_tested: bool,
    /// Lessons learned: alerts feed configuration (modelled flag).
    pub lessons_loop: bool,
}

/// One assessed CAF principle.
#[derive(Debug, Clone)]
pub struct CafPrinciple {
    /// Principle id (`A1`…`D2`).
    pub id: &'static str,
    /// Title.
    pub title: &'static str,
    /// Level achieved.
    pub achieved: Achievement,
    /// Level the baseline profile expects.
    pub baseline_expectation: Achievement,
    /// Evidence summary.
    pub evidence: String,
}

impl CafPrinciple {
    /// Does this principle meet the baseline profile?
    pub fn meets_baseline(&self) -> bool {
        self.achieved >= self.baseline_expectation
    }
}

/// The full assessment.
#[derive(Debug, Clone)]
pub struct CafAssessment {
    /// All 14 principles.
    pub principles: Vec<CafPrinciple>,
}

impl CafAssessment {
    /// Run the assessment over evidence.
    pub fn run(ev: &CafEvidence) -> CafAssessment {
        use Achievement::*;
        let tri = |ok: bool, partial: bool| {
            if ok {
                Achieved
            } else if partial {
                PartiallyAchieved
            } else {
                NotAchieved
            }
        };
        let principles = vec![
            CafPrinciple {
                id: "A1",
                title: "Governance",
                achieved: tri(ev.roles_separated, false),
                baseline_expectation: PartiallyAchieved,
                evidence: format!("role separation = {}", ev.roles_separated),
            },
            CafPrinciple {
                id: "A2",
                title: "Risk management",
                achieved: tri(
                    ev.assets_inventoried > 0 && ev.config_checks_run > 0,
                    ev.assets_inventoried > 0,
                ),
                baseline_expectation: PartiallyAchieved,
                evidence: format!(
                    "{} assets, {} config checks",
                    ev.assets_inventoried, ev.config_checks_run
                ),
            },
            CafPrinciple {
                id: "A3",
                title: "Asset management",
                achieved: tri(ev.assets_inventoried >= 5, ev.assets_inventoried > 0),
                baseline_expectation: PartiallyAchieved,
                evidence: format!("{} assets inventoried", ev.assets_inventoried),
            },
            CafPrinciple {
                id: "A4",
                title: "Supply chain",
                achieved: tri(ev.federation_metadata_verified, false),
                baseline_expectation: PartiallyAchieved,
                evidence: format!(
                    "federation metadata verified = {}",
                    ev.federation_metadata_verified
                ),
            },
            CafPrinciple {
                id: "B1",
                title: "Service protection policies and processes",
                achieved: tri(
                    ev.services_total > 0 && ev.services_with_policy == ev.services_total,
                    ev.services_with_policy > 0,
                ),
                baseline_expectation: Achieved,
                evidence: format!(
                    "{}/{} services under policy",
                    ev.services_with_policy, ev.services_total
                ),
            },
            CafPrinciple {
                id: "B2",
                title: "Identity and access control",
                achieved: tri(ev.mfa_enforced && ev.no_global_admin, ev.mfa_enforced),
                baseline_expectation: Achieved,
                evidence: format!(
                    "mfa = {}, no global admin = {}",
                    ev.mfa_enforced, ev.no_global_admin
                ),
            },
            CafPrinciple {
                id: "B3",
                title: "Data security",
                achieved: tri(ev.iam_encrypted, false),
                baseline_expectation: Achieved,
                evidence: format!("IAM encryption = {}", ev.iam_encrypted),
            },
            CafPrinciple {
                id: "B4",
                title: "System security",
                achieved: tri(ev.default_deny, false),
                baseline_expectation: Achieved,
                evidence: format!("default-deny fabric = {}", ev.default_deny),
            },
            CafPrinciple {
                id: "B5",
                title: "Resilient networks and systems",
                achieved: tri(ev.bastion_instances >= 2, ev.bastion_instances >= 1),
                baseline_expectation: PartiallyAchieved,
                evidence: format!("{} HA bastion instances", ev.bastion_instances),
            },
            CafPrinciple {
                id: "B6",
                title: "Staff awareness and training",
                achieved: tri(ev.devsecops_established, true),
                baseline_expectation: PartiallyAchieved,
                evidence: format!(
                    "DevSecOps culture established = {} (paper: in progress)",
                    ev.devsecops_established
                ),
            },
            CafPrinciple {
                id: "C1",
                title: "Security monitoring",
                achieved: tri(
                    ev.telemetry_sources >= 3 && ev.events_collected > 0,
                    ev.events_collected > 0,
                ),
                baseline_expectation: Achieved,
                evidence: format!(
                    "{} sources, {} events",
                    ev.telemetry_sources, ev.events_collected
                ),
            },
            CafPrinciple {
                id: "C2",
                title: "Proactive security event discovery",
                achieved: tri(
                    ev.detection_rules_active >= 3,
                    ev.detection_rules_active > 0,
                ),
                baseline_expectation: PartiallyAchieved,
                evidence: format!("{} detection rules", ev.detection_rules_active),
            },
            CafPrinciple {
                id: "D1",
                title: "Response and recovery planning",
                achieved: tri(
                    ev.kill_switches_tested && ev.reinstatement_tested,
                    ev.kill_switches_tested,
                ),
                baseline_expectation: Achieved,
                evidence: format!(
                    "kill switches tested = {}, reinstatement = {}",
                    ev.kill_switches_tested, ev.reinstatement_tested
                ),
            },
            CafPrinciple {
                id: "D2",
                title: "Lessons learned",
                achieved: tri(ev.lessons_loop, false),
                baseline_expectation: PartiallyAchieved,
                evidence: format!("alert->config feedback loop = {}", ev.lessons_loop),
            },
        ];
        CafAssessment { principles }
    }

    /// Principles meeting the baseline / total.
    pub fn baseline_score(&self) -> (usize, usize) {
        (
            self.principles
                .iter()
                .filter(|p| p.meets_baseline())
                .count(),
            self.principles.len(),
        )
    }

    /// Baseline-profile compliant?
    pub fn baseline_compliant(&self) -> bool {
        self.principles.iter().all(|p| p.meets_baseline())
    }

    /// Principles below baseline.
    pub fn gaps(&self) -> Vec<&CafPrinciple> {
        self.principles
            .iter()
            .filter(|p| !p.meets_baseline())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_evidence() -> CafEvidence {
        CafEvidence {
            roles_separated: true,
            assets_inventoried: 7,
            config_checks_run: 12,
            federation_metadata_verified: true,
            services_with_policy: 6,
            services_total: 6,
            mfa_enforced: true,
            no_global_admin: true,
            iam_encrypted: true,
            default_deny: true,
            bastion_instances: 3,
            devsecops_established: false, // honest: paper says in progress
            telemetry_sources: 5,
            events_collected: 1000,
            detection_rules_active: 4,
            kill_switches_tested: true,
            reinstatement_tested: true,
            lessons_loop: true,
        }
    }

    #[test]
    fn deployed_codesign_meets_baseline() {
        let assessment = CafAssessment::run(&full_evidence());
        assert!(
            assessment.baseline_compliant(),
            "gaps: {:?}",
            assessment.gaps().iter().map(|p| p.id).collect::<Vec<_>>()
        );
        assert_eq!(assessment.baseline_score(), (14, 14));
        // B6 is only partially achieved (DevSecOps in progress) but the
        // baseline only expects partial.
        let b6 = assessment.principles.iter().find(|p| p.id == "B6").unwrap();
        assert_eq!(b6.achieved, Achievement::PartiallyAchieved);
        assert!(b6.meets_baseline());
    }

    #[test]
    fn missing_mfa_breaks_b2() {
        let mut ev = full_evidence();
        ev.mfa_enforced = false;
        let assessment = CafAssessment::run(&ev);
        assert!(!assessment.baseline_compliant());
        assert!(assessment.gaps().iter().any(|p| p.id == "B2"));
    }

    #[test]
    fn no_monitoring_breaks_c1() {
        let mut ev = full_evidence();
        ev.events_collected = 0;
        ev.telemetry_sources = 0;
        let assessment = CafAssessment::run(&ev);
        assert!(assessment.gaps().iter().any(|p| p.id == "C1"));
    }

    #[test]
    fn achievement_ordering() {
        assert!(Achievement::Achieved > Achievement::PartiallyAchieved);
        assert!(Achievement::PartiallyAchieved > Achievement::NotAchieved);
        assert_eq!(Achievement::Achieved.as_str(), "achieved");
    }

    #[test]
    fn single_bastion_is_partial_on_b5() {
        let mut ev = full_evidence();
        ev.bastion_instances = 1;
        let assessment = CafAssessment::run(&ev);
        let b5 = assessment.principles.iter().find(|p| p.id == "B5").unwrap();
        assert_eq!(b5.achieved, Achievement::PartiallyAchieved);
        assert!(b5.meets_baseline(), "baseline expects partial for B5");
    }
}
