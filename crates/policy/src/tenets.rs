//! Machine-checked audit of the seven NIST zero-trust tenets (§II-C).
//!
//! The audit consumes *evidence* gathered from the running
//! infrastructure rather than configuration claims: counts of registered
//! resources, observed encryption, token lifetimes, PDP consultations,
//! telemetry volumes. The E15 experiment shows the full co-design passes
//! all seven while ablated variants fail specific tenets.

/// Evidence gathered from the assembled infrastructure.
#[derive(Debug, Clone, Default)]
pub struct TenetEvidence {
    // Tenet 1: all data sources and computing services are resources.
    /// Services discovered in the deployment.
    pub services_total: usize,
    /// Services registered with a token policy (managed as resources).
    pub services_with_policy: usize,

    // Tenet 2: all communication secured regardless of location.
    /// Channels audited.
    pub channels_total: usize,
    /// Channels carrying encrypted + authenticated traffic.
    pub channels_encrypted: usize,

    // Tenet 3: per-session access.
    /// Longest credential lifetime observed (seconds).
    pub max_credential_ttl_secs: u64,
    /// Are tokens bound to sessions (sid claim) and audiences?
    pub tokens_session_bound: bool,

    // Tenet 4: dynamic policy.
    /// Did access decisions consult identity+device+environment signals?
    pub pdp_signals: usize,
    /// PDP consultations observed.
    pub pdp_consultations: u64,

    // Tenet 5: monitor and measure asset integrity/posture.
    /// Assets tracked in the inventory.
    pub assets_inventoried: usize,
    /// Configuration checks executed.
    pub config_checks_run: usize,

    // Tenet 6: dynamic, strictly enforced authn/authz.
    /// Does re-authentication get forced on session expiry?
    pub reauth_enforced: bool,
    /// Does revocation cut access before credential expiry?
    pub revocation_effective: bool,

    // Tenet 7: collect as much information as possible.
    /// Security events collected.
    pub events_collected: u64,
    /// Distinct event sources feeding the SIEM.
    pub telemetry_sources: usize,
}

/// Per-tenet verdict.
#[derive(Debug, Clone)]
pub struct TenetResult {
    /// Tenet number (1–7).
    pub tenet: u8,
    /// NIST's phrasing (abbreviated).
    pub statement: &'static str,
    /// Verdict.
    pub passed: bool,
    /// The evidence summary behind the verdict.
    pub evidence: String,
}

/// The audit outcome.
#[derive(Debug, Clone)]
pub struct TenetAudit {
    /// Individual results.
    pub results: Vec<TenetResult>,
}

/// Ceiling for "short-lived" credentials (seconds).
const CREDENTIAL_TTL_CEILING_SECS: u64 = 24 * 3600;

impl TenetAudit {
    /// Run the audit over evidence.
    pub fn run(ev: &TenetEvidence) -> TenetAudit {
        let results = vec![
            TenetResult {
                tenet: 1,
                statement: "all data sources and computing services are resources",
                passed: ev.services_total > 0 && ev.services_with_policy == ev.services_total,
                evidence: format!(
                    "{}/{} services under token policy",
                    ev.services_with_policy, ev.services_total
                ),
            },
            TenetResult {
                tenet: 2,
                statement: "all communication secured regardless of network location",
                passed: ev.channels_total > 0 && ev.channels_encrypted == ev.channels_total,
                evidence: format!(
                    "{}/{} channels encrypted+authenticated",
                    ev.channels_encrypted, ev.channels_total
                ),
            },
            TenetResult {
                tenet: 3,
                statement: "access granted per session",
                passed: ev.tokens_session_bound
                    && ev.max_credential_ttl_secs > 0
                    && ev.max_credential_ttl_secs <= CREDENTIAL_TTL_CEILING_SECS,
                evidence: format!(
                    "session-bound={}, max TTL {}s",
                    ev.tokens_session_bound, ev.max_credential_ttl_secs
                ),
            },
            TenetResult {
                tenet: 4,
                statement: "access determined by dynamic policy",
                passed: ev.pdp_signals >= 3 && ev.pdp_consultations > 0,
                evidence: format!(
                    "{} signal classes, {} consultations",
                    ev.pdp_signals, ev.pdp_consultations
                ),
            },
            TenetResult {
                tenet: 5,
                statement: "integrity and posture of assets monitored",
                passed: ev.assets_inventoried > 0 && ev.config_checks_run > 0,
                evidence: format!(
                    "{} assets inventoried, {} config checks",
                    ev.assets_inventoried, ev.config_checks_run
                ),
            },
            TenetResult {
                tenet: 6,
                statement: "authentication and authorization dynamic and strictly enforced",
                passed: ev.reauth_enforced && ev.revocation_effective,
                evidence: format!(
                    "reauth={}, revocation={}",
                    ev.reauth_enforced, ev.revocation_effective
                ),
            },
            TenetResult {
                tenet: 7,
                statement: "collect and use information to improve posture",
                passed: ev.events_collected > 0 && ev.telemetry_sources >= 3,
                evidence: format!(
                    "{} events from {} sources",
                    ev.events_collected, ev.telemetry_sources
                ),
            },
        ];
        TenetAudit { results }
    }

    /// Passed / total.
    pub fn score(&self) -> (usize, usize) {
        (
            self.results.iter().filter(|r| r.passed).count(),
            self.results.len(),
        )
    }

    /// True when every tenet passes.
    pub fn compliant(&self) -> bool {
        self.results.iter().all(|r| r.passed)
    }

    /// The failing tenet numbers.
    pub fn failing(&self) -> Vec<u8> {
        self.results
            .iter()
            .filter(|r| !r.passed)
            .map(|r| r.tenet)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_evidence() -> TenetEvidence {
        TenetEvidence {
            services_total: 6,
            services_with_policy: 6,
            channels_total: 5,
            channels_encrypted: 5,
            max_credential_ttl_secs: 8 * 3600,
            tokens_session_bound: true,
            pdp_signals: 5,
            pdp_consultations: 100,
            assets_inventoried: 12,
            config_checks_run: 12,
            reauth_enforced: true,
            revocation_effective: true,
            events_collected: 5000,
            telemetry_sources: 6,
        }
    }

    #[test]
    fn full_codesign_passes_all_seven() {
        let audit = TenetAudit::run(&full_evidence());
        assert!(audit.compliant(), "failing: {:?}", audit.failing());
        assert_eq!(audit.score(), (7, 7));
    }

    #[test]
    fn unencrypted_channel_fails_tenet_2() {
        let mut ev = full_evidence();
        ev.channels_encrypted = 4;
        let audit = TenetAudit::run(&ev);
        assert_eq!(audit.failing(), vec![2]);
    }

    #[test]
    fn long_lived_credentials_fail_tenet_3() {
        let mut ev = full_evidence();
        ev.max_credential_ttl_secs = 365 * 24 * 3600;
        assert_eq!(TenetAudit::run(&ev).failing(), vec![3]);
    }

    #[test]
    fn no_revocation_fails_tenet_6() {
        let mut ev = full_evidence();
        ev.revocation_effective = false;
        assert_eq!(TenetAudit::run(&ev).failing(), vec![6]);
    }

    #[test]
    fn no_telemetry_fails_tenet_7() {
        let mut ev = full_evidence();
        ev.events_collected = 0;
        assert_eq!(TenetAudit::run(&ev).failing(), vec![7]);
    }

    #[test]
    fn perimeter_model_fails_many_tenets() {
        // A classic "trusted network" HPC deployment: long-lived keys,
        // plaintext internal traffic, no PDP, no SIEM.
        let ev = TenetEvidence {
            services_total: 6,
            services_with_policy: 1,
            channels_total: 5,
            channels_encrypted: 1,
            max_credential_ttl_secs: 365 * 24 * 3600,
            tokens_session_bound: false,
            pdp_signals: 1,
            pdp_consultations: 0,
            assets_inventoried: 0,
            config_checks_run: 0,
            reauth_enforced: false,
            revocation_effective: false,
            events_collected: 0,
            telemetry_sources: 0,
        };
        let audit = TenetAudit::run(&ev);
        let (passed, total) = audit.score();
        assert_eq!(total, 7);
        assert_eq!(passed, 0);
    }

    #[test]
    fn results_carry_evidence_strings() {
        let audit = TenetAudit::run(&full_evidence());
        for r in &audit.results {
            assert!(!r.evidence.is_empty());
            assert!(!r.statement.is_empty());
        }
    }
}
