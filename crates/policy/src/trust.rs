//! The trust algorithm and policy decision point.
//!
//! Tenet 4: "Access to resources is determined by dynamic policy —
//! including the observable state of client identity, application/service,
//! and the requesting asset — and may include other behavioural and
//! environmental attributes." The PDP below scores those inputs
//! explicitly, so experiments can ablate individual signals and watch
//! decisions change.

use dri_federation::types::LevelOfAssurance;

/// Device posture signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevicePosture {
    /// Device is enrolled/managed (e.g. a tailnet node or known client).
    pub managed: bool,
    /// Known-patched (inventory says no critical vulns).
    pub patched: bool,
    /// Flagged compromised by the SIEM.
    pub compromised: bool,
}

impl DevicePosture {
    /// A healthy managed device.
    pub fn healthy() -> DevicePosture {
        DevicePosture {
            managed: true,
            patched: true,
            compromised: false,
        }
    }

    /// An unknown, unmanaged device (typical BYOD laptop).
    pub fn unknown() -> DevicePosture {
        DevicePosture {
            managed: false,
            patched: false,
            compromised: false,
        }
    }
}

/// Where the request originates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceZone {
    /// Public internet.
    Internet,
    /// Inside the Access zone.
    Access,
    /// Inside the HPC zone.
    Hpc,
    /// Inside the Management zone (via tailnet).
    Management,
}

/// How sensitive the requested resource is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Sensitivity {
    /// Ordinary research services (Jupyter, job submission).
    Standard,
    /// Data with handling requirements (GSCP Official).
    Elevated,
    /// Management-plane / security-plane resources.
    Critical,
}

/// An access request presented to the PDP.
#[derive(Debug, Clone)]
pub struct AccessRequest {
    /// Subject identifier.
    pub subject: String,
    /// Identity assurance.
    pub loa: LevelOfAssurance,
    /// Authentication context (`pwd`, `pwd+totp`, `mfa-totp`, `mfa-hw`).
    pub acr: String,
    /// Device posture.
    pub device: DevicePosture,
    /// Source zone.
    pub source: SourceZone,
    /// Seconds since interactive authentication.
    pub session_age_secs: u64,
    /// Resource identifier.
    pub resource: String,
    /// Resource sensitivity.
    pub sensitivity: Sensitivity,
    /// Whether the subject holds a role on the resource (from the portal).
    pub has_role: bool,
}

/// The PDP's answer.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessDecision {
    /// Allowed?
    pub allow: bool,
    /// The computed trust score in `[0, 1]`.
    pub score: f64,
    /// Threshold that applied.
    pub threshold: f64,
    /// Human-readable contributing reasons (for audit).
    pub reasons: Vec<String>,
}

/// The policy decision point.
#[derive(Debug, Clone)]
pub struct PolicyDecisionPoint {
    /// Maximum session age before re-authentication is forced (seconds).
    pub max_session_age_secs: u64,
    /// Score thresholds per sensitivity.
    pub threshold_standard: f64,
    /// Threshold for [`Sensitivity::Elevated`].
    pub threshold_elevated: f64,
    /// Threshold for [`Sensitivity::Critical`].
    pub threshold_critical: f64,
}

impl Default for PolicyDecisionPoint {
    fn default() -> Self {
        PolicyDecisionPoint {
            max_session_age_secs: 8 * 3600,
            threshold_standard: 0.55,
            threshold_elevated: 0.70,
            threshold_critical: 0.85,
        }
    }
}

impl PolicyDecisionPoint {
    /// Score and decide an access request. Hard failures (no role,
    /// compromised device, stale session) bypass the score entirely —
    /// "never trust, always verify" means some signals are gates, not
    /// weights.
    pub fn decide(&self, req: &AccessRequest) -> AccessDecision {
        let mut reasons = Vec::new();

        // Gates.
        if !req.has_role {
            return AccessDecision {
                allow: false,
                score: 0.0,
                threshold: self.threshold(req.sensitivity),
                reasons: vec!["no role on resource (authorisation-led)".into()],
            };
        }
        if req.device.compromised {
            return AccessDecision {
                allow: false,
                score: 0.0,
                threshold: self.threshold(req.sensitivity),
                reasons: vec!["device flagged compromised".into()],
            };
        }
        if req.session_age_secs >= self.max_session_age_secs {
            return AccessDecision {
                allow: false,
                score: 0.0,
                threshold: self.threshold(req.sensitivity),
                reasons: vec!["session stale; re-authentication required".into()],
            };
        }

        // Weighted signals.
        let identity = match req.loa {
            LevelOfAssurance::High => 1.0,
            LevelOfAssurance::Medium => 0.7,
            LevelOfAssurance::Low => 0.3,
        };
        reasons.push(format!("identity assurance {:?} -> {identity:.2}", req.loa));

        let authn = match req.acr.as_str() {
            "mfa-hw" => 1.0,
            "mfa-totp" | "pwd+totp" => 0.8,
            "pwd" => 0.4,
            _ => 0.2,
        };
        reasons.push(format!("authn context {} -> {authn:.2}", req.acr));

        let device = match (req.device.managed, req.device.patched) {
            (true, true) => 1.0,
            (true, false) => 0.6,
            (false, _) => 0.5,
        };
        reasons.push(format!(
            "device managed={} patched={} -> {device:.2}",
            req.device.managed, req.device.patched
        ));

        let source = match req.source {
            SourceZone::Management => 1.0,
            SourceZone::Hpc => 0.9,
            SourceZone::Access => 0.8,
            SourceZone::Internet => 0.6,
        };
        reasons.push(format!("source {:?} -> {source:.2}", req.source));

        // Freshness decays linearly over the session lifetime.
        let freshness =
            1.0 - (req.session_age_secs as f64 / self.max_session_age_secs as f64) * 0.5;
        reasons.push(format!(
            "session age {}s -> freshness {freshness:.2}",
            req.session_age_secs
        ));

        let score =
            0.30 * identity + 0.25 * authn + 0.15 * device + 0.15 * source + 0.15 * freshness;
        let threshold = self.threshold(req.sensitivity);
        AccessDecision {
            allow: score >= threshold,
            score,
            threshold,
            reasons,
        }
    }

    fn threshold(&self, sensitivity: Sensitivity) -> f64 {
        match sensitivity {
            Sensitivity::Standard => self.threshold_standard,
            Sensitivity::Elevated => self.threshold_elevated,
            Sensitivity::Critical => self.threshold_critical,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_request() -> AccessRequest {
        AccessRequest {
            subject: "maid-1".into(),
            loa: LevelOfAssurance::Medium,
            acr: "mfa-totp".into(),
            device: DevicePosture::unknown(),
            source: SourceZone::Internet,
            session_age_secs: 60,
            resource: "jupyter".into(),
            sensitivity: Sensitivity::Standard,
            has_role: true,
        }
    }

    #[test]
    fn typical_researcher_allowed_on_standard() {
        let pdp = PolicyDecisionPoint::default();
        let d = pdp.decide(&base_request());
        assert!(d.allow, "score {} vs {}", d.score, d.threshold);
    }

    #[test]
    fn no_role_is_a_hard_gate() {
        let pdp = PolicyDecisionPoint::default();
        let mut req = base_request();
        req.has_role = false;
        // Even a perfect identity fails without authorisation.
        req.loa = LevelOfAssurance::High;
        req.acr = "mfa-hw".into();
        req.device = DevicePosture::healthy();
        let d = pdp.decide(&req);
        assert!(!d.allow);
        assert_eq!(d.score, 0.0);
    }

    #[test]
    fn compromised_device_is_a_hard_gate() {
        let pdp = PolicyDecisionPoint::default();
        let mut req = base_request();
        req.device.compromised = true;
        assert!(!pdp.decide(&req).allow);
    }

    #[test]
    fn stale_session_forces_reauth() {
        let pdp = PolicyDecisionPoint::default();
        let mut req = base_request();
        req.session_age_secs = 8 * 3600;
        let d = pdp.decide(&req);
        assert!(!d.allow);
        assert!(d.reasons[0].contains("re-authentication"));
    }

    #[test]
    fn critical_resources_need_strong_everything() {
        let pdp = PolicyDecisionPoint::default();
        // The researcher request, pointed at a critical resource: denied.
        let mut req = base_request();
        req.sensitivity = Sensitivity::Critical;
        assert!(!pdp.decide(&req).allow);
        // The admin profile: High LoA, hardware key, managed device,
        // arriving via the management overlay — allowed.
        req.loa = LevelOfAssurance::High;
        req.acr = "mfa-hw".into();
        req.device = DevicePosture::healthy();
        req.source = SourceZone::Management;
        let d = pdp.decide(&req);
        assert!(d.allow, "score {} vs {}", d.score, d.threshold);
    }

    #[test]
    fn password_only_fails_even_standard_from_internet() {
        let pdp = PolicyDecisionPoint::default();
        let mut req = base_request();
        req.acr = "pwd".into();
        req.loa = LevelOfAssurance::Low;
        let d = pdp.decide(&req);
        assert!(!d.allow, "score {}", d.score);
    }

    #[test]
    fn score_monotone_in_session_age() {
        let pdp = PolicyDecisionPoint::default();
        let mut prev = f64::INFINITY;
        for age in [0u64, 3600, 2 * 3600, 4 * 3600, 7 * 3600] {
            let mut req = base_request();
            req.session_age_secs = age;
            let d = pdp.decide(&req);
            assert!(d.score <= prev, "score should not increase with age");
            prev = d.score;
        }
    }

    #[test]
    fn decisions_carry_audit_reasons() {
        let pdp = PolicyDecisionPoint::default();
        let d = pdp.decide(&base_request());
        assert!(d.reasons.len() >= 5);
        assert!(d.reasons.iter().any(|r| r.contains("identity")));
        assert!(d.reasons.iter().any(|r| r.contains("source")));
    }
}
