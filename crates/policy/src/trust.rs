//! The trust algorithm and policy decision point.
//!
//! Tenet 4: "Access to resources is determined by dynamic policy —
//! including the observable state of client identity, application/service,
//! and the requesting asset — and may include other behavioural and
//! environmental attributes." The PDP below scores those inputs
//! explicitly, so experiments can ablate individual signals and watch
//! decisions change.

use dri_federation::types::LevelOfAssurance;

/// Device posture signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevicePosture {
    /// Device is enrolled/managed (e.g. a tailnet node or known client).
    pub managed: bool,
    /// Known-patched (inventory says no critical vulns).
    pub patched: bool,
    /// Flagged compromised by the SIEM.
    pub compromised: bool,
}

impl DevicePosture {
    /// A healthy managed device.
    pub fn healthy() -> DevicePosture {
        DevicePosture {
            managed: true,
            patched: true,
            compromised: false,
        }
    }

    /// An unknown, unmanaged device (typical BYOD laptop).
    pub fn unknown() -> DevicePosture {
        DevicePosture {
            managed: false,
            patched: false,
            compromised: false,
        }
    }
}

/// Where the request originates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceZone {
    /// Public internet.
    Internet,
    /// Inside the Access zone.
    Access,
    /// Inside the HPC zone.
    Hpc,
    /// Inside the Management zone (via tailnet).
    Management,
}

/// How sensitive the requested resource is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Sensitivity {
    /// Ordinary research services (Jupyter, job submission).
    Standard,
    /// Data with handling requirements (GSCP Official).
    Elevated,
    /// Management-plane / security-plane resources.
    Critical,
}

/// An access request presented to the PDP.
#[derive(Debug, Clone)]
pub struct AccessRequest {
    /// Subject identifier.
    pub subject: String,
    /// Identity assurance.
    pub loa: LevelOfAssurance,
    /// Authentication context (`pwd`, `pwd+totp`, `mfa-totp`, `mfa-hw`).
    pub acr: String,
    /// Device posture.
    pub device: DevicePosture,
    /// Source zone.
    pub source: SourceZone,
    /// Seconds since interactive authentication.
    pub session_age_secs: u64,
    /// Resource identifier.
    pub resource: String,
    /// Resource sensitivity.
    pub sensitivity: Sensitivity,
    /// Whether the subject holds a role on the resource (from the portal).
    pub has_role: bool,
}

/// The PDP's answer.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessDecision {
    /// Allowed?
    pub allow: bool,
    /// The computed trust score in `[0, 1]`.
    pub score: f64,
    /// Threshold that applied.
    pub threshold: f64,
    /// Human-readable contributing reasons (for audit).
    pub reasons: Vec<String>,
}

/// The policy decision point.
#[derive(Debug, Clone)]
pub struct PolicyDecisionPoint {
    /// Maximum session age before re-authentication is forced (seconds).
    pub max_session_age_secs: u64,
    /// Score thresholds per sensitivity.
    pub threshold_standard: f64,
    /// Threshold for [`Sensitivity::Elevated`].
    pub threshold_elevated: f64,
    /// Threshold for [`Sensitivity::Critical`].
    pub threshold_critical: f64,
}

impl Default for PolicyDecisionPoint {
    fn default() -> Self {
        PolicyDecisionPoint {
            max_session_age_secs: 8 * 3600,
            threshold_standard: 0.55,
            threshold_elevated: 0.70,
            threshold_critical: 0.85,
        }
    }
}

impl PolicyDecisionPoint {
    /// Score and decide an access request. Hard failures (no role,
    /// compromised device, stale session) bypass the score entirely —
    /// "never trust, always verify" means some signals are gates, not
    /// weights.
    pub fn decide(&self, req: &AccessRequest) -> AccessDecision {
        let mut reasons = Vec::new();

        // Gates.
        if !req.has_role {
            return AccessDecision {
                allow: false,
                score: 0.0,
                threshold: self.threshold(req.sensitivity),
                reasons: vec!["no role on resource (authorisation-led)".into()],
            };
        }
        if req.device.compromised {
            return AccessDecision {
                allow: false,
                score: 0.0,
                threshold: self.threshold(req.sensitivity),
                reasons: vec!["device flagged compromised".into()],
            };
        }
        if req.session_age_secs >= self.max_session_age_secs {
            return AccessDecision {
                allow: false,
                score: 0.0,
                threshold: self.threshold(req.sensitivity),
                reasons: vec!["session stale; re-authentication required".into()],
            };
        }

        // Weighted signals.
        let identity = match req.loa {
            LevelOfAssurance::High => 1.0,
            LevelOfAssurance::Medium => 0.7,
            LevelOfAssurance::Low => 0.3,
        };
        reasons.push(format!("identity assurance {:?} -> {identity:.2}", req.loa));

        let authn = match req.acr.as_str() {
            "mfa-hw" => 1.0,
            "mfa-totp" | "pwd+totp" => 0.8,
            "pwd" => 0.4,
            _ => 0.2,
        };
        reasons.push(format!("authn context {} -> {authn:.2}", req.acr));

        let device = match (req.device.managed, req.device.patched) {
            (true, true) => 1.0,
            (true, false) => 0.6,
            (false, _) => 0.5,
        };
        reasons.push(format!(
            "device managed={} patched={} -> {device:.2}",
            req.device.managed, req.device.patched
        ));

        let source = match req.source {
            SourceZone::Management => 1.0,
            SourceZone::Hpc => 0.9,
            SourceZone::Access => 0.8,
            SourceZone::Internet => 0.6,
        };
        reasons.push(format!("source {:?} -> {source:.2}", req.source));

        // Freshness decays linearly over the session lifetime.
        let freshness =
            1.0 - (req.session_age_secs as f64 / self.max_session_age_secs as f64) * 0.5;
        reasons.push(format!(
            "session age {}s -> freshness {freshness:.2}",
            req.session_age_secs
        ));

        let score =
            0.30 * identity + 0.25 * authn + 0.15 * device + 0.15 * source + 0.15 * freshness;
        let threshold = self.threshold(req.sensitivity);
        AccessDecision {
            allow: score >= threshold,
            score,
            threshold,
            reasons,
        }
    }

    fn threshold(&self, sensitivity: Sensitivity) -> f64 {
        match sensitivity {
            Sensitivity::Standard => self.threshold_standard,
            Sensitivity::Elevated => self.threshold_elevated,
            Sensitivity::Critical => self.threshold_critical,
        }
    }
}

/// Width of the session-age buckets the memoizing PDP quantizes to, in
/// seconds. Divides the default `max_session_age_secs` (8h) exactly, so
/// the stale-session gate fires at precisely the same age with and
/// without quantization.
pub const SESSION_AGE_BUCKET_SECS: u64 = 60;

/// A [`PolicyDecisionPoint`] wrapper that memoizes decisions on the
/// quantized request feature tuple.
///
/// The PDP is a pure function of the request features; the only
/// continuously varying input is the session age, which the wrapper
/// quantizes to [`SESSION_AGE_BUCKET_SECS`] buckets — **in both the
/// memoized and unmemoized paths**, so enabling the memo never changes a
/// decision. The memo key deliberately excludes the subject (two users
/// with identical features share an entry) and includes every feature
/// `decide` reads, so a posture downgrade or zone change can never hit a
/// stale entry: it maps to a different key by construction.
///
/// Entries carry the **decision epoch**; [`MemoizedPdp::bump_epoch`]
/// (wired to the kill switch and posture-feed updates) invalidates every
/// cached decision at once — invalidation leads caching.
pub struct MemoizedPdp {
    /// The wrapped decision point (public: experiments tune thresholds).
    pub pdp: PolicyDecisionPoint,
    enabled: std::sync::atomic::AtomicBool,
    epoch: std::sync::atomic::AtomicU64,
    memo: dri_sync::ShardMap<MemoEntry>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    epoch_busts: std::sync::atomic::AtomicU64,
}

struct MemoEntry {
    epoch: u64,
    decision: AccessDecision,
}

impl MemoizedPdp {
    /// Wrap `pdp` with a memo of `shards` shards (rounded to a power of
    /// two), enabled.
    pub fn new(pdp: PolicyDecisionPoint, shards: usize) -> MemoizedPdp {
        MemoizedPdp {
            pdp,
            enabled: std::sync::atomic::AtomicBool::new(true),
            epoch: std::sync::atomic::AtomicU64::new(0),
            memo: dri_sync::ShardMap::new(shards),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
            epoch_busts: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Enable or disable memoization (decisions are identical either
    /// way; only the lookup work differs).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled
            .store(enabled, std::sync::atomic::Ordering::Release);
    }

    /// Whether memoization is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Current decision epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Invalidate every memoized decision (kill switch armed/fired,
    /// posture feed updated, policy changed). Returns the new epoch.
    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, std::sync::atomic::Ordering::AcqRel) + 1
    }

    /// Memo hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Memo misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Entries found but discarded because their epoch was stale.
    pub fn epoch_busts(&self) -> u64 {
        self.epoch_busts.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Live memo entries.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// Quantize the continuously varying feature (session age) so near-
    /// identical requests share a memo entry. Applied on every path.
    fn canonicalize(req: &AccessRequest) -> AccessRequest {
        let mut req = req.clone();
        req.session_age_secs =
            (req.session_age_secs / SESSION_AGE_BUCKET_SECS) * SESSION_AGE_BUCKET_SECS;
        req
    }

    /// Every feature `PolicyDecisionPoint::decide` reads, minus the
    /// subject — cross-user sharing is sound precisely because the
    /// decision never reads the subject.
    fn memo_key(req: &AccessRequest) -> String {
        format!(
            "{}|{:?}|{}|{:?}|{}|{:?}|{}|{:?}",
            req.resource,
            req.sensitivity,
            req.has_role,
            req.loa,
            req.acr,
            req.device,
            req.session_age_secs,
            req.source,
        )
    }

    /// Decide `req`, consulting the memo when enabled. Identical output
    /// to `self.pdp.decide(&canonicalized)` in all cases.
    pub fn decide(&self, req: &AccessRequest) -> AccessDecision {
        let req = Self::canonicalize(req);
        if !self.enabled() {
            return self.pdp.decide(&req);
        }
        let key = Self::memo_key(&req);
        let current = self.epoch();
        match self.memo.get_cloned(&key) {
            Some(entry) if entry.epoch == current => {
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                dri_trace::add_attr("cache.pdp", "hit");
                return entry.decision;
            }
            Some(_) => {
                self.epoch_busts
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.memo.remove(&key);
            }
            None => {}
        }
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        dri_trace::add_attr("cache.pdp", "miss");
        let decision = self.pdp.decide(&req);
        self.memo.insert(
            key,
            MemoEntry {
                epoch: current,
                decision: decision.clone(),
            },
        );
        decision
    }
}

impl Clone for MemoEntry {
    fn clone(&self) -> MemoEntry {
        MemoEntry {
            epoch: self.epoch,
            decision: self.decision.clone(),
        }
    }
}

impl std::fmt::Debug for MemoizedPdp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoizedPdp")
            .field("pdp", &self.pdp)
            .field("enabled", &self.enabled())
            .field("epoch", &self.epoch())
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_request() -> AccessRequest {
        AccessRequest {
            subject: "maid-1".into(),
            loa: LevelOfAssurance::Medium,
            acr: "mfa-totp".into(),
            device: DevicePosture::unknown(),
            source: SourceZone::Internet,
            session_age_secs: 60,
            resource: "jupyter".into(),
            sensitivity: Sensitivity::Standard,
            has_role: true,
        }
    }

    #[test]
    fn typical_researcher_allowed_on_standard() {
        let pdp = PolicyDecisionPoint::default();
        let d = pdp.decide(&base_request());
        assert!(d.allow, "score {} vs {}", d.score, d.threshold);
    }

    #[test]
    fn no_role_is_a_hard_gate() {
        let pdp = PolicyDecisionPoint::default();
        let mut req = base_request();
        req.has_role = false;
        // Even a perfect identity fails without authorisation.
        req.loa = LevelOfAssurance::High;
        req.acr = "mfa-hw".into();
        req.device = DevicePosture::healthy();
        let d = pdp.decide(&req);
        assert!(!d.allow);
        assert_eq!(d.score, 0.0);
    }

    #[test]
    fn compromised_device_is_a_hard_gate() {
        let pdp = PolicyDecisionPoint::default();
        let mut req = base_request();
        req.device.compromised = true;
        assert!(!pdp.decide(&req).allow);
    }

    #[test]
    fn stale_session_forces_reauth() {
        let pdp = PolicyDecisionPoint::default();
        let mut req = base_request();
        req.session_age_secs = 8 * 3600;
        let d = pdp.decide(&req);
        assert!(!d.allow);
        assert!(d.reasons[0].contains("re-authentication"));
    }

    #[test]
    fn critical_resources_need_strong_everything() {
        let pdp = PolicyDecisionPoint::default();
        // The researcher request, pointed at a critical resource: denied.
        let mut req = base_request();
        req.sensitivity = Sensitivity::Critical;
        assert!(!pdp.decide(&req).allow);
        // The admin profile: High LoA, hardware key, managed device,
        // arriving via the management overlay — allowed.
        req.loa = LevelOfAssurance::High;
        req.acr = "mfa-hw".into();
        req.device = DevicePosture::healthy();
        req.source = SourceZone::Management;
        let d = pdp.decide(&req);
        assert!(d.allow, "score {} vs {}", d.score, d.threshold);
    }

    #[test]
    fn password_only_fails_even_standard_from_internet() {
        let pdp = PolicyDecisionPoint::default();
        let mut req = base_request();
        req.acr = "pwd".into();
        req.loa = LevelOfAssurance::Low;
        let d = pdp.decide(&req);
        assert!(!d.allow, "score {}", d.score);
    }

    #[test]
    fn score_monotone_in_session_age() {
        let pdp = PolicyDecisionPoint::default();
        let mut prev = f64::INFINITY;
        for age in [0u64, 3600, 2 * 3600, 4 * 3600, 7 * 3600] {
            let mut req = base_request();
            req.session_age_secs = age;
            let d = pdp.decide(&req);
            assert!(d.score <= prev, "score should not increase with age");
            prev = d.score;
        }
    }

    #[test]
    fn decisions_carry_audit_reasons() {
        let pdp = PolicyDecisionPoint::default();
        let d = pdp.decide(&base_request());
        assert!(d.reasons.len() >= 5);
        assert!(d.reasons.iter().any(|r| r.contains("identity")));
        assert!(d.reasons.iter().any(|r| r.contains("source")));
    }

    #[test]
    fn memoized_and_plain_agree_on_and_off() {
        let memo = MemoizedPdp::new(PolicyDecisionPoint::default(), 16);
        let plain = PolicyDecisionPoint::default();
        let mut requests = Vec::new();
        for age in [0u64, 59, 60, 61, 3599, 7 * 3600, 8 * 3600, 9 * 3600] {
            for sens in [
                Sensitivity::Standard,
                Sensitivity::Elevated,
                Sensitivity::Critical,
            ] {
                let mut r = base_request();
                r.session_age_secs = age;
                r.sensitivity = sens;
                requests.push(r);
            }
        }
        let mut r = base_request();
        r.device.compromised = true;
        requests.push(r);
        let mut r = base_request();
        r.has_role = false;
        requests.push(r);
        for req in &requests {
            // Twice each: the second call is a memo hit and must agree too.
            let canonical = MemoizedPdp::canonicalize(req);
            assert_eq!(memo.decide(req), plain.decide(&canonical));
            assert_eq!(memo.decide(req), plain.decide(&canonical));
        }
        assert!(memo.hits() > 0);
        // Disabled memo still agrees.
        memo.set_enabled(false);
        for req in &requests {
            assert_eq!(
                memo.decide(req),
                plain.decide(&MemoizedPdp::canonicalize(req))
            );
        }
    }

    #[test]
    fn memo_shares_entries_across_subjects_not_features() {
        let memo = MemoizedPdp::new(PolicyDecisionPoint::default(), 16);
        let mut a = base_request();
        a.subject = "maid-1".into();
        let mut b = base_request();
        b.subject = "maid-2".into();
        memo.decide(&a);
        assert_eq!(memo.misses(), 1);
        memo.decide(&b); // different subject, same features: hit
        assert_eq!(memo.hits(), 1);
        // A posture downgrade is a different key — never a stale hit.
        let mut c = base_request();
        c.device.compromised = true;
        assert!(!memo.decide(&c).allow);
        assert_eq!(memo.misses(), 2);
    }

    #[test]
    fn epoch_bump_invalidates_memoized_decisions() {
        let memo = MemoizedPdp::new(PolicyDecisionPoint::default(), 16);
        let req = base_request();
        assert!(memo.decide(&req).allow);
        memo.decide(&req);
        assert_eq!(memo.hits(), 1);
        memo.bump_epoch();
        memo.decide(&req);
        // The stale entry was discarded, not served.
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.epoch_busts(), 1);
        assert_eq!(memo.misses(), 2);
    }

    #[test]
    fn stale_gate_exact_under_quantization() {
        // 8h divides into 60s buckets exactly: the stale-session gate
        // must fire at >= 8h and not a bucket earlier.
        let memo = MemoizedPdp::new(PolicyDecisionPoint::default(), 4);
        let mut req = base_request();
        req.session_age_secs = 8 * 3600 - 1;
        assert!(memo.decide(&req).allow);
        req.session_age_secs = 8 * 3600;
        assert!(!memo.decide(&req).allow);
    }
}
