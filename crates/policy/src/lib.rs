//! # dri-policy — the zero-trust policy engine
//!
//! NIST SP 800-207 structures the control plane around a *policy decision
//! point* (PDP) fed by a *trust algorithm* over identity, device, and
//! environment signals, enforced per session at *policy enforcement
//! points*. The paper adopts the seven ZT tenets as design drivers; this
//! crate makes them executable:
//!
//! * [`trust`] — the trust algorithm and PDP: score an access request
//!   from identity assurance, authentication context, device posture,
//!   source zone, session age and resource sensitivity; decide against a
//!   per-sensitivity threshold.
//! * [`tenets`] — a machine-checked audit of the seven tenets over
//!   evidence the assembled infrastructure produces (E15).
//! * [`caf`] — the NCSC Cyber Assessment Framework baseline-profile
//!   assessment the paper names as its next step.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod caf;
pub mod tenets;
pub mod trust;

pub use caf::{Achievement, CafAssessment, CafEvidence, CafPrinciple};
pub use tenets::{TenetAudit, TenetEvidence, TenetResult};
pub use trust::{
    AccessDecision, AccessRequest, DevicePosture, MemoizedPdp, PolicyDecisionPoint, Sensitivity,
    SourceZone,
};
