//! A minimal, dependency-free JSON codec used for JWT headers/claims and
//! the simulated SAML-like assertion payloads.
//!
//! Objects preserve insertion order on build and serialize deterministically
//! (insertion order), which keeps signed payloads byte-stable across runs —
//! important for the deterministic experiments.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number. Integers are exact up to i64; everything else is f64.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand string constructor.
    pub fn s(v: impl Into<String>) -> Value {
        Value::Str(v.into())
    }

    /// Shorthand integer constructor.
    pub fn i(v: i64) -> Value {
        Value::Num(v as f64)
    }

    /// Shorthand unsigned constructor (exact up to 2^53).
    pub fn u(v: u64) -> Value {
        Value::Num(v as f64)
    }

    /// Get a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Interpret as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret as an integer (floors the stored f64).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => Some(*n as i64),
            _ => None,
        }
    }

    /// Interpret as u64.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Interpret as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interpret as array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Insert a field (only valid on objects).
    pub fn set(&mut self, key: impl Into<String>, value: Value) {
        if let Value::Obj(m) = self {
            m.insert(key.into(), value);
        }
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }

    /// Parse a JSON string.
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::TrailingData(p.pos));
        }
        Ok(v)
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Errors from JSON parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Unexpected end of input.
    Eof,
    /// Unexpected byte at offset.
    Unexpected(usize, char),
    /// Invalid escape sequence at offset.
    BadEscape(usize),
    /// Invalid number at offset.
    BadNumber(usize),
    /// Invalid UTF-8 inside a string.
    BadUtf8,
    /// Extra non-whitespace data after the top-level value.
    TrailingData(usize),
    /// Nesting too deep.
    TooDeep,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Eof => write!(f, "unexpected end of JSON input"),
            JsonError::Unexpected(at, c) => write!(f, "unexpected {c:?} at byte {at}"),
            JsonError::BadEscape(at) => write!(f, "bad escape at byte {at}"),
            JsonError::BadNumber(at) => write!(f, "bad number at byte {at}"),
            JsonError::BadUtf8 => write!(f, "invalid UTF-8 in string"),
            JsonError::TrailingData(at) => write!(f, "trailing data at byte {at}"),
            JsonError::TooDeep => write!(f, "JSON nesting too deep"),
        }
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 64;

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.value_depth(0)
    }

    fn value_depth(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        self.skip_ws();
        match self.peek().ok_or(JsonError::Eof)? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value_depth(depth + 1)?);
                    self.skip_ws();
                    match self.peek().ok_or(JsonError::Eof)? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        c => return Err(JsonError::Unexpected(self.pos, c as char)),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                loop {
                    self.skip_ws();
                    if self.peek() != Some(b'"') {
                        return Err(JsonError::Unexpected(
                            self.pos,
                            self.peek().map(|c| c as char).unwrap_or('\0'),
                        ));
                    }
                    let key = self.string()?;
                    self.skip_ws();
                    if self.peek() != Some(b':') {
                        return Err(JsonError::Unexpected(
                            self.pos,
                            self.peek().map(|c| c as char).unwrap_or('\0'),
                        ));
                    }
                    self.pos += 1;
                    let val = self.value_depth(depth + 1)?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek().ok_or(JsonError::Eof)? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Obj(map));
                        }
                        c => return Err(JsonError::Unexpected(self.pos, c as char)),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(JsonError::Unexpected(self.pos, c as char)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError::Unexpected(
                self.pos,
                self.bytes[self.pos] as char,
            ))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut out = Vec::new();
        loop {
            let c = *self.bytes.get(self.pos).ok_or(JsonError::Eof)?;
            self.pos += 1;
            match c {
                b'"' => break,
                b'\\' => {
                    let e = *self.bytes.get(self.pos).ok_or(JsonError::Eof)?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(JsonError::BadEscape(self.pos));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(JsonError::BadEscape(self.pos));
                                }
                                let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(combined).ok_or(JsonError::BadUtf8)?
                            } else {
                                char::from_u32(cp).ok_or(JsonError::BadUtf8)?
                            };
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        }
                        _ => return Err(JsonError::BadEscape(self.pos - 1)),
                    }
                }
                c => out.push(c),
            }
        }
        String::from_utf8(out).map_err(|_| JsonError::BadUtf8)
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::Eof);
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::BadUtf8)?;
        let v = u32::from_str_radix(s, 16).map_err(|_| JsonError::BadEscape(self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError::BadUtf8)?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| JsonError::BadNumber(start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Value::obj([
            ("sub", Value::s("user@example.org")),
            ("exp", Value::u(1_699_999_999)),
            ("admin", Value::Bool(false)),
            (
                "roles",
                Value::Arr(vec![Value::s("pi"), Value::s("researcher")]),
            ),
            ("nested", Value::obj([("a", Value::Null)])),
        ]);
        let s = v.to_json();
        let back = Value::parse(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn deterministic_serialization() {
        let mut a = Value::Obj(BTreeMap::new());
        a.set("zeta", Value::i(1));
        a.set("alpha", Value::i(2));
        let mut b = Value::Obj(BTreeMap::new());
        b.set("alpha", Value::i(2));
        b.set("zeta", Value::i(1));
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_json(), r#"{"alpha":2,"zeta":1}"#);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Value::parse(" { \"a\" : [ 1 , 2.5 , -3e2 , true , null ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 5);
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1], Value::Num(2.5));
        assert_eq!(arr[2], Value::Num(-300.0));
        assert_eq!(arr[3].as_bool(), Some(true));
        assert_eq!(arr[4], Value::Null);
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("line\nquote\"back\\slash\ttab\u{1}".into());
        let s = v.to_json();
        assert_eq!(s, r#""line\nquote\"back\\slash\ttab\u0001""#);
        assert_eq!(Value::parse(&s).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        // é is é; the surrogate pair 😀 is 😀.
        assert_eq!(Value::parse("\"\\u00e9\"").unwrap(), Value::Str("é".into()));
        assert_eq!(
            Value::parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("😀".into())
        );
        // Literal (unescaped) multibyte text also passes through.
        assert_eq!(Value::parse("\"é😀\"").unwrap(), Value::Str("é😀".into()));
        assert!(Value::parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn rejects_trailing_and_garbage() {
        assert_eq!(Value::parse("{} extra"), Err(JsonError::TrailingData(3)));
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("nul").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("").is_err());
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert_eq!(Value::parse(&deep), Err(JsonError::TooDeep));
    }

    #[test]
    fn integer_formatting_is_plain() {
        assert_eq!(Value::u(45).to_json(), "45");
        assert_eq!(Value::i(-45).to_json(), "-45");
        assert_eq!(Value::Num(1.5).to_json(), "1.5");
    }
}
