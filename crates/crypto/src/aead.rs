//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//!
//! The authenticated encryption used on tailnet and tunnel frames: the
//! Poly1305 one-time key is derived from block 0 of the ChaCha20
//! keystream, the ciphertext starts at block 1, and the tag covers
//! `aad ‖ pad ‖ ciphertext ‖ pad ‖ len(aad) ‖ len(ct)`.

use crate::chacha20;
use crate::poly1305::{poly1305, verify_poly1305};

/// Encrypt and authenticate: returns `ciphertext ‖ tag(16)`.
pub fn seal(key: &[u8; 32], nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let otk = poly_key(key, nonce);
    let mut out = chacha20::encrypt(key, nonce, 1, plaintext);
    let tag = poly1305(&otk, &mac_data(aad, &out));
    out.extend_from_slice(&tag);
    out
}

/// Verify and decrypt `ciphertext ‖ tag`; `None` on any authentication
/// failure (wrong key/nonce/aad, truncation, or tampering).
pub fn open(key: &[u8; 32], nonce: &[u8; 12], aad: &[u8], sealed: &[u8]) -> Option<Vec<u8>> {
    if sealed.len() < 16 {
        return None;
    }
    let (ct, tag) = sealed.split_at(sealed.len() - 16);
    let otk = poly_key(key, nonce);
    let mut tag16 = [0u8; 16];
    tag16.copy_from_slice(tag);
    if !verify_poly1305(&otk, &mac_data(aad, ct), &tag16) {
        return None;
    }
    Some(chacha20::decrypt(key, nonce, 1, ct))
}

/// The Poly1305 one-time key: first 32 bytes of keystream block 0.
fn poly_key(key: &[u8; 32], nonce: &[u8; 12]) -> [u8; 32] {
    let mut block = [0u8; 64];
    chacha20::xor_in_place(key, nonce, 0, &mut block);
    let mut otk = [0u8; 32];
    otk.copy_from_slice(&block[..32]);
    otk
}

fn mac_data(aad: &[u8], ct: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(aad.len() + ct.len() + 32);
    out.extend_from_slice(aad);
    out.extend_from_slice(&[0u8; 16][..pad16(aad.len())]);
    out.extend_from_slice(ct);
    out.extend_from_slice(&[0u8; 16][..pad16(ct.len())]);
    out.extend_from_slice(&(aad.len() as u64).to_le_bytes());
    out.extend_from_slice(&(ct.len() as u64).to_le_bytes());
    out
}

fn pad16(len: usize) -> usize {
    (16 - (len % 16)) % 16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_aead_vector() {
        let key = hex::decode_array::<32>(
            "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f",
        )
        .unwrap();
        let nonce = hex::decode_array::<12>("070000004041424344454647").unwrap();
        let aad = hex::decode("50515253c0c1c2c3c4c5c6c7").unwrap();
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
                          only one tip for the future, sunscreen would be it.";
        let sealed = seal(&key, &nonce, &aad, plaintext);
        let (ct, tag) = sealed.split_at(sealed.len() - 16);
        assert_eq!(
            hex::encode(ct),
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116"
        );
        assert_eq!(hex::encode(tag), "1ae10b594f09e26a7e902ecbd0600691");
        assert_eq!(open(&key, &nonce, &aad, &sealed).unwrap(), plaintext);
    }

    #[test]
    fn open_rejects_tampering_anywhere() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let sealed = seal(&key, &nonce, b"header", b"payload bytes");
        // Flip ciphertext, tag, aad, nonce, key — all must fail.
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 1;
            assert!(open(&key, &nonce, b"header", &bad).is_none(), "byte {i}");
        }
        assert!(open(&key, &nonce, b"Header", &sealed).is_none());
        assert!(open(&key, &[3u8; 12], b"header", &sealed).is_none());
        assert!(open(&[9u8; 32], &nonce, b"header", &sealed).is_none());
        // Truncation fails typed.
        assert!(open(&key, &nonce, b"header", &sealed[..10]).is_none());
    }

    #[test]
    fn roundtrip_various_sizes() {
        let key = [7u8; 32];
        for n in [0usize, 1, 15, 16, 17, 63, 64, 65, 1000] {
            let pt: Vec<u8> = (0..n).map(|i| i as u8).collect();
            let nonce = [n as u8; 12];
            let sealed = seal(&key, &nonce, b"", &pt);
            assert_eq!(open(&key, &nonce, b"", &sealed).unwrap(), pt, "len {n}");
        }
    }

    #[test]
    fn empty_plaintext_still_authenticated() {
        let key = [4u8; 32];
        let nonce = [5u8; 12];
        let sealed = seal(&key, &nonce, b"aad-only", b"");
        assert_eq!(sealed.len(), 16);
        assert_eq!(open(&key, &nonce, b"aad-only", &sealed).unwrap(), b"");
        assert!(open(&key, &nonce, b"other", &sealed).is_none());
    }
}
