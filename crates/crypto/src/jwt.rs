//! JSON Web Tokens with `EdDSA` (Ed25519) and `HS256` algorithms.
//!
//! These are the short-lived RBAC tokens at the heart of the paper's
//! design: every service-to-service and user-to-service access in the
//! simulated infrastructure is gated on one of these, and validation is a
//! real signature check plus `exp`/`nbf`/`aud`/`iss` claim enforcement.

use crate::base64::{decode_url, encode_url};
use crate::ed25519::{PreparedVerifyingKey, SigningKey, VerifyingKey};
use crate::hmac::{hmac_sha256, verify_hmac_sha256};
use crate::json::Value;

/// Supported JWS algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Ed25519 signatures (asymmetric; used for all broker-issued tokens).
    EdDSA,
    /// HMAC-SHA-256 (symmetric; used for internal service tokens).
    HS256,
}

impl Algorithm {
    fn as_str(self) -> &'static str {
        match self {
            Algorithm::EdDSA => "EdDSA",
            Algorithm::HS256 => "HS256",
        }
    }
}

/// Registered + custom claims carried by a token.
#[derive(Debug, Clone, PartialEq)]
pub struct Claims {
    /// Issuer (`iss`).
    pub issuer: String,
    /// Subject (`sub`) — the persistent unique user identifier.
    pub subject: String,
    /// Audience (`aud`) — the service this token is scoped to. Tokens are
    /// per-service in this design; there is no global token.
    pub audience: String,
    /// Expiry (`exp`), seconds since the simulation epoch.
    pub expires_at: u64,
    /// Not-before (`nbf`), seconds since the simulation epoch.
    pub not_before: u64,
    /// Issued-at (`iat`).
    pub issued_at: u64,
    /// Token id (`jti`) for replay detection / revocation.
    pub token_id: String,
    /// Roles granted (`roles`) — the RBAC payload.
    pub roles: Vec<String>,
    /// Session id binding the token to an authenticated session (`sid`).
    pub session_id: String,
    /// Authentication context class (`acr`), e.g. "mfa-hw", "mfa-totp", "pwd".
    pub acr: String,
    /// Additional claims (project ids, unix accounts, …).
    pub extra: Vec<(String, Value)>,
}

impl Claims {
    /// A minimal claims set; extend via the public fields.
    pub fn new(
        issuer: impl Into<String>,
        subject: impl Into<String>,
        audience: impl Into<String>,
        issued_at: u64,
        ttl_secs: u64,
    ) -> Claims {
        Claims {
            issuer: issuer.into(),
            subject: subject.into(),
            audience: audience.into(),
            expires_at: issued_at + ttl_secs,
            not_before: issued_at,
            issued_at,
            token_id: String::new(),
            roles: Vec::new(),
            session_id: String::new(),
            acr: String::new(),
            extra: Vec::new(),
        }
    }

    fn to_value(&self) -> Value {
        let mut v = Value::obj([
            ("iss", Value::s(&*self.issuer)),
            ("sub", Value::s(&*self.subject)),
            ("aud", Value::s(&*self.audience)),
            ("exp", Value::u(self.expires_at)),
            ("nbf", Value::u(self.not_before)),
            ("iat", Value::u(self.issued_at)),
            ("jti", Value::s(&*self.token_id)),
            ("sid", Value::s(&*self.session_id)),
            ("acr", Value::s(&*self.acr)),
            (
                "roles",
                Value::Arr(self.roles.iter().map(|r| Value::s(r.as_str())).collect()),
            ),
        ]);
        for (k, val) in &self.extra {
            v.set(k.clone(), val.clone());
        }
        v
    }

    fn from_value(v: &Value) -> Result<Claims, JwtError> {
        let get_s = |k: &str| -> String {
            v.get(k)
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string()
        };
        let get_u = |k: &str| -> Option<u64> { v.get(k).and_then(Value::as_u64) };
        let roles = v
            .get("roles")
            .and_then(Value::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(|r| r.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        let known = [
            "iss", "sub", "aud", "exp", "nbf", "iat", "jti", "sid", "acr", "roles",
        ];
        let extra = match v {
            Value::Obj(m) => m
                .iter()
                .filter(|(k, _)| !known.contains(&k.as_str()))
                .map(|(k, val)| (k.clone(), val.clone()))
                .collect(),
            _ => Vec::new(),
        };
        Ok(Claims {
            issuer: get_s("iss"),
            subject: get_s("sub"),
            audience: get_s("aud"),
            expires_at: get_u("exp").ok_or(JwtError::MissingClaim("exp"))?,
            not_before: get_u("nbf").unwrap_or(0),
            issued_at: get_u("iat").unwrap_or(0),
            token_id: get_s("jti"),
            session_id: get_s("sid"),
            acr: get_s("acr"),
            roles,
            extra,
        })
    }

    /// Look up an extra claim by name.
    pub fn extra_claim(&self, key: &str) -> Option<&Value> {
        self.extra.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True if `role` is among the granted roles.
    pub fn has_role(&self, role: &str) -> bool {
        self.roles.iter().any(|r| r == role)
    }
}

/// Key material used to sign a token.
pub enum Signer<'a> {
    /// Ed25519 (EdDSA).
    Ed25519(&'a SigningKey),
    /// HMAC-SHA-256 (HS256).
    Hmac(&'a [u8]),
}

/// Key material used to verify a token.
pub enum Verifier<'a> {
    /// Ed25519 public key.
    Ed25519(&'a VerifyingKey),
    /// Ed25519 public key with its curve point pre-decompressed — same
    /// accept/reject behaviour as `Ed25519`, minus the per-call point
    /// decompression (verification caches prepare keys once per JWKS
    /// publish).
    Ed25519Prepared(&'a PreparedVerifyingKey),
    /// HMAC secret.
    Hmac(&'a [u8]),
}

/// Sign `claims` into a compact JWS (`header.payload.signature`).
///
/// `kid` identifies the signing key in the issuer's JWKS.
pub fn sign(claims: &Claims, signer: &Signer<'_>, kid: &str) -> String {
    let alg = match signer {
        Signer::Ed25519(_) => Algorithm::EdDSA,
        Signer::Hmac(_) => Algorithm::HS256,
    };
    let header = Value::obj([
        ("alg", Value::s(alg.as_str())),
        ("typ", Value::s("JWT")),
        ("kid", Value::s(kid)),
    ]);
    let signing_input = format!(
        "{}.{}",
        encode_url(header.to_json().as_bytes()),
        encode_url(claims.to_value().to_json().as_bytes())
    );
    let sig = match signer {
        Signer::Ed25519(sk) => sk.sign(signing_input.as_bytes()).to_vec(),
        Signer::Hmac(key) => hmac_sha256(key, signing_input.as_bytes()).to_vec(),
    };
    format!("{signing_input}.{}", encode_url(&sig))
}

/// Expected-value checks applied during verification.
#[derive(Debug, Clone, Default)]
pub struct Validation {
    /// Required issuer; empty = skip check.
    pub issuer: String,
    /// Required audience; empty = skip check.
    pub audience: String,
    /// Current simulation time (seconds) for `exp`/`nbf` enforcement.
    pub now: u64,
    /// Allowed clock skew in seconds.
    pub leeway: u64,
}

/// Verify a compact JWS and return its claims.
pub fn verify(
    token: &str,
    verifier: &Verifier<'_>,
    validation: &Validation,
) -> Result<Claims, JwtError> {
    let mut parts = token.split('.');
    let (h, p, s) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(h), Some(p), Some(s), None) => (h, p, s),
        _ => return Err(JwtError::Malformed),
    };
    let header_bytes = decode_url(h).map_err(|_| JwtError::Malformed)?;
    let header_json = std::str::from_utf8(&header_bytes).map_err(|_| JwtError::Malformed)?;
    let header = Value::parse(header_json).map_err(|_| JwtError::Malformed)?;
    let alg = header.get("alg").and_then(Value::as_str).unwrap_or("");
    let expected_alg = match verifier {
        Verifier::Ed25519(_) | Verifier::Ed25519Prepared(_) => Algorithm::EdDSA,
        Verifier::Hmac(_) => Algorithm::HS256,
    };
    // Pinning the algorithm to the key type forecloses alg-confusion attacks.
    if alg != expected_alg.as_str() {
        return Err(JwtError::AlgorithmMismatch);
    }

    let signing_input_len = h.len() + 1 + p.len();
    let signing_input = &token[..signing_input_len];
    let sig = decode_url(s).map_err(|_| JwtError::Malformed)?;
    let ok = match verifier {
        Verifier::Ed25519(pk) => {
            if sig.len() != 64 {
                return Err(JwtError::BadSignature);
            }
            let mut sig64 = [0u8; 64];
            sig64.copy_from_slice(&sig);
            pk.verify(signing_input.as_bytes(), &sig64)
        }
        Verifier::Ed25519Prepared(pk) => {
            if sig.len() != 64 {
                return Err(JwtError::BadSignature);
            }
            let mut sig64 = [0u8; 64];
            sig64.copy_from_slice(&sig);
            pk.verify(signing_input.as_bytes(), &sig64)
        }
        Verifier::Hmac(key) => verify_hmac_sha256(key, signing_input.as_bytes(), &sig),
    };
    if !ok {
        return Err(JwtError::BadSignature);
    }

    let payload_bytes = decode_url(p).map_err(|_| JwtError::Malformed)?;
    let payload_json = std::str::from_utf8(&payload_bytes).map_err(|_| JwtError::Malformed)?;
    let payload = Value::parse(payload_json).map_err(|_| JwtError::Malformed)?;
    let claims = Claims::from_value(&payload)?;

    validate_claims(&claims, validation)?;
    Ok(claims)
}

/// The claim-level checks of [`verify`] (issuer, audience, `nbf`, `exp`),
/// in the exact order `verify` applies them.
///
/// Split out so a verified-token cache can re-apply the *time-dependent*
/// checks on every cache hit: the signature over the bytes cannot change
/// after caching, but the clock keeps moving, so a hit must re-validate
/// freshness with the same semantics (and the same error kinds) as a
/// full verification.
pub fn validate_claims(claims: &Claims, validation: &Validation) -> Result<(), JwtError> {
    if !validation.issuer.is_empty() && claims.issuer != validation.issuer {
        return Err(JwtError::WrongIssuer);
    }
    if !validation.audience.is_empty() && claims.audience != validation.audience {
        return Err(JwtError::WrongAudience);
    }
    if validation.now + validation.leeway < claims.not_before {
        return Err(JwtError::NotYetValid);
    }
    if validation.now >= claims.expires_at + validation.leeway {
        return Err(JwtError::Expired);
    }
    Ok(())
}

/// Decode the `kid` header of a token without verifying it (used to pick
/// the right key from a JWKS before full verification).
pub fn peek_kid(token: &str) -> Option<String> {
    let h = token.split('.').next()?;
    let bytes = decode_url(h).ok()?;
    let v = Value::parse(std::str::from_utf8(&bytes).ok()?).ok()?;
    v.get("kid").and_then(Value::as_str).map(str::to_string)
}

/// JWT verification errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JwtError {
    /// Structurally invalid token.
    Malformed,
    /// Signature check failed.
    BadSignature,
    /// Header algorithm does not match the verification key type.
    AlgorithmMismatch,
    /// `iss` mismatch.
    WrongIssuer,
    /// `aud` mismatch.
    WrongAudience,
    /// Token expired.
    Expired,
    /// `nbf` in the future.
    NotYetValid,
    /// Required claim absent.
    MissingClaim(&'static str),
}

impl std::fmt::Display for JwtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JwtError::Malformed => write!(f, "malformed token"),
            JwtError::BadSignature => write!(f, "signature verification failed"),
            JwtError::AlgorithmMismatch => write!(f, "algorithm mismatch"),
            JwtError::WrongIssuer => write!(f, "issuer mismatch"),
            JwtError::WrongAudience => write!(f, "audience mismatch"),
            JwtError::Expired => write!(f, "token expired"),
            JwtError::NotYetValid => write!(f, "token not yet valid"),
            JwtError::MissingClaim(c) => write!(f, "missing claim {c}"),
        }
    }
}

impl std::error::Error for JwtError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_claims(now: u64) -> Claims {
        let mut c = Claims::new(
            "https://idbroker.fds.example",
            "wlcg-12345",
            "slurm",
            now,
            900,
        );
        c.token_id = "jti-1".into();
        c.session_id = "sess-1".into();
        c.acr = "mfa-totp".into();
        c.roles = vec!["researcher".into()];
        c.extra.push(("project".into(), Value::s("brics-001")));
        c
    }

    #[test]
    fn eddsa_roundtrip() {
        let sk = SigningKey::from_seed(&[1u8; 32]);
        let claims = sample_claims(1000);
        let token = sign(&claims, &Signer::Ed25519(&sk), "fds-key-1");
        let got = verify(
            &token,
            &Verifier::Ed25519(&sk.verifying_key()),
            &Validation {
                issuer: claims.issuer.clone(),
                audience: "slurm".into(),
                now: 1500,
                leeway: 0,
            },
        )
        .unwrap();
        assert_eq!(got, claims);
        assert!(got.has_role("researcher"));
        assert_eq!(
            got.extra_claim("project").and_then(Value::as_str),
            Some("brics-001")
        );
        assert_eq!(peek_kid(&token).as_deref(), Some("fds-key-1"));
    }

    #[test]
    fn prepared_verifier_agrees_with_plain() {
        let sk = SigningKey::from_seed(&[9u8; 32]);
        let pk = sk.verifying_key();
        let prepared = PreparedVerifyingKey::new(&pk);
        let claims = sample_claims(1000);
        let token = sign(&claims, &Signer::Ed25519(&sk), "k");
        // Agreement across the full outcome space: ok, expired, wrong
        // audience, tampered signature.
        for (tok, now, aud) in [
            (token.clone(), 1500, ""),
            (token.clone(), 5000, ""),
            (token.clone(), 1500, "jupyter"),
            (format!("{}x", &token[..token.len() - 1]), 1500, ""),
        ] {
            let v = Validation {
                audience: aud.into(),
                now,
                ..Default::default()
            };
            assert_eq!(
                verify(&tok, &Verifier::Ed25519(&pk), &v),
                verify(&tok, &Verifier::Ed25519Prepared(&prepared), &v)
            );
        }
    }

    #[test]
    fn validate_claims_matches_verify_order() {
        let mut claims = sample_claims(1000); // valid [1000, 1900)
        claims.audience = "slurm".into();
        // WrongIssuer outranks WrongAudience outranks NotYetValid.
        let v = Validation {
            issuer: "rogue".into(),
            audience: "jupyter".into(),
            now: 10,
            leeway: 0,
        };
        assert_eq!(validate_claims(&claims, &v), Err(JwtError::WrongIssuer));
        let v = Validation {
            audience: "jupyter".into(),
            now: 10,
            ..Default::default()
        };
        assert_eq!(validate_claims(&claims, &v), Err(JwtError::WrongAudience));
        let v = Validation {
            now: 10,
            ..Default::default()
        };
        assert_eq!(validate_claims(&claims, &v), Err(JwtError::NotYetValid));
        let v = Validation {
            now: 1900,
            ..Default::default()
        };
        assert_eq!(validate_claims(&claims, &v), Err(JwtError::Expired));
        let v = Validation {
            now: 1500,
            ..Default::default()
        };
        assert_eq!(validate_claims(&claims, &v), Ok(()));
    }

    #[test]
    fn hs256_roundtrip() {
        let claims = sample_claims(0);
        let token = sign(&claims, &Signer::Hmac(b"shared-secret"), "svc-key");
        let got = verify(
            &token,
            &Verifier::Hmac(b"shared-secret"),
            &Validation {
                now: 100,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(got.subject, "wlcg-12345");
    }

    #[test]
    fn expiry_and_nbf_enforced() {
        let sk = SigningKey::from_seed(&[2u8; 32]);
        let claims = sample_claims(1000); // valid [1000, 1900)
        let token = sign(&claims, &Signer::Ed25519(&sk), "k");
        let pk = sk.verifying_key();
        let v = |now| Validation {
            now,
            ..Default::default()
        };
        assert_eq!(
            verify(&token, &Verifier::Ed25519(&pk), &v(999)),
            Err(JwtError::NotYetValid)
        );
        assert!(verify(&token, &Verifier::Ed25519(&pk), &v(1000)).is_ok());
        assert!(verify(&token, &Verifier::Ed25519(&pk), &v(1899)).is_ok());
        assert_eq!(
            verify(&token, &Verifier::Ed25519(&pk), &v(1900)),
            Err(JwtError::Expired)
        );
    }

    #[test]
    fn audience_and_issuer_enforced() {
        let sk = SigningKey::from_seed(&[3u8; 32]);
        let token = sign(&sample_claims(0), &Signer::Ed25519(&sk), "k");
        let pk = sk.verifying_key();
        assert_eq!(
            verify(
                &token,
                &Verifier::Ed25519(&pk),
                &Validation {
                    audience: "jupyter".into(),
                    now: 1,
                    ..Default::default()
                }
            ),
            Err(JwtError::WrongAudience)
        );
        assert_eq!(
            verify(
                &token,
                &Verifier::Ed25519(&pk),
                &Validation {
                    issuer: "rogue".into(),
                    now: 1,
                    ..Default::default()
                }
            ),
            Err(JwtError::WrongIssuer)
        );
    }

    #[test]
    fn tampered_payload_rejected() {
        let sk = SigningKey::from_seed(&[4u8; 32]);
        let token = sign(&sample_claims(0), &Signer::Ed25519(&sk), "k");
        let parts: Vec<&str> = token.split('.').collect();
        // Swap in an elevated-role payload, keep the original signature.
        let mut claims = sample_claims(0);
        claims.roles = vec!["admin".into()];
        let forged_payload = encode_url(claims.to_value().to_json().as_bytes());
        let forged = format!("{}.{}.{}", parts[0], forged_payload, parts[2]);
        assert_eq!(
            verify(
                &forged,
                &Verifier::Ed25519(&sk.verifying_key()),
                &Validation {
                    now: 1,
                    ..Default::default()
                }
            ),
            Err(JwtError::BadSignature)
        );
    }

    #[test]
    fn algorithm_confusion_rejected() {
        // An HS256 token must not verify against an Ed25519 verifier and
        // vice versa, even with "matching" key bytes.
        let sk = SigningKey::from_seed(&[5u8; 32]);
        let hs = sign(
            &sample_claims(0),
            &Signer::Hmac(sk.verifying_key().as_bytes()),
            "k",
        );
        assert_eq!(
            verify(
                &hs,
                &Verifier::Ed25519(&sk.verifying_key()),
                &Validation {
                    now: 1,
                    ..Default::default()
                }
            ),
            Err(JwtError::AlgorithmMismatch)
        );
    }

    #[test]
    fn malformed_tokens_rejected() {
        let v = Validation {
            now: 1,
            ..Default::default()
        };
        for bad in ["", "a.b", "a.b.c.d", "!!!.###.$$$", "aGk.aGk.aGk"] {
            assert!(verify(bad, &Verifier::Hmac(b"k"), &v).is_err(), "{bad}");
        }
    }
}
