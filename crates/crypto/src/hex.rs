//! Lowercase hex encoding / decoding.

/// Encode bytes as lowercase hex.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for b in data {
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        out.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    out
}

/// Decode a hex string (upper- or lowercase). Fails on odd length or
/// non-hex characters.
pub fn decode(s: &str) -> Result<Vec<u8>, HexError> {
    if !s.len().is_multiple_of(2) {
        return Err(HexError::OddLength);
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = val(pair[0]).ok_or(HexError::InvalidChar(pair[0] as char))?;
        let lo = val(pair[1]).ok_or(HexError::InvalidChar(pair[1] as char))?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Decode exactly `N` bytes of hex.
pub fn decode_array<const N: usize>(s: &str) -> Result<[u8; N], HexError> {
    let v = decode(s)?;
    if v.len() != N {
        return Err(HexError::WrongLength {
            want: N,
            got: v.len(),
        });
    }
    let mut out = [0u8; N];
    out.copy_from_slice(&v);
    Ok(out)
}

/// Errors from hex decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HexError {
    /// Input length was odd.
    OddLength,
    /// A character outside `[0-9a-fA-F]` was found.
    InvalidChar(char),
    /// Decoded length differed from the requested fixed size.
    WrongLength {
        /// Expected byte count.
        want: usize,
        /// Actual byte count.
        got: usize,
    },
}

impl std::fmt::Display for HexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HexError::OddLength => write!(f, "odd-length hex string"),
            HexError::InvalidChar(c) => write!(f, "invalid hex character {c:?}"),
            HexError::WrongLength { want, got } => {
                write!(f, "expected {want} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for HexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0x00, 0x01, 0x7f, 0x80, 0xff];
        let s = encode(&data);
        assert_eq!(s, "00017f80ff");
        assert_eq!(decode(&s).unwrap(), data);
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("DEADBEEF").unwrap(), [0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn errors() {
        assert_eq!(decode("abc"), Err(HexError::OddLength));
        assert_eq!(decode("zz"), Err(HexError::InvalidChar('z')));
        assert!(matches!(
            decode_array::<4>("0011"),
            Err(HexError::WrongLength { want: 4, got: 2 })
        ));
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }
}
