//! # dri-crypto — simulation-grade cryptographic substrate
//!
//! From-scratch implementations of the primitives the Isambard federated
//! SSO / zero-trust co-design depends on: SHA-256/512, HMAC, HKDF, Ed25519
//! (RFC 8032), X25519 (RFC 7748), ChaCha20 (RFC 8439), base64/base64url,
//! hex, a minimal deterministic JSON codec, and JWT (EdDSA + HS256).
//!
//! Everything is verified against the published RFC / FIPS test vectors in
//! the unit tests, so signatures and tokens flowing through the simulated
//! infrastructure are *really* minted and *really* verified — a forged or
//! expired credential fails for real, not by convention.
//!
//! ## Security caveat
//!
//! This crate is **simulation-grade**: implementations are not constant
//! time, not side-channel hardened, and not audited. It exists so the
//! protocol logic in the rest of the workspace is genuine. Do **not** use
//! it to protect real systems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod base64;
pub mod chacha20;
pub mod ed25519;
pub mod fe25519;
pub mod hex;
pub mod hkdf;
pub mod hmac;
pub mod json;
pub mod jwt;
pub mod poly1305;
pub mod sha2;
pub mod x25519;

/// Best-effort constant-time equality for secrets (MACs, tokens).
///
/// Returns `true` iff `a` and `b` have the same length and contents. The
/// comparison touches every byte regardless of where the first mismatch is.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_matches() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"sane"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }
}
