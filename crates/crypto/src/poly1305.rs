//! Poly1305 one-time authenticator (RFC 8439 §2.5).
//!
//! Implemented with five 26-bit limbs in `u64`/`u128` arithmetic.
//! Combined with ChaCha20 in [`crate::aead`] to form the real
//! ChaCha20-Poly1305 AEAD used by the tailnet and tunnel substrates.

/// Compute the Poly1305 tag of `msg` under a 32-byte one-time key.
pub fn poly1305(key: &[u8; 32], msg: &[u8]) -> [u8; 16] {
    // r with the required clamping.
    let mut r = [0u32; 5];
    let t0 = u32::from_le_bytes(key[0..4].try_into().unwrap());
    let t1 = u32::from_le_bytes(key[4..8].try_into().unwrap());
    let t2 = u32::from_le_bytes(key[8..12].try_into().unwrap());
    let t3 = u32::from_le_bytes(key[12..16].try_into().unwrap());
    r[0] = t0 & 0x03ff_ffff;
    r[1] = ((t0 >> 26) | (t1 << 6)) & 0x03ff_ff03;
    r[2] = ((t1 >> 20) | (t2 << 12)) & 0x03ff_c0ff;
    r[3] = ((t2 >> 14) | (t3 << 18)) & 0x03f0_3fff;
    r[4] = (t3 >> 8) & 0x000f_ffff;

    let mut h = [0u64; 5];
    let r64: [u64; 5] = [
        r[0] as u64,
        r[1] as u64,
        r[2] as u64,
        r[3] as u64,
        r[4] as u64,
    ];
    // Precomputed 5*r for the reduction.
    let s = [r64[1] * 5, r64[2] * 5, r64[3] * 5, r64[4] * 5];

    for chunk in msg.chunks(16) {
        // Load the block as five 26-bit limbs with the high bit set.
        let mut block = [0u8; 17];
        block[..chunk.len()].copy_from_slice(chunk);
        block[chunk.len()] = 1;
        let b0 = u32::from_le_bytes(block[0..4].try_into().unwrap());
        let b1 = u32::from_le_bytes(block[4..8].try_into().unwrap());
        let b2 = u32::from_le_bytes(block[8..12].try_into().unwrap());
        let b3 = u32::from_le_bytes(block[12..16].try_into().unwrap());
        let b4 = block[16] as u32;

        h[0] += (b0 & 0x03ff_ffff) as u64;
        h[1] += (((b0 >> 26) | (b1 << 6)) & 0x03ff_ffff) as u64;
        h[2] += (((b1 >> 20) | (b2 << 12)) & 0x03ff_ffff) as u64;
        h[3] += (((b2 >> 14) | (b3 << 18)) & 0x03ff_ffff) as u64;
        h[4] += (((b3 >> 8) | (b4 << 24)) & 0x03ff_ffff) as u64;

        // h *= r (mod 2^130 - 5), schoolbook with 5x fold.
        let d0 = (h[0] as u128) * (r64[0] as u128)
            + (h[1] as u128) * (s[3] as u128)
            + (h[2] as u128) * (s[2] as u128)
            + (h[3] as u128) * (s[1] as u128)
            + (h[4] as u128) * (s[0] as u128);
        let d1 = (h[0] as u128) * (r64[1] as u128)
            + (h[1] as u128) * (r64[0] as u128)
            + (h[2] as u128) * (s[3] as u128)
            + (h[3] as u128) * (s[2] as u128)
            + (h[4] as u128) * (s[1] as u128);
        let d2 = (h[0] as u128) * (r64[2] as u128)
            + (h[1] as u128) * (r64[1] as u128)
            + (h[2] as u128) * (r64[0] as u128)
            + (h[3] as u128) * (s[3] as u128)
            + (h[4] as u128) * (s[2] as u128);
        let d3 = (h[0] as u128) * (r64[3] as u128)
            + (h[1] as u128) * (r64[2] as u128)
            + (h[2] as u128) * (r64[1] as u128)
            + (h[3] as u128) * (r64[0] as u128)
            + (h[4] as u128) * (s[3] as u128);
        let d4 = (h[0] as u128) * (r64[4] as u128)
            + (h[1] as u128) * (r64[3] as u128)
            + (h[2] as u128) * (r64[2] as u128)
            + (h[3] as u128) * (r64[1] as u128)
            + (h[4] as u128) * (r64[0] as u128);

        // Carry propagation back to 26-bit limbs.
        let mut c: u128;
        let mut t = [0u64; 5];
        c = d0 >> 26;
        t[0] = (d0 as u64) & 0x03ff_ffff;
        let d1 = d1 + c;
        c = d1 >> 26;
        t[1] = (d1 as u64) & 0x03ff_ffff;
        let d2 = d2 + c;
        c = d2 >> 26;
        t[2] = (d2 as u64) & 0x03ff_ffff;
        let d3 = d3 + c;
        c = d3 >> 26;
        t[3] = (d3 as u64) & 0x03ff_ffff;
        let d4 = d4 + c;
        c = d4 >> 26;
        t[4] = (d4 as u64) & 0x03ff_ffff;
        t[0] += (c as u64) * 5;
        let carry = t[0] >> 26;
        t[0] &= 0x03ff_ffff;
        t[1] += carry;
        h = t;
    }

    // Final reduction mod 2^130 - 5.
    let mut carry = h[1] >> 26;
    h[1] &= 0x03ff_ffff;
    h[2] += carry;
    carry = h[2] >> 26;
    h[2] &= 0x03ff_ffff;
    h[3] += carry;
    carry = h[3] >> 26;
    h[3] &= 0x03ff_ffff;
    h[4] += carry;
    carry = h[4] >> 26;
    h[4] &= 0x03ff_ffff;
    h[0] += carry * 5;
    carry = h[0] >> 26;
    h[0] &= 0x03ff_ffff;
    h[1] += carry;

    // Compute h + -p and select.
    let mut g = [0u64; 5];
    g[0] = h[0].wrapping_add(5);
    carry = g[0] >> 26;
    g[0] &= 0x03ff_ffff;
    g[1] = h[1].wrapping_add(carry);
    carry = g[1] >> 26;
    g[1] &= 0x03ff_ffff;
    g[2] = h[2].wrapping_add(carry);
    carry = g[2] >> 26;
    g[2] &= 0x03ff_ffff;
    g[3] = h[3].wrapping_add(carry);
    carry = g[3] >> 26;
    g[3] &= 0x03ff_ffff;
    g[4] = h[4].wrapping_add(carry).wrapping_sub(1 << 26);

    // If g4's top bit clear, h >= p, use g.
    if g[4] >> 63 == 0 {
        h = g;
    }

    // Serialize h to 128 bits and add s (the second key half) mod 2^128.
    let acc: u128 = (h[0] as u128)
        | ((h[1] as u128) << 26)
        | ((h[2] as u128) << 52)
        | ((h[3] as u128) << 78)
        | ((h[4] as u128) << 104);
    let s_key = u128::from_le_bytes(key[16..32].try_into().unwrap());
    let tag = acc.wrapping_add(s_key);
    tag.to_le_bytes()
}

/// Verify a Poly1305 tag (best-effort constant time).
pub fn verify_poly1305(key: &[u8; 32], msg: &[u8], tag: &[u8; 16]) -> bool {
    crate::ct_eq(&poly1305(key, msg), tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_vector() {
        let key = hex::decode_array::<32>(
            "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b",
        )
        .unwrap();
        let msg = b"Cryptographic Forum Research Group";
        assert_eq!(
            hex::encode(&poly1305(&key, msg)),
            "a8061dc1305136c6c22b8baf0c0127a9"
        );
    }

    // RFC 8439 A.3 test vector #1: zero key, zero message.
    #[test]
    fn zero_key_zero_msg() {
        let key = [0u8; 32];
        let msg = [0u8; 64];
        assert_eq!(poly1305(&key, &msg), [0u8; 16]);
    }

    // RFC 8439 A.3 test vector #2: r = 0, s = text tail.
    #[test]
    fn r_zero_tag_is_s() {
        let mut key = [0u8; 32];
        let s = hex::decode("36e5f6b5c5e06070f0efca96227a863e").unwrap();
        key[16..].copy_from_slice(&s);
        let msg = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        assert_eq!(
            hex::encode(&poly1305(&key, msg)),
            "36e5f6b5c5e06070f0efca96227a863e"
        );
    }

    #[test]
    fn tag_depends_on_every_byte() {
        let key = [7u8; 32];
        let msg = vec![1u8; 100];
        let tag = poly1305(&key, &msg);
        for i in [0usize, 50, 99] {
            let mut bad = msg.clone();
            bad[i] ^= 1;
            assert_ne!(poly1305(&key, &bad), tag, "byte {i}");
        }
        assert!(verify_poly1305(&key, &msg, &tag));
        let mut bad_tag = tag;
        bad_tag[0] ^= 1;
        assert!(!verify_poly1305(&key, &msg, &bad_tag));
    }

    #[test]
    fn all_lengths_stable() {
        let key = [3u8; 32];
        for n in 0..48usize {
            let msg = vec![0xa5u8; n];
            let t1 = poly1305(&key, &msg);
            let t2 = poly1305(&key, &msg);
            assert_eq!(t1, t2, "len {n}");
        }
    }
}
