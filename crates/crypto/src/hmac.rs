//! HMAC (RFC 2104) over SHA-256 and SHA-512, verified against RFC 4231.

use crate::sha2::{sha256, sha512, Sha256, Sha512};

/// HMAC-SHA-256 of `msg` under `key`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// HMAC-SHA-512 of `msg` under `key`.
pub fn hmac_sha512(key: &[u8], msg: &[u8]) -> [u8; 64] {
    let mut k = [0u8; 128];
    if key.len() > 128 {
        k[..64].copy_from_slice(&sha512(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha512::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha512::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Verify an HMAC-SHA-256 tag in (best-effort) constant time.
pub fn verify_hmac_sha256(key: &[u8], msg: &[u8], tag: &[u8]) -> bool {
    crate::ct_eq(&hmac_sha256(key, msg), tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let msg = b"Hi There";
        assert_eq!(
            hex::encode(&hmac_sha256(&key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex::encode(&hmac_sha512(&key, msg)),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex::encode(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        assert_eq!(
            hex::encode(&hmac_sha256(&key, &msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        let msg = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex::encode(&hmac_sha256(&key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_rejects_tampered_tag() {
        let tag = hmac_sha256(b"key", b"message");
        assert!(verify_hmac_sha256(b"key", b"message", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!verify_hmac_sha256(b"key", b"message", &bad));
        assert!(!verify_hmac_sha256(b"key2", b"message", &tag));
        assert!(!verify_hmac_sha256(b"key", b"message ", &tag));
    }
}
