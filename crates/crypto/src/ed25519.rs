//! Ed25519 signatures (RFC 8032), built on [`crate::fe25519`].
//!
//! Implements scalar arithmetic mod the group order `L`, the edwards25519
//! group in extended coordinates, point compression/decompression, and the
//! `sign`/`verify` operations. Verified against the RFC 8032 §7.1 test
//! vectors. Variable-time throughout (simulation grade).

use crate::fe25519::{curve_d, sqrt_m1, Fe};
use crate::sha2::Sha512;

/// The group order L = 2^252 + 27742317777372353535851937790883648493,
/// little-endian limbs.
pub const L: [u64; 4] = [
    0x5812_631a_5cf5_d3ed,
    0x14de_f9de_a2f7_9cd6,
    0x0000_0000_0000_0000,
    0x1000_0000_0000_0000,
];

/// A scalar mod L, kept fully reduced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Scalar(pub [u64; 4]);

#[allow(clippy::should_implement_trait)] // explicit arithmetic names, as in fe25519
#[allow(clippy::needless_range_loop)] // limb loops read more clearly indexed
impl Scalar {
    /// The zero scalar.
    pub const ZERO: Scalar = Scalar([0, 0, 0, 0]);

    /// Reduce a 512-bit little-endian value mod L (binary long division;
    /// slow but obviously correct, and off the hot path).
    pub fn from_bytes_wide(bytes: &[u8; 64]) -> Scalar {
        let mut limbs = [0u64; 8];
        for i in 0..8 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            limbs[i] = u64::from_le_bytes(chunk);
        }
        Scalar(mod_l_wide(&limbs))
    }

    /// Reduce a 256-bit little-endian value mod L.
    pub fn from_bytes(bytes: &[u8; 32]) -> Scalar {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(bytes);
        Scalar::from_bytes_wide(&wide)
    }

    /// Parse a canonical scalar: rejects values ≥ L (required when
    /// verifying signatures, RFC 8032 §5.1.7).
    pub fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Scalar> {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            limbs[i] = u64::from_le_bytes(chunk);
        }
        if geq4(&limbs, &L) {
            None
        } else {
            Some(Scalar(limbs))
        }
    }

    /// Serialize to 32 little-endian bytes.
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..i * 8 + 8].copy_from_slice(&self.0[i].to_le_bytes());
        }
        out
    }

    /// Scalar addition mod L.
    pub fn add(self, rhs: Scalar) -> Scalar {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 || c2;
        }
        // Both inputs < L < 2^253, so no carry out of 256 bits.
        debug_assert!(!carry);
        if geq4(&out, &L) {
            out = sub4(&out, &L);
        }
        Scalar(out)
    }

    /// Scalar multiplication mod L.
    pub fn mul(self, rhs: Scalar) -> Scalar {
        let mut wide = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let v = (self.0[i] as u128) * (rhs.0[j] as u128) + wide[i + j] as u128 + carry;
                wide[i + j] = v as u64;
                carry = v >> 64;
            }
            wide[i + 4] = carry as u64;
        }
        Scalar(mod_l_wide(&wide))
    }

    /// True if the scalar is zero.
    pub fn is_zero(self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Bit `i` (little-endian) of the scalar.
    fn bit(&self, i: usize) -> bool {
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }
}

fn geq4(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

fn sub4(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let mut out = [0u64; 4];
    let mut borrow = false;
    for i in 0..4 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow as u64);
        out[i] = d2;
        borrow = b1 || b2;
    }
    debug_assert!(!borrow);
    out
}

/// Remainder of a 512-bit value mod L via bitwise long division.
fn mod_l_wide(x: &[u64; 8]) -> [u64; 4] {
    // Working remainder with one spare limb of headroom.
    let mut rem = [0u64; 5];
    let l5 = [L[0], L[1], L[2], L[3], 0u64];
    for i in (0..512).rev() {
        // rem <<= 1
        for j in (1..5).rev() {
            rem[j] = (rem[j] << 1) | (rem[j - 1] >> 63);
        }
        rem[0] <<= 1;
        // rem |= bit i of x
        if (x[i / 64] >> (i % 64)) & 1 == 1 {
            rem[0] |= 1;
        }
        // rem -= L if rem >= L
        let mut ge = true;
        for j in (0..5).rev() {
            if rem[j] > l5[j] {
                break;
            }
            if rem[j] < l5[j] {
                ge = false;
                break;
            }
        }
        if ge {
            let mut borrow = false;
            for j in 0..5 {
                let (d1, b1) = rem[j].overflowing_sub(l5[j]);
                let (d2, b2) = d1.overflowing_sub(borrow as u64);
                rem[j] = d2;
                borrow = b1 || b2;
            }
            debug_assert!(!borrow);
        }
    }
    [rem[0], rem[1], rem[2], rem[3]]
}

/// A point on edwards25519 in extended twisted-Edwards coordinates
/// (X : Y : Z : T) with x = X/Z, y = Y/Z, xy = T/Z.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

impl Point {
    /// The neutral element.
    pub fn identity() -> Point {
        Point {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// The standard base point B (y = 4/5, x even... the RFC 8032 basepoint).
    pub fn base() -> Point {
        // x(B), y(B) as little-endian limb constants.
        const BX: [u64; 4] = [
            0xc956_2d60_8f25_d51a,
            0x692c_c760_9525_a7b2,
            0xc0a4_e231_fdd6_dc5c,
            0x2169_36d3_cd6e_53fe,
        ];
        const BY: [u64; 4] = [
            0x6666_6666_6666_6658,
            0x6666_6666_6666_6666,
            0x6666_6666_6666_6666,
            0x6666_6666_6666_6666,
        ];
        let x = Fe(BX);
        let y = Fe(BY);
        Point {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(y),
        }
    }

    /// Unified point addition ("add-2008-hwcd-3" for a = −1 twisted
    /// Edwards curves; valid for doubling too).
    pub fn add(&self, other: &Point) -> Point {
        let two_d = curve_d().add(curve_d());
        let a = self.y.sub(self.x).mul(other.y.sub(other.x));
        let b = self.y.add(self.x).mul(other.y.add(other.x));
        let c = self.t.mul(two_d).mul(other.t);
        let d = self.z.add(self.z).mul(other.z);
        let e = b.sub(a);
        let f = d.sub(c);
        let g = d.add(c);
        let h = b.add(a);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            z: f.mul(g),
            t: e.mul(h),
        }
    }

    /// Point doubling (dbl-2008-hwcd).
    pub fn double(&self) -> Point {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().mul_small(2);
        // For a = −1: D = −A.
        let d = a.neg();
        let e = self.x.add(self.y).square().sub(a).sub(b);
        let g = d.add(b);
        let f = g.sub(c);
        let h = d.sub(b);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            z: f.mul(g),
            t: e.mul(h),
        }
    }

    /// Variable-time scalar multiplication (MSB-first double-and-add).
    pub fn mul_scalar(&self, s: &Scalar) -> Point {
        let mut acc = Point::identity();
        let mut started = false;
        for i in (0..253).rev() {
            if started {
                acc = acc.double();
            }
            if s.bit(i) {
                acc = if started { acc.add(self) } else { *self };
                started = true;
            }
        }
        if started {
            acc
        } else {
            Point::identity()
        }
    }

    /// Compress to the 32-byte RFC 8032 wire format.
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(zinv);
        let y = self.y.mul(zinv);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompress from the 32-byte wire format; `None` if not on the curve.
    pub fn decompress(bytes: &[u8; 32]) -> Option<Point> {
        let sign = bytes[31] >> 7 == 1;
        let y = Fe::from_bytes(bytes); // masks the sign bit
                                       // Canonicality: re-encoding must give the same y bits.
        let mut y_bytes = y.to_bytes();
        y_bytes[31] |= (bytes[31] & 0x80) & 0x80;
        if y_bytes != *bytes {
            return None;
        }
        // x^2 = (y^2 - 1) / (d y^2 + 1)
        let yy = y.square();
        let u = yy.sub(Fe::ONE);
        let v = curve_d().mul(yy).add(Fe::ONE);
        // Candidate root: x = u v^3 (u v^7)^((p-5)/8)
        let v3 = v.square().mul(v);
        let v7 = v3.square().mul(v);
        let mut x = u.mul(v3).mul(u.mul(v7).pow_p58());
        let vxx = v.mul(x.square());
        if vxx != u {
            if vxx == u.neg() {
                x = x.mul(sqrt_m1());
            } else {
                return None;
            }
        }
        if x.is_zero() && sign {
            // −0 is not a valid encoding.
            return None;
        }
        if x.is_negative() != sign {
            x = x.neg();
        }
        Some(Point {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(y),
        })
    }

    /// Constant comparison in affine coordinates.
    pub fn equals(&self, other: &Point) -> bool {
        // x1 z2 == x2 z1 and y1 z2 == y2 z1
        self.x.mul(other.z) == other.x.mul(self.z) && self.y.mul(other.z) == other.y.mul(self.z)
    }

    /// Check the curve equation −x² + y² = 1 + d x² y² holds.
    pub fn is_on_curve(&self) -> bool {
        let zinv = self.z.invert();
        let x = self.x.mul(zinv);
        let y = self.y.mul(zinv);
        let lhs = y.square().sub(x.square());
        let rhs = Fe::ONE.add(curve_d().mul(x.square()).mul(y.square()));
        lhs == rhs
    }
}

/// An Ed25519 signing key (the 32-byte seed plus derived state).
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; 32],
    /// Clamped secret scalar, reduced mod L.
    a: Scalar,
    prefix: [u8; 32],
    public: VerifyingKey,
}

impl SigningKey {
    /// Derive a signing key from a 32-byte seed (RFC 8032 §5.1.5).
    pub fn from_seed(seed: &[u8; 32]) -> SigningKey {
        let mut h = Sha512::new();
        h.update(seed);
        let digest = h.finalize();
        let mut a_bytes = [0u8; 32];
        a_bytes.copy_from_slice(&digest[..32]);
        a_bytes[0] &= 248;
        a_bytes[31] &= 127;
        a_bytes[31] |= 64;
        let a = Scalar::from_bytes(&a_bytes);
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&digest[32..]);
        let public_point = Point::base().mul_scalar(&a);
        let public = VerifyingKey {
            bytes: public_point.compress(),
        };
        SigningKey {
            seed: *seed,
            a,
            prefix,
            public,
        }
    }

    /// The corresponding verifying (public) key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public.clone()
    }

    /// The seed this key was derived from.
    pub fn seed(&self) -> &[u8; 32] {
        &self.seed
    }

    /// Sign `msg`, producing a 64-byte signature (R ‖ s).
    pub fn sign(&self, msg: &[u8]) -> [u8; 64] {
        let mut h = Sha512::new();
        h.update(&self.prefix);
        h.update(msg);
        let r = Scalar::from_bytes_wide(&h.finalize());
        let r_point = Point::base().mul_scalar(&r).compress();

        let mut h2 = Sha512::new();
        h2.update(&r_point);
        h2.update(&self.public.bytes);
        h2.update(msg);
        let k = Scalar::from_bytes_wide(&h2.finalize());
        let s = r.add(k.mul(self.a));

        let mut sig = [0u8; 64];
        sig[..32].copy_from_slice(&r_point);
        sig[32..].copy_from_slice(&s.to_bytes());
        sig
    }
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the seed.
        write!(
            f,
            "SigningKey(pub={})",
            crate::hex::encode(&self.public.bytes)
        )
    }
}

/// An Ed25519 verifying (public) key.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct VerifyingKey {
    bytes: [u8; 32],
}

impl VerifyingKey {
    /// Wrap 32 public-key bytes (validated lazily at verify time).
    pub fn from_bytes(bytes: [u8; 32]) -> VerifyingKey {
        VerifyingKey { bytes }
    }

    /// The raw 32-byte encoding.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.bytes
    }

    /// Verify `sig` over `msg` (RFC 8032 §5.1.7, cofactorless equation).
    pub fn verify(&self, msg: &[u8], sig: &[u8; 64]) -> bool {
        let mut r_bytes = [0u8; 32];
        r_bytes.copy_from_slice(&sig[..32]);
        let mut s_bytes = [0u8; 32];
        s_bytes.copy_from_slice(&sig[32..]);

        let s = match Scalar::from_canonical_bytes(&s_bytes) {
            Some(s) => s,
            None => return false,
        };
        let a = match Point::decompress(&self.bytes) {
            Some(a) => a,
            None => return false,
        };
        let r = match Point::decompress(&r_bytes) {
            Some(r) => r,
            None => return false,
        };

        let mut h = Sha512::new();
        h.update(&r_bytes);
        h.update(&self.bytes);
        h.update(msg);
        let k = Scalar::from_bytes_wide(&h.finalize());

        // Check s·B == R + k·A.
        let lhs = Point::base().mul_scalar(&s);
        let rhs = r.add(&a.mul_scalar(&k));
        lhs.equals(&rhs)
    }
}

impl std::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifyingKey({})", crate::hex::encode(&self.bytes))
    }
}

/// A verifying key with its curve point decompressed once up front.
///
/// [`VerifyingKey::verify`] re-decompresses the public-key point A on
/// every call; a verifier that checks many signatures under the same key
/// (JWKS keys, the SSH user-CA key) pays that cost per signature for no
/// reason. `PreparedVerifyingKey` hoists the decompression to
/// construction time. Accept/reject behaviour is byte-for-byte identical
/// to the unprepared path: a key whose encoding is not a curve point
/// rejects every signature, exactly as `VerifyingKey::verify` does.
#[derive(Clone, Debug)]
pub struct PreparedVerifyingKey {
    bytes: [u8; 32],
    /// `None` when the key bytes do not decode to a curve point — such a
    /// key fails every verification, matching the lazy path.
    point: Option<Point>,
}

impl PreparedVerifyingKey {
    /// Decompress the key's curve point once, for reuse across verifies.
    pub fn new(key: &VerifyingKey) -> PreparedVerifyingKey {
        PreparedVerifyingKey {
            bytes: key.bytes,
            point: Point::decompress(&key.bytes),
        }
    }

    /// The raw 32-byte encoding.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.bytes
    }

    /// The plain key this was prepared from.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey { bytes: self.bytes }
    }

    /// Verify `sig` over `msg`, skipping the per-call decompression of A.
    /// Same accept/reject behaviour as [`VerifyingKey::verify`].
    pub fn verify(&self, msg: &[u8], sig: &[u8; 64]) -> bool {
        let a = match &self.point {
            Some(a) => a,
            None => return false,
        };
        let mut r_bytes = [0u8; 32];
        r_bytes.copy_from_slice(&sig[..32]);
        let mut s_bytes = [0u8; 32];
        s_bytes.copy_from_slice(&sig[32..]);

        let s = match Scalar::from_canonical_bytes(&s_bytes) {
            Some(s) => s,
            None => return false,
        };
        let r = match Point::decompress(&r_bytes) {
            Some(r) => r,
            None => return false,
        };

        let mut h = Sha512::new();
        h.update(&r_bytes);
        h.update(&self.bytes);
        h.update(msg);
        let k = Scalar::from_bytes_wide(&h.finalize());

        // Check s·B == R + k·A.
        let lhs = Point::base().mul_scalar(&s);
        let rhs = r.add(&a.mul_scalar(&k));
        lhs.equals(&rhs)
    }
}

impl From<&VerifyingKey> for PreparedVerifyingKey {
    fn from(key: &VerifyingKey) -> PreparedVerifyingKey {
        PreparedVerifyingKey::new(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn base_point_on_curve() {
        assert!(Point::base().is_on_curve());
        assert!(Point::identity().is_on_curve());
    }

    #[test]
    fn base_point_has_order_l() {
        // L · B == identity, (L-1) · B == -B
        let l_minus_1 = Scalar(sub4(&L, &[1, 0, 0, 0]));
        let p = Point::base().mul_scalar(&l_minus_1);
        let sum = p.add(&Point::base());
        assert!(sum.equals(&Point::identity()));
    }

    #[test]
    fn double_matches_add() {
        let b = Point::base();
        assert!(b.double().equals(&b.add(&b)));
        let four = b.double().double();
        let four_via_add = b.add(&b).add(&b).add(&b);
        assert!(four.equals(&four_via_add));
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let mut p = Point::base();
        for _ in 0..16 {
            let c = p.compress();
            let q = Point::decompress(&c).expect("valid point");
            assert!(q.equals(&p));
            assert!(q.is_on_curve());
            p = p.add(&Point::base());
        }
    }

    #[test]
    fn decompress_rejects_garbage() {
        // A y with no corresponding x.
        let mut bad = [0u8; 32];
        bad[0] = 2;
        // y=2: x^2 = 3/(4d+1); whether this is square is fixed — test both
        // this and a known-bad high-bit pattern.
        let _ = Point::decompress(&bad); // must not panic either way
        let all_ff = [0xffu8; 32];
        assert!(Point::decompress(&all_ff).is_none());
    }

    #[test]
    fn scalar_mod_l() {
        // L reduces to zero.
        let mut bytes = [0u8; 32];
        for i in 0..4 {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&L[i].to_le_bytes());
        }
        assert!(Scalar::from_bytes(&bytes).is_zero());
        assert!(Scalar::from_canonical_bytes(&bytes).is_none());
        // L - 1 is canonical.
        let lm1 = sub4(&L, &[1, 0, 0, 0]);
        let mut b2 = [0u8; 32];
        for i in 0..4 {
            b2[i * 8..i * 8 + 8].copy_from_slice(&lm1[i].to_le_bytes());
        }
        let s = Scalar::from_canonical_bytes(&b2).unwrap();
        assert_eq!(s.add(Scalar([1, 0, 0, 0])), Scalar::ZERO);
    }

    #[test]
    fn scalar_mul_small() {
        let a = Scalar([7, 0, 0, 0]);
        let b = Scalar([6, 0, 0, 0]);
        assert_eq!(a.mul(b), Scalar([42, 0, 0, 0]));
    }

    // RFC 8032 §7.1 TEST 1: empty message.
    #[test]
    fn rfc8032_test1() {
        let seed = hex::decode_array::<32>(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        )
        .unwrap();
        let sk = SigningKey::from_seed(&seed);
        assert_eq!(
            hex::encode(sk.verifying_key().as_bytes()),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
        );
        let sig = sk.sign(b"");
        assert_eq!(
            hex::encode(&sig),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
             5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
        );
        assert!(sk.verifying_key().verify(b"", &sig));
    }

    // RFC 8032 §7.1 TEST 2: one-byte message.
    #[test]
    fn rfc8032_test2() {
        let seed = hex::decode_array::<32>(
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        )
        .unwrap();
        let sk = SigningKey::from_seed(&seed);
        assert_eq!(
            hex::encode(sk.verifying_key().as_bytes()),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
        );
        let sig = sk.sign(&[0x72]);
        assert_eq!(
            hex::encode(&sig),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
             085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
        );
        assert!(sk.verifying_key().verify(&[0x72], &sig));
    }

    // RFC 8032 §7.1 TEST 3: two-byte message.
    #[test]
    fn rfc8032_test3() {
        let seed = hex::decode_array::<32>(
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        )
        .unwrap();
        let sk = SigningKey::from_seed(&seed);
        assert_eq!(
            hex::encode(sk.verifying_key().as_bytes()),
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025"
        );
        let msg = [0xaf, 0x82];
        let sig = sk.sign(&msg);
        assert_eq!(
            hex::encode(&sig),
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
             18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
        );
        assert!(sk.verifying_key().verify(&msg, &sig));
    }

    #[test]
    fn verify_rejects_tampering() {
        let sk = SigningKey::from_seed(&[42u8; 32]);
        let pk = sk.verifying_key();
        let sig = sk.sign(b"an RBAC token body");
        assert!(pk.verify(b"an RBAC token body", &sig));
        // Flip message
        assert!(!pk.verify(b"an RBAC token bodY", &sig));
        // Flip each half of the signature
        let mut bad = sig;
        bad[0] ^= 1;
        assert!(!pk.verify(b"an RBAC token body", &bad));
        let mut bad2 = sig;
        bad2[40] ^= 1;
        assert!(!pk.verify(b"an RBAC token body", &bad2));
        // Wrong key
        let other = SigningKey::from_seed(&[43u8; 32]).verifying_key();
        assert!(!other.verify(b"an RBAC token body", &sig));
    }

    #[test]
    fn prepared_key_matches_plain_verify() {
        let sk = SigningKey::from_seed(&[42u8; 32]);
        let pk = sk.verifying_key();
        let prepared = PreparedVerifyingKey::new(&pk);
        assert_eq!(prepared.as_bytes(), pk.as_bytes());
        assert_eq!(prepared.verifying_key(), pk);
        let sig = sk.sign(b"cached hot path");
        assert!(prepared.verify(b"cached hot path", &sig));
        assert!(!prepared.verify(b"cached hot patH", &sig));
        let mut bad = sig;
        bad[0] ^= 1;
        assert!(!prepared.verify(b"cached hot path", &bad));
        let mut bad2 = sig;
        bad2[40] ^= 1;
        assert!(!prepared.verify(b"cached hot path", &bad2));
    }

    #[test]
    fn prepared_key_with_invalid_point_rejects_everything() {
        // all-0xff is not a curve point; both paths must reject.
        let bogus = VerifyingKey::from_bytes([0xffu8; 32]);
        let prepared = PreparedVerifyingKey::new(&bogus);
        let sig = SigningKey::from_seed(&[1u8; 32]).sign(b"msg");
        assert!(!bogus.verify(b"msg", &sig));
        assert!(!prepared.verify(b"msg", &sig));
    }

    #[test]
    fn verify_rejects_non_canonical_s() {
        let sk = SigningKey::from_seed(&[7u8; 32]);
        let sig = sk.sign(b"msg");
        // Add L to s: same value mod L but non-canonical encoding.
        let mut s_bytes = [0u8; 32];
        s_bytes.copy_from_slice(&sig[32..]);
        let s = Scalar::from_bytes(&s_bytes);
        let mut malleated = sig;
        // s + L as a 256-bit integer
        let mut carry = 0u128;
        let mut out = [0u64; 4];
        for i in 0..4 {
            let v = s.0[i] as u128 + L[i] as u128 + carry;
            out[i] = v as u64;
            carry = v >> 64;
        }
        if carry == 0 {
            for i in 0..4 {
                malleated[32 + i * 8..32 + i * 8 + 8].copy_from_slice(&out[i].to_le_bytes());
            }
            assert!(!sk.verifying_key().verify(b"msg", &malleated));
        }
    }
}
