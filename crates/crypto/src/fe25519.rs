//! Arithmetic in GF(2^255 − 19), the base field of Curve25519 / edwards25519.
//!
//! Elements are held as four 64-bit little-endian limbs, always reduced to
//! `[0, p)` after every public operation. Multiplication uses schoolbook
//! 4×4 limb products accumulated in `u128`, followed by the standard
//! `2^256 ≡ 38 (mod p)` fold. This is variable-time, which is acceptable
//! for the simulation-grade purposes of this crate.

/// p = 2^255 − 19 as little-endian u64 limbs.
pub const P: [u64; 4] = [
    0xffff_ffff_ffff_ffed,
    0xffff_ffff_ffff_ffff,
    0xffff_ffff_ffff_ffff,
    0x7fff_ffff_ffff_ffff,
];

/// An element of GF(2^255 − 19), kept fully reduced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fe(pub [u64; 4]);

// Explicit arithmetic method names (`add`, `sub`, `mul`, `neg`) are
// deliberate here: operator overloading would hide the cost and the
// variable-time nature of these operations.
#[allow(clippy::should_implement_trait)]
impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0]);

    /// Construct from little-endian bytes, ignoring the top bit (RFC 7748
    /// / 8032 convention) and reducing mod p.
    pub fn from_bytes(b: &[u8; 32]) -> Fe {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&b[i * 8..i * 8 + 8]);
            limbs[i] = u64::from_le_bytes(chunk);
        }
        limbs[3] &= 0x7fff_ffff_ffff_ffff;
        let mut fe = Fe(limbs);
        fe.reduce_once();
        fe
    }

    /// Serialize to 32 little-endian bytes (fully reduced, top bit clear).
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..i * 8 + 8].copy_from_slice(&self.0[i].to_le_bytes());
        }
        out
    }

    /// Subtract p once if the value is ≥ p.
    fn reduce_once(&mut self) {
        if geq(&self.0, &P) {
            self.0 = sub_raw(&self.0, &P);
        }
    }

    /// Field addition.
    pub fn add(self, rhs: Fe) -> Fe {
        let (sum, carry) = add_raw(&self.0, &rhs.0);
        let mut v = sum;
        if carry || geq(&v, &P) {
            v = sub_raw(&v, &P);
        }
        Fe(v)
    }

    /// Field subtraction.
    pub fn sub(self, rhs: Fe) -> Fe {
        if geq(&self.0, &rhs.0) {
            Fe(sub_raw(&self.0, &rhs.0))
        } else {
            // self - rhs + p
            let (tmp, _carry) = add_raw(&self.0, &P);
            Fe(sub_raw(&tmp, &rhs.0))
        }
    }

    /// Field negation.
    pub fn neg(self) -> Fe {
        Fe::ZERO.sub(self)
    }

    /// Field multiplication.
    pub fn mul(self, rhs: Fe) -> Fe {
        // Schoolbook 4x4 -> 8 limbs with per-row carry propagation (a
        // column-wise u128 accumulator can overflow with 4 summands).
        let a = &self.0;
        let b = &rhs.0;
        let mut r = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let v = (a[i] as u128) * (b[j] as u128) + r[i + j] as u128 + carry;
                r[i + j] = v as u64;
                carry = v >> 64;
            }
            r[i + 4] = carry as u64;
        }
        reduce_wide(&r)
    }

    /// Field squaring.
    pub fn square(self) -> Fe {
        self.mul(self)
    }

    /// Multiply by a small constant.
    pub fn mul_small(self, k: u64) -> Fe {
        let a = &self.0;
        let mut r = [0u64; 8];
        let mut carry: u128 = 0;
        for i in 0..4 {
            let v = (a[i] as u128) * (k as u128) + carry;
            r[i] = v as u64;
            carry = v >> 64;
        }
        r[4] = carry as u64;
        reduce_wide(&r)
    }

    /// Raise to the power given as 256-bit little-endian limbs
    /// (square-and-multiply, variable time).
    pub fn pow_limbs(self, exp: &[u64; 4]) -> Fe {
        let mut acc = Fe::ONE;
        // Process from the most significant bit downwards.
        for i in (0..256).rev() {
            acc = acc.square();
            let limb = exp[i / 64];
            if (limb >> (i % 64)) & 1 == 1 {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Multiplicative inverse via Fermat: a^(p−2).
    pub fn invert(self) -> Fe {
        // p - 2 = 2^255 - 21
        const EXP: [u64; 4] = [
            0xffff_ffff_ffff_ffeb,
            0xffff_ffff_ffff_ffff,
            0xffff_ffff_ffff_ffff,
            0x7fff_ffff_ffff_ffff,
        ];
        self.pow_limbs(&EXP)
    }

    /// a^((p−5)/8), the core of the combined sqrt/division used in
    /// point decompression (RFC 8032 §5.1.3).
    pub fn pow_p58(self) -> Fe {
        // (p - 5) / 8 = (2^255 - 24) / 8 = 2^252 - 3
        const EXP: [u64; 4] = [
            0xffff_ffff_ffff_fffd,
            0xffff_ffff_ffff_ffff,
            0xffff_ffff_ffff_ffff,
            0x0fff_ffff_ffff_ffff,
        ];
        self.pow_limbs(&EXP)
    }

    /// True if the element is zero.
    pub fn is_zero(self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Least significant bit of the canonical representation (the "sign"
    /// bit used by point compression).
    pub fn is_negative(self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Conditional swap (variable time — simulation grade).
    pub fn cswap(swap: bool, a: &mut Fe, b: &mut Fe) {
        if swap {
            std::mem::swap(a, b);
        }
    }
}

/// sqrt(-1) mod p, used in decompression. Precomputed constant.
pub fn sqrt_m1() -> Fe {
    // 2^((p-1)/4) mod p
    const SQRT_M1: [u64; 4] = [
        0xc4ee_1b27_4a0e_a0b0,
        0x2f43_1806_ad2f_e478,
        0x2b4d_0099_3dfb_d7a7,
        0x2b83_2480_4fc1_df0b,
    ];
    Fe(SQRT_M1)
}

/// d = −121665/121666, the edwards25519 curve constant.
pub fn curve_d() -> Fe {
    const D: [u64; 4] = [
        0x75eb_4dca_1359_78a3,
        0x0070_0a4d_4141_d8ab,
        0x8cc7_4079_7779_e898,
        0x5203_6cee_2b6f_fe73,
    ];
    Fe(D)
}

fn geq(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

fn add_raw(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], bool) {
    let mut out = [0u64; 4];
    let mut carry = false;
    for i in 0..4 {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry as u64);
        out[i] = s2;
        carry = c1 || c2;
    }
    (out, carry)
}

fn sub_raw(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let mut out = [0u64; 4];
    let mut borrow = false;
    for i in 0..4 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow as u64);
        out[i] = d2;
        borrow = b1 || b2;
    }
    out
}

/// Reduce an 8-limb (512-bit) value mod p using 2^256 ≡ 38.
fn reduce_wide(r: &[u64; 8]) -> Fe {
    // lo + 38 * hi, at most 65 + 256 bits -> fits in 5 limbs.
    let mut acc = [0u128; 5];
    for i in 0..4 {
        acc[i] += r[i] as u128;
        acc[i] += (r[i + 4] as u128) * 38;
    }
    let mut limbs = [0u64; 5];
    let mut carry: u128 = 0;
    for i in 0..5 {
        let v = acc[i] + carry;
        limbs[i] = v as u64;
        carry = v >> 64;
    }
    debug_assert_eq!(carry, 0);
    // Second fold: limbs[4] * 2^256 ≡ limbs[4] * 38. Loop in case the
    // addition itself wraps past 2^256 (then the wrap is worth another 38).
    let mut lo = [limbs[0], limbs[1], limbs[2], limbs[3]];
    let mut extra: u64 = limbs[4].wrapping_mul(38); // limbs[4] < 39, no overflow
    while extra != 0 {
        let mut carry: u64 = extra;
        for limb in lo.iter_mut() {
            let (v, c) = limb.overflowing_add(carry);
            *limb = v;
            carry = c as u64;
            if carry == 0 {
                break;
            }
        }
        extra = carry * 38;
    }
    // Final: fold the top bit (2^255 ≡ 19) and reduce below p.
    let top = lo[3] >> 63;
    lo[3] &= 0x7fff_ffff_ffff_ffff;
    let mut fe = Fe(lo);
    if top == 1 {
        fe = fe.add(Fe([19, 0, 0, 0]));
    }
    fe.reduce_once();
    fe
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(n: u64) -> Fe {
        Fe([n, 0, 0, 0])
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = fe(123456789);
        let b = fe(987654321);
        assert_eq!(a.add(b).sub(b), a);
        assert_eq!(a.sub(b).add(b), a);
    }

    #[test]
    fn neg_is_additive_inverse() {
        let a = Fe([0xdead_beef, 0xcafe, 0x1234, 0x0fff]);
        assert_eq!(a.add(a.neg()), Fe::ZERO);
        assert_eq!(Fe::ZERO.neg(), Fe::ZERO);
    }

    #[test]
    fn mul_matches_small_cases() {
        assert_eq!(fe(6).mul(fe(7)), fe(42));
        assert_eq!(fe(0).mul(fe(7)), Fe::ZERO);
        assert_eq!(fe(1).mul(fe(7)), fe(7));
    }

    #[test]
    fn p_is_zero() {
        let mut p = Fe(P);
        p.reduce_once();
        assert_eq!(p, Fe::ZERO);
        // p - 1 + 2 == 1
        let pm1 = Fe(P).sub(fe(1));
        assert_eq!(pm1.add(fe(2)), fe(1));
    }

    #[test]
    fn invert_small() {
        for n in [1u64, 2, 3, 12345, 0xffff_ffff] {
            let a = fe(n);
            assert_eq!(a.mul(a.invert()), Fe::ONE, "n = {n}");
        }
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = sqrt_m1();
        assert_eq!(i.square(), Fe::ONE.neg());
    }

    #[test]
    fn curve_d_definition() {
        // d * 121666 == -121665
        let d = curve_d();
        assert_eq!(d.mul(fe(121666)), fe(121665).neg());
    }

    #[test]
    fn bytes_roundtrip() {
        let a = Fe([
            0x0123_4567_89ab_cdef,
            0xfedc_ba98_7654_3210,
            0xaaaa,
            0x7000_0000_0000_0000,
        ]);
        assert_eq!(Fe::from_bytes(&a.to_bytes()), a);
    }

    #[test]
    fn from_bytes_reduces() {
        // 2^255 - 19 (i.e. p) encodes to zero once the high bit handling
        // and reduction are applied; p-1 stays p-1.
        let mut b = [0xffu8; 32];
        b[31] = 0x7f;
        // This is 2^255 - 1 = p + 18 -> reduces to 18.
        assert_eq!(Fe::from_bytes(&b), fe(18));
    }

    #[test]
    fn mul_small_matches_mul() {
        let a = Fe([u64::MAX, u64::MAX, u64::MAX, 0x7fff_ffff_ffff_ffff]);
        assert_eq!(a.mul_small(38), a.mul(fe(38)));
        assert_eq!(a.mul_small(121666), a.mul(fe(121666)));
    }

    #[test]
    fn pow_limbs_matches_repeated_mul() {
        let a = fe(3);
        // 3^10 = 59049
        assert_eq!(a.pow_limbs(&[10, 0, 0, 0]), fe(59049));
        assert_eq!(a.pow_limbs(&[0, 0, 0, 0]), Fe::ONE);
        assert_eq!(a.pow_limbs(&[1, 0, 0, 0]), a);
    }
}
