//! ChaCha20 stream cipher (RFC 8439). Combined with [`crate::poly1305`]
//! in [`crate::aead`] to form the ChaCha20-Poly1305 AEAD protecting the
//! simulated WireGuard-style tailnet and Zenith tunnel frames.

/// The ChaCha20 block function: 20 rounds over the 4×4 state.
fn block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter(&mut working, 0, 4, 8, 12);
        quarter(&mut working, 1, 5, 9, 13);
        quarter(&mut working, 2, 6, 10, 14);
        quarter(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter(&mut working, 0, 5, 10, 15);
        quarter(&mut working, 1, 6, 11, 12);
        quarter(&mut working, 2, 7, 8, 13);
        quarter(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let v = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// XOR-encrypt (or decrypt — the cipher is symmetric) `data` in place,
/// starting from block `counter`.
pub fn xor_in_place(key: &[u8; 32], nonce: &[u8; 12], counter: u32, data: &mut [u8]) {
    let mut ctr = counter;
    for chunk in data.chunks_mut(64) {
        let ks = block(key, ctr, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        ctr = ctr.wrapping_add(1);
    }
}

/// Encrypt `plaintext`, returning a fresh ciphertext vector.
pub fn encrypt(key: &[u8; 32], nonce: &[u8; 12], counter: u32, plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    xor_in_place(key, nonce, counter, &mut out);
    out
}

/// Decrypt `ciphertext`, returning a fresh plaintext vector.
pub fn decrypt(key: &[u8; 32], nonce: &[u8; 12], counter: u32, ciphertext: &[u8]) -> Vec<u8> {
    encrypt(key, nonce, counter, ciphertext)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block() {
        let key = hex::decode_array::<32>(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        )
        .unwrap();
        let nonce = hex::decode_array::<12>("000000090000004a00000000").unwrap();
        let ks = block(&key, 1, &nonce);
        assert_eq!(
            hex::encode(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt() {
        let key = hex::decode_array::<32>(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        )
        .unwrap();
        let nonce = hex::decode_array::<12>("000000000000004a00000000").unwrap();
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
                          only one tip for the future, sunscreen would be it.";
        let ct = encrypt(&key, &nonce, 1, plaintext);
        assert_eq!(
            hex::encode(&ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
        );
        assert_eq!(decrypt(&key, &nonce, 1, &ct), plaintext);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        for n in [0usize, 1, 63, 64, 65, 200] {
            let data: Vec<u8> = (0..n as u8).collect();
            let ct = encrypt(&key, &nonce, 0, &data);
            assert_eq!(decrypt(&key, &nonce, 0, &ct), data, "len {n}");
            if n > 0 {
                assert_ne!(ct, data);
            }
        }
    }

    #[test]
    fn different_nonce_different_keystream() {
        let key = [1u8; 32];
        let ct1 = encrypt(&key, &[0u8; 12], 0, &[0u8; 64]);
        let ct2 = encrypt(&key, &[1u8; 12], 0, &[0u8; 64]);
        assert_ne!(ct1, ct2);
    }
}
