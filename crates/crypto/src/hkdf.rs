//! HKDF (RFC 5869) over HMAC-SHA-256. Used for deriving tunnel session
//! keys from X25519 shared secrets and for kill-switch epoch keys.

use crate::hmac::hmac_sha256;

/// HKDF-Extract: derive a pseudorandom key from input keying material.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derive `out.len()` bytes (≤ 255·32) from a PRK and info.
///
/// # Panics
/// Panics if more than 8160 bytes are requested, per RFC 5869.
pub fn expand(prk: &[u8; 32], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * 32, "HKDF-Expand output too long");
    let mut t: Vec<u8> = Vec::with_capacity(32 + info.len() + 1);
    let mut prev: Option<[u8; 32]> = None;
    let mut offset = 0;
    let mut counter = 1u8;
    while offset < out.len() {
        t.clear();
        if let Some(p) = prev {
            t.extend_from_slice(&p);
        }
        t.extend_from_slice(info);
        t.push(counter);
        let block = hmac_sha256(prk, &t);
        let take = (out.len() - offset).min(32);
        out[offset..offset + take].copy_from_slice(&block[..take]);
        offset += take;
        counter = counter.wrapping_add(1);
        prev = Some(block);
    }
}

/// One-shot extract-then-expand.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], out: &mut [u8]) {
    let prk = extract(salt, ikm);
    expand(&prk, info, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0b; 22];
        let salt = hex::decode("000102030405060708090a0b0c").unwrap();
        let info = hex::decode("f0f1f2f3f4f5f6f7f8f9").unwrap();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex::encode(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex::encode(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0b; 22];
        let mut okm = [0u8; 42];
        hkdf(&[], &ikm, &[], &mut okm);
        assert_eq!(
            hex::encode(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn long_output_spans_blocks() {
        let mut okm = [0u8; 100];
        hkdf(b"salt", b"ikm", b"info", &mut okm);
        // Deterministic: same inputs, same outputs.
        let mut okm2 = [0u8; 100];
        hkdf(b"salt", b"ikm", b"info", &mut okm2);
        assert_eq!(okm, okm2);
        // Different info yields different keys.
        let mut okm3 = [0u8; 100];
        hkdf(b"salt", b"ikm", b"other", &mut okm3);
        assert_ne!(okm, okm3);
    }
}
