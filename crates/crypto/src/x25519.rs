//! X25519 Diffie–Hellman (RFC 7748), used by the simulated WireGuard-style
//! tailnet and Zenith tunnel handshakes.

use crate::fe25519::Fe;

/// Clamp a 32-byte scalar per RFC 7748 §5.
pub fn clamp(mut k: [u8; 32]) -> [u8; 32] {
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

/// The X25519 function: scalar multiplication on the Montgomery u-line.
pub fn x25519(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp(*scalar);
    let x1 = Fe::from_bytes(u);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = false;

    for t in (0..255).rev() {
        let k_t = (k[t / 8] >> (t % 8)) & 1 == 1;
        swap ^= k_t;
        Fe::cswap(swap, &mut x2, &mut x3);
        Fe::cswap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121665)));
    }
    Fe::cswap(swap, &mut x2, &mut x3);
    Fe::cswap(swap, &mut z2, &mut z3);
    x2.mul(z2.invert()).to_bytes()
}

/// The canonical base point u = 9.
pub fn basepoint() -> [u8; 32] {
    let mut bp = [0u8; 32];
    bp[0] = 9;
    bp
}

/// Derive the public key for a (clamped) private key.
pub fn public_key(private: &[u8; 32]) -> [u8; 32] {
    x25519(private, &basepoint())
}

/// Compute the shared secret between `private` and a peer's `public`.
pub fn shared_secret(private: &[u8; 32], peer_public: &[u8; 32]) -> [u8; 32] {
    x25519(private, peer_public)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector1() {
        let k = hex::decode_array::<32>(
            "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4",
        )
        .unwrap();
        let u = hex::decode_array::<32>(
            "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c",
        )
        .unwrap();
        assert_eq!(
            hex::encode(&x25519(&k, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    // RFC 7748 §5.2 iterated test, 1 iteration.
    #[test]
    fn rfc7748_iterated_once() {
        let mut k = basepoint();
        k[0] = 9;
        let u = basepoint();
        assert_eq!(
            hex::encode(&x25519(&k, &u)),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }

    // RFC 7748 §6.1 Diffie–Hellman.
    #[test]
    fn rfc7748_dh() {
        let alice_priv = hex::decode_array::<32>(
            "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a",
        )
        .unwrap();
        let bob_priv = hex::decode_array::<32>(
            "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb",
        )
        .unwrap();
        let alice_pub = public_key(&alice_priv);
        let bob_pub = public_key(&bob_priv);
        assert_eq!(
            hex::encode(&alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex::encode(&bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let shared1 = shared_secret(&alice_priv, &bob_pub);
        let shared2 = shared_secret(&bob_priv, &alice_pub);
        assert_eq!(shared1, shared2);
        assert_eq!(
            hex::encode(&shared1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn dh_agreement_random_keys() {
        for seed in 0u8..8 {
            let a = [seed; 32];
            let b = [seed ^ 0xff; 32];
            let pa = public_key(&a);
            let pb = public_key(&b);
            assert_eq!(shared_secret(&a, &pb), shared_secret(&b, &pa));
        }
    }

    #[test]
    fn clamping_is_idempotent() {
        let k = [0xffu8; 32];
        assert_eq!(clamp(clamp(k)), clamp(k));
    }
}
