//! Base64 (RFC 4648): standard and URL-safe alphabets, with and without
//! padding. JWTs use the unpadded URL-safe variant.

const STD: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
const URL: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// Which alphabet / padding convention to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Standard alphabet with `=` padding.
    Standard,
    /// URL-safe alphabet, no padding (the JOSE convention).
    UrlSafeNoPad,
}

fn alphabet(v: Variant) -> &'static [u8; 64] {
    match v {
        Variant::Standard => STD,
        Variant::UrlSafeNoPad => URL,
    }
}

/// Encode `data` under the given variant.
pub fn encode(data: &[u8], variant: Variant) -> String {
    let table = alphabet(variant);
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(table[(triple >> 18) as usize & 0x3f] as char);
        out.push(table[(triple >> 12) as usize & 0x3f] as char);
        if chunk.len() > 1 {
            out.push(table[(triple >> 6) as usize & 0x3f] as char);
        } else if variant == Variant::Standard {
            out.push('=');
        }
        if chunk.len() > 2 {
            out.push(table[triple as usize & 0x3f] as char);
        } else if variant == Variant::Standard {
            out.push('=');
        }
    }
    out
}

/// Encode with the unpadded URL-safe alphabet (JOSE `base64url`).
pub fn encode_url(data: &[u8]) -> String {
    encode(data, Variant::UrlSafeNoPad)
}

/// Decode `s` under the given variant.
pub fn decode(s: &str, variant: Variant) -> Result<Vec<u8>, Base64Error> {
    let table = alphabet(variant);
    let mut rev = [255u8; 256];
    for (i, &c) in table.iter().enumerate() {
        rev[c as usize] = i as u8;
    }
    let stripped: &str = match variant {
        Variant::Standard => s.trim_end_matches('='),
        Variant::UrlSafeNoPad => {
            if s.contains('=') {
                return Err(Base64Error::UnexpectedPadding);
            }
            s
        }
    };
    let bytes = stripped.as_bytes();
    if bytes.len() % 4 == 1 {
        return Err(Base64Error::InvalidLength(s.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() * 3 / 4);
    let mut acc: u32 = 0;
    let mut bits = 0u32;
    for &c in bytes {
        let v = rev[c as usize];
        if v == 255 {
            return Err(Base64Error::InvalidChar(c as char));
        }
        acc = (acc << 6) | v as u32;
        bits += 6;
        if bits >= 8 {
            bits -= 8;
            out.push((acc >> bits) as u8);
        }
    }
    // Any leftover bits must be zero (canonical encoding check).
    if bits > 0 && (acc & ((1 << bits) - 1)) != 0 {
        return Err(Base64Error::NonCanonical);
    }
    Ok(out)
}

/// Decode unpadded URL-safe base64 (JOSE `base64url`).
pub fn decode_url(s: &str) -> Result<Vec<u8>, Base64Error> {
    decode(s, Variant::UrlSafeNoPad)
}

/// Errors from base64 decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base64Error {
    /// A character outside the alphabet was found.
    InvalidChar(char),
    /// Input length is impossible for base64.
    InvalidLength(usize),
    /// Padding found where the variant forbids it.
    UnexpectedPadding,
    /// Trailing bits were not zero.
    NonCanonical,
}

impl std::fmt::Display for Base64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Base64Error::InvalidChar(c) => write!(f, "invalid base64 character {c:?}"),
            Base64Error::InvalidLength(n) => write!(f, "invalid base64 length {n}"),
            Base64Error::UnexpectedPadding => write!(f, "unexpected '=' padding"),
            Base64Error::NonCanonical => write!(f, "non-canonical base64 trailing bits"),
        }
    }
}

impl std::error::Error for Base64Error {}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4648 §10 test vectors.
    #[test]
    fn rfc4648_standard() {
        let cases: [(&[u8], &str); 7] = [
            (b"", ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ];
        for (input, expect) in cases {
            assert_eq!(encode(input, Variant::Standard), expect);
            assert_eq!(decode(expect, Variant::Standard).unwrap(), input);
        }
    }

    #[test]
    fn url_safe_no_pad() {
        let data = [0xfb, 0xff, 0xfe];
        let s = encode_url(&data);
        assert_eq!(s, "-__-");
        assert_eq!(decode_url(&s).unwrap(), data);
        // Standard encoding of the same bytes differs.
        assert_eq!(encode(&data, Variant::Standard), "+//+");
    }

    #[test]
    fn rejects_padding_in_url_variant() {
        assert_eq!(decode_url("Zg=="), Err(Base64Error::UnexpectedPadding));
    }

    #[test]
    fn rejects_bad_chars_and_lengths() {
        assert_eq!(decode_url("a"), Err(Base64Error::InvalidLength(1)));
        assert!(matches!(
            decode_url("ab!c"),
            Err(Base64Error::InvalidChar('!'))
        ));
    }

    #[test]
    fn rejects_non_canonical() {
        // "Zh" decodes to one byte with nonzero trailing bits.
        assert_eq!(decode_url("Zh"), Err(Base64Error::NonCanonical));
        assert!(decode_url("Zg").is_ok());
    }

    #[test]
    fn roundtrip_all_lengths() {
        for n in 0..64usize {
            let data: Vec<u8> = (0..n as u8).collect();
            for v in [Variant::Standard, Variant::UrlSafeNoPad] {
                let enc = encode(&data, v);
                assert_eq!(decode(&enc, v).unwrap(), data, "len {n} variant {v:?}");
            }
        }
    }
}
