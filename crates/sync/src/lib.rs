//! Concurrency primitives shared by the sharded identity/session hot
//! path.
//!
//! Three building blocks, all safe code:
//!
//! * [`Snapshot`] — an arc-swap-style cell holding an `Arc<T>`. Readers
//!   clone the `Arc` under a briefly-held lock and then work lock-free
//!   on the immutable snapshot; writers install a whole new snapshot.
//!   Used for JWKS and signing-key state that changes only on key
//!   rotation but is read on every token validation.
//! * [`ShardMap`] — a fixed power-of-two array of `RwLock<HashMap>`
//!   shards routed by key hash, so concurrent login storms touching
//!   different subjects take different locks.
//! * [`hash_key`] / [`shard_index`] — the FNV-1a routing hash and mask.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::Arc;

/// FNV-1a over the key bytes: stable across runs (unlike `RandomState`)
/// so shard routing — and therefore per-shard counters — is
/// deterministic for a given input set.
pub fn hash_key(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Final avalanche so keys with common prefixes spread.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

/// Map a key hash onto one of `shards` slots (`shards` must be a power
/// of two).
pub fn shard_index(hash: u64, shards: usize) -> usize {
    debug_assert!(shards.is_power_of_two());
    (hash as usize) & (shards - 1)
}

/// Round a requested shard count to the nearest usable power of two,
/// clamped to `[1, 1024]`.
pub fn clamp_shards(requested: usize) -> usize {
    requested.clamp(1, 1024).next_power_of_two()
}

/// An arc-swap-style snapshot cell: read-mostly state published as an
/// immutable `Arc<T>`.
///
/// `load` takes a read lock only long enough to clone the `Arc` — no
/// lock is held while the caller uses the snapshot, so validation-heavy
/// readers never contend with each other. `store` swaps in a whole new
/// snapshot and bumps a monotonic epoch, letting cache holders detect
/// staleness cheaply.
pub struct Snapshot<T> {
    cell: RwLock<Arc<T>>,
    epoch: std::sync::atomic::AtomicU64,
}

impl<T> Snapshot<T> {
    /// Publish an initial value (epoch 0).
    pub fn new(value: T) -> Snapshot<T> {
        Snapshot {
            cell: RwLock::new(Arc::new(value)),
            epoch: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Clone the current snapshot handle.
    pub fn load(&self) -> Arc<T> {
        self.cell.read().clone()
    }

    /// Publish a new snapshot, bumping the epoch.
    pub fn store(&self, value: T) {
        let mut cell = self.cell.write();
        *cell = Arc::new(value);
        self.epoch
            .fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// Rebuild the snapshot from the current one, bumping the epoch.
    pub fn rcu<F: FnOnce(&T) -> T>(&self, f: F) {
        let mut cell = self.cell.write();
        *cell = Arc::new(f(cell.as_ref()));
        self.epoch
            .fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// Monotonic publish count; bumps on every `store`/`rcu`.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::Acquire)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Snapshot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("value", &self.load())
            .field("epoch", &self.epoch())
            .finish()
    }
}

/// A fixed power-of-two array of `RwLock<HashMap>` shards routed by
/// string-key hash.
///
/// Point operations (`get`, `insert`, `remove`) lock exactly one shard;
/// whole-map operations (`for_each`, `retain`, `len`) visit shards one
/// at a time, never holding more than one lock — which keeps lock
/// ordering trivially deadlock-free.
pub struct ShardMap<V> {
    shards: Vec<RwLock<HashMap<String, V>>>,
}

impl<V> ShardMap<V> {
    /// Create a map with `shards` slots (rounded to a power of two).
    pub fn new(shards: usize) -> ShardMap<V> {
        let n = clamp_shards(shards);
        ShardMap {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `key` routes to.
    pub fn shard_of(&self, key: &str) -> usize {
        shard_index(hash_key(key), self.shards.len())
    }

    /// Read-lock the shard holding `key`.
    pub fn read_shard(&self, key: &str) -> RwLockReadGuard<'_, HashMap<String, V>> {
        self.shards[self.shard_of(key)].read()
    }

    /// Write-lock the shard holding `key`.
    pub fn write_shard(&self, key: &str) -> RwLockWriteGuard<'_, HashMap<String, V>> {
        self.shards[self.shard_of(key)].write()
    }

    /// Read-lock shard `idx` directly.
    pub fn read_at(&self, idx: usize) -> RwLockReadGuard<'_, HashMap<String, V>> {
        self.shards[idx].read()
    }

    /// Write-lock shard `idx` directly.
    pub fn write_at(&self, idx: usize) -> RwLockWriteGuard<'_, HashMap<String, V>> {
        self.shards[idx].write()
    }

    /// Insert, returning the previous value for `key` if any.
    pub fn insert(&self, key: String, value: V) -> Option<V> {
        self.write_shard(&key).insert(key, value)
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&self, key: &str) -> Option<V> {
        self.write_shard(key).remove(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.read_shard(key).contains_key(key)
    }

    /// Clone-out lookup (values are small on the hot path).
    pub fn get_cloned(&self, key: &str) -> Option<V>
    where
        V: Clone,
    {
        self.read_shard(key).get(key).cloned()
    }

    /// Apply `f` to the value under `key`, if present.
    pub fn with<R>(&self, key: &str, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.read_shard(key).get(key).map(f)
    }

    /// Apply `f` mutably to the value under `key`, if present.
    pub fn with_mut<R>(&self, key: &str, f: impl FnOnce(&mut V) -> R) -> Option<R> {
        self.write_shard(key).get_mut(key).map(f)
    }

    /// Total entries across all shards (locks shards one at a time).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Entries per shard, in shard order.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().len()).collect()
    }

    /// Visit every entry (read lock, one shard at a time).
    pub fn for_each(&self, mut f: impl FnMut(&str, &V)) {
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                f(k, v);
            }
        }
    }

    /// Keep only entries for which `f` returns true (write lock, one
    /// shard at a time). Returns how many entries were removed.
    pub fn retain(&self, mut f: impl FnMut(&str, &mut V) -> bool) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut guard = shard.write();
            let before = guard.len();
            guard.retain(|k, v| f(k, v));
            removed += before - guard.len();
        }
        removed
    }

    /// Remove and return every entry matching `pred` (write lock, one
    /// shard at a time).
    pub fn drain_matching(&self, mut pred: impl FnMut(&str, &V) -> bool) -> Vec<(String, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut guard = shard.write();
            let keys: Vec<String> = guard
                .iter()
                .filter(|(k, v)| pred(k, v))
                .map(|(k, _)| k.clone())
                .collect();
            for k in keys {
                if let Some(v) = guard.remove(&k) {
                    out.push((k, v));
                }
            }
        }
        out
    }

    /// Snapshot of all entries (clone; read lock one shard at a time).
    pub fn entries(&self) -> Vec<(String, V)>
    where
        V: Clone,
    {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.read().iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Remove every entry from every shard.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }
}

impl<V> std::fmt::Debug for ShardMap<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardMap")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

/// A sharded `HashSet<String>` (thin wrapper over [`ShardMap`] with unit
/// values) for revocation lists.
#[derive(Debug)]
pub struct ShardSet {
    map: ShardMap<()>,
}

impl ShardSet {
    /// Create a set with `shards` slots (rounded to a power of two).
    pub fn new(shards: usize) -> ShardSet {
        ShardSet {
            map: ShardMap::new(shards),
        }
    }

    /// Insert `key`; true if it was newly added.
    pub fn insert(&self, key: String) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// Remove `key`; true if it was present.
    pub fn remove(&self, key: &str) -> bool {
        self.map.remove(key).is_some()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All members, cloned.
    pub fn members(&self) -> Vec<String> {
        self.map.entries().into_iter().map(|(k, _)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_routing_is_stable_and_spread() {
        assert_eq!(hash_key("alice"), hash_key("alice"));
        let shards = 16;
        let mut seen = std::collections::HashSet::new();
        for i in 0..256 {
            seen.insert(shard_index(hash_key(&format!("user-{i}")), shards));
        }
        // 256 keys over 16 shards must hit far more than one shard.
        assert!(seen.len() > shards / 2, "only {} shards hit", seen.len());
    }

    #[test]
    fn clamp_shards_rounds_to_power_of_two() {
        assert_eq!(clamp_shards(0), 1);
        assert_eq!(clamp_shards(1), 1);
        assert_eq!(clamp_shards(3), 4);
        assert_eq!(clamp_shards(16), 16);
        assert_eq!(clamp_shards(1 << 20), 1024);
    }

    #[test]
    fn snapshot_load_store_epoch() {
        let snap = Snapshot::new(vec![1, 2, 3]);
        assert_eq!(snap.epoch(), 0);
        let held = snap.load();
        snap.store(vec![4]);
        assert_eq!(snap.epoch(), 1);
        // The old handle still sees its snapshot; new loads see the new.
        assert_eq!(*held, vec![1, 2, 3]);
        assert_eq!(*snap.load(), vec![4]);
        snap.rcu(|v| v.iter().map(|x| x * 10).collect());
        assert_eq!(*snap.load(), vec![40]);
        assert_eq!(snap.epoch(), 2);
    }

    #[test]
    fn shard_map_point_ops() {
        let m: ShardMap<u32> = ShardMap::new(8);
        assert_eq!(m.shard_count(), 8);
        assert!(m.insert("a".into(), 1).is_none());
        assert_eq!(m.insert("a".into(), 2), Some(1));
        assert_eq!(m.get_cloned("a"), Some(2));
        assert!(m.contains_key("a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove("a"), Some(2));
        assert!(m.is_empty());
    }

    #[test]
    fn shard_map_sweeps_cover_all_shards() {
        let m: ShardMap<u32> = ShardMap::new(8);
        for i in 0..100 {
            m.insert(format!("k{i}"), i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.shard_lens().iter().sum::<usize>(), 100);
        let removed = m.retain(|_, v| *v % 2 == 0);
        assert_eq!(removed, 50);
        let drained = m.drain_matching(|_, v| *v < 10);
        assert_eq!(drained.len(), 5); // 0,2,4,6,8
        let mut count = 0;
        m.for_each(|_, _| count += 1);
        assert_eq!(count, 45);
    }

    #[test]
    fn shard_set_basics() {
        let s = ShardSet::new(4);
        assert!(s.insert("x".into()));
        assert!(!s.insert("x".into()));
        assert!(s.contains("x"));
        assert_eq!(s.len(), 1);
        assert!(s.remove("x"));
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_inserts_land_once() {
        let m: std::sync::Arc<ShardMap<usize>> = std::sync::Arc::new(ShardMap::new(16));
        crossbeam::thread::scope(|scope| {
            for t in 0..8 {
                let m = m.clone();
                scope.spawn(move |_| {
                    for i in 0..200 {
                        m.insert(format!("t{t}-k{i}"), i);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(m.len(), 8 * 200);
    }
}
