//! Login-storm benchmark for the verification cache layer.
//!
//! The zero-trust hot path re-verifies an Ed25519 token signature and
//! re-runs the trust algorithm on every request. This bench measures the
//! amortized path — sign-time-seeded verified-token cache, PDP decision
//! memo, and cached key decompression — against the cold baseline
//! (`verification_cache(false)`), serial and over 8 workers.
//!
//! Shape to hold: the warm parallel storm clears 2× the cold parallel
//! storm at N ≥ 256 (enforced only when the host has ≥ 4 cores), and the
//! same seed yields byte-identical chrome traces serial vs parallel and
//! cache on vs off.
//!
//! `print_report()` also writes `BENCH_login_storm.json` at the repo
//! root. The `deterministic` section (sim-step percentiles, cache
//! counters from a serial run, trace-equality verdicts) is byte-stable
//! across runs and hosts; the `wall_clock` section is measured and
//! varies.

use std::path::Path;

use criterion::{BatchSize, BenchmarkId, Criterion, Throughput};
use dri_core::{InfraConfig, Infrastructure};
use dri_crypto::json::Value;
use dri_trace::chrome_trace;
use dri_workload::{build_population, run_storm, StormMode};

fn storm_users(infra: &Infrastructure, n: usize) -> Vec<(String, String)> {
    let projects = n.div_ceil(8);
    let pop = build_population(infra, projects, 7).expect("population");
    pop.projects
        .iter()
        .flat_map(|p| {
            std::iter::once((p.pi_label.clone(), p.name.clone())).chain(
                p.researcher_labels
                    .iter()
                    .map(|r| (r.clone(), p.name.clone())),
            )
        })
        .take(n)
        .collect()
}

fn storm_config(warm: bool) -> InfraConfig {
    InfraConfig::builder()
        .jupyter_capacity(4096)
        .interactive_nodes(4096)
        .edge_threshold(usize::MAX / 2)
        .verification_cache(warm)
        .build()
        .expect("bench config is valid")
}

/// One storm against a fresh infrastructure; returns
/// (flows/s, p50 µs, p99 µs, steps/flow) plus the infra for counter and
/// trace inspection.
fn storm_run(n: usize, mode: StormMode, warm: bool) -> (f64, u64, u64, usize, Infrastructure) {
    let infra = Infrastructure::new(storm_config(warm));
    let users = storm_users(&infra, n);
    let result = run_storm(&infra, &users, mode);
    assert_eq!(result.completed, n, "failures: {:?}", result.failures);
    (
        result.throughput(),
        result.latency_quantile(0.50),
        result.latency_quantile(0.99),
        result.steps_per_flow,
        infra,
    )
}

/// Best-of-`k` throughput to damp scheduler noise.
fn best_throughput(k: usize, n: usize, mode: StormMode, warm: bool) -> f64 {
    (0..k)
        .map(|_| storm_run(n, mode, warm).0)
        .fold(0.0f64, f64::max)
}

fn print_report() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== login storm: verification cache cold vs warm ==");
    println!("cold = verification_cache(false): every request pays full Ed25519");
    println!("       verification + a fresh trust-algorithm evaluation");
    println!("warm = default: sign-time-seeded token cache + PDP memo, 8 workers");
    println!("host: {cores} core(s)");
    if cores < 4 {
        println!(
            "NOTE: <4 cores — the >=2x warm-vs-cold gate needs real \
             parallelism and is reported but not enforced here"
        );
    }
    println!();
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "users", "mode", "cold f/s", "warm f/s", "warm p50µs", "warm p99µs", "speedup"
    );
    let mut speedup_256_parallel = 0.0f64;
    for n in [45usize, 128, 256] {
        for (label, mode) in [
            ("serial", StormMode::Serial),
            ("par(8)", StormMode::Parallel(8)),
        ] {
            let cold_fps = best_throughput(3, n, mode, false);
            let (_, p50, p99, _, _) = storm_run(n, mode, true);
            let warm_fps = best_throughput(3, n, mode, true);
            let speedup = warm_fps / cold_fps.max(f64::MIN_POSITIVE);
            println!(
                "{:>6} {:>8} {:>12.0} {:>12.0} {:>12} {:>12} {:>7.2}x",
                n, label, cold_fps, warm_fps, p50, p99, speedup
            );
            if n == 256 && matches!(mode, StormMode::Parallel(_)) {
                speedup_256_parallel = speedup;
                if cores >= 4 {
                    assert!(
                        speedup >= 2.0,
                        "warm parallel storm must clear 2x the cold baseline at N={n} \
                         (got {speedup:.2}x: cold {cold_fps:.0} f/s, warm {warm_fps:.0} f/s)"
                    );
                }
            }
        }
    }

    // Cache effectiveness: counters from a serial warm run are
    // deterministic (parallel runs race on first-miss, so hit/miss splits
    // there can wobble by a few).
    let (_, _, _, steps_per_flow, warm_infra) = storm_run(45, StormMode::Serial, true);
    let m = warm_infra.metrics();
    println!("\n-- cache counters, N=45 serial warm storm --");
    println!(
        "token cache: {} hits / {} misses / {} epoch busts",
        m.token_cache_hits, m.token_cache_misses, m.token_cache_epoch_busts
    );
    println!(
        "pdp memo:    {} hits / {} misses / {} epoch busts",
        m.pdp_memo_hits, m.pdp_memo_misses, m.pdp_memo_epoch_busts
    );
    assert!(
        m.token_cache_hits > 0,
        "sign-time seeding must turn storm validations into hits"
    );
    assert!(
        m.pdp_memo_hits > 0,
        "storm flows must share memoized decisions"
    );

    // Where does a warm flow spend its time?
    println!("\n-- per-stage latency attribution, N=45 warm storm --");
    println!(
        "{:>10} {:>8} {:>11} {:>11} {:>10} {:>10}",
        "stage", "spans", "p50(steps)", "p99(steps)", "p50(µs)", "p99(µs)"
    );
    for s in warm_infra.tracer.stage_summaries() {
        println!(
            "{:>10} {:>8} {:>11} {:>11} {:>10} {:>10}",
            s.stage.as_str(),
            s.steps.count,
            s.steps.p50,
            s.steps.p99,
            s.wall_us.p50,
            s.wall_us.p99
        );
    }

    // Determinism: the same seed must yield byte-identical chrome traces
    // serial vs parallel and cache on vs off (cache observations ride in
    // reserved `cache.` attrs that the exporter excludes).
    let serial_warm = chrome_trace(&warm_infra.tracer.all_spans());
    let (_, _, _, _, par_infra) = storm_run(45, StormMode::Parallel(8), true);
    let parallel_warm = chrome_trace(&par_infra.tracer.all_spans());
    let (_, _, _, _, cold_infra) = storm_run(45, StormMode::Serial, false);
    let serial_cold = chrome_trace(&cold_infra.tracer.all_spans());
    let serial_vs_parallel = serial_warm == parallel_warm;
    let warm_vs_cold = serial_warm == serial_cold;
    println!("\n-- trace determinism, N=45 --");
    println!("serial == parallel(8): {serial_vs_parallel}");
    println!("cache on == cache off: {warm_vs_cold}");
    assert!(
        serial_vs_parallel,
        "storm traces must not depend on interleaving"
    );
    assert!(
        warm_vs_cold,
        "the cache must be invisible to the trace timeline"
    );

    // Persist the report (committed at the repo root).
    let stage_steps: Vec<Value> = warm_infra
        .tracer
        .stage_summaries()
        .into_iter()
        .map(|s| {
            Value::obj([
                ("stage", Value::s(s.stage.as_str())),
                ("spans", Value::u(s.steps.count)),
                ("p50_steps", Value::u(s.steps.p50)),
                ("p99_steps", Value::u(s.steps.p99)),
            ])
        })
        .collect();
    let wall = |n: usize, mode: StormMode, warm: bool| {
        let (fps, p50, p99, _, _) = storm_run(n, mode, warm);
        Value::obj([
            ("flows_per_sec", Value::u(fps.round() as u64)),
            ("p50_us", Value::u(p50)),
            ("p99_us", Value::u(p99)),
        ])
    };
    let report = Value::obj([
        ("bench", Value::s("login_storm")),
        (
            "deterministic",
            Value::obj([
                ("flows", Value::u(45)),
                ("steps_per_flow", Value::u(steps_per_flow as u64)),
                ("stage_steps", Value::Arr(stage_steps)),
                (
                    "cache_serial_n45",
                    Value::obj([
                        ("token_hits", Value::u(m.token_cache_hits)),
                        ("token_misses", Value::u(m.token_cache_misses)),
                        ("token_epoch_busts", Value::u(m.token_cache_epoch_busts)),
                        ("pdp_memo_hits", Value::u(m.pdp_memo_hits)),
                        ("pdp_memo_misses", Value::u(m.pdp_memo_misses)),
                        ("pdp_memo_epoch_busts", Value::u(m.pdp_memo_epoch_busts)),
                    ]),
                ),
                (
                    "trace_identical_serial_vs_parallel",
                    Value::Bool(serial_vs_parallel),
                ),
                ("trace_identical_cache_on_vs_off", Value::Bool(warm_vs_cold)),
            ]),
        ),
        (
            "wall_clock",
            Value::obj([
                ("cores", Value::u(cores as u64)),
                ("cold_serial_n256", wall(256, StormMode::Serial, false)),
                (
                    "cold_parallel8_n256",
                    wall(256, StormMode::Parallel(8), false),
                ),
                ("warm_serial_n256", wall(256, StormMode::Serial, true)),
                (
                    "warm_parallel8_n256",
                    wall(256, StormMode::Parallel(8), true),
                ),
                (
                    "warm_over_cold_parallel_n256",
                    Value::s(format!("{speedup_256_parallel:.2}")),
                ),
                ("gate_enforced", Value::Bool(cores >= 4)),
            ]),
        ),
    ]);
    // `BENCH_LOGIN_STORM_JSON=0` runs the gates without refreshing the
    // committed report (used by scripts/check.sh to keep the tree clean).
    if std::env::var("BENCH_LOGIN_STORM_JSON").as_deref() != Ok("0") {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_login_storm.json");
        let mut body = report.to_json();
        body.push('\n');
        std::fs::write(&path, body).expect("write BENCH_login_storm.json");
        println!("\nwrote {}", path.display());
    }
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("login_storm");
    group.sample_size(10);
    for n in [45usize, 128] {
        group.throughput(Throughput::Elements(n as u64));
        for (label, warm) in [("cold", false), ("warm", true)] {
            group.bench_with_input(
                BenchmarkId::new(&format!("{label}_parallel"), n),
                &n,
                |b, &n| {
                    b.iter_batched(
                        || {
                            let infra = Infrastructure::new(storm_config(warm));
                            let users = storm_users(&infra, n);
                            (infra, users)
                        },
                        |(infra, users)| {
                            let r = run_storm(&infra, &users, StormMode::Parallel(8));
                            assert_eq!(r.completed, n);
                        },
                        BatchSize::PerIteration,
                    )
                },
            );
            group.bench_with_input(
                BenchmarkId::new(&format!("{label}_serial"), n),
                &n,
                |b, &n| {
                    b.iter_batched(
                        || {
                            let infra = Infrastructure::new(storm_config(warm));
                            let users = storm_users(&infra, n);
                            (infra, users)
                        },
                        |(infra, users)| {
                            let r = run_storm(&infra, &users, StormMode::Serial);
                            assert_eq!(r.completed, n);
                        },
                        BatchSize::PerIteration,
                    )
                },
            );
        }
    }
    group.finish();
}

fn main() {
    print_report();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
