//! E11 — kill-switch reaction: time from activation to all footholds
//! severed, per switch class (user, bastion, tailnet, tunnels).

use criterion::{BatchSize, Criterion};
use dri_core::{InfraConfig, Infrastructure};

/// An infrastructure with one user holding every kind of live access.
fn victim() -> (Infrastructure, String) {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 100.0).unwrap();
    let ssh = infra.story4_ssh_connect("alice", "p").unwrap();
    infra.story6_jupyter("alice", "p", "198.51.100.10").unwrap();
    infra
        .scheduler
        .submit(&ssh.shell.account, "p", "gh", 2, 3600)
        .unwrap();
    infra.scheduler.tick();
    let subject = infra.subject_of("alice").unwrap();
    (infra, subject)
}

fn print_report() {
    println!("== E11: kill-switch coverage ==");
    let (infra, subject) = victim();
    println!(
        "before: bastion={} shells={} notebooks={} running-jobs={}",
        infra.bastion.session_count(),
        infra.login_node.session_count(),
        infra.jupyter.session_count(),
        infra.scheduler.queue_depth().1,
    );
    let report = infra.kill_user(&subject);
    println!(
        "kill_user severed: bastion={} shells={} notebooks={} jobs={} (same simulated instant)",
        report.bastion_sessions_cut, report.shells_cut, report.notebooks_cut, report.jobs_cancelled
    );
    println!(
        "after: bastion={} shells={} notebooks={} running-jobs={}",
        infra.bastion.session_count(),
        infra.login_node.session_count(),
        infra.jupyter.session_count(),
        infra.scheduler.queue_depth().1,
    );
}

fn benches(c: &mut Criterion) {
    c.bench_function("e11/kill_user_with_footholds", |b| {
        b.iter_batched(
            victim,
            |(infra, subject)| infra.kill_user(&subject),
            BatchSize::PerIteration,
        )
    });
    c.bench_function("e11/bastion_global_kill", |b| {
        b.iter_batched(
            || victim().0,
            |infra| infra.kill_bastion(),
            BatchSize::PerIteration,
        )
    });
    c.bench_function("e11/tunnel_kill", |b| {
        b.iter_batched(
            || victim().0,
            |infra| infra.kill_tunnels(),
            BatchSize::PerIteration,
        )
    });
}

fn main() {
    print_report();
    let mut c = Criterion::default().configure_from_args().sample_size(10);
    benches(&mut c);
    c.final_summary();
}
