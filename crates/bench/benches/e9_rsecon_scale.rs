//! E9 — the RSECon24 scale claim: 45 concurrent trainees, then a sweep.
//!
//! Paper: "45 trainees logging in and running notebooks simultaneously"
//! with positive feedback on the cloud-like flow. We reproduce the run
//! at N=45 (serial + parallel), sweep N, and report throughput + tail
//! latency. Shape to hold: zero authorisation failures at 45, sub-linear
//! tail growth with N.

use criterion::{BatchSize, BenchmarkId, Criterion, Throughput};
use dri_core::{InfraConfig, Infrastructure};
use dri_workload::{build_population, run_storm, StormMode};

fn storm_users(infra: &Infrastructure, n: usize) -> Vec<(String, String)> {
    let projects = n.div_ceil(8);
    let pop = build_population(infra, projects, 7).expect("population");
    pop.projects
        .iter()
        .flat_map(|p| {
            std::iter::once((p.pi_label.clone(), p.name.clone())).chain(
                p.researcher_labels.iter().map(|r| (r.clone(), p.name.clone())),
            )
        })
        .take(n)
        .collect()
}

fn big_config() -> InfraConfig {
    let mut cfg = InfraConfig::default();
    cfg.jupyter_capacity = 4096;
    cfg.interactive_nodes = 4096;
    cfg.edge_threshold = usize::MAX / 2;
    cfg
}

fn print_report() {
    println!("== E9: RSECon24 storm (45 concurrent) + sweep ==");
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>10} {:>12}",
        "users", "ok", "steps", "p50(µs)", "p99(µs)", "flows/s"
    );
    for n in [8usize, 16, 32, 45, 64, 128, 256, 512] {
        let infra = Infrastructure::new(big_config());
        let users = storm_users(&infra, n);
        let result = run_storm(&infra, &users, StormMode::Parallel(8));
        println!(
            "{:>6} {:>6} {:>10} {:>10} {:>10} {:>12.0}",
            n,
            result.completed,
            result.steps_per_flow,
            result.latency_quantile(0.50),
            result.latency_quantile(0.99),
            result.throughput()
        );
        assert_eq!(result.completed, n, "failures: {:?}", result.failures);
    }
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9");
    group.sample_size(10);
    for n in [45usize, 128] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("storm_parallel", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let infra = Infrastructure::new(big_config());
                    let users = storm_users(&infra, n);
                    (infra, users)
                },
                |(infra, users)| {
                    let r = run_storm(&infra, &users, StormMode::Parallel(8));
                    assert_eq!(r.completed, n);
                },
                BatchSize::PerIteration,
            )
        });
        group.bench_with_input(BenchmarkId::new("storm_serial", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let infra = Infrastructure::new(big_config());
                    let users = storm_users(&infra, n);
                    (infra, users)
                },
                |(infra, users)| {
                    let r = run_storm(&infra, &users, StormMode::Serial);
                    assert_eq!(r.completed, n);
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn main() {
    print_report();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
