//! E9 — the RSECon24 scale claim: 45 concurrent trainees, then a sweep.
//!
//! Paper: "45 trainees logging in and running notebooks simultaneously"
//! with positive feedback on the cloud-like flow. We reproduce the run
//! at N=45 (serial + parallel), sweep N, and report throughput + tail
//! latency. Shape to hold: zero authorisation failures at 45, sub-linear
//! tail growth with N.
//!
//! The sweep also compares the sharded identity hot path against the
//! coarse-lock baseline (`broker_shards(1)` reinstates the old
//! one-`RwLock` broker, which held the lock across JWT signing): both
//! throughputs are printed, and at N ≥ 256 the sharded broker must
//! clear 2× the coarse baseline (enforced when the host has enough
//! cores for thread parallelism to exist at all).

use criterion::{BatchSize, BenchmarkId, Criterion, Throughput};
use dri_core::{InfraConfig, Infrastructure};
use dri_workload::{build_population, run_storm, StormMode};

fn storm_users(infra: &Infrastructure, n: usize) -> Vec<(String, String)> {
    let projects = n.div_ceil(8);
    let pop = build_population(infra, projects, 7).expect("population");
    pop.projects
        .iter()
        .flat_map(|p| {
            std::iter::once((p.pi_label.clone(), p.name.clone())).chain(
                p.researcher_labels
                    .iter()
                    .map(|r| (r.clone(), p.name.clone())),
            )
        })
        .take(n)
        .collect()
}

fn big_config(broker_shards: usize) -> InfraConfig {
    InfraConfig::builder()
        .jupyter_capacity(4096)
        .interactive_nodes(4096)
        .edge_threshold(usize::MAX / 2)
        .broker_shards(broker_shards)
        .build()
        .expect("bench config is valid")
}

/// One storm at `n` users over `workers` threads against a fresh
/// infrastructure with `shards` broker shards; returns (flows/s, p50,
/// p99, steps).
fn storm_run(n: usize, workers: usize, shards: usize) -> (f64, u64, u64, usize) {
    let infra = Infrastructure::new(big_config(shards));
    let users = storm_users(&infra, n);
    let result = run_storm(&infra, &users, StormMode::Parallel(workers));
    assert_eq!(result.completed, n, "failures: {:?}", result.failures);
    (
        result.throughput(),
        result.latency_quantile(0.50),
        result.latency_quantile(0.99),
        result.steps_per_flow,
    )
}

fn print_report() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== E9: RSECon24 storm (45 concurrent) + sweep ==");
    println!("coarse = broker_shards(1) (single RwLock held across signing)");
    println!("sharded = broker_shards(16), 8 workers either way, {cores} core(s)");
    if cores < 4 {
        println!(
            "NOTE: <4 cores — the >=2x sharded-vs-coarse gate needs real \
             parallelism and is reported but not enforced here"
        );
    }
    println!();
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>12} {:>13} {:>8}",
        "users", "steps", "p50(µs)", "p99(µs)", "coarse f/s", "sharded f/s", "speedup"
    );
    for n in [8usize, 16, 32, 45, 64, 128, 256, 512] {
        let (coarse_fps, _, _, _) = storm_run(n, 8, 1);
        let (sharded_fps, p50, p99, steps) = storm_run(n, 8, 16);
        let speedup = sharded_fps / coarse_fps.max(f64::MIN_POSITIVE);
        println!(
            "{:>6} {:>6} {:>10} {:>10} {:>12.0} {:>13.0} {:>7.2}x",
            n, steps, p50, p99, coarse_fps, sharded_fps, speedup
        );
        if n >= 256 && cores >= 4 {
            assert!(
                speedup >= 2.0,
                "sharded broker must clear 2x the coarse baseline at N={n} \
                 (got {speedup:.2}x: coarse {coarse_fps:.0} f/s, sharded {sharded_fps:.0} f/s)"
            );
        }
    }

    println!("\n-- worker-count sweep, N=256, sharded broker --");
    println!(
        "{:>8} {:>12} {:>10} {:>10}",
        "workers", "flows/s", "p50(µs)", "p99(µs)"
    );
    for workers in [1usize, 2, 4, 8, 16] {
        let (fps, p50, p99, _) = storm_run(256, workers, 16);
        println!("{workers:>8} {fps:>12.0} {p50:>10} {p99:>10}");
    }
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9");
    group.sample_size(10);
    for n in [45usize, 128] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("storm_parallel", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let infra = Infrastructure::new(big_config(16));
                    let users = storm_users(&infra, n);
                    (infra, users)
                },
                |(infra, users)| {
                    let r = run_storm(&infra, &users, StormMode::Parallel(8));
                    assert_eq!(r.completed, n);
                },
                BatchSize::PerIteration,
            )
        });
        group.bench_with_input(BenchmarkId::new("storm_coarse", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let infra = Infrastructure::new(big_config(1));
                    let users = storm_users(&infra, n);
                    (infra, users)
                },
                |(infra, users)| {
                    let r = run_storm(&infra, &users, StormMode::Parallel(8));
                    assert_eq!(r.completed, n);
                },
                BatchSize::PerIteration,
            )
        });
        group.bench_with_input(BenchmarkId::new("storm_serial", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let infra = Infrastructure::new(big_config(16));
                    let users = storm_users(&infra, n);
                    (infra, users)
                },
                |(infra, users)| {
                    let r = run_storm(&infra, &users, StormMode::Serial);
                    assert_eq!(r.completed, n);
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn main() {
    print_report();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
