//! E9 — the RSECon24 scale claim: 45 concurrent trainees, then a sweep.
//!
//! Paper: "45 trainees logging in and running notebooks simultaneously"
//! with positive feedback on the cloud-like flow. We reproduce the run
//! at N=45 (serial + parallel), sweep N, and report throughput + tail
//! latency. Shape to hold: zero authorisation failures at 45, sub-linear
//! tail growth with N.
//!
//! The sweep also compares the sharded identity hot path against the
//! coarse-lock baseline (`broker_shards(1)` reinstates the old
//! one-`RwLock` broker, which held the lock across JWT signing): both
//! throughputs are printed, and at N ≥ 256 the sharded broker must
//! clear 2× the coarse baseline (enforced when the host has enough
//! cores for thread parallelism to exist at all).

use criterion::{BatchSize, BenchmarkId, Criterion, Throughput};
use dri_core::{InfraConfig, Infrastructure};
use dri_workload::{build_population, run_storm, StormMode};

fn storm_users(infra: &Infrastructure, n: usize) -> Vec<(String, String)> {
    let projects = n.div_ceil(8);
    let pop = build_population(infra, projects, 7).expect("population");
    pop.projects
        .iter()
        .flat_map(|p| {
            std::iter::once((p.pi_label.clone(), p.name.clone())).chain(
                p.researcher_labels
                    .iter()
                    .map(|r| (r.clone(), p.name.clone())),
            )
        })
        .take(n)
        .collect()
}

fn big_config(broker_shards: usize) -> InfraConfig {
    InfraConfig::builder()
        .jupyter_capacity(4096)
        .interactive_nodes(4096)
        .edge_threshold(usize::MAX / 2)
        .broker_shards(broker_shards)
        .build()
        .expect("bench config is valid")
}

/// One parallel storm with flow tracing toggled; returns flows/s.
fn storm_throughput(n: usize, workers: usize, tracing: bool) -> f64 {
    let config = InfraConfig::builder()
        .jupyter_capacity(4096)
        .interactive_nodes(4096)
        .edge_threshold(usize::MAX / 2)
        .tracing(tracing)
        .build()
        .expect("bench config is valid");
    let infra = Infrastructure::new(config);
    let users = storm_users(&infra, n);
    let result = run_storm(&infra, &users, StormMode::Parallel(workers));
    assert_eq!(result.completed, n, "failures: {:?}", result.failures);
    result.throughput()
}

/// One storm at `n` users over `workers` threads against a fresh
/// infrastructure with `shards` broker shards; returns (flows/s, p50,
/// p99, steps).
fn storm_run(n: usize, workers: usize, shards: usize) -> (f64, u64, u64, usize) {
    let infra = Infrastructure::new(big_config(shards));
    let users = storm_users(&infra, n);
    let result = run_storm(&infra, &users, StormMode::Parallel(workers));
    assert_eq!(result.completed, n, "failures: {:?}", result.failures);
    (
        result.throughput(),
        result.latency_quantile(0.50),
        result.latency_quantile(0.99),
        result.steps_per_flow,
    )
}

fn print_report() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== E9: RSECon24 storm (45 concurrent) + sweep ==");
    println!("coarse = broker_shards(1) (single RwLock held across signing)");
    println!("sharded = broker_shards(16), 8 workers either way, {cores} core(s)");
    if cores < 4 {
        println!(
            "NOTE: <4 cores — the >=2x sharded-vs-coarse gate needs real \
             parallelism and is reported but not enforced here"
        );
    }
    println!();
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>12} {:>13} {:>8}",
        "users", "steps", "p50(µs)", "p99(µs)", "coarse f/s", "sharded f/s", "speedup"
    );
    for n in [8usize, 16, 32, 45, 64, 128, 256, 512] {
        let (coarse_fps, _, _, _) = storm_run(n, 8, 1);
        let (sharded_fps, p50, p99, steps) = storm_run(n, 8, 16);
        let speedup = sharded_fps / coarse_fps.max(f64::MIN_POSITIVE);
        println!(
            "{:>6} {:>6} {:>10} {:>10} {:>12.0} {:>13.0} {:>7.2}x",
            n, steps, p50, p99, coarse_fps, sharded_fps, speedup
        );
        if n >= 256 && cores >= 4 {
            assert!(
                speedup >= 2.0,
                "sharded broker must clear 2x the coarse baseline at N={n} \
                 (got {speedup:.2}x: coarse {coarse_fps:.0} f/s, sharded {sharded_fps:.0} f/s)"
            );
        }
    }

    println!("\n-- worker-count sweep, N=256, sharded broker --");
    println!(
        "{:>8} {:>12} {:>10} {:>10}",
        "workers", "flows/s", "p50(µs)", "p99(µs)"
    );
    for workers in [1usize, 2, 4, 8, 16] {
        let (fps, p50, p99, _) = storm_run(256, workers, 16);
        println!("{workers:>8} {fps:>12.0} {p50:>10} {p99:>10}");
    }

    // Where does a flow spend its time? The tracer's per-stage log2
    // histograms answer in both deterministic sim steps and wall-clock.
    println!("\n-- per-stage latency attribution, N=45 storm, tracing on --");
    let infra = Infrastructure::new(big_config(16));
    let users = storm_users(&infra, 45);
    let r = run_storm(&infra, &users, StormMode::Parallel(8));
    assert_eq!(r.completed, 45, "failures: {:?}", r.failures);
    println!(
        "{:>10} {:>8} {:>11} {:>11} {:>10} {:>10}",
        "stage", "spans", "p50(steps)", "p99(steps)", "p50(µs)", "p99(µs)"
    );
    for s in infra.tracer.stage_summaries() {
        println!(
            "{:>10} {:>8} {:>11} {:>11} {:>10} {:>10}",
            s.stage.as_str(),
            s.steps.count,
            s.steps.p50,
            s.steps.p99,
            s.wall_us.p50,
            s.wall_us.p99
        );
    }

    // Tracing must be cheap enough to leave on: at N=256 the traced
    // storm must hold >= 90% of the untraced throughput (best of 3 to
    // damp scheduler noise; enforced only with real parallelism).
    println!("\n-- tracing overhead guard, N=256, best of 3 --");
    let best_of_3 = |tracing: bool| {
        (0..3)
            .map(|_| storm_throughput(256, 8, tracing))
            .fold(0.0f64, f64::max)
    };
    let off = best_of_3(false);
    let on = best_of_3(true);
    let ratio = on / off.max(f64::MIN_POSITIVE);
    println!(
        "tracing off {off:.0} f/s, on {on:.0} f/s ({:.1}% overhead)",
        (1.0 - ratio) * 100.0
    );
    if cores >= 4 {
        assert!(
            ratio >= 0.90,
            "tracing overhead exceeds the 10% budget at N=256 \
             (on {on:.0} f/s vs off {off:.0} f/s)"
        );
    } else {
        println!("NOTE: <4 cores — overhead budget reported but not enforced");
    }
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9");
    group.sample_size(10);
    for n in [45usize, 128] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("storm_parallel", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let infra = Infrastructure::new(big_config(16));
                    let users = storm_users(&infra, n);
                    (infra, users)
                },
                |(infra, users)| {
                    let r = run_storm(&infra, &users, StormMode::Parallel(8));
                    assert_eq!(r.completed, n);
                },
                BatchSize::PerIteration,
            )
        });
        group.bench_with_input(BenchmarkId::new("storm_coarse", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let infra = Infrastructure::new(big_config(1));
                    let users = storm_users(&infra, n);
                    (infra, users)
                },
                |(infra, users)| {
                    let r = run_storm(&infra, &users, StormMode::Parallel(8));
                    assert_eq!(r.completed, n);
                },
                BatchSize::PerIteration,
            )
        });
        group.bench_with_input(BenchmarkId::new("storm_serial", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let infra = Infrastructure::new(big_config(16));
                    let users = storm_users(&infra, n);
                    (infra, users)
                },
                |(infra, users)| {
                    let r = run_storm(&infra, &users, StormMode::Serial);
                    assert_eq!(r.completed, n);
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn main() {
    print_report();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
