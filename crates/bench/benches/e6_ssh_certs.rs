//! E6 — user story 4: SSH certificate issuance and the full connect path.

use criterion::{black_box, Criterion};
use dri_core::{InfraConfig, Infrastructure};

fn print_report() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 1.0).expect("onboard");
    let outcome = infra.story4_ssh_connect("alice", "p").expect("ssh");
    println!("== E6: SSH story (user story 4) ==");
    println!("protocol steps per connect:");
    for s in &outcome.trace {
        println!("  - {s}");
    }
    println!(
        "cert ttl {}s; principal {}; bastion instance {} of {}",
        infra.config.cert_ttl_secs,
        outcome.shell.account,
        outcome.relay.instance,
        infra.config.bastion_instances
    );
}

fn benches(c: &mut Criterion) {
    // The full story (device flow + CA + bastion + login node).
    c.bench_function("e6/story4_full_connect", |b| {
        let infra = Infrastructure::new(InfraConfig::default());
        infra.create_federated_user("alice", "pw");
        infra.story1_onboard_pi("p", "alice", 1.0).unwrap();
        b.iter(|| infra.story4_ssh_connect("alice", "p").unwrap())
    });

    // CA signing alone.
    c.bench_function("e6/ca_sign_request", |b| {
        let infra = Infrastructure::new(InfraConfig::default());
        infra.create_federated_user("alice", "pw");
        infra.story1_onboard_pi("p", "alice", 1.0).unwrap();
        let (token, _) = infra.token_for("alice", "ssh-ca", vec![]).unwrap();
        b.iter(|| {
            infra
                .ssh_ca
                .sign_request(black_box(&token), [5u8; 32])
                .unwrap()
        })
    });

    // Login-node verification alone (cert + possession proof).
    c.bench_function("e6/login_node_open_session", |b| {
        let infra = Infrastructure::new(InfraConfig::default());
        infra.create_federated_user("alice", "pw");
        infra.story1_onboard_pi("p", "alice", 1.0).unwrap();
        infra.story4_ssh_connect("alice", "p").unwrap();
        let users = infra.users.read();
        let client = users.get("alice").unwrap().ssh.as_ref().unwrap();
        let cert = client.certificate.clone().unwrap();
        let account = cert.principals[0].clone();
        drop(users);
        b.iter(|| {
            let users = infra.users.read();
            let client = users.get("alice").unwrap().ssh.as_ref().unwrap();
            infra
                .login_node
                .open_session(&cert, &account, |ch| client.sign_auth_challenge(ch))
                .unwrap()
        })
    });
}

fn main() {
    print_report();
    let mut c = Criterion::default().configure_from_args().sample_size(20);
    benches(&mut c);
    c.final_summary();
}
