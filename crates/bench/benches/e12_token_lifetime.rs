//! E12 — the short-lived-credential trade-off behind design principle 1.
//!
//! Sweeps token/certificate lifetimes: re-authentication burden falls as
//! TTL grows while stolen-credential exposure grows linearly. The
//! combined-cost knee lands in the minutes-to-hours region the paper
//! chose. Also measures the *system* consequence: how many broker tokens
//! a working day costs at each TTL.

use criterion::{black_box, Criterion};
use dri_core::{InfraConfig, Infrastructure};
use dri_workload::{best_lifetime, sweep_lifetimes};

const WORK_DAY_SECS: u64 = 8 * 3600;

fn print_report() {
    println!("== E12: credential lifetime sweep ==");
    let ttls: Vec<u64> = vec![
        60,
        300,
        900,
        3600,
        4 * 3600,
        8 * 3600,
        24 * 3600,
        7 * 24 * 3600,
        30 * 24 * 3600,
    ];
    let points = sweep_lifetimes(&ttls, WORK_DAY_SECS, 2.0);
    println!(
        "{:>12} {:>12} {:>16} {:>16} {:>12}",
        "ttl", "reauths/day", "mean-expo(h)", "worst-expo(h)", "cost"
    );
    for p in &points {
        println!(
            "{:>12} {:>12} {:>16.2} {:>16.2} {:>12.1}",
            format_ttl(p.ttl_secs),
            p.reauths_per_day,
            p.mean_exposure_secs / 3600.0,
            p.worst_exposure_secs as f64 / 3600.0,
            p.combined_cost
        );
    }
    let best = best_lifetime(&points).unwrap();
    println!(
        "\nknee of the curve: {} — within the minutes-to-hours band the paper deploys",
        format_ttl(best.ttl_secs)
    );

    // System consequence: tokens minted per user-day at two TTLs.
    for ttl in [900u64, 8 * 3600] {
        let cfg = InfraConfig {
            ssh_token_ttl_secs: ttl,
            cert_ttl_secs: ttl.max(3600),
            ..InfraConfig::default()
        };
        let infra = Infrastructure::new(cfg);
        infra.create_federated_user("alice", "pw");
        infra.story1_onboard_pi("p", "alice", 100.0).unwrap();
        let reauths = WORK_DAY_SECS.div_ceil(ttl).min(16); // cap the demo
        for _ in 0..reauths {
            let _ = infra.token_for("alice", "ssh-ca", vec![]);
            infra.clock.advance_secs(ttl.min(3600));
        }
        println!(
            "ttl {:>8}: {} broker tokens for one simulated user-day",
            format_ttl(ttl),
            infra.broker.tokens_issued()
        );
    }
}

fn format_ttl(secs: u64) -> String {
    if secs.is_multiple_of(24 * 3600) && secs >= 24 * 3600 {
        format!("{}d", secs / (24 * 3600))
    } else if secs.is_multiple_of(3600) && secs >= 3600 {
        format!("{}h", secs / 3600)
    } else if secs.is_multiple_of(60) {
        format!("{}m", secs / 60)
    } else {
        format!("{secs}s")
    }
}

fn benches(c: &mut Criterion) {
    let ttls: Vec<u64> = (1..=96).map(|i| i as u64 * 900).collect();
    c.bench_function("e12/sweep_96_lifetimes", |b| {
        b.iter(|| black_box(sweep_lifetimes(&ttls, WORK_DAY_SECS, 2.0)))
    });
    c.bench_function("e12/token_issue_and_validate", |b| {
        let infra = Infrastructure::new(InfraConfig::default());
        infra.create_federated_user("alice", "pw");
        infra.story1_onboard_pi("p", "alice", 100.0).unwrap();
        let jwks = infra.broker.jwks();
        b.iter(|| {
            let (token, _) = infra.token_for("alice", "ssh-ca", vec![]).unwrap();
            jwks.validate(&token, "ssh-ca", infra.clock.now_secs())
                .unwrap()
        })
    });
}

fn main() {
    print_report();
    let mut c = Criterion::default().configure_from_args().sample_size(20);
    benches(&mut c);
    c.final_summary();
}
