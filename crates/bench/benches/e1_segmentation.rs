//! E1 — Fig. 1 as a reachability matrix: prints the allowed-path table
//! the architecture diagram implies, then benchmarks policy evaluation.

use criterion::{black_box, Criterion};
use dri_core::{InfraConfig, Infrastructure};

fn print_report() {
    let infra = Infrastructure::new(InfraConfig::default());
    let matrix = infra.reachability_matrix();
    let allowed: Vec<_> = matrix.iter().filter(|(_, _, _, a)| *a).collect();
    println!("== E1: segmentation matrix (Fig. 1) ==");
    println!(
        "hosts={} pairs-with-services={} allowed={} denied={}",
        infra.network.host_ids().len(),
        matrix.len(),
        allowed.len(),
        matrix.len() - allowed.len()
    );
    println!("allowed paths:");
    for (src, dst, service, _) in &allowed {
        println!("  {src:<22} -> {dst:<18} [{service}]");
    }
}

fn benches(c: &mut Criterion) {
    let infra = Infrastructure::new(InfraConfig::default());
    c.bench_function("e1/full_matrix", |b| {
        b.iter(|| black_box(infra.reachability_matrix().len()))
    });
    c.bench_function("e1/single_check_allowed", |b| {
        b.iter(|| {
            infra
                .network
                .check("internet/user", "sws/bastion", "ssh")
                .is_ok()
        })
    });
    c.bench_function("e1/single_check_denied", |b| {
        b.iter(|| {
            infra
                .network
                .check("internet/attacker", "mdc/mgmt01", "admin-api")
                .is_err()
        })
    });
}

fn main() {
    print_report();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
