//! E2 — Fig. 2's login page, measured: discovery plus one full login per
//! identity-provider class, with the per-flow step/token accounting the
//! paper's workflow description implies.

use criterion::{BatchSize, Criterion};
use dri_core::{InfraConfig, Infrastructure};

fn print_report() {
    let infra = Infrastructure::new(InfraConfig::default());
    println!("== E2: login flows per IdP class (Fig. 2) ==");
    let discovery = infra.proxy.discovery_list();
    println!(
        "discovery list: {} R&S-compliant IdP(s): {:?}",
        discovery.len(),
        discovery
            .iter()
            .map(|d| d.display_name.as_str())
            .collect::<Vec<_>>()
    );

    // Federated (needs a grant first — authorisation-led).
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 1.0).expect("onboard");
    let tokens_before = infra.broker.tokens_issued();
    let session = infra.federated_login("alice").expect("federated");
    println!(
        "federated   : acr={:<9} loa={:?} protocol legs: idp->proxy->broker (3 signed artefacts)",
        session.acr, session.loa
    );

    // Last resort.
    infra.create_last_resort_user("vendor", "pw");
    let now = infra.clock.now_secs();
    let (_, inv) = infra
        .portal
        .create_project(
            "admin:ops",
            "vendor-project",
            dri_portal::Allocation::gpu(1.0),
            now,
            now + 100_000,
            "vendor@company",
        )
        .expect("project");
    infra
        .portal
        .accept_invitation(&inv.token, "last-resort:vendor", true)
        .expect("accept");
    let session = infra.last_resort_login("vendor").expect("last-resort");
    println!(
        "last-resort : acr={:<9} loa={:?} protocol legs: managed-idp->broker (password+totp)",
        session.acr, session.loa
    );

    // Admin.
    let admin = infra.story2_register_admin("dave").expect("admin");
    let session = infra.broker.session(&admin.session_id).expect("session");
    println!(
        "admin       : acr={:<9} loa={:?} protocol legs: hw-challenge->managed-idp->broker",
        session.acr, session.loa
    );
    println!(
        "tokens minted during report: {}",
        infra.broker.tokens_issued() - tokens_before
    );
}

fn benches(c: &mut Criterion) {
    // Federated login, re-run on a prepared infra (session per iteration).
    c.bench_function("e2/federated_login", |b| {
        let infra = Infrastructure::new(InfraConfig::default());
        infra.create_federated_user("alice", "pw");
        infra.story1_onboard_pi("p", "alice", 1.0).unwrap();
        b.iter(|| infra.federated_login("alice").unwrap())
    });

    c.bench_function("e2/last_resort_login", |b| {
        let infra = Infrastructure::new(InfraConfig::default());
        infra.create_last_resort_user("vendor", "pw");
        let now = infra.clock.now_secs();
        let (_, inv) = infra
            .portal
            .create_project(
                "admin:ops",
                "vp",
                dri_portal::Allocation::gpu(1.0),
                now,
                now + 100_000,
                "v@c",
            )
            .unwrap();
        infra
            .portal
            .accept_invitation(&inv.token, "last-resort:vendor", true)
            .unwrap();
        b.iter(|| infra.last_resort_login("vendor").unwrap())
    });

    c.bench_function("e2/admin_login_hw_ceremony", |b| {
        let infra = Infrastructure::new(InfraConfig::default());
        infra.story2_register_admin("dave").unwrap();
        b.iter(|| infra.admin_login("dave").unwrap())
    });

    c.bench_function("e2/full_onboarding_story1", |b| {
        b.iter_batched(
            || {
                let infra = Infrastructure::new(InfraConfig::default());
                infra.create_federated_user("alice", "pw");
                infra
            },
            |infra| infra.story1_onboard_pi("p", "alice", 1.0).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn main() {
    print_report();
    let mut c = Criterion::default().configure_from_args().sample_size(20);
    benches(&mut c);
    c.final_summary();
}
