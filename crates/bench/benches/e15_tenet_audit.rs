//! E15 — the seven-tenet audit: report + cost of auditing, with ablated
//! variants failing specific tenets.

use criterion::{black_box, BatchSize, Criterion};
use dri_cluster::MgmtOp;
use dri_core::{InfraConfig, Infrastructure};
use dri_policy::TenetAudit;

fn exercised(cfg: InfraConfig) -> Infrastructure {
    let infra = Infrastructure::new(cfg);
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 100.0).unwrap();
    infra.story2_register_admin("dave").unwrap();
    infra.story4_ssh_connect("alice", "p").unwrap();
    infra.story6_jupyter("alice", "p", "198.51.100.8").unwrap();
    infra.story5_privileged_op("dave", MgmtOp::Health).unwrap();
    infra.pump_network_logs();
    infra
}

fn print_report() {
    println!("== E15: NIST zero-trust tenet audit ==");
    let infra = exercised(InfraConfig::default());
    let audit = infra.tenet_audit();
    for r in &audit.results {
        println!(
            "  tenet {} {}  {}",
            r.tenet,
            if r.passed { "PASS" } else { "FAIL" },
            r.evidence
        );
    }
    let (p, t) = audit.score();
    println!("  full co-design: {p}/{t}");

    // Ablation: year-long certificates break tenet 3 and nothing else.
    let cfg = InfraConfig {
        cert_ttl_secs: 365 * 24 * 3600,
        ..InfraConfig::default()
    };
    let ablated = exercised(cfg);
    let audit2 = ablated.tenet_audit();
    println!(
        "  ablated (1-year certs): {:?} fail — long-lived credentials alone break per-session access",
        audit2.failing()
    );

    // Ablation: synthetic perimeter evidence fails everything.
    let perimeter = dri_policy::TenetEvidence {
        services_total: 6,
        services_with_policy: 1,
        channels_total: 5,
        channels_encrypted: 1,
        max_credential_ttl_secs: u64::MAX / 2,
        tokens_session_bound: false,
        pdp_signals: 1,
        pdp_consultations: 0,
        assets_inventoried: 0,
        config_checks_run: 0,
        reauth_enforced: false,
        revocation_effective: false,
        events_collected: 0,
        telemetry_sources: 0,
    };
    let audit3 = TenetAudit::run(&perimeter);
    println!(
        "  perimeter baseline: {}/{} pass",
        audit3.score().0,
        audit3.score().1
    );
}

fn benches(c: &mut Criterion) {
    c.bench_function("e15/tenet_audit_with_live_probe", |b| {
        b.iter_batched(
            || exercised(InfraConfig::default()),
            |infra| black_box(infra.tenet_audit().score()),
            BatchSize::PerIteration,
        )
    });
    c.bench_function("e15/audit_engine_only", |b| {
        let infra = exercised(InfraConfig::default());
        let ev = infra.tenet_evidence();
        b.iter(|| black_box(TenetAudit::run(&ev).score()))
    });
    c.bench_function("e15/pdp_decision", |b| {
        use dri_policy::{
            AccessRequest, DevicePosture, PolicyDecisionPoint, Sensitivity, SourceZone,
        };
        let pdp = PolicyDecisionPoint::default();
        let req = AccessRequest {
            subject: "maid-1".into(),
            loa: dri_federation::LevelOfAssurance::Medium,
            acr: "mfa-totp".into(),
            device: DevicePosture::unknown(),
            source: SourceZone::Internet,
            session_age_secs: 60,
            resource: "jupyter".into(),
            sensitivity: Sensitivity::Standard,
            has_role: true,
        };
        b.iter(|| black_box(pdp.decide(&req).allow))
    });
}

fn main() {
    print_report();
    let mut c = Criterion::default().configure_from_args().sample_size(10);
    benches(&mut c);
    c.final_summary();
}
