//! E13 — SOC tasks: detection rate + latency on injected attacks, event
//! ingestion throughput, inventory scanning, CIS assessment.

use criterion::{black_box, BatchSize, Criterion, Throughput};
use dri_core::{InfraConfig, Infrastructure};
use dri_siem::{DetectionConfig, EventKind, SecurityEvent, Severity, Siem};
use dri_workload::{run_attack, AttackScenario};

fn print_report() {
    println!("== E13: SIEM detection on injected attacks ==");
    println!(
        "{:<22} {:>9} {:>9} {:>10} {:>14}",
        "scenario", "attempted", "rejected", "detected", "latency(ms)"
    );
    let scenarios = [
        (
            "credential-stuffing",
            AttackScenario::CredentialStuffing { attempts: 8 },
        ),
        (
            "token-forgery",
            AttackScenario::TokenForgery { attempts: 6 },
        ),
        (
            "lateral-movement",
            AttackScenario::LateralMovement { probes: 6 },
        ),
    ];
    for (name, scenario) in scenarios {
        let infra = Infrastructure::new(InfraConfig::default());
        let _ = infra.network.drain_log();
        let outcome = run_attack(&infra, scenario);
        let alert = infra
            .siem
            .alerts()
            .into_iter()
            .find(|a| a.rule == outcome.expected_rule);
        let (detected, latency) = match &alert {
            Some(a) => (true, a.at_ms.saturating_sub(outcome.started_at_ms)),
            None => (false, 0),
        };
        println!(
            "{:<22} {:>9} {:>9} {:>10} {:>14}",
            name, outcome.attempted, outcome.rejected, detected, latency
        );
        assert!(detected, "{name} must be detected");
    }
    println!("\ndetection rate 3/3; every attack operation was also *rejected*");
    println!("by the control plane — detection is depth, not the only defence.");
}

fn benches(c: &mut Criterion) {
    // Ingestion throughput on a benign event stream.
    let mut group = c.benchmark_group("e13");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("ingest_1000_benign_events", |b| {
        b.iter_batched(
            || {
                let clock = dri_clock::SimClock::new();
                let siem = Siem::new(clock, DetectionConfig::default());
                let events: Vec<SecurityEvent> = (0..1000)
                    .map(|i| {
                        SecurityEvent::new(
                            i,
                            format!("host-{}", i % 20),
                            EventKind::TokenIssued,
                            format!("user-{}", i % 100),
                            "aud=x",
                            Severity::Info,
                        )
                    })
                    .collect();
                (siem, events)
            },
            |(siem, events)| black_box(siem.ingest(events).len()),
            BatchSize::PerIteration,
        )
    });
    group.finish();

    c.bench_function("e13/attack_detection_end_to_end", |b| {
        b.iter_batched(
            || {
                let infra = Infrastructure::new(InfraConfig::default());
                let _ = infra.network.drain_log();
                infra
            },
            |infra| {
                run_attack(&infra, AttackScenario::LateralMovement { probes: 6 });
                assert!(!infra.siem.alerts().is_empty());
            },
            BatchSize::PerIteration,
        )
    });

    c.bench_function("e13/inventory_scan", |b| {
        let infra = Infrastructure::new(InfraConfig::default());
        b.iter(|| black_box(infra.inventory.scan().len()))
    });

    c.bench_function("e13/cis_assessment", |b| {
        let infra = Infrastructure::new(InfraConfig::default());
        b.iter(|| black_box(infra.cis_report().score()))
    });
}

fn main() {
    print_report();
    let mut c = Criterion::default().configure_from_args().sample_size(20);
    benches(&mut c);
    c.final_summary();
}
