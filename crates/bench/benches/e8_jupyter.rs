//! E8 — user story 6: the web path (edge -> tunnel -> authenticator ->
//! spawner), plus the unauthenticated rejection fast-path.

use criterion::Criterion;
use dri_core::{InfraConfig, Infrastructure};
use dri_netsim::HttpRequest;

fn print_report() {
    let infra = Infrastructure::new(InfraConfig::default());
    infra.create_federated_user("alice", "pw");
    infra.story1_onboard_pi("p", "alice", 1.0).expect("onboard");
    let outcome = infra
        .story6_jupyter("alice", "p", "198.51.100.99")
        .expect("jupyter");
    println!("== E8: Jupyter story (user story 6) ==");
    for s in &outcome.trace {
        println!("  - {s}");
    }
    println!(
        "notebook {} runs as {} on partition interactive (job {})",
        outcome.notebook.id, outcome.notebook.unix_account, outcome.notebook.job_id
    );
}

fn benches(c: &mut Criterion) {
    c.bench_function("e8/story6_full_path", |b| {
        let cfg = InfraConfig::builder()
            .jupyter_capacity(usize::MAX / 2)
            .interactive_nodes(u32::MAX / 2)
            .edge_threshold(usize::MAX / 2)
            .build()
            .expect("bench config is valid");
        let infra = Infrastructure::new(cfg);
        infra.create_federated_user("alice", "pw");
        infra.story1_onboard_pi("p", "alice", 1.0).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            // Unique source per iter keeps the DDoS scorer out of the way.
            infra
                .story6_jupyter("alice", "p", &format!("198.51.{}.{}", i / 200, i % 200 + 1))
                .unwrap()
        })
    });

    c.bench_function("e8/unauthenticated_401", |b| {
        let cfg = InfraConfig::builder()
            .edge_threshold(usize::MAX / 2)
            .build()
            .expect("bench config is valid");
        let infra = Infrastructure::new(cfg);
        b.iter(|| {
            let r = infra
                .edge
                .handle(
                    &infra.tunnel,
                    "203.0.113.77",
                    HttpRequest {
                        path: "/jupyter".into(),
                        headers: vec![],
                        body: vec![],
                    },
                )
                .unwrap();
            assert_eq!(r.status, 401);
        })
    });

    c.bench_function("e8/token_validation_only", |b| {
        let infra = Infrastructure::new(InfraConfig::default());
        infra.create_federated_user("alice", "pw");
        infra.story1_onboard_pi("p", "alice", 1.0).unwrap();
        let (token, _) = infra.token_for("alice", "jupyter", vec![]).unwrap();
        let jwks = infra.broker.jwks();
        let now = infra.clock.now_secs();
        b.iter(|| jwks.validate(&token, "jupyter", now).unwrap())
    });
}

fn main() {
    print_report();
    let mut c = Criterion::default().configure_from_args().sample_size(20);
    benches(&mut c);
    c.final_summary();
}
