//! E14 — the crypto substrate: primitive throughput and parallel scaling.
//!
//! §V: "Encryption is applied for all IAM workflows." Every credential in
//! the co-design is really signed and verified, so primitive cost bounds
//! the control plane's capacity. Parallel scaling uses crossbeam scoped
//! threads (per the HPC-parallel guides, results are merged per-thread —
//! no shared mutable state).

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use dri_crypto::ed25519::SigningKey;
use dri_crypto::jwt::{self, Claims, Signer, Validation, Verifier};
use dri_crypto::{chacha20, hmac, sha2, x25519};

fn print_report() {
    println!("== E14: crypto substrate (all RFC-test-vector verified) ==");
    println!("primitives: SHA-256/512, HMAC, HKDF, Ed25519, X25519, ChaCha20, JWT");

    // Parallel signing scaling demo.
    let sk = SigningKey::from_seed(&[7u8; 32]);
    let msgs: Vec<Vec<u8>> = (0..512u32).map(|i| i.to_le_bytes().to_vec()).collect();
    println!("\nparallel Ed25519 signing of 512 messages:");
    println!("{:>8} {:>12} {:>10}", "threads", "wall(ms)", "speedup");
    let mut base_ms = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let start = std::time::Instant::now();
        let chunk = msgs.len().div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for part in msgs.chunks(chunk) {
                let sk = &sk;
                scope.spawn(move |_| {
                    for m in part {
                        black_box(sk.sign(m));
                    }
                });
            }
        })
        .unwrap();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if threads == 1 {
            base_ms = ms;
        }
        println!("{:>8} {:>12.1} {:>9.1}x", threads, ms, base_ms / ms);
    }
}

fn benches(c: &mut Criterion) {
    // Hashing throughput.
    let mut group = c.benchmark_group("e14/sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| black_box(sha2::sha256(d)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e14/sha512");
    for size in [64usize, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| black_box(sha2::sha512(d)))
        });
    }
    group.finish();

    c.bench_function("e14/hmac_sha256_1k", |b| {
        let data = vec![1u8; 1024];
        b.iter(|| black_box(hmac::hmac_sha256(b"key", &data)))
    });

    // Signatures.
    let sk = SigningKey::from_seed(&[1u8; 32]);
    let pk = sk.verifying_key();
    let msg = b"a short RBAC token body for signing benchmarks";
    let sig = sk.sign(msg);
    c.bench_function("e14/ed25519_sign", |b| b.iter(|| black_box(sk.sign(msg))));
    c.bench_function("e14/ed25519_verify", |b| {
        b.iter(|| assert!(pk.verify(msg, &sig)))
    });

    // Key agreement.
    let alice = x25519::clamp([5u8; 32]);
    let bob_pub = x25519::public_key(&x25519::clamp([6u8; 32]));
    c.bench_function("e14/x25519_shared_secret", |b| {
        b.iter(|| black_box(x25519::shared_secret(&alice, &bob_pub)))
    });

    // Stream cipher.
    let mut group = c.benchmark_group("e14/chacha20");
    for size in [1024usize, 64 * 1024] {
        let data = vec![9u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| black_box(chacha20::encrypt(&[7u8; 32], &[0u8; 12], 0, d)))
        });
    }
    group.finish();

    // JWT end-to-end.
    let mut claims = Claims::new("iss", "sub", "aud", 1000, 900);
    claims.roles = vec!["researcher".into()];
    claims.token_id = "jti-1".into();
    let token = jwt::sign(&claims, &Signer::Ed25519(&sk), "kid-1");
    c.bench_function("e14/jwt_sign_eddsa", |b| {
        b.iter(|| black_box(jwt::sign(&claims, &Signer::Ed25519(&sk), "kid-1")))
    });
    c.bench_function("e14/jwt_verify_eddsa", |b| {
        let validation = Validation {
            now: 1100,
            ..Default::default()
        };
        b.iter(|| jwt::verify(&token, &Verifier::Ed25519(&pk), &validation).unwrap())
    });
}

fn main() {
    print_report();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
