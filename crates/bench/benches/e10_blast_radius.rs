//! E10 — ablation: blast radius of one stolen credential, zero-trust
//! co-design vs. the perimeter-trust baseline (§II-C's "typical
//! supercomputing environment").
//!
//! Shape to hold: ZTA wins on every axis — management plane unreachable,
//! single-project exposure, bounded time window.

use criterion::{black_box, Criterion};
use dri_clock::SimClock;
use dri_core::ablation::PerimeterBaseline;
use dri_core::{InfraConfig, Infrastructure};

fn print_report() {
    let infra = Infrastructure::new(InfraConfig::default());
    println!("== E10: blast radius of one stolen credential ==");
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10} {:>14}",
        "model", "services", "mgmt", "storage", "projects", "exposure"
    );
    for hosted in [5usize, 20, 100] {
        let perimeter = PerimeterBaseline::new(SimClock::new(), hosted).blast_radius();
        let zta = infra.zta_blast_radius(1);
        println!(
            "{:<26} {:>10} {:>10} {:>10} {:>10} {:>14}",
            format!("perimeter ({hosted} proj)"),
            perimeter.reachable_services,
            perimeter.management_reachable,
            perimeter.storage_reachable,
            perimeter.projects_exposed,
            "unbounded"
        );
        println!(
            "{:<26} {:>10} {:>10} {:>10} {:>10} {:>13}s",
            format!("zero-trust ({hosted} proj)"),
            zta.reachable_services,
            zta.management_reachable,
            zta.storage_reachable,
            zta.projects_exposed,
            zta.exposure_secs
        );
    }
    println!("\ncontainment grows linearly with hosted projects under the");
    println!("perimeter model and stays constant (1) under the co-design.");
}

fn benches(c: &mut Criterion) {
    let infra = Infrastructure::new(InfraConfig::default());
    let baseline = PerimeterBaseline::new(SimClock::new(), 20);
    c.bench_function("e10/zta_blast_radius", |b| {
        b.iter(|| black_box(infra.zta_blast_radius(1)))
    });
    c.bench_function("e10/perimeter_blast_radius", |b| {
        b.iter(|| black_box(baseline.blast_radius()))
    });
}

fn main() {
    print_report();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
