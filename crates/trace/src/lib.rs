//! # dri-trace — deterministic distributed tracing for the SSO/ZTA twin
//!
//! The paper's SOC story (§III-D) and NIST zero-trust tenet 7 require
//! reconstructing *why* any access was granted. This crate gives every
//! end-to-end flow — discovery → broker → portal → SSH CA → bastion →
//! Slurm/Jupyter — a W3C-style trace, with three properties the rest of
//! the repo depends on:
//!
//! * **Deterministic.** Trace ids are a pure function of
//!   `(seed, flow key, per-key sequence)` and span ids of a per-trace
//!   counter, so a login storm yields *byte-identical* exports whether
//!   it runs serially or across eight workers. No `std::time`, no OS
//!   entropy: simulated time comes from [`dri_clock::SimClock`] and
//!   wall-clock micros from an injected closure that only ever feeds
//!   histograms.
//! * **Signature-neutral.** Context propagates through a thread-local
//!   flow frame: orchestration code opens a [`flow`], substrate crates
//!   sprinkle [`span`]/[`span_with`] at hop points, and nothing changes
//!   its function signatures. Outside a flow (unit tests, disabled
//!   tracing) every call is a cheap no-op.
//! * **Allocation-light.** Spans buffer in the flow frame and flush
//!   into a [`dri_sync::ShardMap`]-backed collector once per flow;
//!   stage latency lands in lock-free log2 histograms.
//!
//! Exports ([`chrome_trace`], [`flamegraph`]) consume only
//! deterministic fields and serialize through `dri_crypto::json`
//! (sorted keys), so they are directly diffable across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod hist;
mod ids;
mod tracer;

pub use export::{chrome_trace, flamegraph, well_formed, TreeError};
pub use hist::{HistSnapshot, LogHistogram};
pub use ids::{SpanId, TraceCtx, TraceId};
pub use tracer::{
    active, add_attr, current_ctx, current_trace_id, flow, span, span_with, FlowGuard, SpanGuard,
    SpanRecord, Stage, StageSummary, Tracer, WallClockFn, ALL_STAGES, STAGE_COUNT,
};
