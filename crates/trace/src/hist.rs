//! Log2-bucketed latency histograms.
//!
//! Fixed 64-bucket layout (bucket `b` holds values whose bit length is
//! `b`, i.e. `[2^(b-1), 2^b)`; bucket 0 holds zero), all-atomic so the
//! parallel storm records without locks. Quantiles are read as the
//! inclusive upper bound of the bucket containing the target rank —
//! coarse (≤2× error) but monotone, allocation-free, and identical
//! however the recordings were interleaved.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 64;

/// A lock-free log2-bucketed histogram of `u64` samples.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample (0 if empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the inclusive upper bound of
    /// the log2 bucket holding that rank, clamped to the observed
    /// min/max. 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based, at least 1.
        let target = ((q * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, slot) in self.buckets.iter().enumerate() {
            seen += slot.load(Ordering::Relaxed);
            if seen >= target {
                let upper = if b == 0 {
                    0
                } else if b >= 64 {
                    u64::MAX
                } else {
                    (1u64 << b) - 1
                };
                return upper.clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Immutable copy of the headline statistics.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Headline statistics read out of a [`LogHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn records_and_reads_back() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1110);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 185);
        // p50 lands in the [2,3] bucket; upper bound 3.
        assert_eq!(h.quantile(0.5), 3);
        // p99 lands in the last occupied bucket, clamped to max.
        assert_eq!(h.quantile(0.99), 1000);
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = LogHistogram::new();
        for v in 0..1000u64 {
            h.record(v * 7 % 513);
        }
        let mut last = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = std::sync::Arc::new(LogHistogram::new());
        crossbeam::thread::scope(|scope| {
            for t in 0..8 {
                let h = h.clone();
                scope.spawn(move |_| {
                    for i in 0..500u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(h.count(), 4000);
        assert_eq!(h.max(), 7 * 1000 + 499);
    }
}
