//! The span collector and the thread-local propagation machinery.
//!
//! Design rules (see DESIGN.md §4.2):
//!
//! * **Flows are rooted explicitly** ([`flow`]) by the orchestration
//!   layer; substrate crates only ever add child spans ([`span`]),
//!   which are no-ops unless a flow is active on the calling thread.
//!   That keeps the instrumentation signature-neutral: no `TraceCtx`
//!   parameter threads through ten crates.
//! * **Each flow runs on one thread**, so the whole span tree for a
//!   trace is buffered in a thread-local frame and flushed into the
//!   sharded collector once, when the flow root closes — one shard
//!   lock per flow, not per span.
//! * **No `std::time` in this crate.** Simulated time comes from the
//!   shared [`SimClock`]; wall-clock micros come from a closure the
//!   embedder installs ([`Tracer::install_wall_clock`]). Wall readings
//!   feed histograms only — never identifiers or the chrome export —
//!   so determinism is preserved.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dri_clock::SimClock;
use dri_sync::{hash_key, shard_index, ShardMap};
use parking_lot::RwLock;

use crate::hist::{HistSnapshot, LogHistogram};
use crate::ids::{SpanId, TraceCtx, TraceId};

/// Which pipeline stage a span belongs to. One histogram pair is kept
/// per stage, so stage attribution is O(1) at record time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Stage {
    /// A whole end-to-end flow (the root span of every trace).
    Flow = 0,
    /// IdP discovery / home-organisation authentication (federation).
    Discovery = 1,
    /// Broker session establishment and OIDC token mint.
    Broker = 2,
    /// Portal project registration / invitation acceptance.
    Portal = 3,
    /// SSH certificate issuance.
    SshCa = 4,
    /// Bastion relay hops.
    Bastion = 5,
    /// Tailnet enrolment and overlay sends.
    Tailnet = 6,
    /// Identity-aware tunnel round-trips.
    Tunnel = 7,
    /// Edge proxy admission.
    Edge = 8,
    /// Raw network hops (zone/domain microsegmentation checks).
    Network = 9,
    /// Slurm submission, Jupyter spawn, login-node sessions.
    Cluster = 10,
    /// Policy-decision-point consultations.
    Policy = 11,
    /// SIEM pipeline work.
    Siem = 12,
}

/// Number of [`Stage`] variants (histogram array size).
pub const STAGE_COUNT: usize = 13;

/// All stages, in discriminant order.
pub const ALL_STAGES: [Stage; STAGE_COUNT] = [
    Stage::Flow,
    Stage::Discovery,
    Stage::Broker,
    Stage::Portal,
    Stage::SshCa,
    Stage::Bastion,
    Stage::Tailnet,
    Stage::Tunnel,
    Stage::Edge,
    Stage::Network,
    Stage::Cluster,
    Stage::Policy,
    Stage::Siem,
];

impl Stage {
    /// Stable lowercase name (used as the chrome-trace category).
    pub fn as_str(&self) -> &'static str {
        match self {
            Stage::Flow => "flow",
            Stage::Discovery => "discovery",
            Stage::Broker => "broker",
            Stage::Portal => "portal",
            Stage::SshCa => "sshca",
            Stage::Bastion => "bastion",
            Stage::Tailnet => "tailnet",
            Stage::Tunnel => "tunnel",
            Stage::Edge => "edge",
            Stage::Network => "network",
            Stage::Cluster => "cluster",
            Stage::Policy => "policy",
            Stage::Siem => "siem",
        }
    }
}

/// A finished span, as stored in the collector.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: TraceId,
    /// This span's id (unique within the trace).
    pub span_id: SpanId,
    /// Parent span id; `None` only for the flow root.
    pub parent_id: Option<SpanId>,
    /// Operation name, e.g. `broker.issue_token`.
    pub name: String,
    /// Pipeline stage for latency attribution.
    pub stage: Stage,
    /// Logical step counter at open (per-trace, deterministic).
    pub start_step: u64,
    /// Logical step counter at close (strictly greater than
    /// `start_step`; sibling/child intervals never overlap).
    pub end_step: u64,
    /// Simulated clock at open (ms).
    pub start_ms: u64,
    /// Simulated clock at close (ms).
    pub end_ms: u64,
    /// Wall-clock duration in µs (0 when no wall source is installed).
    /// Feeds histograms only; excluded from deterministic exports.
    pub wall_us: u64,
    /// Key/value attributes (zone, domain, audience, ...).
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Duration in logical steps.
    pub fn steps(&self) -> u64 {
        self.end_step - self.start_step
    }
}

/// Per-stage latency summary (steps and wall-clock), as surfaced in
/// `MetricsSnapshot` and the E9 attribution table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSummary {
    /// The stage.
    pub stage: Stage,
    /// Logical-step latency statistics.
    pub steps: HistSnapshot,
    /// Wall-clock (µs) latency statistics.
    pub wall_us: HistSnapshot,
}

/// Source of wall-clock microseconds, installed by the embedder.
pub type WallClockFn = dyn Fn() -> u64 + Send + Sync;

struct StagePair {
    steps: LogHistogram,
    wall_us: LogHistogram,
}

/// The per-infrastructure span collector.
///
/// Cheap to share (`Arc`), safe to hammer from a parallel storm: trace
/// ids are minted from per-key sequences behind sharded locks, finished
/// flows land in a [`ShardMap`] keyed by trace id, and stage histograms
/// are plain atomics.
pub struct Tracer {
    enabled: AtomicBool,
    seed: u64,
    /// Per-flow-key mint sequence, so the N-th login of one subject has
    /// a stable trace id regardless of what other subjects are doing.
    seqs: ShardMap<u64>,
    /// Per-shard mint counters: cheap stats plus the uniqueness
    /// sequence for key-less flows.
    minted: Vec<AtomicU64>,
    /// Finished spans, keyed by trace-id hex; one entry per flow.
    spans: ShardMap<Vec<SpanRecord>>,
    stages: Vec<StagePair>,
    clock: SimClock,
    wall: RwLock<Option<Arc<WallClockFn>>>,
    /// Tail-sampling knob: keep 1 in N ordinary flows (0 or 1 = keep
    /// everything). Flows carrying a denial, error, or injected-fault
    /// marker are always retained regardless.
    tail_keep_1_in: AtomicU64,
    tail_retained: AtomicU64,
    tail_sampled_out: AtomicU64,
    /// Head-sampling knob: keep 1 in N flows, decided from the trace
    /// id's low bits at mint time — *before* any span is buffered (0 or
    /// 1 = keep everything). Unlike tail sampling there is no
    /// keep-on-error override: the decision is made with nothing but
    /// the id in hand. That is the trade: head sampling caps the
    /// buffering cost, tail sampling keeps the interesting flows.
    head_keep_1_in: AtomicU64,
    head_dropped: AtomicU64,
    /// Per-stage span budget: each *flow* stores at most this many
    /// spans per stage (0 = unlimited). Over-budget spans — and their
    /// subtrees — are dropped at flush; stage histograms still see
    /// every span. Per-flow, not global, so the retained set is
    /// independent of flush interleaving.
    stage_budget: AtomicU64,
    budget_dropped: AtomicU64,
}

impl Tracer {
    /// A tracer minting ids under `seed`, with `shards` collector
    /// shards (rounded to a power of two), stamping simulated time from
    /// `clock`. Starts **disabled**; flows are no-ops until
    /// [`set_enabled`](Tracer::set_enabled).
    pub fn new(seed: u64, shards: usize, clock: SimClock) -> Tracer {
        let n = dri_sync::clamp_shards(shards);
        Tracer {
            enabled: AtomicBool::new(false),
            seed,
            seqs: ShardMap::new(n),
            minted: (0..n).map(|_| AtomicU64::new(0)).collect(),
            spans: ShardMap::new(n),
            stages: (0..STAGE_COUNT)
                .map(|_| StagePair {
                    steps: LogHistogram::new(),
                    wall_us: LogHistogram::new(),
                })
                .collect(),
            clock,
            wall: RwLock::new(None),
            tail_keep_1_in: AtomicU64::new(0),
            tail_retained: AtomicU64::new(0),
            tail_sampled_out: AtomicU64::new(0),
            head_keep_1_in: AtomicU64::new(0),
            head_dropped: AtomicU64::new(0),
            stage_budget: AtomicU64::new(0),
            budget_dropped: AtomicU64::new(0),
        }
    }

    /// Turn collection on or off. When off, [`flow`] hands out no-op
    /// guards and the per-span cost is one relaxed atomic load.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
    }

    /// Whether collection is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Install the wall-clock-microseconds source. The tracer itself
    /// never touches `std::time`; the embedder injects it (dri-core
    /// installs an `Instant`-based one).
    pub fn install_wall_clock(&self, f: Arc<WallClockFn>) {
        *self.wall.write() = Some(f);
    }

    /// Mint the next trace id for `key` (per-key sequence, sharded).
    fn mint(&self, key: &str) -> TraceId {
        let hash = hash_key(key);
        let shard = shard_index(hash, self.minted.len());
        self.minted[shard].fetch_add(1, Ordering::Relaxed);
        let seq = {
            let mut guard = self.seqs.write_shard(key);
            let entry = guard.entry(key.to_string()).or_insert(0);
            *entry += 1;
            *entry
        };
        TraceId::mint(self.seed, hash, seq)
    }

    /// Flush one finished flow into the collector and the stage
    /// histograms. Called once per flow, from the root guard's drop.
    /// Stage histograms always see the flow; the span store only keeps
    /// it if tail sampling says so.
    fn flush(&self, trace_id: TraceId, done: Vec<SpanRecord>) {
        for span in &done {
            self.record_stage(span.stage, span.steps(), span.wall_us);
        }
        if !self.tail_keep(&trace_id, &done) {
            self.tail_sampled_out.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let done = self.apply_stage_budget(done);
        self.tail_retained.fetch_add(1, Ordering::Relaxed);
        self.spans.insert(trace_id.to_hex(), done);
    }

    /// Enforce the per-flow per-stage span budget: spans are considered
    /// in open order (parents before children); once a stage has
    /// `budget` spans stored for this flow, further spans of that stage
    /// — and their entire subtrees — are dropped, so the retained spans
    /// still form a well-formed tree rooted at the flow span.
    fn apply_stage_budget(&self, done: Vec<SpanRecord>) -> Vec<SpanRecord> {
        let budget = self.stage_budget.load(Ordering::Acquire);
        if budget == 0 {
            return done;
        }
        let mut order: Vec<usize> = (0..done.len()).collect();
        order.sort_by_key(|&i| done[i].start_step);
        let mut per_stage = [0u64; STAGE_COUNT];
        let mut dropped_ids: std::collections::HashSet<SpanId> = std::collections::HashSet::new();
        let mut keep = vec![false; done.len()];
        for &i in &order {
            let s = &done[i];
            let parent_dropped = s.parent_id.is_some_and(|p| dropped_ids.contains(&p));
            if parent_dropped || per_stage[s.stage as usize] >= budget {
                dropped_ids.insert(s.span_id);
                continue;
            }
            per_stage[s.stage as usize] += 1;
            keep[i] = true;
        }
        if dropped_ids.is_empty() {
            return done;
        }
        self.budget_dropped
            .fetch_add(dropped_ids.len() as u64, Ordering::Relaxed);
        done.into_iter()
            .enumerate()
            .filter_map(|(i, s)| keep[i].then_some(s))
            .collect()
    }

    /// Tail-based sampling decision, made with the *whole* flow in
    /// hand: flows that ended in a denial, an error, or an injected
    /// fault are always retained — those are exactly the traces the SOC
    /// will ask for. Ordinary flows are kept 1-in-N by a deterministic
    /// function of the trace id, so the retained set is identical for
    /// serial and parallel runs.
    fn tail_keep(&self, trace_id: &TraceId, done: &[SpanRecord]) -> bool {
        let n = self.tail_keep_1_in.load(Ordering::Acquire);
        if n <= 1 {
            return true;
        }
        let must_keep = done.iter().any(|s| {
            s.attrs.iter().any(|(k, v)| {
                k == "error" || k == "fault.injected" || (k == "outcome" && v == "denied")
            })
        });
        must_keep || trace_id.low64().is_multiple_of(n)
    }

    /// Set tail sampling to keep 1 ordinary flow in `n` (`0` or `1`
    /// restores keep-everything). Denied/errored/faulted flows are
    /// retained regardless of `n`.
    pub fn set_tail_sampling(&self, n: u64) {
        self.tail_keep_1_in.store(n, Ordering::Release);
    }

    /// Current tail-sampling divisor (0 = keep everything).
    pub fn tail_sampling(&self) -> u64 {
        self.tail_keep_1_in.load(Ordering::Acquire)
    }

    /// Flows retained by the tail sampler (== flows collected).
    pub fn tail_retained(&self) -> u64 {
        self.tail_retained.load(Ordering::Relaxed)
    }

    /// Flows whose spans were dropped by tail sampling (their latency
    /// samples still reached the stage histograms).
    pub fn tail_sampled_out(&self) -> u64 {
        self.tail_sampled_out.load(Ordering::Relaxed)
    }

    /// Head-sampling decision for a freshly minted trace id. Purely a
    /// function of the id, so the kept set is identical for serial and
    /// parallel runs of the same seed.
    fn head_keep(&self, trace_id: &TraceId) -> bool {
        let n = self.head_keep_1_in.load(Ordering::Acquire);
        n <= 1 || trace_id.low64().is_multiple_of(n)
    }

    /// Set head sampling to keep 1 flow in `n`, decided by the trace
    /// id's low bits before any span is buffered (`0` or `1` restores
    /// keep-everything). Sampled-out flows still mint their id — per-key
    /// sequences advance identically — but buffer no spans, feed no
    /// histograms, and are never stored.
    pub fn set_head_sampling(&self, n: u64) {
        self.head_keep_1_in.store(n, Ordering::Release);
    }

    /// Current head-sampling divisor (0 = keep everything).
    pub fn head_sampling(&self) -> u64 {
        self.head_keep_1_in.load(Ordering::Acquire)
    }

    /// Flows dropped at mint time by head sampling.
    pub fn head_dropped(&self) -> u64 {
        self.head_dropped.load(Ordering::Relaxed)
    }

    /// Set the per-flow per-stage stored-span budget (`0` = unlimited).
    pub fn set_stage_budget(&self, budget: u64) {
        self.stage_budget.store(budget, Ordering::Release);
    }

    /// Current per-flow per-stage stored-span budget (0 = unlimited).
    pub fn stage_budget(&self) -> u64 {
        self.stage_budget.load(Ordering::Acquire)
    }

    /// Spans dropped by the per-stage budget (histograms saw them).
    pub fn budget_dropped(&self) -> u64 {
        self.budget_dropped.load(Ordering::Relaxed)
    }

    /// Record one latency sample for `stage`.
    pub fn record_stage(&self, stage: Stage, steps: u64, wall_us: u64) {
        let pair = &self.stages[stage as usize];
        pair.steps.record(steps);
        pair.wall_us.record(wall_us);
    }

    /// Number of flows collected.
    pub fn trace_count(&self) -> usize {
        self.spans.len()
    }

    /// Number of trace ids minted (≥ `trace_count` while flows are in
    /// flight), summed over the per-shard counters.
    pub fn minted_count(&self) -> u64 {
        self.minted.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total spans across all collected flows.
    pub fn span_count(&self) -> usize {
        let mut n = 0;
        self.spans.for_each(|_, v| n += v.len());
        n
    }

    /// The spans of one trace, by id.
    pub fn spans_of(&self, trace_id: &TraceId) -> Option<Vec<SpanRecord>> {
        self.spans.get_cloned(&trace_id.to_hex())
    }

    /// Every collected span, in canonical order: sorted by
    /// `(trace_id, start_step, span_id)`. This order — and everything
    /// derived from it — is identical for serial and parallel runs of
    /// the same seed.
    pub fn all_spans(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.span_count());
        self.spans.for_each(|_, v| out.extend(v.iter().cloned()));
        out.sort_by(|a, b| {
            (a.trace_id, a.start_step, a.span_id).cmp(&(b.trace_id, b.start_step, b.span_id))
        });
        out
    }

    /// Latency summaries for every stage with at least one sample,
    /// in stage order.
    pub fn stage_summaries(&self) -> Vec<StageSummary> {
        ALL_STAGES
            .iter()
            .filter_map(|&stage| {
                let pair = &self.stages[stage as usize];
                if pair.steps.count() == 0 {
                    None
                } else {
                    Some(StageSummary {
                        stage,
                        steps: pair.steps.snapshot(),
                        wall_us: pair.wall_us.snapshot(),
                    })
                }
            })
            .collect()
    }

    /// Drop all collected spans (histograms and sequences are kept, so
    /// ids minted after a clear do not repeat).
    pub fn clear_spans(&self) {
        self.spans.clear();
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("traces", &self.trace_count())
            .field("spans", &self.span_count())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Thread-local propagation
// ---------------------------------------------------------------------

struct OpenSpan {
    span_id: SpanId,
    parent_id: Option<SpanId>,
    name: &'static str,
    stage: Stage,
    start_step: u64,
    start_ms: u64,
    wall_start: u64,
    attrs: Vec<(String, String)>,
}

struct FlowFrame {
    tracer: Arc<Tracer>,
    trace_id: TraceId,
    /// `false` when head sampling dropped this flow at mint time: the
    /// frame stays on the stack (so nested flows don't mint fresh
    /// roots and `current_trace_id` still answers for provenance), but
    /// no span is ever buffered and nothing is flushed.
    record: bool,
    /// Open spans, innermost last (the root is index 0 for the whole
    /// life of the frame).
    stack: Vec<OpenSpan>,
    done: Vec<SpanRecord>,
    /// Per-trace logical step counter: bumped at every open and close,
    /// so intervals nest strictly and deterministically.
    step: u64,
    span_seq: u64,
    wall: Option<Arc<WallClockFn>>,
}

impl FlowFrame {
    fn wall_now(&self) -> u64 {
        self.wall.as_ref().map(|f| f()).unwrap_or(0)
    }

    fn open(&mut self, name: &'static str, stage: Stage, attrs: &[(&str, &str)]) {
        if !self.record {
            return;
        }
        self.span_seq += 1;
        let span_id = SpanId::mint(self.trace_id.low64(), self.span_seq);
        let parent_id = self.stack.last().map(|s| s.span_id);
        let start_step = self.step;
        self.step += 1;
        self.stack.push(OpenSpan {
            span_id,
            parent_id,
            name,
            stage,
            start_step,
            start_ms: self.tracer.clock.now_ms(),
            wall_start: self.wall_now(),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    fn close(&mut self) {
        let Some(open) = self.stack.pop() else { return };
        let end_step = self.step;
        self.step += 1;
        let wall_end = self.wall_now();
        self.done.push(SpanRecord {
            trace_id: self.trace_id,
            span_id: open.span_id,
            parent_id: open.parent_id,
            name: open.name.to_string(),
            stage: open.stage,
            start_step: open.start_step,
            end_step,
            start_ms: open.start_ms,
            end_ms: self.tracer.clock.now_ms(),
            wall_us: wall_end.saturating_sub(open.wall_start),
            attrs: open.attrs,
        });
    }
}

thread_local! {
    static ACTIVE: RefCell<Vec<FlowFrame>> = const { RefCell::new(Vec::new()) };
}

/// Start a flow (trace root) keyed by `key` on the calling thread.
///
/// The returned guard owns the root span; child [`span`]s opened while
/// it lives attach automatically. If a flow for the **same tracer** is
/// already active on this thread, a nested child span is opened instead
/// of a second root (stories call each other). Disabled tracers hand
/// out no-op guards.
pub fn flow(tracer: &Arc<Tracer>, key: &str, name: &'static str, stage: Stage) -> FlowGuard {
    if !tracer.enabled() {
        return FlowGuard {
            mode: FlowMode::Noop,
        };
    }
    ACTIVE.with(|cell| {
        let mut frames = cell.borrow_mut();
        if let Some(top) = frames.last_mut() {
            if Arc::ptr_eq(&top.tracer, tracer) {
                top.open(name, stage, &[]);
                return FlowGuard {
                    mode: FlowMode::Child,
                };
            }
        }
        let trace_id = tracer.mint(key);
        // Head sampling: decided here, before any buffering. The mint
        // above already advanced the per-key sequence, so later flows
        // of the same key get the same ids whether this one was kept.
        let record = tracer.head_keep(&trace_id);
        if !record {
            tracer.head_dropped.fetch_add(1, Ordering::Relaxed);
        }
        let wall = tracer.wall.read().clone();
        let mut frame = FlowFrame {
            tracer: tracer.clone(),
            trace_id,
            record,
            stack: Vec::with_capacity(8),
            done: Vec::with_capacity(if record { 16 } else { 0 }),
            step: 0,
            span_seq: 0,
            wall,
        };
        frame.open(name, stage, &[("flow.key", key)]);
        frames.push(frame);
        FlowGuard {
            mode: FlowMode::Root,
        }
    })
}

/// Open a child span on the active flow, if any. No-op (and
/// allocation-free) when no flow is active on this thread.
pub fn span(name: &'static str, stage: Stage) -> SpanGuard {
    span_with(name, stage, &[])
}

/// [`span`] with initial attributes.
pub fn span_with(name: &'static str, stage: Stage, attrs: &[(&str, &str)]) -> SpanGuard {
    ACTIVE.with(|cell| {
        let mut frames = cell.borrow_mut();
        match frames.last_mut() {
            Some(frame) => {
                frame.open(name, stage, attrs);
                SpanGuard { armed: true }
            }
            None => SpanGuard { armed: false },
        }
    })
}

/// Attach an attribute to the innermost open span, if any.
pub fn add_attr(key: &str, value: &str) {
    ACTIVE.with(|cell| {
        let mut frames = cell.borrow_mut();
        if let Some(open) = frames.last_mut().and_then(|f| f.stack.last_mut()) {
            open.attrs.push((key.to_string(), value.to_string()));
        }
    });
}

/// The active flow's trace id (hex), if a flow is open on this thread.
/// This is what `SecurityEvent` stamps onto every emission.
pub fn current_trace_id() -> Option<String> {
    ACTIVE.with(|cell| cell.borrow().last().map(|f| f.trace_id.to_hex()))
}

/// The active propagation context (trace id + innermost span id), ready
/// to serialize as a `traceparent` header.
pub fn current_ctx() -> Option<TraceCtx> {
    ACTIVE.with(|cell| {
        let frames = cell.borrow();
        let frame = frames.last()?;
        let open = frame.stack.last()?;
        Some(TraceCtx {
            trace_id: frame.trace_id,
            span_id: open.span_id,
        })
    })
}

/// Whether a flow is active on the calling thread.
pub fn active() -> bool {
    ACTIVE.with(|cell| !cell.borrow().is_empty())
}

enum FlowMode {
    Noop,
    Child,
    Root,
}

/// RAII guard for a flow root (or a nested pseudo-root). Closing the
/// root flushes the whole buffered span tree into the collector.
#[must_use = "dropping the guard immediately would record an empty flow"]
pub struct FlowGuard {
    mode: FlowMode,
}

impl Drop for FlowGuard {
    fn drop(&mut self) {
        match self.mode {
            FlowMode::Noop => {}
            FlowMode::Child => close_innermost(),
            FlowMode::Root => {
                ACTIVE.with(|cell| {
                    let mut frames = cell.borrow_mut();
                    let Some(mut frame) = frames.pop() else {
                        return;
                    };
                    if !frame.record {
                        return;
                    }
                    // Close anything a panic unwound past, then the root.
                    while !frame.stack.is_empty() {
                        frame.close();
                    }
                    let tracer = frame.tracer.clone();
                    tracer.flush(frame.trace_id, std::mem::take(&mut frame.done));
                });
            }
        }
    }
}

/// RAII guard for a child span.
#[must_use = "dropping the guard immediately would record a zero-length span"]
pub struct SpanGuard {
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            close_innermost();
        }
    }
}

fn close_innermost() {
    ACTIVE.with(|cell| {
        let mut frames = cell.borrow_mut();
        if let Some(frame) = frames.last_mut() {
            // Never close the root from a child guard: the root closes
            // only when the FlowGuard drops.
            if frame.stack.len() > 1 {
                frame.close();
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_tracer() -> Arc<Tracer> {
        let t = Arc::new(Tracer::new(42, 4, SimClock::new()));
        t.set_enabled(true);
        t
    }

    #[test]
    fn disabled_tracer_collects_nothing() {
        let t = Arc::new(Tracer::new(42, 4, SimClock::new()));
        {
            let _f = flow(&t, "alice", "login", Stage::Flow);
            let _s = span("broker.establish", Stage::Broker);
            assert!(current_trace_id().is_none());
        }
        assert_eq!(t.trace_count(), 0);
        assert_eq!(t.minted_count(), 0);
    }

    #[test]
    fn span_outside_flow_is_noop() {
        let _s = span("orphan", Stage::Broker);
        assert!(!active());
    }

    #[test]
    fn flow_buffers_and_flushes_a_tree() {
        let t = test_tracer();
        {
            let _f = flow(&t, "alice", "login", Stage::Flow);
            assert!(active());
            {
                let _s = span_with("broker.establish", Stage::Broker, &[("acr", "mfa")]);
                add_attr("loa", "high");
                let _inner = span("net.connect", Stage::Network);
            }
            // Nothing visible until the root closes.
            assert_eq!(t.trace_count(), 0);
        }
        assert!(!active());
        assert_eq!(t.trace_count(), 1);
        let spans = t.all_spans();
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|s| s.parent_id.is_none()).unwrap();
        assert_eq!(root.name, "login");
        assert_eq!(root.start_step, 0);
        let establish = spans.iter().find(|s| s.name == "broker.establish").unwrap();
        assert_eq!(establish.parent_id, Some(root.span_id));
        assert!(establish.attrs.contains(&("acr".into(), "mfa".into())));
        assert!(establish.attrs.contains(&("loa".into(), "high".into())));
        let net = spans.iter().find(|s| s.name == "net.connect").unwrap();
        assert_eq!(net.parent_id, Some(establish.span_id));
        // Strict interval nesting on the step counter.
        assert!(net.start_step > establish.start_step);
        assert!(net.end_step < establish.end_step);
        assert!(establish.end_step < root.end_step);
    }

    #[test]
    fn same_key_sequence_is_deterministic() {
        let run = || {
            let t = test_tracer();
            for _ in 0..3 {
                let _f = flow(&t, "alice", "login", Stage::Flow);
            }
            let _f = flow(&t, "bob", "login", Stage::Flow);
            drop(_f);
            t.all_spans()
                .iter()
                .map(|s| s.trace_id.to_hex())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        let ids = run();
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(distinct.len(), 4, "every flow has its own trace id");
    }

    #[test]
    fn nested_flow_becomes_child_span() {
        let t = test_tracer();
        {
            let _outer = flow(&t, "alice", "story1", Stage::Flow);
            let _inner = flow(&t, "alice", "login", Stage::Flow);
            assert_eq!(t.minted_count(), 1, "nested flow mints no new id");
        }
        assert_eq!(t.trace_count(), 1);
        let spans = t.all_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(
            spans.iter().filter(|s| s.parent_id.is_none()).count(),
            1,
            "exactly one root"
        );
    }

    #[test]
    fn parallel_flows_mint_identical_ids_to_serial() {
        let serial = {
            let t = test_tracer();
            for i in 0..64 {
                let user = format!("user-{i}");
                let _f = flow(&t, &user, "login", Stage::Flow);
                let _s = span("broker.establish", Stage::Broker);
            }
            let mut ids: Vec<String> = t.all_spans().iter().map(|s| s.trace_id.to_hex()).collect();
            ids.dedup();
            ids
        };
        let parallel = {
            let t = test_tracer();
            crossbeam::thread::scope(|scope| {
                for w in 0..8 {
                    let t = t.clone();
                    scope.spawn(move |_| {
                        for i in (w..64).step_by(8) {
                            let user = format!("user-{i}");
                            let _f = flow(&t, &user, "login", Stage::Flow);
                            let _s = span("broker.establish", Stage::Broker);
                        }
                    });
                }
            })
            .unwrap();
            let mut ids: Vec<String> = t.all_spans().iter().map(|s| s.trace_id.to_hex()).collect();
            ids.dedup();
            ids
        };
        assert_eq!(serial, parallel);
    }

    #[test]
    fn stage_histograms_accumulate() {
        let t = test_tracer();
        {
            let _f = flow(&t, "alice", "login", Stage::Flow);
            let _s = span("broker.establish", Stage::Broker);
        }
        let summaries = t.stage_summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].stage, Stage::Flow);
        assert_eq!(summaries[1].stage, Stage::Broker);
        assert_eq!(summaries[1].steps.count, 1);
        // The span opened and closed with one nested step pair: 2 steps.
        assert!(summaries[1].steps.p50 >= 1);
    }

    #[test]
    fn tail_sampling_drops_ordinary_flows_but_keeps_denials() {
        let t = test_tracer();
        // Keep (almost) nothing ordinary.
        t.set_tail_sampling(u64::MAX);
        for i in 0..16 {
            let user = format!("ok-{i}");
            let _f = flow(&t, &user, "login", Stage::Flow);
            let _s = span("broker.establish", Stage::Broker);
        }
        // A flow that ends denied must survive sampling.
        {
            let _f = flow(&t, "mallory", "login", Stage::Flow);
            let _s = span("net.connect", Stage::Network);
            add_attr("outcome", "denied");
        }
        // So must one carrying an injected fault.
        {
            let _f = flow(&t, "chaos", "login", Stage::Flow);
            let _s = span("idp.authenticate", Stage::Discovery);
            add_attr("fault.injected", "fault-00deadbeef");
        }
        let spans = t.all_spans();
        let kept: std::collections::HashSet<_> =
            spans.iter().map(|s| s.trace_id.to_hex()).collect();
        assert_eq!(kept.len(), 2, "only the denial and the fault survive");
        assert_eq!(t.tail_retained(), 2);
        assert_eq!(t.tail_sampled_out(), 16);
        // Histograms saw every flow, sampled out or not.
        let flow_summary = &t.stage_summaries()[0];
        assert_eq!(flow_summary.stage, Stage::Flow);
        assert_eq!(flow_summary.steps.count, 18);
        // Keep-all restores full collection.
        t.set_tail_sampling(0);
        {
            let _f = flow(&t, "alice", "login", Stage::Flow);
        }
        assert_eq!(t.tail_retained(), 3);
    }

    #[test]
    fn head_sampling_drops_before_buffering_and_is_deterministic() {
        let run = || {
            let t = test_tracer();
            t.set_head_sampling(4);
            for i in 0..32 {
                let user = format!("user-{i}");
                let _f = flow(&t, &user, "login", Stage::Flow);
                let _s = span("broker.establish", Stage::Broker);
            }
            (
                t.all_spans()
                    .iter()
                    .map(|s| s.trace_id.to_hex())
                    .collect::<Vec<_>>(),
                t.head_dropped(),
            )
        };
        let (kept_a, dropped_a) = run();
        let (kept_b, dropped_b) = run();
        assert_eq!(kept_a, kept_b, "kept set is a pure function of the ids");
        assert_eq!(dropped_a, dropped_b);
        assert!(
            dropped_a > 0,
            "1-in-4 sampling drops something over 32 flows"
        );
        let kept_flows: std::collections::HashSet<_> = kept_a.iter().collect();
        assert_eq!(kept_flows.len() as u64 + dropped_a, 32);
        // Head-dropped flows never reached the histograms (unlike tail).
        let t = test_tracer();
        t.set_head_sampling(u64::MAX);
        for i in 0..8 {
            let user = format!("user-{i}");
            let _f = flow(&t, &user, "login", Stage::Flow);
        }
        assert!(t.stage_summaries().is_empty());
        assert_eq!(t.head_dropped(), 8);
    }

    #[test]
    fn head_sampling_keeps_per_key_id_sequences_stable() {
        let ids_with_sampling = {
            let t = test_tracer();
            t.set_head_sampling(u64::MAX); // drop everything...
            {
                let _f = flow(&t, "alice", "login", Stage::Flow);
            }
            t.set_head_sampling(0); // ...then keep everything
            let _f = flow(&t, "alice", "login", Stage::Flow);
            drop(_f);
            t.all_spans()[0].trace_id.to_hex()
        };
        let first_id = {
            let t = test_tracer();
            {
                let _f = flow(&t, "alice", "login", Stage::Flow);
            }
            t.all_spans()[0].trace_id.to_hex()
        };
        let second_id = {
            let t = test_tracer();
            {
                let _f = flow(&t, "alice", "login", Stage::Flow);
            }
            let _f = flow(&t, "alice", "login", Stage::Flow);
            drop(_f);
            t.all_spans()
                .iter()
                .map(|s| s.trace_id.to_hex())
                .find(|id| *id != first_id)
                .unwrap()
        };
        // The second login of "alice" has the same id either way: the
        // sampled-out first login still advanced the sequence.
        assert_eq!(ids_with_sampling, second_id);
    }

    #[test]
    fn stage_budget_caps_stored_spans_per_flow() {
        let t = test_tracer();
        t.set_stage_budget(2);
        {
            let _f = flow(&t, "alice", "login", Stage::Flow);
            for _ in 0..5 {
                let _s = span("net.connect", Stage::Network);
            }
            let _keep = span("broker.establish", Stage::Broker);
        }
        let spans = t.all_spans();
        // Root + 2 network (budget) + 1 broker survive.
        assert_eq!(spans.len(), 4);
        assert_eq!(
            spans.iter().filter(|s| s.stage == Stage::Network).count(),
            2
        );
        assert_eq!(t.budget_dropped(), 3);
        // The surviving spans still form a well-formed tree.
        assert_eq!(spans.iter().filter(|s| s.parent_id.is_none()).count(), 1);
        // Histograms saw every span, dropped or not.
        let network = t
            .stage_summaries()
            .into_iter()
            .find(|s| s.stage == Stage::Network)
            .unwrap();
        assert_eq!(network.steps.count, 5);
    }

    #[test]
    fn stage_budget_drops_whole_subtrees() {
        let t = test_tracer();
        t.set_stage_budget(1);
        {
            let _f = flow(&t, "alice", "login", Stage::Flow);
            {
                let _a = span("net.connect", Stage::Network);
                let _child = span("broker.establish", Stage::Broker);
            }
            {
                // Second network span is over budget; its broker child
                // must go with it even though broker has budget left.
                let _b = span("net.reconnect", Stage::Network);
                let _child = span("broker.reissue", Stage::Broker);
            }
        }
        let spans = t.all_spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["login", "net.connect", "broker.establish"]);
        assert_eq!(t.budget_dropped(), 2);
    }

    #[test]
    fn current_ctx_tracks_innermost_span() {
        let t = test_tracer();
        let _f = flow(&t, "alice", "login", Stage::Flow);
        let root_ctx = current_ctx().unwrap();
        {
            let _s = span("jupyter.spawn", Stage::Cluster);
            let inner_ctx = current_ctx().unwrap();
            assert_eq!(inner_ctx.trace_id, root_ctx.trace_id);
            assert_ne!(inner_ctx.span_id, root_ctx.span_id);
            let header = inner_ctx.traceparent();
            assert_eq!(TraceCtx::parse(&header), Some(inner_ctx));
        }
        assert_eq!(current_ctx().unwrap().span_id, root_ctx.span_id);
    }
}
