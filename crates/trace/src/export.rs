//! Deterministic exporters over collected spans.
//!
//! Both exporters consume the canonical span order produced by
//! [`Tracer::all_spans`](crate::Tracer::all_spans) and use only
//! deterministic fields (logical steps, simulated ms, attributes) — no
//! wall-clock readings — so the same seed yields byte-identical output
//! for serial and parallel runs.

use std::collections::BTreeMap;

use dri_crypto::json::Value;

use crate::ids::{SpanId, TraceId};
use crate::tracer::SpanRecord;

/// Render spans as chrome-trace ("catapult") JSON: complete (`ph: "X"`)
/// events, one per span, with the logical step counter as the
/// microsecond timeline. Load the result in `chrome://tracing` or
/// Perfetto. Each trace gets its own `tid` lane, assigned in canonical
/// trace-id order.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut lanes: BTreeMap<TraceId, u64> = BTreeMap::new();
    for s in spans {
        let next = lanes.len() as u64;
        lanes.entry(s.trace_id).or_insert(next);
    }
    let events: Vec<Value> = spans
        .iter()
        .map(|s| {
            let mut args = BTreeMap::new();
            args.insert("trace_id".to_string(), Value::s(s.trace_id.to_hex()));
            args.insert("span_id".to_string(), Value::s(s.span_id.to_hex()));
            if let Some(p) = s.parent_id {
                args.insert("parent_id".to_string(), Value::s(p.to_hex()));
            }
            args.insert("sim_start_ms".to_string(), Value::u(s.start_ms));
            args.insert("sim_end_ms".to_string(), Value::u(s.end_ms));
            for (k, v) in &s.attrs {
                // The `cache.` prefix is reserved for hit/miss
                // observations whose values depend on thread
                // interleaving (a parallel storm races on the first
                // miss) and on whether the caches are enabled; the
                // `budget.` prefix carries error-budget burn readings
                // whose values race the same way (many lanes feed one
                // window's counters). Both are excluded from the export
                // so a seed yields byte-identical traces serial vs
                // parallel and cache on vs off.
                if k.starts_with("cache.") || k.starts_with("budget.") {
                    continue;
                }
                args.insert(format!("attr.{k}"), Value::s(v.clone()));
            }
            Value::obj([
                ("ph", Value::s("X")),
                ("name", Value::s(s.name.clone())),
                ("cat", Value::s(s.stage.as_str())),
                ("ts", Value::u(s.start_step)),
                ("dur", Value::u(s.steps())),
                ("pid", Value::u(1)),
                ("tid", Value::u(lanes[&s.trace_id])),
                ("args", Value::Obj(args)),
            ])
        })
        .collect();
    Value::obj([
        ("displayTimeUnit", Value::s("ms")),
        ("traceEvents", Value::Arr(events)),
    ])
    .to_json()
}

/// Render spans as a collapsed-stack ("flamegraph") rollup: one line
/// per distinct root→leaf name path, `stack;path count`, weighted by
/// self-time in logical steps and sorted lexicographically.
pub fn flamegraph(spans: &[SpanRecord]) -> String {
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    // Index spans per trace for parent-chain walks.
    let mut by_id: BTreeMap<(TraceId, SpanId), &SpanRecord> = BTreeMap::new();
    for s in spans {
        by_id.insert((s.trace_id, s.span_id), s);
    }
    for s in spans {
        // Self time: own steps minus direct children's steps.
        let child_steps: u64 = spans
            .iter()
            .filter(|c| c.trace_id == s.trace_id && c.parent_id == Some(s.span_id))
            .map(|c| c.steps())
            .sum();
        let self_steps = s.steps().saturating_sub(child_steps);
        // Build the path root-first.
        let mut path = vec![s.name.as_str()];
        let mut cursor = s.parent_id;
        while let Some(pid) = cursor {
            match by_id.get(&(s.trace_id, pid)) {
                Some(parent) => {
                    path.push(parent.name.as_str());
                    cursor = parent.parent_id;
                }
                None => break,
            }
        }
        path.reverse();
        *weights.entry(path.join(";")).or_insert(0) += self_steps;
    }
    let mut out = String::new();
    for (stack, weight) in weights {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&weight.to_string());
        out.push('\n');
    }
    out
}

/// Structural defects [`well_formed`] can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// A span references a parent id that is not in its trace.
    MissingParent {
        /// Trace containing the dangling reference.
        trace: String,
        /// The offending span.
        span: String,
    },
    /// A trace has not exactly one root span.
    RootCount {
        /// The trace.
        trace: String,
        /// How many parentless spans it contains.
        roots: usize,
    },
    /// A span's interval does not nest strictly inside its parent's.
    BadNesting {
        /// The trace.
        trace: String,
        /// The offending span.
        span: String,
    },
    /// A parent chain loops (or exceeds the span count, which implies
    /// a loop).
    Cycle {
        /// The trace.
        trace: String,
        /// The span whose ancestry never terminates.
        span: String,
    },
    /// Two spans in one trace share an id.
    DuplicateSpanId {
        /// The trace.
        trace: String,
        /// The duplicated id.
        span: String,
    },
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::MissingParent { trace, span } => {
                write!(f, "trace {trace}: span {span} has a missing parent")
            }
            TreeError::RootCount { trace, roots } => {
                write!(f, "trace {trace}: {roots} roots (expected 1)")
            }
            TreeError::BadNesting { trace, span } => {
                write!(f, "trace {trace}: span {span} does not nest in its parent")
            }
            TreeError::Cycle { trace, span } => {
                write!(f, "trace {trace}: span {span} ancestry cycles")
            }
            TreeError::DuplicateSpanId { trace, span } => {
                write!(f, "trace {trace}: duplicate span id {span}")
            }
        }
    }
}

/// Check every trace in `spans` is a well-formed tree: unique span ids,
/// exactly one root, every parent present, child intervals strictly
/// inside their parent's, and no ancestry cycles.
pub fn well_formed(spans: &[SpanRecord]) -> Result<(), TreeError> {
    let mut traces: BTreeMap<TraceId, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        traces.entry(s.trace_id).or_default().push(s);
    }
    for (trace_id, members) in &traces {
        let trace = trace_id.to_hex();
        let mut by_id: BTreeMap<SpanId, &SpanRecord> = BTreeMap::new();
        for s in members {
            if by_id.insert(s.span_id, s).is_some() {
                return Err(TreeError::DuplicateSpanId {
                    trace: trace.clone(),
                    span: s.span_id.to_hex(),
                });
            }
        }
        let roots = members.iter().filter(|s| s.parent_id.is_none()).count();
        if roots != 1 {
            return Err(TreeError::RootCount { trace, roots });
        }
        for s in members {
            if let Some(pid) = s.parent_id {
                let Some(parent) = by_id.get(&pid) else {
                    return Err(TreeError::MissingParent {
                        trace: trace.clone(),
                        span: s.span_id.to_hex(),
                    });
                };
                if s.start_step <= parent.start_step || s.end_step >= parent.end_step {
                    return Err(TreeError::BadNesting {
                        trace: trace.clone(),
                        span: s.span_id.to_hex(),
                    });
                }
            }
            // Walk the ancestry; more hops than spans implies a cycle.
            let mut cursor = s.parent_id;
            let mut hops = 0usize;
            while let Some(pid) = cursor {
                hops += 1;
                if hops > members.len() {
                    return Err(TreeError::Cycle {
                        trace: trace.clone(),
                        span: s.span_id.to_hex(),
                    });
                }
                cursor = by_id.get(&pid).and_then(|p| p.parent_id);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{flow, span, Stage, Tracer};
    use dri_clock::SimClock;
    use std::sync::Arc;

    fn sample_spans() -> Vec<SpanRecord> {
        let t = Arc::new(Tracer::new(42, 4, SimClock::new()));
        t.set_enabled(true);
        {
            let _f = flow(&t, "alice", "login", Stage::Flow);
            {
                let _a = span("broker.establish", Stage::Broker);
                let _b = span("net.connect", Stage::Network);
            }
            let _c = span("jupyter.spawn", Stage::Cluster);
        }
        t.all_spans()
    }

    #[test]
    fn chrome_export_is_valid_json_and_deterministic() {
        let spans = sample_spans();
        let out1 = chrome_trace(&spans);
        let out2 = chrome_trace(&sample_spans());
        assert_eq!(out1, out2);
        let parsed = Value::parse(&out1).expect("valid JSON");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 4);
        for ev in events {
            assert_eq!(ev.get("ph").unwrap().as_str(), Some("X"));
            assert!(ev.get("dur").unwrap().as_u64().unwrap() >= 1);
        }
    }

    #[test]
    fn racy_attr_prefixes_are_excluded_from_chrome_export() {
        let t = Arc::new(Tracer::new(42, 4, SimClock::new()));
        t.set_enabled(true);
        {
            let _f = flow(&t, "alice", "login", Stage::Flow);
            let _a = span("broker.establish", Stage::Broker);
            crate::tracer::add_attr("cache.token", "hit");
            crate::tracer::add_attr("budget.burn_per_mille", "130");
            crate::tracer::add_attr("audience", "jupyter");
        }
        let out = chrome_trace(&t.all_spans());
        assert!(!out.contains("cache.token"));
        assert!(!out.contains("budget.burn_per_mille"));
        assert!(out.contains("attr.audience"));
    }

    #[test]
    fn flamegraph_rolls_up_self_time() {
        let spans = sample_spans();
        let out = flamegraph(&spans);
        assert!(out.contains("login;broker.establish;net.connect "));
        assert!(out.contains("login;jupyter.spawn "));
        // Total weight equals the root's total steps.
        let root_steps = spans
            .iter()
            .find(|s| s.parent_id.is_none())
            .unwrap()
            .steps();
        let total: u64 = out
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, root_steps);
    }

    #[test]
    fn well_formed_accepts_real_trees() {
        assert_eq!(well_formed(&sample_spans()), Ok(()));
    }

    #[test]
    fn well_formed_rejects_defects() {
        let mut spans = sample_spans();
        // Dangling parent.
        let mut broken = spans.clone();
        broken[1].parent_id = Some(SpanId([0xee; 8]));
        assert!(matches!(
            well_formed(&broken),
            Err(TreeError::MissingParent { .. })
        ));
        // Two roots.
        let mut broken = spans.clone();
        let idx = broken.iter().position(|s| s.parent_id.is_some()).unwrap();
        broken[idx].parent_id = None;
        assert!(matches!(
            well_formed(&broken),
            Err(TreeError::RootCount { .. })
        ));
        // Interval escaping the parent.
        let idx = spans.iter().position(|s| s.parent_id.is_some()).unwrap();
        spans[idx].end_step = u64::MAX;
        assert!(matches!(
            well_formed(&spans),
            Err(TreeError::BadNesting { .. })
        ));
    }
}
