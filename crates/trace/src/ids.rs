//! Trace/span identifiers and the W3C-traceparent-style context.
//!
//! Identifiers are *minted*, not drawn from a shared RNG stream: a trace
//! id is a pure function of `(tracer seed, flow key, per-key sequence)`
//! and a span id of `(trace id, per-trace sequence)`. Minting therefore
//! commutes with scheduling — a login storm produces byte-identical ids
//! whether the flows run serially or across eight workers — which is
//! what lets the chrome-trace export be compared bit-for-bit across
//! runs.

use std::fmt;

/// Finalizer-style 64-bit mixer (splitmix64 finalizer). Good avalanche
/// so adjacent sequences yield unrelated-looking ids.
pub(crate) fn mix64(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hex_byte(out: &mut String, b: u8) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    out.push(HEX[(b >> 4) as usize] as char);
    out.push(HEX[(b & 0xf) as usize] as char);
}

fn parse_hex(s: &str, out: &mut [u8]) -> bool {
    if s.len() != out.len() * 2 || !s.is_ascii() {
        return false;
    }
    let bytes = s.as_bytes();
    for (i, slot) in out.iter_mut().enumerate() {
        let hi = (bytes[2 * i] as char).to_digit(16);
        let lo = (bytes[2 * i + 1] as char).to_digit(16);
        match (hi, lo) {
            (Some(h), Some(l)) => *slot = ((h << 4) | l) as u8,
            _ => return false,
        }
    }
    true
}

/// A 128-bit trace identifier (W3C `trace-id` field width).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub [u8; 16]);

impl TraceId {
    /// Mint the id for the `seq`-th flow keyed by `key_hash` under
    /// `seed`. Deterministic and collision-spread: both halves go
    /// through an avalanche mixer.
    pub fn mint(seed: u64, key_hash: u64, seq: u64) -> TraceId {
        let hi = mix64(seed, key_hash ^ seq.rotate_left(32));
        let lo = mix64(hi ^ seed, seq.wrapping_add(key_hash));
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&hi.to_be_bytes());
        bytes[8..].copy_from_slice(&lo.to_be_bytes());
        // The all-zero trace id is invalid per W3C; nudge it if the
        // mixer ever lands there.
        if bytes == [0u8; 16] {
            bytes[15] = 1;
        }
        TraceId(bytes)
    }

    /// Low 64 bits (used to seed the per-trace span-id mint).
    pub fn low64(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.0[8..]);
        u64::from_be_bytes(b)
    }

    /// 32-char lowercase hex form.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            hex_byte(&mut s, b);
        }
        s
    }

    /// Parse the 32-char hex form.
    pub fn from_hex(s: &str) -> Option<TraceId> {
        let mut bytes = [0u8; 16];
        parse_hex(s, &mut bytes).then_some(TraceId(bytes))
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceId({})", self.to_hex())
    }
}

/// A 64-bit span identifier (W3C `parent-id` field width).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub [u8; 8]);

impl SpanId {
    /// Mint the `seq`-th span id within a trace whose low half is
    /// `trace_low`.
    pub fn mint(trace_low: u64, seq: u64) -> SpanId {
        let v = mix64(trace_low, seq);
        let bytes = if v == 0 {
            1u64.to_be_bytes()
        } else {
            v.to_be_bytes()
        };
        SpanId(bytes)
    }

    /// 16-char lowercase hex form.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(16);
        for b in self.0 {
            hex_byte(&mut s, b);
        }
        s
    }

    /// Parse the 16-char hex form.
    pub fn from_hex(s: &str) -> Option<SpanId> {
        let mut bytes = [0u8; 8];
        parse_hex(s, &mut bytes).then_some(SpanId(bytes))
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpanId({})", self.to_hex())
    }
}

/// The propagation context carried across component boundaries, in the
/// spirit of the W3C Trace Context `traceparent` header.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The flow this work belongs to.
    pub trace_id: TraceId,
    /// The span acting as parent on the far side of the boundary.
    pub span_id: SpanId,
}

impl TraceCtx {
    /// Render as a `traceparent` header value
    /// (`00-<trace-id>-<parent-id>-01`; the `01` flag marks "sampled").
    pub fn traceparent(&self) -> String {
        format!("00-{}-{}-01", self.trace_id.to_hex(), self.span_id.to_hex())
    }

    /// Parse a `traceparent` header value produced by [`traceparent`]
    /// (version `00` only, flags ignored).
    ///
    /// [`traceparent`]: TraceCtx::traceparent
    pub fn parse(header: &str) -> Option<TraceCtx> {
        let mut parts = header.split('-');
        let version = parts.next()?;
        if version != "00" {
            return None;
        }
        let trace_id = TraceId::from_hex(parts.next()?)?;
        let span_id = SpanId::from_hex(parts.next()?)?;
        let flags = parts.next()?;
        if flags.len() != 2 || parts.next().is_some() {
            return None;
        }
        Some(TraceCtx { trace_id, span_id })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_is_deterministic_and_spread() {
        let a = TraceId::mint(42, 7, 1);
        let b = TraceId::mint(42, 7, 1);
        assert_eq!(a, b);
        assert_ne!(a, TraceId::mint(42, 7, 2));
        assert_ne!(a, TraceId::mint(42, 8, 1));
        assert_ne!(a, TraceId::mint(43, 7, 1));
        // Sequential mints should differ in many bit positions, not one.
        let c = TraceId::mint(42, 7, 2);
        let differing: u32 =
            a.0.iter()
                .zip(c.0.iter())
                .map(|(x, y)| (x ^ y).count_ones())
                .sum();
        assert!(differing > 20, "only {differing} differing bits");
    }

    #[test]
    fn hex_round_trips() {
        let t = TraceId::mint(1, 2, 3);
        assert_eq!(TraceId::from_hex(&t.to_hex()), Some(t));
        assert_eq!(t.to_hex().len(), 32);
        let s = SpanId::mint(t.low64(), 4);
        assert_eq!(SpanId::from_hex(&s.to_hex()), Some(s));
        assert_eq!(s.to_hex().len(), 16);
        assert!(TraceId::from_hex("zz").is_none());
        assert!(SpanId::from_hex("0123").is_none());
    }

    #[test]
    fn traceparent_round_trips() {
        let ctx = TraceCtx {
            trace_id: TraceId::mint(9, 9, 9),
            span_id: SpanId::mint(1, 1),
        };
        let header = ctx.traceparent();
        assert_eq!(header.len(), 2 + 1 + 32 + 1 + 16 + 1 + 2);
        assert_eq!(TraceCtx::parse(&header), Some(ctx));
        assert!(TraceCtx::parse("01-00-00-00").is_none());
        assert!(TraceCtx::parse("garbage").is_none());
    }
}
