//! Domains, zones, hosts, firewall rules, and the connection fabric.

use std::collections::HashMap;

use dri_clock::SimClock;
use parking_lot::RwLock;

/// The four operating domains of the Isambard DRIs, plus the outside
/// world and user devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Modular Data Centres (the supercomputers).
    Mdc,
    /// Sitewide Services (bastions, log gathering, admin access).
    Sws,
    /// Front Door Services (public cloud, Access Zone).
    Fds,
    /// Security Services (public cloud, separate account).
    Sec,
    /// The public internet.
    Internet,
}

impl Domain {
    /// Stable display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Domain::Mdc => "mdc",
            Domain::Sws => "sws",
            Domain::Fds => "fds",
            Domain::Sec => "sec",
            Domain::Internet => "internet",
        }
    }
}

/// NIST SP 800-223 zones (plus Public for internet hosts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Zone {
    /// Access zone: the only internet-facing zone.
    Access,
    /// Management plane.
    Management,
    /// High-performance computing (user plane).
    Hpc,
    /// Data storage.
    DataStorage,
    /// Security monitoring.
    Security,
    /// Public internet / user devices.
    Public,
}

impl Zone {
    /// Stable display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Zone::Access => "access",
            Zone::Management => "management",
            Zone::Hpc => "hpc",
            Zone::DataStorage => "data-storage",
            Zone::Security => "security",
            Zone::Public => "public",
        }
    }
}

/// Opaque host identifier.
pub type HostId = String;

/// A host (physical node, VM, or container) in the fabric.
#[derive(Debug, Clone)]
pub struct Host {
    /// Unique id (`fds/broker`, `mdc/login01`, …).
    pub id: HostId,
    /// Domain the host lives in.
    pub domain: Domain,
    /// Zone the host belongs to.
    pub zone: Zone,
    /// Services this host exposes (named ports, e.g. `ssh`, `https`).
    pub services: Vec<String>,
    /// Marked true when an experiment "compromises" the host.
    pub compromised: bool,
}

/// A firewall selector: matches a specific host, everything in a
/// domain/zone, or anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selector {
    /// Match one host by id.
    Host(HostId),
    /// Match all hosts in a domain.
    InDomain(Domain),
    /// Match all hosts in a zone.
    InZone(Zone),
    /// Match all hosts in a (domain, zone) pair.
    DomainZone(Domain, Zone),
    /// Match anything.
    Any,
}

impl Selector {
    fn matches(&self, host: &Host) -> bool {
        match self {
            Selector::Host(id) => &host.id == id,
            Selector::InDomain(d) => host.domain == *d,
            Selector::InZone(z) => host.zone == *z,
            Selector::DomainZone(d, z) => host.domain == *d && host.zone == *z,
            Selector::Any => true,
        }
    }
}

/// An allow rule (the fabric is default-deny; there are no deny rules,
/// only the absence of allows — which keeps the policy auditable).
#[derive(Debug, Clone)]
pub struct Rule {
    /// Human-readable label (shows up in the E1 matrix output).
    pub label: String,
    /// Source selector.
    pub from: Selector,
    /// Destination selector.
    pub to: Selector,
    /// Service name the rule allows (e.g. `ssh`), or `*`.
    pub service: String,
}

/// Connection attempt outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// No such source host.
    UnknownSource,
    /// No such destination host.
    UnknownDestination,
    /// The destination does not expose that service.
    ServiceNotExposed,
    /// Default-deny: no allow rule matched.
    Denied,
    /// The destination host is administratively isolated (kill switch).
    Isolated,
    /// Isolation targeted a host that does not exist in the fabric.
    UnknownHost,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NetError::UnknownSource => "unknown source host",
            NetError::UnknownDestination => "unknown destination host",
            NetError::ServiceNotExposed => "service not exposed on destination",
            NetError::Denied => "denied by segmentation policy",
            NetError::Isolated => "destination isolated by kill switch",
            NetError::UnknownHost => "no such host in fabric",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NetError {}

/// One connection-attempt record (fed to the SIEM).
#[derive(Debug, Clone)]
pub struct ConnEvent {
    /// Simulated time (ms).
    pub at_ms: u64,
    /// Source host id.
    pub src: HostId,
    /// Destination host id.
    pub dst: HostId,
    /// Service requested.
    pub service: String,
    /// Whether the fabric allowed it.
    pub allowed: bool,
    /// Failure reason when denied.
    pub error: Option<NetError>,
}

#[derive(Default)]
struct NetState {
    hosts: HashMap<HostId, Host>,
    rules: Vec<Rule>,
    isolated: std::collections::HashSet<HostId>,
    log: Vec<ConnEvent>,
}

/// The segmented network fabric.
pub struct Network {
    clock: SimClock,
    state: RwLock<NetState>,
}

impl Network {
    /// An empty fabric (default deny everything).
    pub fn new(clock: SimClock) -> Network {
        Network {
            clock,
            state: RwLock::new(NetState::default()),
        }
    }

    /// Add a host.
    pub fn add_host(
        &self,
        id: impl Into<String>,
        domain: Domain,
        zone: Zone,
        services: &[&str],
    ) -> HostId {
        let id = id.into();
        let host = Host {
            id: id.clone(),
            domain,
            zone,
            services: services.iter().map(|s| s.to_string()).collect(),
            compromised: false,
        };
        self.state.write().hosts.insert(id.clone(), host);
        id
    }

    /// Install an allow rule.
    pub fn allow(
        &self,
        label: impl Into<String>,
        from: Selector,
        to: Selector,
        service: impl Into<String>,
    ) {
        self.state.write().rules.push(Rule {
            label: label.into(),
            from,
            to,
            service: service.into(),
        });
    }

    /// Attempt a connection; enforced and logged. When a traced flow is
    /// active the hop is recorded as a child span carrying the
    /// source/destination domain and zone, so microsegmentation
    /// crossings show up in the span tree.
    pub fn connect(&self, src: &str, dst: &str, service: &str) -> Result<(), NetError> {
        let _span = if dri_trace::active() {
            // Attribute lookup costs a read lock; only pay it mid-flow.
            let state = self.state.read();
            let zone_of = |id: &str| {
                state
                    .hosts
                    .get(id)
                    .map(|h| (h.domain.as_str(), h.zone.as_str()))
                    .unwrap_or(("unknown", "unknown"))
            };
            let (src_domain, src_zone) = zone_of(src);
            let (dst_domain, dst_zone) = zone_of(dst);
            Some(dri_trace::span_with(
                "net.connect",
                dri_trace::Stage::Network,
                &[
                    ("src", src),
                    ("dst", dst),
                    ("service", service),
                    ("src.domain", src_domain),
                    ("src.zone", src_zone),
                    ("dst.domain", dst_domain),
                    ("dst.zone", dst_zone),
                ],
            ))
        } else {
            None
        };
        let result = self.check(src, dst, service);
        if result.is_err() {
            dri_trace::add_attr("outcome", "denied");
        }
        let mut state = self.state.write();
        state.log.push(ConnEvent {
            at_ms: self.clock.now_ms(),
            src: src.to_string(),
            dst: dst.to_string(),
            service: service.to_string(),
            allowed: result.is_ok(),
            error: result.err(),
        });
        result
    }

    /// Policy check without logging (used by the E1 matrix sweep).
    pub fn check(&self, src: &str, dst: &str, service: &str) -> Result<(), NetError> {
        let state = self.state.read();
        let src_host = state.hosts.get(src).ok_or(NetError::UnknownSource)?;
        let dst_host = state.hosts.get(dst).ok_or(NetError::UnknownDestination)?;
        if state.isolated.contains(dst) || state.isolated.contains(src) {
            return Err(NetError::Isolated);
        }
        if !dst_host.services.iter().any(|s| s == service) {
            return Err(NetError::ServiceNotExposed);
        }
        let allowed = state.rules.iter().any(|r| {
            (r.service == "*" || r.service == service)
                && r.from.matches(src_host)
                && r.to.matches(dst_host)
        });
        if allowed {
            Ok(())
        } else {
            Err(NetError::Denied)
        }
    }

    /// Administratively isolate a host (kill switch). Existing and new
    /// connections involving it fail. Isolating a host that was never
    /// added is an error — a typo in an incident runbook must not look
    /// like a successful containment.
    pub fn isolate(&self, host: &str) -> Result<(), NetError> {
        let mut state = self.state.write();
        if !state.hosts.contains_key(host) {
            return Err(NetError::UnknownHost);
        }
        state.isolated.insert(host.to_string());
        Ok(())
    }

    /// Lift isolation. Errors on unknown hosts, like
    /// [`isolate`](Network::isolate).
    pub fn deisolate(&self, host: &str) -> Result<(), NetError> {
        let mut state = self.state.write();
        if !state.hosts.contains_key(host) {
            return Err(NetError::UnknownHost);
        }
        state.isolated.remove(host);
        Ok(())
    }

    /// Mark a host compromised (experiments only — the fabric itself does
    /// not behave differently; detection must come from the SIEM).
    pub fn mark_compromised(&self, host: &str, compromised: bool) {
        if let Some(h) = self.state.write().hosts.get_mut(host) {
            h.compromised = compromised;
        }
    }

    /// Host snapshot.
    pub fn host(&self, id: &str) -> Option<Host> {
        self.state.read().hosts.get(id).cloned()
    }

    /// All host ids, sorted.
    pub fn host_ids(&self) -> Vec<HostId> {
        let mut ids: Vec<HostId> = self.state.read().hosts.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Drain the connection log (the SIEM forwarder calls this).
    pub fn drain_log(&self) -> Vec<ConnEvent> {
        std::mem::take(&mut self.state.write().log)
    }

    /// Current log length without draining.
    pub fn log_len(&self) -> usize {
        self.state.read().log.len()
    }

    /// Number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.state.read().rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Network {
        let net = Network::new(SimClock::new());
        net.add_host("internet/laptop", Domain::Internet, Zone::Public, &[]);
        net.add_host("sws/bastion", Domain::Sws, Zone::Access, &["ssh"]);
        net.add_host(
            "mdc/login01",
            Domain::Mdc,
            Zone::Hpc,
            &["ssh", "jupyter-auth"],
        );
        net.add_host("mdc/mgmt01", Domain::Mdc, Zone::Management, &["admin-api"]);
        net.add_host("fds/broker", Domain::Fds, Zone::Access, &["https"]);
        net.allow(
            "internet->bastion ssh",
            Selector::InDomain(Domain::Internet),
            Selector::Host("sws/bastion".into()),
            "ssh",
        );
        net.allow(
            "bastion->login ssh",
            Selector::Host("sws/bastion".into()),
            Selector::DomainZone(Domain::Mdc, Zone::Hpc),
            "ssh",
        );
        net
    }

    #[test]
    fn default_deny() {
        let net = fabric();
        // Laptop cannot reach the login node directly.
        assert_eq!(
            net.connect("internet/laptop", "mdc/login01", "ssh"),
            Err(NetError::Denied)
        );
        // Laptop cannot reach the management plane at all.
        assert_eq!(
            net.connect("internet/laptop", "mdc/mgmt01", "admin-api"),
            Err(NetError::Denied)
        );
        // Unknown hosts and services fail typed.
        assert_eq!(
            net.connect("ghost", "mdc/login01", "ssh"),
            Err(NetError::UnknownSource)
        );
        assert_eq!(
            net.connect("internet/laptop", "ghost", "ssh"),
            Err(NetError::UnknownDestination)
        );
        assert_eq!(
            net.connect("internet/laptop", "sws/bastion", "telnet"),
            Err(NetError::ServiceNotExposed)
        );
    }

    #[test]
    fn allowed_path_works_and_logs() {
        let net = fabric();
        assert_eq!(net.connect("internet/laptop", "sws/bastion", "ssh"), Ok(()));
        assert_eq!(net.connect("sws/bastion", "mdc/login01", "ssh"), Ok(()));
        let log = net.drain_log();
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|e| e.allowed));
        assert_eq!(net.log_len(), 0);
    }

    #[test]
    fn kill_switch_isolates_host() {
        let net = fabric();
        assert!(net.connect("internet/laptop", "sws/bastion", "ssh").is_ok());
        net.isolate("sws/bastion").unwrap();
        assert_eq!(
            net.connect("internet/laptop", "sws/bastion", "ssh"),
            Err(NetError::Isolated)
        );
        // And the bastion can't originate either.
        assert_eq!(
            net.connect("sws/bastion", "mdc/login01", "ssh"),
            Err(NetError::Isolated)
        );
        net.deisolate("sws/bastion").unwrap();
        assert!(net.connect("internet/laptop", "sws/bastion", "ssh").is_ok());
        // Targeting a host that does not exist is refused, not ignored.
        assert_eq!(net.isolate("sws/ghost"), Err(NetError::UnknownHost));
        assert_eq!(net.deisolate("sws/ghost"), Err(NetError::UnknownHost));
    }

    #[test]
    fn denied_attempts_are_logged_with_reason() {
        let net = fabric();
        let _ = net.connect("internet/laptop", "mdc/login01", "ssh");
        let log = net.drain_log();
        assert_eq!(log.len(), 1);
        assert!(!log[0].allowed);
        assert_eq!(log[0].error, Some(NetError::Denied));
    }

    #[test]
    fn selectors_match_expected_sets() {
        let net = fabric();
        // Zone selector: HPC zone reachable from bastion via rule 2
        // regardless of which HPC host.
        net.add_host("mdc/login02", Domain::Mdc, Zone::Hpc, &["ssh"]);
        assert!(net.connect("sws/bastion", "mdc/login02", "ssh").is_ok());
        // But not a management host, even for ssh.
        net.add_host("mdc/mgmt02", Domain::Mdc, Zone::Management, &["ssh"]);
        assert_eq!(
            net.connect("sws/bastion", "mdc/mgmt02", "ssh"),
            Err(NetError::Denied)
        );
    }

    #[test]
    fn compromise_marking_is_visible() {
        let net = fabric();
        net.mark_compromised("mdc/login01", true);
        assert!(net.host("mdc/login01").unwrap().compromised);
        net.mark_compromised("mdc/login01", false);
        assert!(!net.host("mdc/login01").unwrap().compromised);
    }
}
