//! # dri-netsim — the segmented network substrate
//!
//! Models the paper's four operating domains (MDC, SWS, FDS, SEC) and
//! NIST SP 800-223 zones (Access, Management, HPC, Data Storage,
//! Security), with a default-deny firewall fabric between them. Every
//! connection in the simulation traverses [`topology::Network::connect`],
//! which enforces segmentation and records an auditable connection log —
//! the raw material for the SIEM (E13) and the reachability-matrix
//! experiment (E1).
//!
//! On top of the fabric sit the paper's network-level services:
//!
//! * [`bastion`] — the HA, locked-down SSH jump host set in SWS with its
//!   externally managed kill switch;
//! * [`tailnet`] — WireGuard-style admin overlay (X25519 handshake,
//!   ChaCha20 + HMAC transport) gated on `mgmt-tailnet` RBAC tokens;
//! * [`tunnel`] — Zenith-style reverse tunnels: services in the MDC dial
//!   *out* to FDS, so nothing in MDC/SWS listens on the internet;
//! * [`edge`] — the Cloudflare-style zero-trust edge with DDoS scoring in
//!   front of the tunnel server.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bastion;
pub mod edge;
pub mod tailnet;
pub mod topology;
pub mod tunnel;

pub use bastion::{Bastion, BastionError};
pub use edge::{EdgeError, EdgeProxy};
pub use tailnet::{Tailnet, TailnetError, TailnetNode};
pub use topology::{ConnEvent, Domain, Host, HostId, NetError, Network, Rule, Selector, Zone};
pub use tunnel::{HttpRequest, HttpResponse, TunnelError, TunnelServer};
