//! The locked-down, high-availability SSH bastion set in SWS.
//!
//! §III-B of the paper: a redundant VM set whose only function is to relay
//! SSH from the internet to MDC login nodes. Properties modelled:
//!
//! * **HA + rolling updates** — N instances behind a load balancer; an
//!   instance can be drained for patching without dropping the service;
//! * **certificate-checked relay** — the bastion validates the user's SSH
//!   certificate (CA key, validity, principal) before forwarding;
//! * **externally managed kill switch** — per-user blocks and a global
//!   shutdown that sever live sessions immediately.

use std::collections::{HashMap, HashSet};

use dri_clock::{IdGen, SimClock};
use dri_crypto::ed25519::VerifyingKey;
use dri_sshca::cert::{CertError, SshCertificate};
use parking_lot::RwLock;

use crate::topology::{NetError, Network};

/// Bastion failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BastionError {
    /// All instances are drained or the global kill switch is on.
    Unavailable,
    /// The network fabric refused one of the hops.
    Network(NetError),
    /// Certificate validation failed.
    Cert(CertError),
    /// This user (key id) is blocked by the kill switch.
    UserBlocked,
    /// No such session.
    UnknownSession,
    /// No such load-balanced instance (drain/restore out of range).
    UnknownInstance(usize),
}

impl std::fmt::Display for BastionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BastionError::Unavailable => write!(f, "bastion service unavailable"),
            BastionError::Network(e) => write!(f, "network refused: {e}"),
            BastionError::Cert(e) => write!(f, "certificate rejected: {e}"),
            BastionError::UserBlocked => write!(f, "user blocked by kill switch"),
            BastionError::UnknownSession => write!(f, "unknown session"),
            BastionError::UnknownInstance(i) => write!(f, "no bastion instance {i}"),
        }
    }
}

impl std::error::Error for BastionError {}

/// A live relayed SSH session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelaySession {
    /// Session id.
    pub id: String,
    /// Subject (certificate key id).
    pub key_id: String,
    /// UNIX account in use.
    pub principal: String,
    /// Login node connected to.
    pub target: String,
    /// Which bastion instance carries the session.
    pub instance: usize,
    /// Establishment time (ms).
    pub established_at_ms: u64,
}

struct BastionState {
    /// Healthy = accepting new sessions.
    instance_healthy: Vec<bool>,
    sessions: HashMap<String, RelaySession>,
    blocked_users: HashSet<String>,
    global_kill: bool,
    next_instance: usize,
}

/// The HA bastion service.
pub struct Bastion {
    /// The fabric host id of the bastion service.
    pub host_id: String,
    clock: SimClock,
    ca_key: RwLock<VerifyingKey>,
    state: RwLock<BastionState>,
    ids: IdGen,
    faults: dri_fault::FaultHook,
}

impl Bastion {
    /// Create a bastion with `instances` load-balanced VMs trusting the
    /// given user-CA key.
    pub fn new(
        host_id: impl Into<String>,
        instances: usize,
        ca_key: VerifyingKey,
        clock: SimClock,
    ) -> Bastion {
        assert!(instances > 0);
        Bastion {
            host_id: host_id.into(),
            clock,
            ca_key: RwLock::new(ca_key),
            state: RwLock::new(BastionState {
                instance_healthy: vec![true; instances],
                sessions: HashMap::new(),
                blocked_users: HashSet::new(),
                global_kill: false,
                next_instance: 0,
            }),
            ids: IdGen::new("relay"),
            faults: dri_fault::FaultHook::new(),
        }
    }

    /// Attach the shared fault plane; outages of component `bastion`
    /// make [`relay`](Bastion::relay) fail with
    /// [`BastionError::Unavailable`], exactly as if every instance were
    /// drained.
    pub fn install_fault_plane(&self, plane: std::sync::Arc<dri_fault::FaultPlane>) {
        self.faults.install(plane);
    }

    /// Update the trusted CA key (CA rotation).
    pub fn trust_ca(&self, key: VerifyingKey) {
        *self.ca_key.write() = key;
    }

    /// Relay an SSH connection from `src` to `target` as `principal`,
    /// presenting `cert`. Both network hops and the certificate are
    /// enforced.
    pub fn relay(
        &self,
        network: &Network,
        src: &str,
        target: &str,
        cert: &SshCertificate,
        principal: &str,
    ) -> Result<RelaySession, BastionError> {
        let _span = dri_trace::span_with(
            "bastion.relay",
            dri_trace::Stage::Bastion,
            &[("src", src), ("target", target), ("principal", principal)],
        );
        self.faults
            .check("bastion")
            .map_err(|_| BastionError::Unavailable)?;
        // Pick an instance (round-robin over healthy ones).
        let instance = {
            let mut state = self.state.write();
            if state.global_kill {
                return Err(BastionError::Unavailable);
            }
            if state.blocked_users.contains(&cert.key_id) {
                return Err(BastionError::UserBlocked);
            }
            let healthy: Vec<usize> = state
                .instance_healthy
                .iter()
                .enumerate()
                .filter(|(_, h)| **h)
                .map(|(i, _)| i)
                .collect();
            if healthy.is_empty() {
                return Err(BastionError::Unavailable);
            }
            let pick = healthy[state.next_instance % healthy.len()];
            state.next_instance = state.next_instance.wrapping_add(1);
            pick
        };

        // Hop 1: src -> bastion over ssh.
        network
            .connect(src, &self.host_id, "ssh")
            .map_err(BastionError::Network)?;
        // Certificate gate.
        cert.verify(&self.ca_key.read(), self.clock.now_secs(), Some(principal))
            .map_err(BastionError::Cert)?;
        // Hop 2: bastion -> login node over ssh.
        network
            .connect(&self.host_id, target, "ssh")
            .map_err(BastionError::Network)?;

        let session = RelaySession {
            id: self.ids.next(),
            key_id: cert.key_id.clone(),
            principal: principal.to_string(),
            target: target.to_string(),
            instance,
            established_at_ms: self.clock.now_ms(),
        };
        self.state
            .write()
            .sessions
            .insert(session.id.clone(), session.clone());
        Ok(session)
    }

    /// Is a session still alive?
    pub fn session_alive(&self, session_id: &str) -> bool {
        let state = self.state.read();
        if state.global_kill {
            return false;
        }
        match state.sessions.get(session_id) {
            Some(s) => !state.blocked_users.contains(&s.key_id),
            None => false,
        }
    }

    /// Kill switch: block one user, severing their live sessions.
    /// Returns how many sessions were cut.
    pub fn block_user(&self, key_id: &str) -> usize {
        let mut state = self.state.write();
        state.blocked_users.insert(key_id.to_string());
        let before = state.sessions.len();
        state.sessions.retain(|_, s| s.key_id != key_id);
        before - state.sessions.len()
    }

    /// Lift a user block.
    pub fn unblock_user(&self, key_id: &str) {
        self.state.write().blocked_users.remove(key_id);
    }

    /// Kill switch: shut the whole bastion down. Severs every session.
    pub fn global_kill(&self) -> usize {
        let mut state = self.state.write();
        state.global_kill = true;
        let n = state.sessions.len();
        state.sessions.clear();
        n
    }

    /// Restore service after a global kill.
    pub fn global_restore(&self) {
        self.state.write().global_kill = false;
    }

    /// Drain an instance for patching (stops new sessions landing on
    /// it). Fails on an out-of-range index rather than silently doing
    /// nothing — an ops runbook targeting a phantom instance is a bug.
    pub fn drain_instance(&self, idx: usize) -> Result<(), BastionError> {
        match self.state.write().instance_healthy.get_mut(idx) {
            Some(h) => {
                *h = false;
                Ok(())
            }
            None => Err(BastionError::UnknownInstance(idx)),
        }
    }

    /// Return a drained instance to service. Fails on an out-of-range
    /// index, like [`drain_instance`](Bastion::drain_instance).
    pub fn restore_instance(&self, idx: usize) -> Result<(), BastionError> {
        match self.state.write().instance_healthy.get_mut(idx) {
            Some(h) => {
                *h = true;
                Ok(())
            }
            None => Err(BastionError::UnknownInstance(idx)),
        }
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.state.read().sessions.len()
    }

    /// Number of healthy instances.
    pub fn healthy_instances(&self) -> usize {
        self.state
            .read()
            .instance_healthy
            .iter()
            .filter(|h| **h)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Domain, Selector, Zone};
    use dri_crypto::ed25519::SigningKey;

    struct Fixture {
        net: Network,
        bastion: Bastion,
        ca: SigningKey,
        clock: SimClock,
    }

    fn fixture() -> Fixture {
        let clock = SimClock::starting_at(1_000_000);
        let net = Network::new(clock.clone());
        net.add_host("internet/laptop", Domain::Internet, Zone::Public, &[]);
        net.add_host("sws/bastion", Domain::Sws, Zone::Access, &["ssh"]);
        net.add_host("mdc/login01", Domain::Mdc, Zone::Hpc, &["ssh"]);
        net.allow(
            "inet->bastion",
            Selector::InDomain(Domain::Internet),
            Selector::Host("sws/bastion".into()),
            "ssh",
        );
        net.allow(
            "bastion->hpc",
            Selector::Host("sws/bastion".into()),
            Selector::DomainZone(Domain::Mdc, Zone::Hpc),
            "ssh",
        );
        let ca = SigningKey::from_seed(&[3u8; 32]);
        let bastion = Bastion::new("sws/bastion", 3, ca.verifying_key(), clock.clone());
        Fixture {
            net,
            bastion,
            ca,
            clock,
        }
    }

    fn cert(f: &Fixture, key_id: &str, principal: &str) -> SshCertificate {
        let now = f.clock.now_secs();
        SshCertificate {
            public_key: [9u8; 32],
            serial: 1,
            key_id: key_id.into(),
            principals: vec![principal.into()],
            valid_after: now,
            valid_before: now + 3600,
            critical_options: vec![],
            extensions: vec![],
            signature: [0u8; 64],
        }
        .signed(&f.ca)
    }

    #[test]
    fn relay_happy_path() {
        let f = fixture();
        let c = cert(&f, "maid-1", "u123");
        let session = f
            .bastion
            .relay(&f.net, "internet/laptop", "mdc/login01", &c, "u123")
            .unwrap();
        assert!(f.bastion.session_alive(&session.id));
        assert_eq!(session.principal, "u123");
        assert_eq!(f.bastion.session_count(), 1);
    }

    #[test]
    fn relay_rejects_bad_principal_and_expired_cert() {
        let f = fixture();
        let c = cert(&f, "maid-1", "u123");
        assert_eq!(
            f.bastion
                .relay(&f.net, "internet/laptop", "mdc/login01", &c, "root"),
            Err(BastionError::Cert(CertError::PrincipalNotAllowed))
        );
        f.clock.advance_secs(3601);
        assert_eq!(
            f.bastion
                .relay(&f.net, "internet/laptop", "mdc/login01", &c, "u123"),
            Err(BastionError::Cert(CertError::Expired))
        );
    }

    #[test]
    fn relay_respects_fabric_policy() {
        let f = fixture();
        let c = cert(&f, "maid-1", "u123");
        // A target in a zone the bastion has no rule for.
        f.net
            .add_host("mdc/mgmt01", Domain::Mdc, Zone::Management, &["ssh"]);
        assert_eq!(
            f.bastion
                .relay(&f.net, "internet/laptop", "mdc/mgmt01", &c, "u123"),
            Err(BastionError::Network(NetError::Denied))
        );
    }

    #[test]
    fn per_user_kill_switch_severs_sessions() {
        let f = fixture();
        let c1 = cert(&f, "maid-1", "u123");
        let c2 = cert(&f, "maid-2", "u456");
        // Give maid-2's cert the right principal.
        let s1 = f
            .bastion
            .relay(&f.net, "internet/laptop", "mdc/login01", &c1, "u123")
            .unwrap();
        let s2 = f
            .bastion
            .relay(&f.net, "internet/laptop", "mdc/login01", &c2, "u456")
            .unwrap();
        let cut = f.bastion.block_user("maid-1");
        assert_eq!(cut, 1);
        assert!(!f.bastion.session_alive(&s1.id));
        assert!(f.bastion.session_alive(&s2.id));
        // Blocked user can't reconnect.
        assert_eq!(
            f.bastion
                .relay(&f.net, "internet/laptop", "mdc/login01", &c1, "u123"),
            Err(BastionError::UserBlocked)
        );
        f.bastion.unblock_user("maid-1");
        assert!(f
            .bastion
            .relay(&f.net, "internet/laptop", "mdc/login01", &c1, "u123")
            .is_ok());
    }

    #[test]
    fn global_kill_switch() {
        let f = fixture();
        let c = cert(&f, "maid-1", "u123");
        let s = f
            .bastion
            .relay(&f.net, "internet/laptop", "mdc/login01", &c, "u123")
            .unwrap();
        let cut = f.bastion.global_kill();
        assert_eq!(cut, 1);
        assert!(!f.bastion.session_alive(&s.id));
        assert_eq!(
            f.bastion
                .relay(&f.net, "internet/laptop", "mdc/login01", &c, "u123"),
            Err(BastionError::Unavailable)
        );
        f.bastion.global_restore();
        assert!(f
            .bastion
            .relay(&f.net, "internet/laptop", "mdc/login01", &c, "u123")
            .is_ok());
    }

    #[test]
    fn rolling_patching_keeps_service_up() {
        let f = fixture();
        let c = cert(&f, "maid-1", "u123");
        assert_eq!(f.bastion.healthy_instances(), 3);
        // Drain instances one at a time; service stays available.
        for i in 0..3 {
            f.bastion.drain_instance(i).unwrap();
            assert!(
                f.bastion
                    .relay(&f.net, "internet/laptop", "mdc/login01", &c, "u123")
                    .is_ok(),
                "available while instance {i} is patched"
            );
            f.bastion.restore_instance(i).unwrap();
        }
        // Draining everything takes the service down.
        for i in 0..3 {
            f.bastion.drain_instance(i).unwrap();
        }
        assert_eq!(
            f.bastion
                .relay(&f.net, "internet/laptop", "mdc/login01", &c, "u123"),
            Err(BastionError::Unavailable)
        );
    }

    #[test]
    fn wrong_ca_cert_rejected() {
        let f = fixture();
        let rogue = SigningKey::from_seed(&[99u8; 32]);
        let now = f.clock.now_secs();
        let c = SshCertificate {
            public_key: [9u8; 32],
            serial: 1,
            key_id: "attacker".into(),
            principals: vec!["u123".into()],
            valid_after: now,
            valid_before: now + 3600,
            critical_options: vec![],
            extensions: vec![],
            signature: [0u8; 64],
        }
        .signed(&rogue);
        assert_eq!(
            f.bastion
                .relay(&f.net, "internet/laptop", "mdc/login01", &c, "u123"),
            Err(BastionError::Cert(CertError::BadSignature))
        );
    }
}
