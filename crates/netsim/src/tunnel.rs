//! Zenith-style reverse tunnels.
//!
//! Web services on the cluster are published through tunnels that are
//! dialled *outbound* from the MDC to the Zenith server in FDS, so no MDC
//! host ever listens for inbound internet traffic. Each tunnel is bound
//! to a path (`/jupyter`), carries an X25519-derived session key, and
//! frames are ChaCha20-Poly1305 AEAD protected in both directions.

use std::collections::HashMap;
use std::sync::Arc;

use dri_clock::{SimClock, SimRng};
use dri_crypto::aead;
use dri_crypto::hkdf;
use dri_crypto::x25519;
use parking_lot::{Mutex, RwLock};

use crate::topology::{NetError, Network};

/// A simplified HTTP-ish request forwarded through a tunnel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request path (`/jupyter/lab`).
    pub path: String,
    /// Headers, notably the broker token header.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Fetch a header value.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(self.path.as_bytes());
        out.push(0);
        for (k, v) in &self.headers {
            out.extend_from_slice(k.as_bytes());
            out.push(1);
            out.extend_from_slice(v.as_bytes());
            out.push(2);
        }
        out.push(0);
        out.extend_from_slice(&self.body);
        out
    }

    fn from_bytes(data: &[u8]) -> Option<HttpRequest> {
        let mut parts = data.splitn(2, |b| *b == 0);
        let path = String::from_utf8(parts.next()?.to_vec()).ok()?;
        let rest = parts.next()?;
        let mut headers = Vec::new();
        let mut pos = 0;
        while pos < rest.len() && rest[pos] != 0 {
            let kend = rest[pos..].iter().position(|b| *b == 1)? + pos;
            let vend = rest[kend..].iter().position(|b| *b == 2)? + kend;
            headers.push((
                String::from_utf8(rest[pos..kend].to_vec()).ok()?,
                String::from_utf8(rest[kend + 1..vend].to_vec()).ok()?,
            ));
            pos = vend + 1;
        }
        if pos >= rest.len() {
            return None;
        }
        let body = rest[pos + 1..].to_vec();
        Some(HttpRequest {
            path,
            headers,
            body,
        })
    }
}

/// A response from the published service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
}

/// Tunnel failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TunnelError {
    /// No tunnel registered for the path.
    NoRoute(String),
    /// The outbound registration was refused by the fabric.
    Network(NetError),
    /// Tunnel closed by kill switch.
    Closed,
    /// Frame authentication failed.
    DecryptFailed,
}

impl std::fmt::Display for TunnelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TunnelError::NoRoute(p) => write!(f, "no tunnel for path {p}"),
            TunnelError::Network(e) => write!(f, "network refused: {e}"),
            TunnelError::Closed => write!(f, "tunnel closed"),
            TunnelError::DecryptFailed => write!(f, "tunnel frame authentication failed"),
        }
    }
}

impl std::error::Error for TunnelError {}

/// The backend handler a tunnel client exposes (e.g. the Jupyter
/// authenticator on a login node).
pub type Backend = Arc<dyn Fn(HttpRequest) -> HttpResponse + Send + Sync>;

struct Route {
    client_host: String,
    session_key: [u8; 32],
    backend: Backend,
    open: bool,
    requests_served: u64,
}

/// The Zenith server (runs in FDS, Access zone).
pub struct TunnelServer {
    /// Fabric host id of the server.
    pub host_id: String,
    clock: SimClock,
    server_private: [u8; 32],
    /// The server's X25519 public key (clients use it in the handshake).
    pub server_public: [u8; 32],
    routes: RwLock<HashMap<String, Route>>,
    nonce_counter: Mutex<u64>,
}

impl TunnelServer {
    /// Create a server with a deterministic key.
    pub fn new(host_id: impl Into<String>, rng: &mut SimRng, clock: SimClock) -> TunnelServer {
        let server_private = x25519::clamp(rng.seed32());
        let server_public = x25519::public_key(&server_private);
        TunnelServer {
            host_id: host_id.into(),
            clock,
            server_private,
            server_public,
            routes: RwLock::new(HashMap::new()),
            nonce_counter: Mutex::new(0),
        }
    }

    /// A client in the MDC dials out and registers `path`. The fabric
    /// must allow `client_host -> server` on service `zenith`; the
    /// handshake derives the tunnel session key.
    pub fn register_tunnel(
        &self,
        network: &Network,
        client_host: &str,
        client_private: &[u8; 32],
        path: &str,
        backend: Backend,
    ) -> Result<(), TunnelError> {
        network
            .connect(client_host, &self.host_id, "zenith")
            .map_err(TunnelError::Network)?;
        let client_public = x25519::public_key(client_private);
        let shared = x25519::shared_secret(&self.server_private, &client_public);
        let mut session_key = [0u8; 32];
        hkdf::hkdf(b"dri-zenith-v1", &shared, path.as_bytes(), &mut session_key);
        self.routes.write().insert(
            path.to_string(),
            Route {
                client_host: client_host.to_string(),
                session_key,
                backend,
                open: true,
                requests_served: 0,
            },
        );
        Ok(())
    }

    /// Route an inbound request down the tunnel: encrypt the request
    /// frame, "transport" it, decrypt at the client end, call the
    /// backend, and return the response the same way. The encryption
    /// round-trip is executed for real so a corrupted frame fails.
    pub fn handle(&self, request: HttpRequest) -> Result<HttpResponse, TunnelError> {
        let _span = dri_trace::span_with(
            "tunnel.handle",
            dri_trace::Stage::Tunnel,
            &[("path", &request.path)],
        );
        let (key, backend) = {
            let routes = self.routes.read();
            // Longest-prefix route match.
            let route = routes
                .iter()
                .filter(|(p, _)| request.path.starts_with(p.as_str()))
                .max_by_key(|(p, _)| p.len())
                .map(|(_, r)| r)
                .ok_or_else(|| TunnelError::NoRoute(request.path.clone()))?;
            if !route.open {
                return Err(TunnelError::Closed);
            }
            (route.session_key, route.backend.clone())
        };
        let mut nonce = [0u8; 12];
        {
            let mut counter = self.nonce_counter.lock();
            *counter += 1;
            nonce[..8].copy_from_slice(&counter.to_le_bytes());
        }
        // Server -> client frame: ChaCha20-Poly1305 with the route path
        // bound as associated data.
        let frame = aead::seal(&key, &nonce, b"zenith-req", &request.to_bytes());

        // Client end: authenticate + decrypt + dispatch.
        let plain =
            aead::open(&key, &nonce, b"zenith-req", &frame).ok_or(TunnelError::DecryptFailed)?;
        let decoded = HttpRequest::from_bytes(&plain).ok_or(TunnelError::DecryptFailed)?;
        let response = backend(decoded);

        // Response returns over the same keyed channel.
        let mut resp_nonce = nonce;
        resp_nonce[11] ^= 0x80; // distinct nonce for the reverse direction
        let resp_frame = aead::seal(&key, &resp_nonce, b"zenith-resp", &response.body);
        let resp_plain = aead::open(&key, &resp_nonce, b"zenith-resp", &resp_frame)
            .ok_or(TunnelError::DecryptFailed)?;

        if let Some(route) = self
            .routes
            .write()
            .values_mut()
            .find(|r| r.session_key == key)
        {
            route.requests_served += 1;
        }
        let _ = self.clock.now_ms();
        Ok(HttpResponse {
            status: response.status,
            body: resp_plain,
        })
    }

    /// Kill switch: close one tunnel.
    pub fn close_tunnel(&self, path: &str) -> bool {
        match self.routes.write().get_mut(path) {
            Some(r) => {
                r.open = false;
                true
            }
            None => false,
        }
    }

    /// Reopen a tunnel (client re-dial).
    pub fn reopen_tunnel(&self, path: &str) {
        if let Some(r) = self.routes.write().get_mut(path) {
            r.open = true;
        }
    }

    /// Kill switch: close everything.
    pub fn close_all(&self) -> usize {
        let mut routes = self.routes.write();
        let n = routes.values().filter(|r| r.open).count();
        for r in routes.values_mut() {
            r.open = false;
        }
        n
    }

    /// Requests served through a path so far.
    pub fn requests_served(&self, path: &str) -> u64 {
        self.routes
            .read()
            .get(path)
            .map(|r| r.requests_served)
            .unwrap_or(0)
    }

    /// Which MDC host terminates a path.
    pub fn client_host(&self, path: &str) -> Option<String> {
        self.routes.read().get(path).map(|r| r.client_host.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Domain, Selector, Zone};

    fn fabric(clock: &SimClock) -> Network {
        let net = Network::new(clock.clone());
        net.add_host("mdc/login01", Domain::Mdc, Zone::Hpc, &["jupyter-auth"]);
        net.add_host(
            "fds/zenith",
            Domain::Fds,
            Zone::Access,
            &["zenith", "https"],
        );
        net.allow(
            "mdc outbound zenith",
            Selector::DomainZone(Domain::Mdc, Zone::Hpc),
            Selector::Host("fds/zenith".into()),
            "zenith",
        );
        net
    }

    fn backend_echo() -> Backend {
        Arc::new(|req: HttpRequest| HttpResponse {
            status: 200,
            body: format!("served {}", req.path).into_bytes(),
        })
    }

    #[test]
    fn request_roundtrip_through_tunnel() {
        let clock = SimClock::new();
        let net = fabric(&clock);
        let mut rng = SimRng::seed_from_u64(1);
        let server = TunnelServer::new("fds/zenith", &mut rng, clock.clone());
        let client_private = x25519::clamp(rng.seed32());
        server
            .register_tunnel(
                &net,
                "mdc/login01",
                &client_private,
                "/jupyter",
                backend_echo(),
            )
            .unwrap();

        let resp = server
            .handle(HttpRequest {
                path: "/jupyter/lab".into(),
                headers: vec![("x-auth-token".into(), "tok".into())],
                body: b"hello".to_vec(),
            })
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"served /jupyter/lab");
        assert_eq!(server.requests_served("/jupyter"), 1);
        assert_eq!(
            server.client_host("/jupyter").as_deref(),
            Some("mdc/login01")
        );
    }

    #[test]
    fn registration_respects_fabric() {
        let clock = SimClock::new();
        let net = fabric(&clock);
        // A host with no outbound allow rule.
        net.add_host("mdc/mgmt01", Domain::Mdc, Zone::Management, &[]);
        let mut rng = SimRng::seed_from_u64(2);
        let server = TunnelServer::new("fds/zenith", &mut rng, clock);
        let pk = x25519::clamp(rng.seed32());
        assert_eq!(
            server.register_tunnel(&net, "mdc/mgmt01", &pk, "/x", backend_echo()),
            Err(TunnelError::Network(NetError::Denied))
        );
    }

    #[test]
    fn unrouted_path_404s() {
        let clock = SimClock::new();
        let mut rng = SimRng::seed_from_u64(3);
        let server = TunnelServer::new("fds/zenith", &mut rng, clock.clone());
        assert_eq!(
            server.handle(HttpRequest {
                path: "/nope".into(),
                headers: vec![],
                body: vec![]
            }),
            Err(TunnelError::NoRoute("/nope".into()))
        );
    }

    #[test]
    fn kill_switch_closes_and_reopens() {
        let clock = SimClock::new();
        let net = fabric(&clock);
        let mut rng = SimRng::seed_from_u64(4);
        let server = TunnelServer::new("fds/zenith", &mut rng, clock);
        let pk = x25519::clamp(rng.seed32());
        server
            .register_tunnel(&net, "mdc/login01", &pk, "/jupyter", backend_echo())
            .unwrap();
        assert!(server.close_tunnel("/jupyter"));
        assert_eq!(
            server.handle(HttpRequest {
                path: "/jupyter".into(),
                headers: vec![],
                body: vec![]
            }),
            Err(TunnelError::Closed)
        );
        server.reopen_tunnel("/jupyter");
        assert!(server
            .handle(HttpRequest {
                path: "/jupyter".into(),
                headers: vec![],
                body: vec![]
            })
            .is_ok());
        // close_all counts open tunnels.
        assert_eq!(server.close_all(), 1);
    }

    #[test]
    fn longest_prefix_routing() {
        let clock = SimClock::new();
        let net = fabric(&clock);
        let mut rng = SimRng::seed_from_u64(5);
        let server = TunnelServer::new("fds/zenith", &mut rng, clock);
        let pk1 = x25519::clamp(rng.seed32());
        let pk2 = x25519::clamp(rng.seed32());
        let backend_a: Backend = Arc::new(|_| HttpResponse {
            status: 200,
            body: b"A".to_vec(),
        });
        let backend_b: Backend = Arc::new(|_| HttpResponse {
            status: 200,
            body: b"B".to_vec(),
        });
        server
            .register_tunnel(&net, "mdc/login01", &pk1, "/app", backend_a)
            .unwrap();
        server
            .register_tunnel(&net, "mdc/login01", &pk2, "/app/deep", backend_b)
            .unwrap();
        assert_eq!(
            server
                .handle(HttpRequest {
                    path: "/app/deep/page".into(),
                    headers: vec![],
                    body: vec![]
                })
                .unwrap()
                .body,
            b"B"
        );
        assert_eq!(
            server
                .handle(HttpRequest {
                    path: "/app/other".into(),
                    headers: vec![],
                    body: vec![]
                })
                .unwrap()
                .body,
            b"A"
        );
    }

    #[test]
    fn request_codec_roundtrip() {
        let req = HttpRequest {
            path: "/jupyter".into(),
            headers: vec![
                ("x-auth-token".into(), "abc.def.ghi".into()),
                ("host".into(), "example.com".into()),
            ],
            body: vec![1, 2, 3, 0, 255],
        };
        let encoded = req.to_bytes();
        assert_eq!(HttpRequest::from_bytes(&encoded), Some(req));
    }
}
