//! The administrators' WireGuard-style overlay network (Tailscale-like).
//!
//! §III-B: access to management services rides a tailnet whose enrolment
//! is gated on broker-issued `mgmt-tailnet` RBAC tokens. Modelled
//! faithfully at the protocol level:
//!
//! * each node holds an X25519 keypair; the coordination server only ever
//!   sees public keys;
//! * enrolment requires a valid admin token and yields a **time-limited
//!   lease** — re-authentication is forced when it lapses;
//! * node-to-node traffic is end-to-end encrypted: X25519 ECDH → HKDF →
//!   ChaCha20-Poly1305 AEAD with the sender name as associated data, and tampering is
//!   detected;
//! * ACLs restrict which nodes may talk;
//! * the externally managed kill switch can drop one node or the whole
//!   tailnet instantly.

use std::collections::HashMap;

use dri_broker::broker::Jwks;
use dri_clock::{SimClock, SimRng};
use dri_crypto::aead;
use dri_crypto::hkdf;
use dri_crypto::jwt::JwtError;
use dri_crypto::x25519;
use dri_sync::Snapshot;
use parking_lot::{Mutex, RwLock};

/// A device participating in the tailnet (lives with its owner; the
/// private key never reaches the coordination server).
pub struct TailnetNode {
    /// Node name (e.g. `dave-laptop`, `mdc-mgmt01`).
    pub name: String,
    private: [u8; 32],
    /// X25519 public key.
    pub public: [u8; 32],
}

impl TailnetNode {
    /// Generate a node keypair.
    pub fn generate(name: impl Into<String>, rng: &mut SimRng) -> TailnetNode {
        let private = x25519::clamp(rng.seed32());
        let public = x25519::public_key(&private);
        TailnetNode {
            name: name.into(),
            private,
            public,
        }
    }

    fn session_key(&self, peer_public: &[u8; 32]) -> [u8; 32] {
        let shared = x25519::shared_secret(&self.private, peer_public);
        let mut key = [0u8; 32];
        hkdf::hkdf(b"dri-tailnet-v1", &shared, b"session", &mut key);
        key
    }

    /// Seal a payload for `peer_public` with ChaCha20-Poly1305; the
    /// sender's node name is bound as associated data.
    pub fn seal(&self, peer_public: &[u8; 32], nonce12: &[u8; 12], plaintext: &[u8]) -> Vec<u8> {
        let key = self.session_key(peer_public);
        aead::seal(&key, nonce12, self.name.as_bytes(), plaintext)
    }

    /// Verify + decrypt a payload from the peer that owns
    /// `sender_public`, checking the sender-name associated data.
    /// `None` on any tamper.
    pub fn open_from(
        &self,
        sender_public: &[u8; 32],
        sender_name: &str,
        nonce12: &[u8; 12],
        frame: &[u8],
    ) -> Option<Vec<u8>> {
        let key = self.session_key(sender_public);
        aead::open(&key, nonce12, sender_name.as_bytes(), frame)
    }
}

/// Tailnet failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailnetError {
    /// Enrolment token invalid.
    BadToken(JwtError),
    /// Token lacks the admin role.
    RoleMissing,
    /// Node not enrolled (or lease expired — re-enrol).
    NotEnrolled(String),
    /// ACL forbids this pair.
    AclDenied,
    /// Node disabled by kill switch.
    NodeDisabled(String),
    /// Whole tailnet disabled by kill switch.
    TailnetDown,
    /// Frame failed authentication (tamper or wrong keys).
    DecryptFailed,
    /// Coordination server unreachable (fault-plane outage). Enrolment
    /// and sends fail closed; existing leases are untouched.
    Unavailable,
}

impl std::fmt::Display for TailnetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TailnetError::BadToken(e) => write!(f, "enrolment token rejected: {e}"),
            TailnetError::RoleMissing => write!(f, "token lacks admin role"),
            TailnetError::NotEnrolled(n) => write!(f, "node {n} not enrolled"),
            TailnetError::AclDenied => write!(f, "ACL denies this path"),
            TailnetError::NodeDisabled(n) => write!(f, "node {n} disabled"),
            TailnetError::TailnetDown => write!(f, "tailnet disabled by kill switch"),
            TailnetError::DecryptFailed => write!(f, "frame authentication failed"),
            TailnetError::Unavailable => write!(f, "coordination server unavailable"),
        }
    }
}

impl std::error::Error for TailnetError {}

#[derive(Clone)]
struct Enrollment {
    public: [u8; 32],
    subject: String,
    lease_expires_at: u64,
    disabled: bool,
}

/// The tailnet coordination server.
pub struct Tailnet {
    /// Audience enrolment tokens must carry.
    pub audience: String,
    /// Role enrolment tokens must carry.
    pub required_role: String,
    /// Enrolment lease duration (seconds).
    pub lease_secs: u64,
    clock: SimClock,
    jwks: Snapshot<Jwks>,
    nodes: RwLock<HashMap<String, Enrollment>>,
    acl: RwLock<Vec<(String, String)>>, // (from, to) node-name pairs; "*" wildcard
    down: RwLock<bool>,
    nonce_counter: Mutex<u64>,
    /// Fault-plane hook consulted on enrol/send (component `tailnet`).
    faults: dri_fault::FaultHook,
}

impl Tailnet {
    /// Create a tailnet validating tokens against `jwks`.
    pub fn new(jwks: Jwks, lease_secs: u64, clock: SimClock) -> Tailnet {
        Tailnet {
            audience: "mgmt-tailnet".to_string(),
            required_role: "sysadmin".to_string(),
            lease_secs,
            clock,
            jwks: Snapshot::new(jwks),
            nodes: RwLock::new(HashMap::new()),
            acl: RwLock::new(Vec::new()),
            down: RwLock::new(false),
            nonce_counter: Mutex::new(0),
            faults: dri_fault::FaultHook::new(),
        }
    }

    /// Refresh the JWKS snapshot (key rotation).
    pub fn update_jwks(&self, jwks: Jwks) {
        self.jwks.store(jwks);
    }

    /// Attach the shared fault-injection plane (chaos drills).
    pub fn install_fault_plane(&self, plane: std::sync::Arc<dri_fault::FaultPlane>) {
        self.faults.install(plane);
    }

    /// Force-expire every *user* lease (infrastructure enrolments, whose
    /// leases never lapse, are untouched). Returns how many leases were
    /// invalidated. This is the lease-expiry-storm drill: every affected
    /// node must re-authenticate through the broker to re-enrol, while
    /// nothing established elsewhere (broker sessions, shells) is cut.
    pub fn expire_all_leases(&self) -> usize {
        let mut expired = 0;
        for e in self.nodes.write().values_mut() {
            if e.lease_expires_at != u64::MAX {
                e.lease_expires_at = 0;
                expired += 1;
            }
        }
        expired
    }

    /// Permit `from` to reach `to` (`"*"` is a wildcard).
    pub fn allow(&self, from: &str, to: &str) {
        self.acl.write().push((from.to_string(), to.to_string()));
    }

    /// Enrol a node with an admin RBAC token. Returns the lease expiry.
    pub fn enroll(&self, node: &TailnetNode, token: &str) -> Result<u64, TailnetError> {
        let _span = dri_trace::span_with(
            "tailnet.enroll",
            dri_trace::Stage::Tailnet,
            &[("node", &node.name)],
        );
        self.faults
            .check("tailnet")
            .map_err(|_| TailnetError::Unavailable)?;
        let now = self.clock.now_secs();
        let claims = self
            .jwks
            .load()
            .validate(token, &self.audience, now)
            .map_err(TailnetError::BadToken)?;
        if !claims.has_role(&self.required_role) {
            return Err(TailnetError::RoleMissing);
        }
        let lease_expires_at = now + self.lease_secs;
        self.nodes.write().insert(
            node.name.clone(),
            Enrollment {
                public: node.public,
                subject: claims.subject.clone(),
                lease_expires_at,
                disabled: false,
            },
        );
        Ok(lease_expires_at)
    }

    /// Enrol an infrastructure node (management servers join with a
    /// provisioning credential out of band; modelled as direct trust).
    pub fn enroll_infrastructure(&self, node: &TailnetNode) {
        self.nodes.write().insert(
            node.name.clone(),
            Enrollment {
                public: node.public,
                subject: format!("infra:{}", node.name),
                lease_expires_at: u64::MAX,
                disabled: false,
            },
        );
    }

    fn check_path(&self, from: &str, to: &str) -> Result<([u8; 32], [u8; 32]), TailnetError> {
        if *self.down.read() {
            return Err(TailnetError::TailnetDown);
        }
        let now = self.clock.now_secs();
        let nodes = self.nodes.read();
        let f = nodes
            .get(from)
            .ok_or_else(|| TailnetError::NotEnrolled(from.to_string()))?;
        let t = nodes
            .get(to)
            .ok_or_else(|| TailnetError::NotEnrolled(to.to_string()))?;
        if f.disabled {
            return Err(TailnetError::NodeDisabled(from.to_string()));
        }
        if t.disabled {
            return Err(TailnetError::NodeDisabled(to.to_string()));
        }
        if now >= f.lease_expires_at {
            return Err(TailnetError::NotEnrolled(from.to_string()));
        }
        if now >= t.lease_expires_at {
            return Err(TailnetError::NotEnrolled(to.to_string()));
        }
        let allowed = self
            .acl
            .read()
            .iter()
            .any(|(a, b)| (a == "*" || a == from) && (b == "*" || b == to));
        if !allowed {
            return Err(TailnetError::AclDenied);
        }
        Ok((f.public, t.public))
    }

    /// Send an encrypted message from `from_node` to the node named `to`.
    /// Returns `(wire_frame, nonce)` after policy checks; the caller
    /// delivers the frame to the peer, which opens it with
    /// [`TailnetNode::open`].
    pub fn send(
        &self,
        from_node: &TailnetNode,
        to: &str,
        plaintext: &[u8],
    ) -> Result<(Vec<u8>, [u8; 12]), TailnetError> {
        let _span = dri_trace::span_with(
            "tailnet.send",
            dri_trace::Stage::Tailnet,
            &[("from", &from_node.name), ("to", to)],
        );
        self.faults
            .check("tailnet")
            .map_err(|_| TailnetError::Unavailable)?;
        let (_from_pub, to_pub) = self.check_path(&from_node.name, to)?;
        let mut nonce = [0u8; 12];
        let mut counter = self.nonce_counter.lock();
        *counter += 1;
        nonce[..8].copy_from_slice(&counter.to_le_bytes());
        Ok((from_node.seal(&to_pub, &nonce, plaintext), nonce))
    }

    /// The registered public key for a node (peers fetch this from the
    /// coordination server to decrypt).
    pub fn public_key_of(&self, name: &str) -> Option<[u8; 32]> {
        self.nodes.read().get(name).map(|e| e.public)
    }

    /// Kill switch: disable one node.
    pub fn disable_node(&self, name: &str) -> bool {
        match self.nodes.write().get_mut(name) {
            Some(e) => {
                e.disabled = true;
                true
            }
            None => false,
        }
    }

    /// Re-enable a node.
    pub fn enable_node(&self, name: &str) {
        if let Some(e) = self.nodes.write().get_mut(name) {
            e.disabled = false;
        }
    }

    /// Kill switch: take the whole tailnet down.
    pub fn kill(&self) {
        *self.down.write() = true;
    }

    /// Restore the tailnet.
    pub fn restore(&self) {
        *self.down.write() = false;
    }

    /// Enrolled node count.
    pub fn node_count(&self) -> usize {
        self.nodes.read().len()
    }

    /// Which subject enrolled a node.
    pub fn node_subject(&self, name: &str) -> Option<String> {
        self.nodes.read().get(name).map(|e| e.subject.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dri_broker::authz::StaticAuthz;
    use dri_broker::broker::{IdentityBroker, IdentitySource, TokenPolicy};
    use dri_broker::managed_idp::ManagedLogin;
    use dri_federation::metadata::FederationRegistry;
    use std::sync::Arc;

    struct Fixture {
        tailnet: Tailnet,
        broker: Arc<IdentityBroker>,
        clock: SimClock,
        admin_session: String,
    }

    fn fixture() -> Fixture {
        let clock = SimClock::starting_at(2_000_000_000);
        let authz = Arc::new(StaticAuthz::new());
        authz.grant("admin:dave", "mgmt-tailnet", &["sysadmin"]);
        let broker = Arc::new(IdentityBroker::new(
            "https://broker.isambard.ac.uk",
            [51u8; 32],
            3600,
            clock.clone(),
            Arc::new(FederationRegistry::new()),
            authz,
        ));
        broker.register_service(TokenPolicy::admin("mgmt-tailnet", 600));
        let session = broker
            .login_managed(
                &ManagedLogin {
                    subject: "admin:dave".into(),
                    acr: "mfa-hw".into(),
                },
                IdentitySource::AdminIdp,
            )
            .unwrap();
        let tailnet = Tailnet::new(broker.jwks(), 4 * 3600, clock.clone());
        Fixture {
            tailnet,
            broker,
            clock,
            admin_session: session.session_id,
        }
    }

    fn admin_token(f: &Fixture) -> String {
        f.broker
            .issue_token(&f.admin_session, "mgmt-tailnet")
            .unwrap()
            .0
    }

    #[test]
    fn enrolment_requires_valid_admin_token() {
        let f = fixture();
        let mut rng = SimRng::seed_from_u64(1);
        let laptop = TailnetNode::generate("dave-laptop", &mut rng);
        assert!(matches!(
            f.tailnet.enroll(&laptop, "junk.token.here"),
            Err(TailnetError::BadToken(_))
        ));
        let lease = f.tailnet.enroll(&laptop, &admin_token(&f)).unwrap();
        assert!(lease > f.clock.now_secs());
        assert_eq!(
            f.tailnet.node_subject("dave-laptop").as_deref(),
            Some("admin:dave")
        );
    }

    #[test]
    fn end_to_end_encryption_and_tamper_detection() {
        let f = fixture();
        let mut rng = SimRng::seed_from_u64(2);
        let laptop = TailnetNode::generate("dave-laptop", &mut rng);
        let mgmt = TailnetNode::generate("mdc-mgmt01", &mut rng);
        f.tailnet.enroll(&laptop, &admin_token(&f)).unwrap();
        f.tailnet.enroll_infrastructure(&mgmt);
        f.tailnet.allow("dave-laptop", "mdc-mgmt01");

        let (frame, nonce) = f
            .tailnet
            .send(&laptop, "mdc-mgmt01", b"systemctl restart slurmctld")
            .unwrap();
        // Ciphertext is not the plaintext.
        assert!(!frame.windows(7).any(|w| w == b"restart"));
        // The peer opens it with the sender's registered public key.
        let sender_pub = f.tailnet.public_key_of("dave-laptop").unwrap();
        let opened = mgmt
            .open_from(&sender_pub, "dave-laptop", &nonce, &frame)
            .unwrap();
        assert_eq!(opened, b"systemctl restart slurmctld");
        // Tampering is detected.
        let mut bad = frame.clone();
        bad[0] ^= 1;
        assert!(mgmt
            .open_from(&sender_pub, "dave-laptop", &nonce, &bad)
            .is_none());
        // A different node cannot open it.
        let eve = TailnetNode::generate("eve", &mut rng);
        assert!(eve
            .open_from(&sender_pub, "dave-laptop", &nonce, &frame)
            .is_none());
        // Claiming a different sender name also fails (AAD binding).
        assert!(mgmt
            .open_from(&sender_pub, "impostor", &nonce, &frame)
            .is_none());
    }

    #[test]
    fn acl_default_denies() {
        let f = fixture();
        let mut rng = SimRng::seed_from_u64(3);
        let laptop = TailnetNode::generate("dave-laptop", &mut rng);
        let mgmt = TailnetNode::generate("mdc-mgmt01", &mut rng);
        f.tailnet.enroll(&laptop, &admin_token(&f)).unwrap();
        f.tailnet.enroll_infrastructure(&mgmt);
        assert_eq!(
            f.tailnet.send(&laptop, "mdc-mgmt01", b"hi"),
            Err(TailnetError::AclDenied)
        );
    }

    #[test]
    fn lease_expiry_forces_reenrolment() {
        let f = fixture();
        let mut rng = SimRng::seed_from_u64(4);
        let laptop = TailnetNode::generate("dave-laptop", &mut rng);
        let mgmt = TailnetNode::generate("mdc-mgmt01", &mut rng);
        f.tailnet.enroll(&laptop, &admin_token(&f)).unwrap();
        f.tailnet.enroll_infrastructure(&mgmt);
        f.tailnet.allow("*", "*");
        assert!(f.tailnet.send(&laptop, "mdc-mgmt01", b"x").is_ok());
        f.clock.advance_secs(4 * 3600 + 1);
        assert_eq!(
            f.tailnet.send(&laptop, "mdc-mgmt01", b"x"),
            Err(TailnetError::NotEnrolled("dave-laptop".into()))
        );
        // Session is also stale at the broker by now; a *fresh* login
        // would be needed in reality — here we show re-enrolment works
        // with a fresh token.
        let session = f
            .broker
            .login_managed(
                &ManagedLogin {
                    subject: "admin:dave".into(),
                    acr: "mfa-hw".into(),
                },
                IdentitySource::AdminIdp,
            )
            .unwrap();
        let (tok, _) = f
            .broker
            .issue_token(&session.session_id, "mgmt-tailnet")
            .unwrap();
        f.tailnet.enroll(&laptop, &tok).unwrap();
        assert!(f.tailnet.send(&laptop, "mdc-mgmt01", b"x").is_ok());
    }

    #[test]
    fn kill_switches() {
        let f = fixture();
        let mut rng = SimRng::seed_from_u64(5);
        let laptop = TailnetNode::generate("dave-laptop", &mut rng);
        let mgmt = TailnetNode::generate("mdc-mgmt01", &mut rng);
        f.tailnet.enroll(&laptop, &admin_token(&f)).unwrap();
        f.tailnet.enroll_infrastructure(&mgmt);
        f.tailnet.allow("*", "*");

        assert!(f.tailnet.disable_node("dave-laptop"));
        assert_eq!(
            f.tailnet.send(&laptop, "mdc-mgmt01", b"x"),
            Err(TailnetError::NodeDisabled("dave-laptop".into()))
        );
        f.tailnet.enable_node("dave-laptop");
        assert!(f.tailnet.send(&laptop, "mdc-mgmt01", b"x").is_ok());

        f.tailnet.kill();
        assert_eq!(
            f.tailnet.send(&laptop, "mdc-mgmt01", b"x"),
            Err(TailnetError::TailnetDown)
        );
        f.tailnet.restore();
        assert!(f.tailnet.send(&laptop, "mdc-mgmt01", b"x").is_ok());
    }

    #[test]
    fn lease_expiry_storm_spares_infrastructure_and_allows_reenrolment() {
        let f = fixture();
        let mut rng = SimRng::seed_from_u64(7);
        let laptop = TailnetNode::generate("dave-laptop", &mut rng);
        let mgmt = TailnetNode::generate("mdc-mgmt01", &mut rng);
        f.tailnet.enroll(&laptop, &admin_token(&f)).unwrap();
        f.tailnet.enroll_infrastructure(&mgmt);
        f.tailnet.allow("*", "*");
        assert!(f.tailnet.send(&laptop, "mdc-mgmt01", b"x").is_ok());

        // The storm invalidates the user lease but not the infra one.
        assert_eq!(f.tailnet.expire_all_leases(), 1);
        assert_eq!(
            f.tailnet.send(&laptop, "mdc-mgmt01", b"x"),
            Err(TailnetError::NotEnrolled("dave-laptop".into()))
        );
        // Re-auth through the broker restores the path.
        f.tailnet.enroll(&laptop, &admin_token(&f)).unwrap();
        assert!(f.tailnet.send(&laptop, "mdc-mgmt01", b"x").is_ok());
        // Repeat storms are idempotent over infra nodes.
        assert_eq!(f.tailnet.expire_all_leases(), 1);
    }

    #[test]
    fn fault_plane_outage_fails_enrol_and_send_closed() {
        let f = fixture();
        let mut rng = SimRng::seed_from_u64(8);
        let laptop = TailnetNode::generate("dave-laptop", &mut rng);
        let mgmt = TailnetNode::generate("mdc-mgmt01", &mut rng);
        f.tailnet.enroll(&laptop, &admin_token(&f)).unwrap();
        f.tailnet.enroll_infrastructure(&mgmt);
        f.tailnet.allow("*", "*");

        let plan = dri_fault::FaultPlan::new(5).outage("tailnet", 0, u64::MAX);
        let plane = std::sync::Arc::new(dri_fault::FaultPlane::new(plan, f.clock.clone()));
        f.tailnet.install_fault_plane(plane.clone());
        assert_eq!(
            f.tailnet.send(&laptop, "mdc-mgmt01", b"x"),
            Err(TailnetError::Unavailable)
        );
        assert_eq!(
            f.tailnet.enroll(&laptop, &admin_token(&f)),
            Err(TailnetError::Unavailable)
        );
        // Leases were never touched: recovery is instant on disarm.
        plane.set_enabled(false);
        assert!(f.tailnet.send(&laptop, "mdc-mgmt01", b"x").is_ok());
    }

    #[test]
    fn non_admin_token_cannot_enroll() {
        let f = fixture();
        // Issue a researcher token for a different audience and try it.
        let mut rng = SimRng::seed_from_u64(6);
        let laptop = TailnetNode::generate("mallory-laptop", &mut rng);
        assert!(matches!(
            f.tailnet.enroll(&laptop, "not-even-a-token"),
            Err(TailnetError::BadToken(_))
        ));
    }
}
