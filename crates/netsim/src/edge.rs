//! The Cloudflare-style zero-trust edge in front of the tunnel server.
//!
//! Provides what the paper leans on Cloudflare tunnels for: the origin
//! (FDS Kubernetes VPC) is never directly internet-accessible; the edge
//! absorbs and blocks DDoS traffic via per-source rate scoring and a
//! manual blocklist, and only clean requests are forwarded to the tunnel
//! server.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use dri_clock::SimClock;
use dri_sync::{ShardMap, ShardSet};

use crate::tunnel::{HttpRequest, HttpResponse, TunnelError, TunnelServer};

/// Shard count for the per-source rate windows and blocklists.
const EDGE_SHARDS: usize = 16;

/// Edge failures returned to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeError {
    /// Source exceeded the rate threshold (DDoS mitigation).
    RateLimited,
    /// Source is on the blocklist.
    Blocked,
    /// The origin tunnel failed.
    Origin(TunnelError),
    /// Edge disabled (maintenance kill switch).
    Down,
}

impl std::fmt::Display for EdgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeError::RateLimited => write!(f, "rate limited"),
            EdgeError::Blocked => write!(f, "source blocked"),
            EdgeError::Origin(e) => write!(f, "origin error: {e}"),
            EdgeError::Down => write!(f, "edge disabled"),
        }
    }
}

impl std::error::Error for EdgeError {}

/// The edge proxy.
///
/// Rate windows and blocklists are sharded by source address, so a login
/// storm arriving from many sources scores rates under many different
/// locks; the served/rejected counters are atomics.
pub struct EdgeProxy {
    clock: SimClock,
    /// Window length for rate scoring (ms).
    pub window_ms: u64,
    /// Requests per window per source before mitigation kicks in.
    pub threshold: usize,
    /// Sliding-window request timestamps per source.
    windows: ShardMap<VecDeque<u64>>,
    blocklist: ShardSet,
    auto_blocked: ShardSet,
    down: AtomicBool,
    served: AtomicU64,
    rejected: AtomicU64,
    faults: dri_fault::FaultHook,
}

impl EdgeProxy {
    /// Create an edge with a rate threshold of `threshold` requests per
    /// `window_ms` per source.
    pub fn new(clock: SimClock, window_ms: u64, threshold: usize) -> EdgeProxy {
        EdgeProxy {
            clock,
            window_ms,
            threshold,
            windows: ShardMap::new(EDGE_SHARDS),
            blocklist: ShardSet::new(EDGE_SHARDS),
            auto_blocked: ShardSet::new(EDGE_SHARDS),
            down: AtomicBool::new(false),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            faults: dri_fault::FaultHook::new(),
        }
    }

    /// Attach the shared fault plane; outages of component `edge` make
    /// [`handle`](EdgeProxy::handle) fail with [`EdgeError::Down`], as
    /// if the maintenance kill switch were on.
    pub fn install_fault_plane(&self, plane: std::sync::Arc<dri_fault::FaultPlane>) {
        self.faults.install(plane);
    }

    /// Handle a request from `source` (an IP-like identifier), forwarding
    /// to the tunnel-server origin when clean.
    pub fn handle(
        &self,
        origin: &TunnelServer,
        source: &str,
        request: HttpRequest,
    ) -> Result<HttpResponse, EdgeError> {
        let _span = dri_trace::span("edge.handle", dri_trace::Stage::Edge);
        if self.faults.check("edge").is_err() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(EdgeError::Down);
        }
        let now = self.clock.now_ms();
        if self.down.load(Ordering::Acquire) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(EdgeError::Down);
        }
        if self.blocklist.contains(source) || self.auto_blocked.contains(source) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(EdgeError::Blocked);
        }
        let over_rate = {
            // Rate scoring holds only this source's shard lock.
            let mut shard = self.windows.write_shard(source);
            let window = shard.entry(source.to_string()).or_default();
            while window
                .front()
                .is_some_and(|t| now.saturating_sub(*t) > self.window_ms)
            {
                window.pop_front();
            }
            window.push_back(now);
            window.len() > self.threshold
        };
        if over_rate {
            // Automatic mitigation: block the source outright.
            self.auto_blocked.insert(source.to_string());
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(EdgeError::RateLimited);
        }
        self.served.fetch_add(1, Ordering::Relaxed);
        origin.handle(request).map_err(EdgeError::Origin)
    }

    /// Manually block a source.
    pub fn block(&self, source: &str) {
        self.blocklist.insert(source.to_string());
    }

    /// Unblock a source (manual or automatic block).
    pub fn unblock(&self, source: &str) {
        self.blocklist.remove(source);
        self.auto_blocked.remove(source);
    }

    /// Maintenance kill switch.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::Release);
    }

    /// (served, rejected) counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.served.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
        )
    }

    /// Sources currently auto-blocked by the rate scorer.
    pub fn auto_blocked_count(&self) -> usize {
        self.auto_blocked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Domain, Network, Selector, Zone};
    use dri_clock::SimRng;
    use dri_crypto::x25519;
    use std::sync::Arc;

    fn setup() -> (SimClock, EdgeProxy, TunnelServer) {
        let clock = SimClock::new();
        let net = Network::new(clock.clone());
        net.add_host("mdc/login01", Domain::Mdc, Zone::Hpc, &[]);
        net.add_host("fds/zenith", Domain::Fds, Zone::Access, &["zenith"]);
        net.allow(
            "mdc->zenith",
            Selector::InDomain(Domain::Mdc),
            Selector::Host("fds/zenith".into()),
            "zenith",
        );
        let mut rng = SimRng::seed_from_u64(1);
        let server = TunnelServer::new("fds/zenith", &mut rng, clock.clone());
        let pk = x25519::clamp(rng.seed32());
        server
            .register_tunnel(
                &net,
                "mdc/login01",
                &pk,
                "/jupyter",
                Arc::new(|_| HttpResponse {
                    status: 200,
                    body: b"ok".to_vec(),
                }),
            )
            .unwrap();
        let edge = EdgeProxy::new(clock.clone(), 1000, 10);
        (clock, edge, server)
    }

    fn req() -> HttpRequest {
        HttpRequest {
            path: "/jupyter".into(),
            headers: vec![],
            body: vec![],
        }
    }

    #[test]
    fn clean_traffic_flows() {
        let (_clock, edge, server) = setup();
        let resp = edge.handle(&server, "198.51.100.7", req()).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(edge.stats(), (1, 0));
    }

    #[test]
    fn ddos_source_gets_auto_blocked() {
        let (clock, edge, server) = setup();
        // 10 requests within the window are fine.
        for _ in 0..10 {
            clock.advance(10);
            edge.handle(&server, "203.0.113.9", req()).unwrap();
        }
        // The 11th trips mitigation.
        assert_eq!(
            edge.handle(&server, "203.0.113.9", req()),
            Err(EdgeError::RateLimited)
        );
        // And the source stays blocked even after the window passes.
        clock.advance(10_000);
        assert_eq!(
            edge.handle(&server, "203.0.113.9", req()),
            Err(EdgeError::Blocked)
        );
        assert_eq!(edge.auto_blocked_count(), 1);
        // Other sources are unaffected.
        assert!(edge.handle(&server, "198.51.100.7", req()).is_ok());
        // Until an operator unblocks.
        edge.unblock("203.0.113.9");
        assert!(edge.handle(&server, "203.0.113.9", req()).is_ok());
    }

    #[test]
    fn slow_traffic_never_trips() {
        let (clock, edge, server) = setup();
        for _ in 0..50 {
            clock.advance(200); // 5 rps, under 10-per-second threshold
            edge.handle(&server, "198.51.100.8", req()).unwrap();
        }
        assert_eq!(edge.auto_blocked_count(), 0);
    }

    #[test]
    fn manual_blocklist() {
        let (_clock, edge, server) = setup();
        edge.block("192.0.2.1");
        assert_eq!(
            edge.handle(&server, "192.0.2.1", req()),
            Err(EdgeError::Blocked)
        );
        let (_, rejected) = edge.stats();
        assert_eq!(rejected, 1);
    }

    #[test]
    fn down_edge_rejects_everything() {
        let (_clock, edge, server) = setup();
        edge.set_down(true);
        assert_eq!(
            edge.handle(&server, "198.51.100.7", req()),
            Err(EdgeError::Down)
        );
        edge.set_down(false);
        assert!(edge.handle(&server, "198.51.100.7", req()).is_ok());
    }

    #[test]
    fn origin_errors_propagate() {
        let (_clock, edge, server) = setup();
        server.close_tunnel("/jupyter");
        assert_eq!(
            edge.handle(&server, "198.51.100.7", req()),
            Err(EdgeError::Origin(TunnelError::Closed))
        );
    }
}
