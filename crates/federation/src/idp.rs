//! Institutional Identity Providers.
//!
//! Each IdP owns a user directory (credentials + attributes), signs
//! assertions for successful logins, and models the lifecycle events the
//! paper's user stories depend on: *"Authentication will fail if a user is
//! no longer affiliated with the organisational IdP"* (user story 3).

use std::collections::HashMap;

use dri_clock::SimClock;
use dri_crypto::ed25519::{SigningKey, VerifyingKey};
use dri_crypto::hmac::hmac_sha256;
use dri_crypto::sha2::sha256;
use parking_lot::RwLock;

use crate::assertion::Assertion;
use crate::types::{AttributeBundle, LevelOfAssurance};

/// How long an IdP assertion stays valid (seconds).
const ASSERTION_TTL_SECS: u64 = 300;

/// A user record inside an IdP directory.
#[derive(Debug, Clone)]
pub struct UserRecord {
    /// Local username (the part before the scope).
    pub username: String,
    /// Released attribute bundle.
    pub attributes: AttributeBundle,
    /// Salted password hash.
    password_hash: [u8; 32],
    salt: [u8; 8],
    /// TOTP secret, if MFA is enrolled at the IdP.
    totp_secret: Option<Vec<u8>>,
    /// Active affiliation? Deprovisioned users cannot authenticate.
    pub active: bool,
}

/// Authentication failures at an IdP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthnError {
    /// No such user.
    UnknownUser,
    /// Wrong password.
    BadPassword,
    /// TOTP required but missing or wrong.
    BadSecondFactor,
    /// The user is deprovisioned (left the organisation).
    Deprovisioned,
    /// The IdP itself is unreachable (injected outage or flaky window).
    /// Transient: retry, or fail over to the IdP of last resort.
    IdpUnavailable,
}

impl std::fmt::Display for AuthnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AuthnError::UnknownUser => "unknown user",
            AuthnError::BadPassword => "bad password",
            AuthnError::BadSecondFactor => "bad second factor",
            AuthnError::Deprovisioned => "user deprovisioned",
            AuthnError::IdpUnavailable => "identity provider unavailable",
        };
        f.write_str(s)
    }
}

impl std::error::Error for AuthnError {}

/// A simulated institutional IdP.
pub struct IdentityProvider {
    /// Entity id (matches the federation metadata entry).
    pub entity_id: String,
    /// Identity scope appended to usernames (e.g. `bristol.ac.uk`).
    pub scope: String,
    /// The strongest assurance this IdP can assert.
    pub max_loa: LevelOfAssurance,
    signing_key: SigningKey,
    clock: SimClock,
    users: RwLock<HashMap<String, UserRecord>>,
    assertion_counter: RwLock<u64>,
    faults: dri_fault::FaultHook,
}

impl IdentityProvider {
    /// Create an IdP with a deterministic signing key derived from `seed`.
    pub fn new(
        entity_id: impl Into<String>,
        scope: impl Into<String>,
        max_loa: LevelOfAssurance,
        seed: [u8; 32],
        clock: SimClock,
    ) -> IdentityProvider {
        IdentityProvider {
            entity_id: entity_id.into(),
            scope: scope.into(),
            max_loa,
            signing_key: SigningKey::from_seed(&seed),
            clock,
            users: RwLock::new(HashMap::new()),
            assertion_counter: RwLock::new(0),
            faults: dri_fault::FaultHook::new(),
        }
    }

    /// Attach the shared fault plane; outages of component
    /// `idp:{entity_id}` (or the bare `idp` category) make
    /// [`authenticate`](IdentityProvider::authenticate) fail with
    /// [`AuthnError::IdpUnavailable`].
    pub fn install_fault_plane(&self, plane: std::sync::Arc<dri_fault::FaultPlane>) {
        self.faults.install(plane);
    }

    /// The public key that belongs in federation metadata.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.signing_key.verifying_key()
    }

    fn hash_password(salt: &[u8; 8], password: &str) -> [u8; 32] {
        let mut input = Vec::with_capacity(8 + password.len());
        input.extend_from_slice(salt);
        input.extend_from_slice(password.as_bytes());
        sha256(&input)
    }

    /// Provision a user. The salt is derived deterministically from the
    /// username for reproducibility.
    pub fn provision_user(
        &self,
        username: &str,
        password: &str,
        display_name: &str,
        affiliation: &str,
        totp_secret: Option<Vec<u8>>,
    ) {
        let mut salt = [0u8; 8];
        salt.copy_from_slice(&sha256(username.as_bytes())[..8]);
        let eppn = format!("{}@{}", username, self.scope);
        let record = UserRecord {
            username: username.to_string(),
            attributes: AttributeBundle {
                eppn: eppn.clone(),
                display_name: display_name.to_string(),
                email: eppn,
                affiliation: format!("{}@{}", affiliation, self.scope),
                organisation: self.scope.clone(),
            },
            password_hash: Self::hash_password(&salt, password),
            salt,
            totp_secret,
            active: true,
        };
        self.users.write().insert(username.to_string(), record);
    }

    /// Deprovision a user (left the organisation). Subsequent
    /// authentications fail with [`AuthnError::Deprovisioned`].
    pub fn deprovision_user(&self, username: &str) -> bool {
        match self.users.write().get_mut(username) {
            Some(u) => {
                u.active = false;
                true
            }
            None => false,
        }
    }

    /// Expected TOTP code for the current 30-second window (RFC 6238
    /// style over HMAC-SHA-256, truncated to 6 digits).
    pub fn current_totp(&self, username: &str) -> Option<u32> {
        let users = self.users.read();
        let secret = users.get(username)?.totp_secret.as_ref()?;
        Some(totp_code(secret, self.clock.now_secs() / 30))
    }

    /// Authenticate with password (+ TOTP when enrolled), producing a
    /// signed assertion addressed to `audience`.
    pub fn authenticate(
        &self,
        username: &str,
        password: &str,
        totp: Option<u32>,
        audience: &str,
    ) -> Result<String, AuthnError> {
        let _span = dri_trace::span_with(
            "idp.authenticate",
            dri_trace::Stage::Discovery,
            &[("idp", &self.entity_id)],
        );
        self.faults
            .check(&format!("idp:{}", self.entity_id))
            .map_err(|_| AuthnError::IdpUnavailable)?;
        let users = self.users.read();
        let user = users.get(username).ok_or(AuthnError::UnknownUser)?;
        if !user.active {
            return Err(AuthnError::Deprovisioned);
        }
        let supplied = Self::hash_password(&user.salt, password);
        if !dri_crypto::ct_eq(&supplied, &user.password_hash) {
            return Err(AuthnError::BadPassword);
        }
        let authn_context = match &user.totp_secret {
            Some(secret) => {
                let expected = totp_code(secret, self.clock.now_secs() / 30);
                match totp {
                    Some(code) if code == expected => "pwd+totp",
                    _ => return Err(AuthnError::BadSecondFactor),
                }
            }
            None => "pwd",
        };
        let now = self.clock.now_secs();
        let mut counter = self.assertion_counter.write();
        *counter += 1;
        let assertion = Assertion {
            issuer: self.entity_id.clone(),
            subject: user.attributes.eppn.clone(),
            audience: audience.to_string(),
            issued_at: now,
            expires_at: now + ASSERTION_TTL_SECS,
            authn_context: authn_context.to_string(),
            loa: self.max_loa,
            attributes: user.attributes.to_attributes(),
            assertion_id: format!("{}#{}", self.entity_id, *counter),
        };
        Ok(assertion.sign(&self.signing_key))
    }

    /// Whether a username exists and is active.
    pub fn is_active(&self, username: &str) -> bool {
        self.users
            .read()
            .get(username)
            .map(|u| u.active)
            .unwrap_or(false)
    }

    /// Number of provisioned users.
    pub fn user_count(&self) -> usize {
        self.users.read().len()
    }
}

/// RFC 6238-style TOTP over HMAC-SHA-256, 6 digits.
pub fn totp_code(secret: &[u8], time_step: u64) -> u32 {
    let mac = hmac_sha256(secret, &time_step.to_be_bytes());
    let offset = (mac[31] & 0x0f) as usize;
    let bin = ((mac[offset] as u32 & 0x7f) << 24)
        | ((mac[offset + 1] as u32) << 16)
        | ((mac[offset + 2] as u32) << 8)
        | (mac[offset + 3] as u32);
    bin % 1_000_000
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idp() -> IdentityProvider {
        let clock = SimClock::new();
        let idp = IdentityProvider::new(
            "https://idp.bristol.ac.uk",
            "bristol.ac.uk",
            LevelOfAssurance::Medium,
            [9u8; 32],
            clock,
        );
        idp.provision_user("alice", "hunter2", "Alice A", "staff", None);
        idp.provision_user(
            "bob",
            "passw0rd",
            "Bob B",
            "member",
            Some(b"bobsecret".to_vec()),
        );
        idp
    }

    #[test]
    fn password_login_produces_verifiable_assertion() {
        let idp = idp();
        let wire = idp.authenticate("alice", "hunter2", None, "aud").unwrap();
        let a = Assertion::verify(&wire, &idp.verifying_key(), "aud", 10).unwrap();
        assert_eq!(a.subject, "alice@bristol.ac.uk");
        assert_eq!(a.authn_context, "pwd");
        assert_eq!(a.loa, LevelOfAssurance::Medium);
        assert_eq!(a.attribute("schacHomeOrganization"), Some("bristol.ac.uk"));
    }

    #[test]
    fn wrong_password_rejected() {
        let idp = idp();
        assert_eq!(
            idp.authenticate("alice", "wrong", None, "aud"),
            Err(AuthnError::BadPassword)
        );
        assert_eq!(
            idp.authenticate("nobody", "x", None, "aud"),
            Err(AuthnError::UnknownUser)
        );
    }

    #[test]
    fn totp_enforced_when_enrolled() {
        let idp = idp();
        // No code.
        assert_eq!(
            idp.authenticate("bob", "passw0rd", None, "aud"),
            Err(AuthnError::BadSecondFactor)
        );
        // Wrong code.
        let right = idp.current_totp("bob").unwrap();
        let wrong = (right + 1) % 1_000_000;
        assert_eq!(
            idp.authenticate("bob", "passw0rd", Some(wrong), "aud"),
            Err(AuthnError::BadSecondFactor)
        );
        // Right code.
        let wire = idp
            .authenticate("bob", "passw0rd", Some(right), "aud")
            .unwrap();
        let a = Assertion::verify(&wire, &idp.verifying_key(), "aud", 1).unwrap();
        assert_eq!(a.authn_context, "pwd+totp");
    }

    #[test]
    fn deprovisioned_user_cannot_authenticate() {
        let idp = idp();
        assert!(idp.is_active("alice"));
        assert!(idp.deprovision_user("alice"));
        assert!(!idp.is_active("alice"));
        assert_eq!(
            idp.authenticate("alice", "hunter2", None, "aud"),
            Err(AuthnError::Deprovisioned)
        );
        assert!(!idp.deprovision_user("ghost"));
    }

    #[test]
    fn assertion_ids_are_unique() {
        let idp = idp();
        let w1 = idp.authenticate("alice", "hunter2", None, "aud").unwrap();
        let w2 = idp.authenticate("alice", "hunter2", None, "aud").unwrap();
        let a1 = Assertion::verify(&w1, &idp.verifying_key(), "aud", 1).unwrap();
        let a2 = Assertion::verify(&w2, &idp.verifying_key(), "aud", 1).unwrap();
        assert_ne!(a1.assertion_id, a2.assertion_id);
    }

    #[test]
    fn totp_changes_with_time_step() {
        assert_ne!(totp_code(b"secret", 1), totp_code(b"secret", 2));
        assert_eq!(totp_code(b"secret", 1), totp_code(b"secret", 1));
        assert!(totp_code(b"secret", 1) < 1_000_000);
    }
}
