//! # dri-federation — identity federation substrate
//!
//! Simulates the inter-federation layer the paper builds on:
//!
//! * [`metadata`] — an eduGAIN-style metadata registry connecting identity
//!   federations; entities carry categories (e.g. REFEDS Research &
//!   Scholarship) and identity-vetting assurance levels (AARC LoA).
//! * [`idp`] — institutional Identity Providers with user directories,
//!   password + TOTP credentials, and signed (SAML-like) assertions.
//! * [`proxy`] — a MyAccessID-style IdP proxy: discovery service, account
//!   registry with *persistent unique community identifiers*, identity
//!   linking, and assurance elevation. This is the "trusted IdP proxy" of
//!   the paper's Fig. 1.
//! * [`assertion`] — the signed-document format shared by IdPs and proxy.
//!
//! Wire formats are simplified (signed canonical JSON instead of SAML XML)
//! but the trust topology, attribute release, audience restriction, expiry
//! and assurance semantics match the real systems: every assertion is
//! Ed25519-signed by its issuer and verified against federation metadata.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assertion;
pub mod idp;
pub mod metadata;
pub mod proxy;
pub mod types;

pub use assertion::{Assertion, AssertionError};
pub use idp::{AuthnError, IdentityProvider, UserRecord};
pub use metadata::{EntityDescriptor, EntityKind, FederationRegistry};
pub use proxy::{CommunityAccount, DiscoveryEntry, IdpProxy, ProxyError};
pub use types::{Attribute, EntityCategory, LevelOfAssurance};
