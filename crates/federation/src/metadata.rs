//! The federation metadata registry — the simulated eduGAIN.
//!
//! eduGAIN connects >80 national federations and >8000 entities; what the
//! rest of the stack needs from it is the *trust fabric*: given an entity
//! id, return its verified metadata (kind, signing key, categories, home
//! federation, assurance). Entities are registered by their national
//! federation (UKAMF, HAKA, …) which is itself registered with the
//! inter-federation.

use std::collections::HashMap;

use dri_crypto::ed25519::VerifyingKey;
use parking_lot::RwLock;

use crate::types::{EntityCategory, LevelOfAssurance};

/// What role an entity plays in the federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityKind {
    /// Identity provider.
    IdentityProvider,
    /// Service provider (relying party).
    ServiceProvider,
    /// An IdP/SP proxy (MyAccessID-style).
    Proxy,
}

/// Published metadata for one federation entity.
#[derive(Debug, Clone)]
pub struct EntityDescriptor {
    /// Globally unique entity id (URL-shaped).
    pub entity_id: String,
    /// Human-readable display name (shown in discovery).
    pub display_name: String,
    /// IdP / SP / proxy.
    pub kind: EntityKind,
    /// The national federation that registered this entity.
    pub home_federation: String,
    /// Entity categories (R&S, Sirtfi, …).
    pub categories: Vec<EntityCategory>,
    /// Identity-vetting assurance this entity can assert.
    pub max_loa: LevelOfAssurance,
    /// Assertion-signing public key.
    pub signing_key: VerifyingKey,
}

impl EntityDescriptor {
    /// True if the entity declares the given category.
    pub fn has_category(&self, cat: EntityCategory) -> bool {
        self.categories.contains(&cat)
    }
}

/// Registry errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The home federation has not joined the inter-federation.
    UnknownFederation(String),
    /// Entity id already registered.
    DuplicateEntity(String),
    /// No such entity.
    UnknownEntity(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownFederation(x) => write!(f, "unknown federation {x}"),
            RegistryError::DuplicateEntity(x) => write!(f, "duplicate entity {x}"),
            RegistryError::UnknownEntity(x) => write!(f, "unknown entity {x}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The inter-federation metadata registry (simulated eduGAIN).
#[derive(Debug, Default)]
pub struct FederationRegistry {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    federations: HashMap<String, String>, // name -> operator
    entities: HashMap<String, EntityDescriptor>,
}

impl FederationRegistry {
    /// An empty registry.
    pub fn new() -> FederationRegistry {
        FederationRegistry::default()
    }

    /// Join a national federation to the inter-federation.
    pub fn register_federation(&self, name: impl Into<String>, operator: impl Into<String>) {
        self.inner
            .write()
            .federations
            .insert(name.into(), operator.into());
    }

    /// Register an entity under its home federation.
    pub fn register_entity(&self, desc: EntityDescriptor) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        if !inner.federations.contains_key(&desc.home_federation) {
            return Err(RegistryError::UnknownFederation(desc.home_federation));
        }
        if inner.entities.contains_key(&desc.entity_id) {
            return Err(RegistryError::DuplicateEntity(desc.entity_id));
        }
        inner.entities.insert(desc.entity_id.clone(), desc);
        Ok(())
    }

    /// Remove an entity (e.g. a compromised or retired IdP).
    pub fn deregister_entity(&self, entity_id: &str) -> Result<(), RegistryError> {
        match self.inner.write().entities.remove(entity_id) {
            Some(_) => Ok(()),
            None => Err(RegistryError::UnknownEntity(entity_id.to_string())),
        }
    }

    /// Look up an entity's metadata.
    pub fn lookup(&self, entity_id: &str) -> Option<EntityDescriptor> {
        self.inner.read().entities.get(entity_id).cloned()
    }

    /// The verified signing key for an entity, if registered.
    pub fn signing_key(&self, entity_id: &str) -> Option<VerifyingKey> {
        self.inner
            .read()
            .entities
            .get(entity_id)
            .map(|e| e.signing_key.clone())
    }

    /// All IdPs carrying a category — the input to the discovery service.
    pub fn idps_with_category(&self, cat: EntityCategory) -> Vec<EntityDescriptor> {
        let inner = self.inner.read();
        let mut out: Vec<EntityDescriptor> = inner
            .entities
            .values()
            .filter(|e| e.kind == EntityKind::IdentityProvider && e.has_category(cat))
            .cloned()
            .collect();
        out.sort_by(|a, b| a.entity_id.cmp(&b.entity_id));
        out
    }

    /// Count of registered entities (metrics).
    pub fn entity_count(&self) -> usize {
        self.inner.read().entities.len()
    }

    /// Count of member federations (metrics).
    pub fn federation_count(&self) -> usize {
        self.inner.read().federations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dri_crypto::ed25519::SigningKey;

    fn desc(id: &str, fed: &str, kind: EntityKind, cats: Vec<EntityCategory>) -> EntityDescriptor {
        EntityDescriptor {
            entity_id: id.into(),
            display_name: id.into(),
            kind,
            home_federation: fed.into(),
            categories: cats,
            max_loa: LevelOfAssurance::Medium,
            signing_key: SigningKey::from_seed(&[7u8; 32]).verifying_key(),
        }
    }

    #[test]
    fn registration_requires_known_federation() {
        let reg = FederationRegistry::new();
        let d = desc(
            "https://idp.x",
            "ukamf",
            EntityKind::IdentityProvider,
            vec![],
        );
        assert_eq!(
            reg.register_entity(d.clone()),
            Err(RegistryError::UnknownFederation("ukamf".into()))
        );
        reg.register_federation("ukamf", "Jisc");
        assert!(reg.register_entity(d.clone()).is_ok());
        assert_eq!(
            reg.register_entity(d),
            Err(RegistryError::DuplicateEntity("https://idp.x".into()))
        );
    }

    #[test]
    fn discovery_filters_by_category_and_kind() {
        let reg = FederationRegistry::new();
        reg.register_federation("ukamf", "Jisc");
        reg.register_entity(desc(
            "https://idp.rns",
            "ukamf",
            EntityKind::IdentityProvider,
            vec![EntityCategory::ResearchAndScholarship],
        ))
        .unwrap();
        reg.register_entity(desc(
            "https://idp.plain",
            "ukamf",
            EntityKind::IdentityProvider,
            vec![],
        ))
        .unwrap();
        reg.register_entity(desc(
            "https://sp.rns",
            "ukamf",
            EntityKind::ServiceProvider,
            vec![EntityCategory::ResearchAndScholarship],
        ))
        .unwrap();
        let found = reg.idps_with_category(EntityCategory::ResearchAndScholarship);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].entity_id, "https://idp.rns");
    }

    #[test]
    fn deregistration_removes_trust() {
        let reg = FederationRegistry::new();
        reg.register_federation("ukamf", "Jisc");
        reg.register_entity(desc(
            "https://idp.x",
            "ukamf",
            EntityKind::IdentityProvider,
            vec![],
        ))
        .unwrap();
        assert!(reg.signing_key("https://idp.x").is_some());
        reg.deregister_entity("https://idp.x").unwrap();
        assert!(reg.signing_key("https://idp.x").is_none());
        assert_eq!(
            reg.deregister_entity("https://idp.x"),
            Err(RegistryError::UnknownEntity("https://idp.x".into()))
        );
    }
}
