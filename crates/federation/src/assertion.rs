//! Signed authentication assertions — the simplified stand-in for SAML
//! assertions / OIDC id_tokens flowing between IdPs, the proxy, and the
//! identity broker.
//!
//! An assertion is a canonical-JSON document signed with the issuer's
//! Ed25519 key. Verification checks the signature against federation
//! metadata, the audience restriction, and the validity window.

use dri_crypto::base64;
use dri_crypto::ed25519::{SigningKey, VerifyingKey};
use dri_crypto::json::Value;

use crate::types::{Attribute, LevelOfAssurance};

/// A signed authentication statement about one subject.
#[derive(Debug, Clone, PartialEq)]
pub struct Assertion {
    /// Issuer entity id (e.g. `https://idp.bristol.ac.uk`).
    pub issuer: String,
    /// Subject identifier *scoped to the issuer*.
    pub subject: String,
    /// Audience entity id this assertion is addressed to.
    pub audience: String,
    /// Seconds-since-epoch issue time.
    pub issued_at: u64,
    /// Expiry (assertions are short-lived: minutes).
    pub expires_at: u64,
    /// Authentication context: how the user authenticated.
    pub authn_context: String,
    /// Identity assurance asserted by the issuer.
    pub loa: LevelOfAssurance,
    /// Released attributes.
    pub attributes: Vec<Attribute>,
    /// Unique assertion id (replay detection).
    pub assertion_id: String,
}

impl Assertion {
    fn to_value(&self) -> Value {
        Value::obj([
            ("iss", Value::s(&*self.issuer)),
            ("sub", Value::s(&*self.subject)),
            ("aud", Value::s(&*self.audience)),
            ("iat", Value::u(self.issued_at)),
            ("exp", Value::u(self.expires_at)),
            ("amr", Value::s(&*self.authn_context)),
            ("loa", Value::s(self.loa.as_str())),
            ("id", Value::s(&*self.assertion_id)),
            (
                "attrs",
                Value::Arr(
                    self.attributes
                        .iter()
                        .map(|a| {
                            Value::obj([("n", Value::s(&*a.name)), ("v", Value::s(&*a.value))])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_value(v: &Value) -> Result<Assertion, AssertionError> {
        let s = |k: &str| -> Result<String, AssertionError> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or(AssertionError::MissingField)
        };
        let u = |k: &str| -> Result<u64, AssertionError> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or(AssertionError::MissingField)
        };
        let attrs = v
            .get("attrs")
            .and_then(Value::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|a| {
                        Some(Attribute::new(a.get("n")?.as_str()?, a.get("v")?.as_str()?))
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok(Assertion {
            issuer: s("iss")?,
            subject: s("sub")?,
            audience: s("aud")?,
            issued_at: u("iat")?,
            expires_at: u("exp")?,
            authn_context: s("amr")?,
            loa: LevelOfAssurance::parse(&s("loa")?).ok_or(AssertionError::MissingField)?,
            attributes: attrs,
            assertion_id: s("id")?,
        })
    }

    /// Sign this assertion, producing the wire form `payload.signature`
    /// (both base64url).
    pub fn sign(&self, key: &SigningKey) -> String {
        let payload = self.to_value().to_json();
        let sig = key.sign(payload.as_bytes());
        format!(
            "{}.{}",
            base64::encode_url(payload.as_bytes()),
            base64::encode_url(&sig)
        )
    }

    /// Verify a wire-form assertion against the issuer's public key and
    /// the receiver's expectations.
    pub fn verify(
        wire: &str,
        issuer_key: &VerifyingKey,
        expected_audience: &str,
        now_secs: u64,
    ) -> Result<Assertion, AssertionError> {
        let (payload_b64, sig_b64) = wire.split_once('.').ok_or(AssertionError::Malformed)?;
        let payload = base64::decode_url(payload_b64).map_err(|_| AssertionError::Malformed)?;
        let sig = base64::decode_url(sig_b64).map_err(|_| AssertionError::Malformed)?;
        if sig.len() != 64 {
            return Err(AssertionError::BadSignature);
        }
        let mut sig64 = [0u8; 64];
        sig64.copy_from_slice(&sig);
        if !issuer_key.verify(&payload, &sig64) {
            return Err(AssertionError::BadSignature);
        }
        let text = std::str::from_utf8(&payload).map_err(|_| AssertionError::Malformed)?;
        let value = Value::parse(text).map_err(|_| AssertionError::Malformed)?;
        let assertion = Assertion::from_value(&value)?;
        if assertion.audience != expected_audience {
            return Err(AssertionError::WrongAudience);
        }
        if now_secs >= assertion.expires_at {
            return Err(AssertionError::Expired);
        }
        if now_secs + 300 < assertion.issued_at {
            // More than 5 minutes of clock skew: treat as invalid.
            return Err(AssertionError::NotYetValid);
        }
        Ok(assertion)
    }

    /// Fetch one attribute value by name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }
}

/// Assertion verification failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssertionError {
    /// Not parseable as `payload.signature`.
    Malformed,
    /// Signature failed against the issuer key on record.
    BadSignature,
    /// Addressed to a different audience.
    WrongAudience,
    /// Past `exp`.
    Expired,
    /// `iat` implausibly in the future.
    NotYetValid,
    /// Required field missing from the payload.
    MissingField,
}

impl std::fmt::Display for AssertionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AssertionError::Malformed => "malformed assertion",
            AssertionError::BadSignature => "assertion signature invalid",
            AssertionError::WrongAudience => "assertion audience mismatch",
            AssertionError::Expired => "assertion expired",
            AssertionError::NotYetValid => "assertion issued in the future",
            AssertionError::MissingField => "assertion missing required field",
        };
        f.write_str(s)
    }
}

impl std::error::Error for AssertionError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Assertion {
        Assertion {
            issuer: "https://idp.bristol.ac.uk".into(),
            subject: "alice".into(),
            audience: "https://proxy.myaccessid.org".into(),
            issued_at: 1000,
            expires_at: 1300,
            authn_context: "pwd+totp".into(),
            loa: LevelOfAssurance::Medium,
            attributes: vec![Attribute::new("mail", "alice@bristol.ac.uk")],
            assertion_id: "an-001".into(),
        }
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = SigningKey::from_seed(&[1u8; 32]);
        let a = sample();
        let wire = a.sign(&key);
        let got = Assertion::verify(
            &wire,
            &key.verifying_key(),
            "https://proxy.myaccessid.org",
            1100,
        )
        .unwrap();
        assert_eq!(got, a);
        assert_eq!(got.attribute("mail"), Some("alice@bristol.ac.uk"));
        assert_eq!(got.attribute("nope"), None);
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let key = SigningKey::from_seed(&[1u8; 32]);
        let other = SigningKey::from_seed(&[2u8; 32]);
        let wire = sample().sign(&key);
        assert_eq!(
            Assertion::verify(
                &wire,
                &other.verifying_key(),
                "https://proxy.myaccessid.org",
                1100
            ),
            Err(AssertionError::BadSignature)
        );
    }

    #[test]
    fn verify_rejects_expired_and_wrong_audience() {
        let key = SigningKey::from_seed(&[1u8; 32]);
        let wire = sample().sign(&key);
        let pk = key.verifying_key();
        assert_eq!(
            Assertion::verify(&wire, &pk, "https://proxy.myaccessid.org", 1300),
            Err(AssertionError::Expired)
        );
        assert_eq!(
            Assertion::verify(&wire, &pk, "https://evil.example", 1100),
            Err(AssertionError::WrongAudience)
        );
    }

    #[test]
    fn verify_rejects_tampered_payload() {
        let key = SigningKey::from_seed(&[1u8; 32]);
        let wire = sample().sign(&key);
        let (payload_b64, sig_b64) = wire.split_once('.').unwrap();
        // Re-encode a modified payload with the original signature.
        let mut payload = dri_crypto::base64::decode_url(payload_b64).unwrap();
        let text = String::from_utf8(payload.clone()).unwrap();
        let modified = text.replace("alice", "mallory");
        payload = modified.into_bytes();
        let forged = format!("{}.{}", base64::encode_url(&payload), sig_b64);
        assert_eq!(
            Assertion::verify(
                &forged,
                &key.verifying_key(),
                "https://proxy.myaccessid.org",
                1100
            ),
            Err(AssertionError::BadSignature)
        );
    }
}
