//! Shared federation vocabulary: assurance levels, entity categories and
//! released attributes.

/// AARC / REFEDS-style identity assurance level.
///
/// The paper's MyAccessID deployment distinguishes levels of assurance and
/// trust (LoA / LoT); HPC centres require stronger vetting than the
/// eduGAIN baseline provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LevelOfAssurance {
    /// Self-asserted identity (no vetting).
    Low,
    /// Institutionally vetted (typical university IdP).
    Medium,
    /// Strong vetting (documents checked, in-person / eIDAS / hardware MFA).
    High,
}

impl LevelOfAssurance {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            LevelOfAssurance::Low => "low",
            LevelOfAssurance::Medium => "medium",
            LevelOfAssurance::High => "high",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<LevelOfAssurance> {
        match s {
            "low" => Some(LevelOfAssurance::Low),
            "medium" => Some(LevelOfAssurance::Medium),
            "high" => Some(LevelOfAssurance::High),
            _ => None,
        }
    }
}

/// Federation entity categories relevant to the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityCategory {
    /// REFEDS Research & Scholarship — the *minimum* requirement for an
    /// IdP to appear in the MyAccessID discovery list.
    ResearchAndScholarship,
    /// Sirtfi incident-response capability.
    Sirtfi,
    /// Anonymous-access category (never acceptable for HPC login).
    Anonymous,
}

impl EntityCategory {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            EntityCategory::ResearchAndScholarship => "research-and-scholarship",
            EntityCategory::Sirtfi => "sirtfi",
            EntityCategory::Anonymous => "anonymous",
        }
    }
}

/// An attribute released by an IdP about a subject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (eduPerson vocabulary, e.g. `eduPersonPrincipalName`).
    pub name: String,
    /// Attribute value.
    pub value: String,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Attribute {
        Attribute {
            name: name.into(),
            value: value.into(),
        }
    }
}

/// The R&S attribute bundle a compliant IdP releases.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AttributeBundle {
    /// `eduPersonPrincipalName` — scoped institutional identifier.
    pub eppn: String,
    /// Display name.
    pub display_name: String,
    /// Email address.
    pub email: String,
    /// `eduPersonScopedAffiliation` (e.g. `staff@bristol.ac.uk`).
    pub affiliation: String,
    /// Home organisation.
    pub organisation: String,
}

impl AttributeBundle {
    /// Flatten into named attributes for an assertion.
    pub fn to_attributes(&self) -> Vec<Attribute> {
        vec![
            Attribute::new("eduPersonPrincipalName", &self.eppn),
            Attribute::new("displayName", &self.display_name),
            Attribute::new("mail", &self.email),
            Attribute::new("eduPersonScopedAffiliation", &self.affiliation),
            Attribute::new("schacHomeOrganization", &self.organisation),
        ]
    }

    /// Rebuild from named attributes (ignores unknown names).
    pub fn from_attributes(attrs: &[Attribute]) -> AttributeBundle {
        let mut b = AttributeBundle::default();
        for a in attrs {
            match a.name.as_str() {
                "eduPersonPrincipalName" => b.eppn = a.value.clone(),
                "displayName" => b.display_name = a.value.clone(),
                "mail" => b.email = a.value.clone(),
                "eduPersonScopedAffiliation" => b.affiliation = a.value.clone(),
                "schacHomeOrganization" => b.organisation = a.value.clone(),
                _ => {}
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loa_ordering_supports_policy_minimums() {
        assert!(LevelOfAssurance::High > LevelOfAssurance::Medium);
        assert!(LevelOfAssurance::Medium > LevelOfAssurance::Low);
    }

    #[test]
    fn loa_wire_roundtrip() {
        for loa in [
            LevelOfAssurance::Low,
            LevelOfAssurance::Medium,
            LevelOfAssurance::High,
        ] {
            assert_eq!(LevelOfAssurance::parse(loa.as_str()), Some(loa));
        }
        assert_eq!(LevelOfAssurance::parse("bogus"), None);
    }

    #[test]
    fn attribute_bundle_roundtrip() {
        let b = AttributeBundle {
            eppn: "alice@bristol.ac.uk".into(),
            display_name: "Alice".into(),
            email: "alice@bristol.ac.uk".into(),
            affiliation: "staff@bristol.ac.uk".into(),
            organisation: "bristol.ac.uk".into(),
        };
        let attrs = b.to_attributes();
        assert_eq!(AttributeBundle::from_attributes(&attrs), b);
    }
}
