//! The MyAccessID-style IdP/SP proxy.
//!
//! The proxy is the hinge of the paper's federation design: it is a
//! *service provider* towards the institutional IdPs and an *identity
//! provider* towards infrastructure services (the identity broker in FDS).
//! It provides:
//!
//! * the **discovery service** — the list of eligible IdPs a user can pick
//!   from on the login page (Fig. 2), filtered to R&S-compliant entities;
//! * the **account registry** — a persistent, unique community identifier
//!   (`cuid`) per human, regardless of how many institutional identities
//!   they link;
//! * **assurance handling** — the proxy forwards the IdP's LoA and can
//!   elevate it after out-of-band vetting (AARC LoA "Cappuccino"-style);
//! * **proxy assertions** towards registered downstream services, signed
//!   with the proxy's own key.

use std::collections::HashMap;

use dri_clock::{IdGen, SimClock};
use dri_crypto::ed25519::{SigningKey, VerifyingKey};
use parking_lot::RwLock;

use crate::assertion::{Assertion, AssertionError};
use crate::metadata::{EntityKind, FederationRegistry};
use crate::types::{Attribute, EntityCategory, LevelOfAssurance};

/// TTL of assertions the proxy issues downstream (seconds).
const PROXY_ASSERTION_TTL_SECS: u64 = 300;

/// A row in the discovery ("where are you from?") list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveryEntry {
    /// IdP entity id.
    pub entity_id: String,
    /// Display name shown to the user.
    pub display_name: String,
    /// Assurance ceiling for this IdP.
    pub max_loa: LevelOfAssurance,
}

/// A registered community account.
#[derive(Debug, Clone)]
pub struct CommunityAccount {
    /// Persistent unique community id (never reassigned).
    pub cuid: String,
    /// Linked institutional identities as `(idp_entity_id, subject)`.
    pub linked_identities: Vec<(String, String)>,
    /// Registration time (seconds).
    pub registered_at: u64,
    /// Current effective assurance (max over linked identities and any
    /// out-of-band vetting).
    pub loa: LevelOfAssurance,
    /// Latest attribute snapshot from the home IdP.
    pub attributes: Vec<Attribute>,
    /// Suspended accounts cannot authenticate (kill switch / incident).
    pub suspended: bool,
}

/// Proxy errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProxyError {
    /// The asserting IdP is not in federation metadata.
    UnknownIdp(String),
    /// The IdP is registered but lacks the required category.
    IdpNotEligible(String),
    /// Upstream assertion failed verification.
    BadAssertion(AssertionError),
    /// The downstream service is not registered with the proxy.
    UnknownService(String),
    /// Account is suspended.
    Suspended,
    /// No such account.
    UnknownAccount,
    /// Replay of an assertion id we have already consumed.
    Replay,
    /// The proxy itself is unreachable (injected outage or flaky
    /// window). Transient: callers should retry with backoff.
    Unavailable,
}

impl std::fmt::Display for ProxyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProxyError::UnknownIdp(x) => write!(f, "unknown IdP {x}"),
            ProxyError::IdpNotEligible(x) => write!(f, "IdP {x} lacks required category"),
            ProxyError::BadAssertion(e) => write!(f, "bad upstream assertion: {e}"),
            ProxyError::UnknownService(x) => write!(f, "unknown downstream service {x}"),
            ProxyError::Suspended => write!(f, "account suspended"),
            ProxyError::UnknownAccount => write!(f, "unknown account"),
            ProxyError::Replay => write!(f, "assertion replay detected"),
            ProxyError::Unavailable => write!(f, "identity proxy unavailable"),
        }
    }
}

impl std::error::Error for ProxyError {}

/// The IdP proxy service.
pub struct IdpProxy {
    /// Proxy entity id (the audience institutional IdPs address).
    pub entity_id: String,
    signing_key: SigningKey,
    clock: SimClock,
    registry: std::sync::Arc<FederationRegistry>,
    /// Downstream services allowed to receive proxy assertions.
    services: RwLock<HashMap<String, ()>>,
    accounts: RwLock<HashMap<String, CommunityAccount>>, // cuid -> account
    identity_index: RwLock<HashMap<(String, String), String>>, // (idp, sub) -> cuid
    consumed_assertions: RwLock<std::collections::HashSet<String>>,
    ids: IdGen,
    faults: dri_fault::FaultHook,
}

impl IdpProxy {
    /// Create a proxy bound to a federation registry.
    pub fn new(
        entity_id: impl Into<String>,
        seed: [u8; 32],
        clock: SimClock,
        registry: std::sync::Arc<FederationRegistry>,
    ) -> IdpProxy {
        IdpProxy {
            entity_id: entity_id.into(),
            signing_key: SigningKey::from_seed(&seed),
            clock,
            registry,
            services: RwLock::new(HashMap::new()),
            accounts: RwLock::new(HashMap::new()),
            identity_index: RwLock::new(HashMap::new()),
            consumed_assertions: RwLock::new(std::collections::HashSet::new()),
            ids: IdGen::new("maid"),
            faults: dri_fault::FaultHook::new(),
        }
    }

    /// Attach the shared fault plane; outages of component `proxy` make
    /// [`broker_login`](IdpProxy::broker_login) fail with
    /// [`ProxyError::Unavailable`].
    pub fn install_fault_plane(&self, plane: std::sync::Arc<dri_fault::FaultPlane>) {
        self.faults.install(plane);
    }

    /// The proxy's assertion-signing public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.signing_key.verifying_key()
    }

    /// Register a downstream Infrastructure Service Domain (e.g. the
    /// Isambard identity broker) as an allowed audience.
    pub fn register_service(&self, service_entity_id: impl Into<String>) {
        self.services.write().insert(service_entity_id.into(), ());
    }

    /// The discovery list: R&S-compliant IdPs, sorted by entity id.
    /// This is what the Fig. 2 login page renders.
    pub fn discovery_list(&self) -> Vec<DiscoveryEntry> {
        self.registry
            .idps_with_category(EntityCategory::ResearchAndScholarship)
            .into_iter()
            .map(|e| DiscoveryEntry {
                entity_id: e.entity_id,
                display_name: e.display_name,
                max_loa: e.max_loa,
            })
            .collect()
    }

    /// Consume an upstream IdP assertion: verify it against federation
    /// metadata, find-or-create the community account, and issue a proxy
    /// assertion addressed to `service_entity_id`.
    ///
    /// Returns `(cuid, wire_assertion)`.
    pub fn broker_login(
        &self,
        idp_entity_id: &str,
        upstream_wire: &str,
        service_entity_id: &str,
    ) -> Result<(String, String), ProxyError> {
        let _span = dri_trace::span_with(
            "proxy.broker_login",
            dri_trace::Stage::Discovery,
            &[("idp", idp_entity_id)],
        );
        self.faults
            .check("proxy")
            .map_err(|_| ProxyError::Unavailable)?;
        if !self.services.read().contains_key(service_entity_id) {
            return Err(ProxyError::UnknownService(service_entity_id.to_string()));
        }
        let idp = self
            .registry
            .lookup(idp_entity_id)
            .ok_or_else(|| ProxyError::UnknownIdp(idp_entity_id.to_string()))?;
        if idp.kind != EntityKind::IdentityProvider
            || !idp.has_category(EntityCategory::ResearchAndScholarship)
        {
            return Err(ProxyError::IdpNotEligible(idp_entity_id.to_string()));
        }
        let now = self.clock.now_secs();
        let upstream = Assertion::verify(upstream_wire, &idp.signing_key, &self.entity_id, now)
            .map_err(ProxyError::BadAssertion)?;
        if upstream.issuer != idp_entity_id {
            return Err(ProxyError::BadAssertion(AssertionError::BadSignature));
        }
        // One-time use: a captured assertion cannot be replayed.
        if !self
            .consumed_assertions
            .write()
            .insert(upstream.assertion_id.clone())
        {
            return Err(ProxyError::Replay);
        }

        let key = (idp_entity_id.to_string(), upstream.subject.clone());
        let cuid = {
            let index = self.identity_index.read();
            index.get(&key).cloned()
        };
        let cuid = match cuid {
            Some(cuid) => {
                let mut accounts = self.accounts.write();
                let account = accounts.get_mut(&cuid).expect("index points at account");
                if account.suspended {
                    return Err(ProxyError::Suspended);
                }
                account.attributes = upstream.attributes.clone();
                account.loa = account.loa.max(upstream.loa);
                cuid
            }
            None => {
                let cuid = self.ids.next();
                let account = CommunityAccount {
                    cuid: cuid.clone(),
                    linked_identities: vec![key.clone()],
                    registered_at: now,
                    loa: upstream.loa,
                    attributes: upstream.attributes.clone(),
                    suspended: false,
                };
                self.accounts.write().insert(cuid.clone(), account);
                self.identity_index.write().insert(key, cuid.clone());
                cuid
            }
        };

        let account = self.accounts.read().get(&cuid).cloned().expect("exists");
        let mut attributes = account.attributes.clone();
        attributes.push(Attribute::new("voPersonID", cuid.clone()));
        let assertion = Assertion {
            issuer: self.entity_id.clone(),
            subject: cuid.clone(),
            audience: service_entity_id.to_string(),
            issued_at: now,
            expires_at: now + PROXY_ASSERTION_TTL_SECS,
            authn_context: upstream.authn_context.clone(),
            loa: account.loa,
            attributes,
            assertion_id: format!("{}#{}", self.entity_id, upstream.assertion_id),
        };
        Ok((cuid, assertion.sign(&self.signing_key)))
    }

    /// Link an additional institutional identity to an existing account
    /// (the user proves control of both via fresh assertions upstream;
    /// here the already-verified pair is recorded).
    pub fn link_identity(
        &self,
        cuid: &str,
        idp_entity_id: &str,
        subject: &str,
    ) -> Result<(), ProxyError> {
        let mut accounts = self.accounts.write();
        let account = accounts.get_mut(cuid).ok_or(ProxyError::UnknownAccount)?;
        let key = (idp_entity_id.to_string(), subject.to_string());
        let mut index = self.identity_index.write();
        if index.contains_key(&key) {
            // Already linked somewhere: uniqueness guarantee forbids
            // double-linking.
            return Err(ProxyError::Replay);
        }
        account.linked_identities.push(key.clone());
        index.insert(key, cuid.to_string());
        Ok(())
    }

    /// Elevate assurance after out-of-band vetting (e.g. HPC-centre
    /// document check).
    pub fn elevate_loa(&self, cuid: &str, loa: LevelOfAssurance) -> Result<(), ProxyError> {
        let mut accounts = self.accounts.write();
        let account = accounts.get_mut(cuid).ok_or(ProxyError::UnknownAccount)?;
        account.loa = account.loa.max(loa);
        Ok(())
    }

    /// Suspend / unsuspend an account (incident response).
    pub fn set_suspended(&self, cuid: &str, suspended: bool) -> Result<(), ProxyError> {
        let mut accounts = self.accounts.write();
        let account = accounts.get_mut(cuid).ok_or(ProxyError::UnknownAccount)?;
        account.suspended = suspended;
        Ok(())
    }

    /// Fetch an account snapshot.
    pub fn account(&self, cuid: &str) -> Option<CommunityAccount> {
        self.accounts.read().get(cuid).cloned()
    }

    /// Registered account count.
    pub fn account_count(&self) -> usize {
        self.accounts.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idp::IdentityProvider;
    use crate::metadata::EntityDescriptor;
    use std::sync::Arc;

    struct Fixture {
        proxy: IdpProxy,
        idp: IdentityProvider,
    }

    fn fixture() -> Fixture {
        let clock = SimClock::starting_at(1_000_000);
        let registry = Arc::new(FederationRegistry::new());
        registry.register_federation("ukamf", "Jisc");
        let idp = IdentityProvider::new(
            "https://idp.bristol.ac.uk",
            "bristol.ac.uk",
            LevelOfAssurance::Medium,
            [1u8; 32],
            clock.clone(),
        );
        idp.provision_user("alice", "pw", "Alice", "staff", None);
        registry
            .register_entity(EntityDescriptor {
                entity_id: idp.entity_id.clone(),
                display_name: "University of Bristol".into(),
                kind: EntityKind::IdentityProvider,
                home_federation: "ukamf".into(),
                categories: vec![EntityCategory::ResearchAndScholarship],
                max_loa: LevelOfAssurance::Medium,
                signing_key: idp.verifying_key(),
            })
            .unwrap();
        let proxy = IdpProxy::new("https://proxy.myaccessid.org", [2u8; 32], clock, registry);
        proxy.register_service("https://broker.isambard.ac.uk");
        Fixture { proxy, idp }
    }

    fn login(f: &Fixture) -> (String, String) {
        let wire = f
            .idp
            .authenticate("alice", "pw", None, "https://proxy.myaccessid.org")
            .unwrap();
        f.proxy
            .broker_login(
                "https://idp.bristol.ac.uk",
                &wire,
                "https://broker.isambard.ac.uk",
            )
            .unwrap()
    }

    #[test]
    fn first_login_registers_account_with_persistent_cuid() {
        let f = fixture();
        let (cuid1, assertion_wire) = login(&f);
        assert_eq!(f.proxy.account_count(), 1);
        // Downstream assertion verifies against the proxy key and carries
        // the cuid as subject.
        let a = Assertion::verify(
            &assertion_wire,
            &f.proxy.verifying_key(),
            "https://broker.isambard.ac.uk",
            1000,
        )
        .unwrap();
        assert_eq!(a.subject, cuid1);
        assert_eq!(a.attribute("voPersonID"), Some(cuid1.as_str()));
        // Second login: same cuid, no second account.
        let (cuid2, _) = login(&f);
        assert_eq!(cuid1, cuid2);
        assert_eq!(f.proxy.account_count(), 1);
    }

    #[test]
    fn discovery_lists_rns_idps() {
        let f = fixture();
        let list = f.proxy.discovery_list();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].display_name, "University of Bristol");
    }

    #[test]
    fn replayed_assertion_rejected() {
        let f = fixture();
        let wire = f
            .idp
            .authenticate("alice", "pw", None, "https://proxy.myaccessid.org")
            .unwrap();
        assert!(f
            .proxy
            .broker_login(
                "https://idp.bristol.ac.uk",
                &wire,
                "https://broker.isambard.ac.uk"
            )
            .is_ok());
        assert_eq!(
            f.proxy.broker_login(
                "https://idp.bristol.ac.uk",
                &wire,
                "https://broker.isambard.ac.uk"
            ),
            Err(ProxyError::Replay)
        );
    }

    #[test]
    fn unknown_service_and_idp_rejected() {
        let f = fixture();
        let wire = f
            .idp
            .authenticate("alice", "pw", None, "https://proxy.myaccessid.org")
            .unwrap();
        assert!(matches!(
            f.proxy
                .broker_login("https://idp.bristol.ac.uk", &wire, "https://rogue.example"),
            Err(ProxyError::UnknownService(_))
        ));
        assert!(matches!(
            f.proxy.broker_login(
                "https://idp.unknown.example",
                &wire,
                "https://broker.isambard.ac.uk"
            ),
            Err(ProxyError::UnknownIdp(_))
        ));
    }

    #[test]
    fn suspended_account_cannot_login() {
        let f = fixture();
        let (cuid, _) = login(&f);
        f.proxy.set_suspended(&cuid, true).unwrap();
        let wire = f
            .idp
            .authenticate("alice", "pw", None, "https://proxy.myaccessid.org")
            .unwrap();
        assert_eq!(
            f.proxy.broker_login(
                "https://idp.bristol.ac.uk",
                &wire,
                "https://broker.isambard.ac.uk"
            ),
            Err(ProxyError::Suspended)
        );
        f.proxy.set_suspended(&cuid, false).unwrap();
        assert!(login(&f).0 == cuid);
    }

    #[test]
    fn identity_linking_preserves_uniqueness() {
        let f = fixture();
        let (cuid, _) = login(&f);
        f.proxy
            .link_identity(&cuid, "https://idp.tartu.ee", "alice@ut.ee")
            .unwrap();
        let account = f.proxy.account(&cuid).unwrap();
        assert_eq!(account.linked_identities.len(), 2);
        // Double-linking the same identity (even to the same account) fails.
        assert_eq!(
            f.proxy
                .link_identity(&cuid, "https://idp.tartu.ee", "alice@ut.ee"),
            Err(ProxyError::Replay)
        );
    }

    #[test]
    fn loa_elevation_sticks() {
        let f = fixture();
        let (cuid, _) = login(&f);
        assert_eq!(
            f.proxy.account(&cuid).unwrap().loa,
            LevelOfAssurance::Medium
        );
        f.proxy.elevate_loa(&cuid, LevelOfAssurance::High).unwrap();
        assert_eq!(f.proxy.account(&cuid).unwrap().loa, LevelOfAssurance::High);
        // A later Medium login does not downgrade.
        login(&f);
        assert_eq!(f.proxy.account(&cuid).unwrap().loa, LevelOfAssurance::High);
    }
}
