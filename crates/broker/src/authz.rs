//! The authorisation hook the broker consults before establishing a
//! session or issuing a token.
//!
//! The paper inverts the usual order: *"identity registration is led by
//! authorisation"* — a user who authenticates perfectly at MyAccessID but
//! holds no grant in the portal is refused at registration time. The
//! portal crate implements this trait; tests use [`StaticAuthz`].

use std::collections::HashMap;

use parking_lot::RwLock;

/// Source of truth for who may access what, with which roles.
pub trait AuthorizationSource: Send + Sync {
    /// Roles the subject holds for the given audience (service), e.g.
    /// `["researcher"]` for `ssh-ca`. Empty = no access to that service.
    fn roles_for(&self, subject: &str, audience: &str) -> Vec<String>;

    /// Whether the subject holds *any* grant at all. Registration is
    /// refused when this is false (authorisation-led registration).
    fn is_authorized_subject(&self, subject: &str) -> bool;

    /// Project-scoped UNIX accounts for the subject (used by the SSH CA:
    /// one unique UNIX user per user-per-project, per the paper's ZTA
    /// requirement). Pairs of `(project_id, unix_account)`.
    fn unix_accounts(&self, subject: &str) -> Vec<(String, String)>;
}

/// A fixed in-memory authorization table for tests and small examples.
#[derive(Default)]
pub struct StaticAuthz {
    grants: RwLock<HashMap<(String, String), Vec<String>>>,
    unix: RwLock<HashMap<String, Vec<(String, String)>>>,
}

impl StaticAuthz {
    /// Empty table.
    pub fn new() -> StaticAuthz {
        StaticAuthz::default()
    }

    /// Grant `roles` on `audience` to `subject`.
    pub fn grant(&self, subject: &str, audience: &str, roles: &[&str]) {
        self.grants.write().insert(
            (subject.to_string(), audience.to_string()),
            roles.iter().map(|r| r.to_string()).collect(),
        );
    }

    /// Revoke all roles on `audience` from `subject`.
    pub fn revoke(&self, subject: &str, audience: &str) {
        self.grants
            .write()
            .remove(&(subject.to_string(), audience.to_string()));
    }

    /// Record a project-scoped unix account.
    pub fn add_unix_account(&self, subject: &str, project: &str, account: &str) {
        self.unix
            .write()
            .entry(subject.to_string())
            .or_default()
            .push((project.to_string(), account.to_string()));
    }
}

impl AuthorizationSource for StaticAuthz {
    fn roles_for(&self, subject: &str, audience: &str) -> Vec<String> {
        self.grants
            .read()
            .get(&(subject.to_string(), audience.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    fn is_authorized_subject(&self, subject: &str) -> bool {
        self.grants.read().keys().any(|(s, _)| s == subject)
    }

    fn unix_accounts(&self, subject: &str) -> Vec<(String, String)> {
        self.unix.read().get(subject).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_authz_grant_revoke() {
        let a = StaticAuthz::new();
        assert!(!a.is_authorized_subject("maid-1"));
        a.grant("maid-1", "ssh-ca", &["researcher"]);
        assert!(a.is_authorized_subject("maid-1"));
        assert_eq!(a.roles_for("maid-1", "ssh-ca"), vec!["researcher"]);
        assert!(a.roles_for("maid-1", "jupyter").is_empty());
        a.revoke("maid-1", "ssh-ca");
        assert!(a.roles_for("maid-1", "ssh-ca").is_empty());
        assert!(!a.is_authorized_subject("maid-1"));
    }

    #[test]
    fn unix_accounts_tracked_per_project() {
        let a = StaticAuthz::new();
        a.add_unix_account("maid-1", "proj-a", "u.alice.proj-a");
        a.add_unix_account("maid-1", "proj-b", "u.alice.proj-b");
        assert_eq!(a.unix_accounts("maid-1").len(), 2);
        assert!(a.unix_accounts("maid-2").is_empty());
    }
}
