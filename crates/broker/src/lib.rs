//! # dri-broker — the Front Door identity broker
//!
//! The central service of the paper's Access Zone (FDS): it authenticates
//! users against upstream identity sources and mints the **short-lived,
//! per-service, role-scoped JWTs** that gate every other interaction in
//! the infrastructure.
//!
//! * [`broker`] — sessions, per-audience token policies, JWKS with key
//!   rotation, token issuance/validation/introspection, revocation (the
//!   identity-layer kill switch).
//! * [`managed_idp`] — the public-cloud managed IdP pair: the
//!   *administrator IdP* (hardware-key MFA, human-vetted registration) and
//!   the *Identity Provider of Last Resort* (password + TOTP) for users
//!   whose institutions are outside the MyAccessID federation.
//! * [`oidc`] — OpenID-Connect-shaped flows on top of the broker:
//!   authorization code with PKCE (web apps) and the device authorization
//!   grant (the SSH certificate client).
//! * [`authz`] — the `AuthorizationSource` trait: *authorisation leads
//!   authentication*; the broker refuses to establish a session for a
//!   subject the portal has no grants for.
//!
//! Design invariants carried over from the paper:
//! 1. every token names exactly one audience — **RBAC is per service,
//!    never global**;
//! 2. tokens are short-lived and sessions re-authenticate on expiry;
//! 3. administrator identities come only from the dedicated managed IdP
//!    with hardware-key MFA (`acr = "mfa-hw"`);
//! 4. revocation is immediate: a revoked session/subject can hold unexpired
//!    tokens, but introspection-aware services reject them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authz;
pub mod broker;
pub mod managed_idp;
pub mod oidc;
pub mod token_cache;

pub use authz::{AuthorizationSource, StaticAuthz};
pub use broker::{BrokerError, IdentityBroker, IdentitySource, Jwks, SessionInfo, TokenPolicy};
pub use managed_idp::{HardwareKey, ManagedIdp, ManagedIdpError, MfaMethod};
pub use oidc::{DeviceFlowError, DeviceGrant, OidcClient, OidcError, OidcProvider};
pub use token_cache::TokenCache;
