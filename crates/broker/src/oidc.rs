//! OpenID-Connect-shaped flows on top of the identity broker.
//!
//! Two grants are modelled, matching how the deployed system is used:
//!
//! * **Authorization code + PKCE** — web applications (the portal, the
//!   Zenith-published Jupyter endpoints) redirect the user to the broker,
//!   receive a single-use code, and exchange it (with the PKCE verifier)
//!   for a token scoped to their audience.
//! * **Device authorization grant** — the SSH certificate client is a CLI
//!   on the user's laptop: it shows a user code, the user approves it in
//!   an authenticated browser session, and the CLI polls for the token.

use std::collections::HashMap;
use std::sync::Arc;

use dri_clock::{IdGen, SimClock, SimRng};
use dri_crypto::base64;
use dri_crypto::jwt::Claims;
use dri_crypto::sha2::sha256;
use parking_lot::{Mutex, RwLock};

use crate::broker::{BrokerError, IdentityBroker};

/// Lifetime of an authorization code (seconds).
const CODE_TTL_SECS: u64 = 60;
/// Lifetime of a device grant awaiting approval (seconds).
const DEVICE_TTL_SECS: u64 = 600;

/// A registered relying party.
#[derive(Debug, Clone)]
pub struct OidcClient {
    /// Client identifier.
    pub client_id: String,
    /// Exact-match redirect URI.
    pub redirect_uri: String,
    /// The audience tokens for this client are scoped to.
    pub audience: String,
}

/// OIDC flow failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OidcError {
    /// Client id not registered.
    UnknownClient(String),
    /// Redirect URI does not exactly match the registration.
    RedirectMismatch,
    /// Code unknown, already used, or expired.
    BadCode,
    /// PKCE verifier does not hash to the challenge.
    BadVerifier,
    /// The underlying broker refused.
    Broker(BrokerError),
    /// Session invalid at authorize time.
    InvalidSession,
}

impl std::fmt::Display for OidcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OidcError::UnknownClient(c) => write!(f, "unknown client {c}"),
            OidcError::RedirectMismatch => write!(f, "redirect_uri mismatch"),
            OidcError::BadCode => write!(f, "invalid authorization code"),
            OidcError::BadVerifier => write!(f, "PKCE verification failed"),
            OidcError::Broker(e) => write!(f, "broker refused: {e}"),
            OidcError::InvalidSession => write!(f, "invalid session"),
        }
    }
}

impl std::error::Error for OidcError {}

/// Device-flow specific outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceFlowError {
    /// Grant unknown or expired.
    BadDeviceCode,
    /// User has not approved yet — poll again.
    AuthorizationPending,
    /// The user (or an admin) denied the grant.
    Denied,
    /// Broker refused token issuance after approval.
    Broker(BrokerError),
}

impl std::fmt::Display for DeviceFlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceFlowError::BadDeviceCode => write!(f, "invalid device code"),
            DeviceFlowError::AuthorizationPending => write!(f, "authorization pending"),
            DeviceFlowError::Denied => write!(f, "denied"),
            DeviceFlowError::Broker(e) => write!(f, "broker refused: {e}"),
        }
    }
}

impl std::error::Error for DeviceFlowError {}

/// A pending device authorization.
#[derive(Debug, Clone)]
pub struct DeviceGrant {
    /// Secret code the device polls with.
    pub device_code: String,
    /// Short human code the user types into the approval page.
    pub user_code: String,
    /// Client that initiated the flow.
    pub client_id: String,
    /// Expiry (seconds).
    pub expires_at: u64,
    state: DeviceState,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum DeviceState {
    Pending,
    Approved { session_id: String },
    Denied,
}

struct AuthCode {
    client_id: String,
    session_id: String,
    code_challenge: [u8; 32],
    expires_at: u64,
}

#[derive(Clone)]
struct RefreshGrant {
    client_id: String,
    session_id: String,
    /// Rotated out tokens; presenting one is treated as theft.
    rotated: bool,
}

/// The OIDC provider facade over the broker.
pub struct OidcProvider {
    broker: Arc<IdentityBroker>,
    clock: SimClock,
    clients: RwLock<HashMap<String, OidcClient>>,
    codes: Mutex<HashMap<String, AuthCode>>,
    devices: Mutex<HashMap<String, DeviceGrant>>, // by device_code
    user_codes: Mutex<HashMap<String, String>>,   // user_code -> device_code
    refresh_grants: Mutex<HashMap<String, RefreshGrant>>,
    rng: Mutex<SimRng>,
    ids: IdGen,
}

impl OidcProvider {
    /// Wrap a broker.
    pub fn new(broker: Arc<IdentityBroker>, clock: SimClock, rng: SimRng) -> OidcProvider {
        OidcProvider {
            broker,
            clock,
            clients: RwLock::new(HashMap::new()),
            codes: Mutex::new(HashMap::new()),
            devices: Mutex::new(HashMap::new()),
            user_codes: Mutex::new(HashMap::new()),
            refresh_grants: Mutex::new(HashMap::new()),
            rng: Mutex::new(rng),
            ids: IdGen::new("oidc"),
        }
    }

    /// Register a relying party.
    pub fn register_client(&self, client: OidcClient) {
        self.clients
            .write()
            .insert(client.client_id.clone(), client);
    }

    fn random_token(&self, prefix: &str) -> String {
        let mut bytes = [0u8; 16];
        self.rng.lock().fill_bytes(&mut bytes);
        format!("{prefix}-{}", dri_crypto::hex::encode(&bytes))
    }

    /// PKCE S256: hash a verifier into a challenge.
    pub fn s256(verifier: &str) -> String {
        base64::encode_url(&sha256(verifier.as_bytes()))
    }

    /// Authorization endpoint: the user arrives with an authenticated
    /// broker session; issue a single-use code bound to the PKCE
    /// challenge.
    pub fn authorize(
        &self,
        client_id: &str,
        redirect_uri: &str,
        code_challenge_s256: &str,
        session_id: &str,
    ) -> Result<String, OidcError> {
        let clients = self.clients.read();
        let client = clients
            .get(client_id)
            .ok_or_else(|| OidcError::UnknownClient(client_id.to_string()))?;
        if client.redirect_uri != redirect_uri {
            return Err(OidcError::RedirectMismatch);
        }
        if self.broker.session(session_id).is_none() {
            return Err(OidcError::InvalidSession);
        }
        let challenge_bytes =
            base64::decode_url(code_challenge_s256).map_err(|_| OidcError::BadVerifier)?;
        if challenge_bytes.len() != 32 {
            return Err(OidcError::BadVerifier);
        }
        let mut challenge = [0u8; 32];
        challenge.copy_from_slice(&challenge_bytes);

        let code = self.random_token("code");
        self.codes.lock().insert(
            code.clone(),
            AuthCode {
                client_id: client_id.to_string(),
                session_id: session_id.to_string(),
                code_challenge: challenge,
                expires_at: self.clock.now_secs() + CODE_TTL_SECS,
            },
        );
        Ok(code)
    }

    /// Token endpoint: exchange a code + PKCE verifier for an RBAC token
    /// scoped to the client's audience.
    pub fn exchange_code(
        &self,
        client_id: &str,
        code: &str,
        verifier: &str,
    ) -> Result<(String, Claims), OidcError> {
        let auth = self.codes.lock().remove(code).ok_or(OidcError::BadCode)?;
        if auth.client_id != client_id {
            return Err(OidcError::BadCode);
        }
        if self.clock.now_secs() >= auth.expires_at {
            return Err(OidcError::BadCode);
        }
        if sha256(verifier.as_bytes()) != auth.code_challenge {
            return Err(OidcError::BadVerifier);
        }
        let audience = {
            let clients = self.clients.read();
            clients
                .get(client_id)
                .ok_or_else(|| OidcError::UnknownClient(client_id.to_string()))?
                .audience
                .clone()
        };
        self.broker
            .issue_token(&auth.session_id, &audience)
            .map_err(OidcError::Broker)
    }

    /// Like [`OidcProvider::exchange_code`] but also minting a rotating
    /// refresh token (RFC 6749 §6 with OAuth 2.1-style rotation).
    pub fn exchange_code_with_refresh(
        &self,
        client_id: &str,
        code: &str,
        verifier: &str,
    ) -> Result<(String, Claims, String), OidcError> {
        let auth_session = {
            let codes = self.codes.lock();
            codes.get(code).map(|a| a.session_id.clone())
        };
        let (token, claims) = self.exchange_code(client_id, code, verifier)?;
        let session_id = auth_session.ok_or(OidcError::BadCode)?;
        let refresh = self.random_token("rt");
        self.refresh_grants.lock().insert(
            refresh.clone(),
            RefreshGrant {
                client_id: client_id.to_string(),
                session_id,
                rotated: false,
            },
        );
        Ok((token, claims, refresh))
    }

    /// Refresh grant: exchange a refresh token for a fresh access token
    /// and a *new* refresh token. Presenting an already-rotated token is
    /// treated as credential theft: the whole session is revoked.
    pub fn refresh(
        &self,
        client_id: &str,
        refresh_token: &str,
    ) -> Result<(String, Claims, String), OidcError> {
        let grant = {
            let mut grants = self.refresh_grants.lock();
            let grant = grants
                .get_mut(refresh_token)
                .ok_or(OidcError::BadCode)?
                .clone();
            if grant.rotated {
                // Reuse detected: kill the session defensively.
                self.broker.revoke_session(&grant.session_id);
                grants.remove(refresh_token);
                return Err(OidcError::BadCode);
            }
            grants.get_mut(refresh_token).expect("present").rotated = true;
            grant
        };
        if grant.client_id != client_id {
            return Err(OidcError::BadCode);
        }
        let audience = {
            let clients = self.clients.read();
            clients
                .get(client_id)
                .ok_or_else(|| OidcError::UnknownClient(client_id.to_string()))?
                .audience
                .clone()
        };
        let (token, claims) = self
            .broker
            .issue_token(&grant.session_id, &audience)
            .map_err(OidcError::Broker)?;
        let new_refresh = self.random_token("rt");
        self.refresh_grants.lock().insert(
            new_refresh.clone(),
            RefreshGrant {
                client_id: client_id.to_string(),
                session_id: grant.session_id,
                rotated: false,
            },
        );
        Ok((token, claims, new_refresh))
    }

    /// Device endpoint: start a device authorization (the SSH cert client).
    pub fn begin_device_flow(&self, client_id: &str) -> Result<DeviceGrant, OidcError> {
        if !self.clients.read().contains_key(client_id) {
            return Err(OidcError::UnknownClient(client_id.to_string()));
        }
        let device_code = self.random_token("dev");
        let user_code = {
            // Short human-typable code: 2 groups of 4 characters.
            let n = self.ids.next();
            let digest = sha256(n.as_bytes());
            let alphabet = b"BCDFGHJKLMNPQRSTVWXZ";
            let mut s = String::with_capacity(9);
            for (i, b) in digest.iter().take(8).enumerate() {
                if i == 4 {
                    s.push('-');
                }
                s.push(alphabet[(*b as usize) % alphabet.len()] as char);
            }
            s
        };
        let grant = DeviceGrant {
            device_code: device_code.clone(),
            user_code: user_code.clone(),
            client_id: client_id.to_string(),
            expires_at: self.clock.now_secs() + DEVICE_TTL_SECS,
            state: DeviceState::Pending,
        };
        self.devices
            .lock()
            .insert(device_code.clone(), grant.clone());
        self.user_codes.lock().insert(user_code, device_code);
        Ok(grant)
    }

    /// The user, in an authenticated browser session, approves the device
    /// showing `user_code`.
    pub fn approve_device(&self, user_code: &str, session_id: &str) -> Result<(), OidcError> {
        if self.broker.session(session_id).is_none() {
            return Err(OidcError::InvalidSession);
        }
        let device_code = self
            .user_codes
            .lock()
            .get(user_code)
            .cloned()
            .ok_or(OidcError::BadCode)?;
        let mut devices = self.devices.lock();
        let grant = devices.get_mut(&device_code).ok_or(OidcError::BadCode)?;
        if self.clock.now_secs() >= grant.expires_at {
            return Err(OidcError::BadCode);
        }
        grant.state = DeviceState::Approved {
            session_id: session_id.to_string(),
        };
        Ok(())
    }

    /// Deny a pending device grant.
    pub fn deny_device(&self, user_code: &str) -> Result<(), OidcError> {
        let device_code = self
            .user_codes
            .lock()
            .get(user_code)
            .cloned()
            .ok_or(OidcError::BadCode)?;
        let mut devices = self.devices.lock();
        let grant = devices.get_mut(&device_code).ok_or(OidcError::BadCode)?;
        grant.state = DeviceState::Denied;
        Ok(())
    }

    /// The device polls with its device code; on approval it receives the
    /// token for the client's audience.
    pub fn poll_device(&self, device_code: &str) -> Result<(String, Claims), DeviceFlowError> {
        let (state, client_id) = {
            let devices = self.devices.lock();
            let grant = devices
                .get(device_code)
                .ok_or(DeviceFlowError::BadDeviceCode)?;
            if self.clock.now_secs() >= grant.expires_at {
                return Err(DeviceFlowError::BadDeviceCode);
            }
            (grant.state.clone(), grant.client_id.clone())
        };
        match state {
            DeviceState::Pending => Err(DeviceFlowError::AuthorizationPending),
            DeviceState::Denied => Err(DeviceFlowError::Denied),
            DeviceState::Approved { session_id } => {
                let audience = {
                    let clients = self.clients.read();
                    clients
                        .get(&client_id)
                        .map(|c| c.audience.clone())
                        .ok_or(DeviceFlowError::BadDeviceCode)?
                };
                // Single use: consume the grant.
                self.devices.lock().remove(device_code);
                self.broker
                    .issue_token(&session_id, &audience)
                    .map_err(DeviceFlowError::Broker)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authz::StaticAuthz;
    use crate::broker::TokenPolicy;
    use crate::managed_idp::ManagedLogin;
    use crate::IdentitySource;
    use dri_federation::metadata::FederationRegistry;

    struct Fixture {
        oidc: OidcProvider,
        broker: Arc<IdentityBroker>,
        clock: SimClock,
        session_id: String,
    }

    fn fixture() -> Fixture {
        let clock = SimClock::starting_at(5_000_000);
        let registry = Arc::new(FederationRegistry::new());
        let authz = Arc::new(StaticAuthz::new());
        authz.grant("last-resort:carol", "jupyter", &["researcher"]);
        authz.grant("last-resort:carol", "ssh-ca", &["researcher"]);
        let broker = Arc::new(IdentityBroker::new(
            "https://broker.isambard.ac.uk",
            [21u8; 32],
            3600,
            clock.clone(),
            registry,
            authz,
        ));
        broker.register_service(TokenPolicy::standard("jupyter", 600));
        broker.register_service(TokenPolicy::standard("ssh-ca", 900));
        let session = broker
            .login_managed(
                &ManagedLogin {
                    subject: "last-resort:carol".into(),
                    acr: "mfa-totp".into(),
                },
                IdentitySource::LastResort,
            )
            .unwrap();
        let oidc = OidcProvider::new(broker.clone(), clock.clone(), SimRng::seed_from_u64(3));
        oidc.register_client(OidcClient {
            client_id: "jupyter-web".into(),
            redirect_uri: "https://example.com/jupyter/callback".into(),
            audience: "jupyter".into(),
        });
        oidc.register_client(OidcClient {
            client_id: "ssh-cert-cli".into(),
            redirect_uri: "urn:ietf:wg:oauth:2.0:oob".into(),
            audience: "ssh-ca".into(),
        });
        Fixture {
            oidc,
            broker,
            clock,
            session_id: session.session_id,
        }
    }

    #[test]
    fn code_flow_with_pkce() {
        let f = fixture();
        let verifier = "a-very-random-verifier-string";
        let challenge = OidcProvider::s256(verifier);
        let code = f
            .oidc
            .authorize(
                "jupyter-web",
                "https://example.com/jupyter/callback",
                &challenge,
                &f.session_id,
            )
            .unwrap();
        let (token, claims) = f
            .oidc
            .exchange_code("jupyter-web", &code, verifier)
            .unwrap();
        assert_eq!(claims.audience, "jupyter");
        assert!(f
            .broker
            .jwks()
            .validate(&token, "jupyter", f.clock.now_secs())
            .is_ok());
        // Codes are single use.
        assert_eq!(
            f.oidc.exchange_code("jupyter-web", &code, verifier),
            Err(OidcError::BadCode)
        );
    }

    #[test]
    fn pkce_verifier_must_match() {
        let f = fixture();
        let challenge = OidcProvider::s256("right-verifier");
        let code = f
            .oidc
            .authorize(
                "jupyter-web",
                "https://example.com/jupyter/callback",
                &challenge,
                &f.session_id,
            )
            .unwrap();
        assert_eq!(
            f.oidc.exchange_code("jupyter-web", &code, "wrong-verifier"),
            Err(OidcError::BadVerifier)
        );
    }

    #[test]
    fn redirect_uri_pinned() {
        let f = fixture();
        let challenge = OidcProvider::s256("v");
        assert_eq!(
            f.oidc.authorize(
                "jupyter-web",
                "https://evil.example/cb",
                &challenge,
                &f.session_id
            ),
            Err(OidcError::RedirectMismatch)
        );
        assert!(matches!(
            f.oidc
                .authorize("ghost", "https://x", &challenge, &f.session_id),
            Err(OidcError::UnknownClient(_))
        ));
    }

    #[test]
    fn expired_code_rejected() {
        let f = fixture();
        let verifier = "v";
        let code = f
            .oidc
            .authorize(
                "jupyter-web",
                "https://example.com/jupyter/callback",
                &OidcProvider::s256(verifier),
                &f.session_id,
            )
            .unwrap();
        f.clock.advance_secs(CODE_TTL_SECS + 1);
        assert_eq!(
            f.oidc.exchange_code("jupyter-web", &code, verifier),
            Err(OidcError::BadCode)
        );
    }

    #[test]
    fn device_flow_happy_path() {
        let f = fixture();
        let grant = f.oidc.begin_device_flow("ssh-cert-cli").unwrap();
        // Device polls before approval.
        assert_eq!(
            f.oidc.poll_device(&grant.device_code),
            Err(DeviceFlowError::AuthorizationPending)
        );
        // User approves in their authenticated browser session.
        f.oidc
            .approve_device(&grant.user_code, &f.session_id)
            .unwrap();
        let (token, claims) = f.oidc.poll_device(&grant.device_code).unwrap();
        assert_eq!(claims.audience, "ssh-ca");
        assert!(f
            .broker
            .jwks()
            .validate(&token, "ssh-ca", f.clock.now_secs())
            .is_ok());
        // Grant consumed.
        assert_eq!(
            f.oidc.poll_device(&grant.device_code),
            Err(DeviceFlowError::BadDeviceCode)
        );
    }

    #[test]
    fn device_flow_denial_and_expiry() {
        let f = fixture();
        let g1 = f.oidc.begin_device_flow("ssh-cert-cli").unwrap();
        f.oidc.deny_device(&g1.user_code).unwrap();
        assert_eq!(
            f.oidc.poll_device(&g1.device_code),
            Err(DeviceFlowError::Denied)
        );

        let g2 = f.oidc.begin_device_flow("ssh-cert-cli").unwrap();
        f.clock.advance_secs(DEVICE_TTL_SECS + 1);
        assert_eq!(
            f.oidc.poll_device(&g2.device_code),
            Err(DeviceFlowError::BadDeviceCode)
        );
        assert_eq!(
            f.oidc.approve_device(&g2.user_code, &f.session_id),
            Err(OidcError::BadCode)
        );
    }

    #[test]
    fn refresh_token_rotation() {
        let f = fixture();
        let verifier = "v";
        let code = f
            .oidc
            .authorize(
                "jupyter-web",
                "https://example.com/jupyter/callback",
                &OidcProvider::s256(verifier),
                &f.session_id,
            )
            .unwrap();
        let (_t, _c, rt1) = f
            .oidc
            .exchange_code_with_refresh("jupyter-web", &code, verifier)
            .unwrap();
        // Refresh works and rotates.
        let (t2, c2, rt2) = f.oidc.refresh("jupyter-web", &rt1).unwrap();
        assert_eq!(c2.audience, "jupyter");
        assert!(f
            .broker
            .jwks()
            .validate(&t2, "jupyter", f.clock.now_secs())
            .is_ok());
        assert_ne!(rt1, rt2);
        // Wrong client can't use it.
        assert_eq!(
            f.oidc.refresh("ssh-cert-cli", &rt2),
            Err(OidcError::BadCode)
        );
    }

    #[test]
    fn refresh_reuse_kills_the_session() {
        let f = fixture();
        let verifier = "v";
        let code = f
            .oidc
            .authorize(
                "jupyter-web",
                "https://example.com/jupyter/callback",
                &OidcProvider::s256(verifier),
                &f.session_id,
            )
            .unwrap();
        let (_t, _c, rt1) = f
            .oidc
            .exchange_code_with_refresh("jupyter-web", &code, verifier)
            .unwrap();
        let (_t2, _c2, _rt2) = f.oidc.refresh("jupyter-web", &rt1).unwrap();
        // Replaying the rotated token is treated as theft: session dies.
        assert_eq!(f.oidc.refresh("jupyter-web", &rt1), Err(OidcError::BadCode));
        assert!(f.broker.session(&f.session_id).is_none());
    }

    #[test]
    fn device_user_codes_unique() {
        let f = fixture();
        let g1 = f.oidc.begin_device_flow("ssh-cert-cli").unwrap();
        let g2 = f.oidc.begin_device_flow("ssh-cert-cli").unwrap();
        assert_ne!(g1.user_code, g2.user_code);
        assert_ne!(g1.device_code, g2.device_code);
    }
}
