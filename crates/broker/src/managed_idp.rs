//! Public-cloud managed IdPs.
//!
//! Two instances exist in the deployed system:
//!
//! * the **administrator IdP** — ~20 BriCS staff, registration requires a
//!   human vetting approval, login requires a hardware-key (FIDO2-style)
//!   signature over a fresh challenge (`acr = "mfa-hw"`);
//! * the **Identity Provider of Last Resort** — users whose institutions
//!   are not in MyAccessID (vendors, AI Safety Institute); password + TOTP
//!   (`acr = "mfa-totp"`).
//!
//! The hardware key is modelled faithfully enough to matter: the "device"
//! holds an Ed25519 keypair, the IdP stores only the public key, and a
//! login requires a signature over a server-chosen nonce — so a stolen
//! password alone can never produce an admin session (exercised by the
//! E10/E13 attack experiments).

use dri_clock::{IdGen, SimClock, SimRng};
use dri_crypto::ed25519::{SigningKey, VerifyingKey};
use dri_crypto::sha2::sha256;
use dri_federation::idp::totp_code;
use dri_sync::ShardMap;
use parking_lot::Mutex;

/// Which second factor a directory user has enrolled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MfaMethod {
    /// FIDO2-style hardware key (admins).
    HardwareKey,
    /// TOTP authenticator app (last-resort users).
    Totp,
}

/// The user-side half of a hardware key: lives on the user's device,
/// never enters the IdP.
#[derive(Clone)]
pub struct HardwareKey {
    key: SigningKey,
}

impl HardwareKey {
    /// Mint a new hardware key from RNG.
    pub fn generate(rng: &mut SimRng) -> HardwareKey {
        HardwareKey {
            key: SigningKey::from_seed(&rng.seed32()),
        }
    }

    /// Public half for enrolment.
    pub fn public(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// Sign an authentication challenge.
    pub fn sign_challenge(&self, challenge: &[u8]) -> [u8; 64] {
        self.key.sign(challenge)
    }
}

#[derive(Clone)]
struct DirectoryUser {
    username: String,
    password_hash: [u8; 32],
    salt: [u8; 8],
    mfa: MfaMethod,
    totp_secret: Option<Vec<u8>>,
    hw_key: Option<VerifyingKey>,
    active: bool,
    /// Admin registrations require an explicit human approval first.
    vetted: bool,
}

/// A pending login challenge (hardware-key flow).
#[derive(Debug, Clone)]
struct PendingChallenge {
    username: String,
    nonce: [u8; 32],
    expires_at_ms: u64,
}

/// Errors from the managed IdP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManagedIdpError {
    /// No such user.
    UnknownUser,
    /// Wrong password.
    BadPassword,
    /// TOTP missing/wrong.
    BadTotp,
    /// Hardware-key signature invalid.
    BadHardwareKeySignature,
    /// Challenge expired or unknown.
    BadChallenge,
    /// Account not yet human-vetted (admin flow).
    NotVetted,
    /// Account deactivated.
    Deactivated,
    /// Username already registered.
    Duplicate,
    /// The user has no hardware key enrolled.
    NoHardwareKey,
}

impl std::fmt::Display for ManagedIdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ManagedIdpError::UnknownUser => "unknown user",
            ManagedIdpError::BadPassword => "bad password",
            ManagedIdpError::BadTotp => "bad TOTP code",
            ManagedIdpError::BadHardwareKeySignature => "hardware key signature invalid",
            ManagedIdpError::BadChallenge => "challenge unknown or expired",
            ManagedIdpError::NotVetted => "account awaiting human vetting",
            ManagedIdpError::Deactivated => "account deactivated",
            ManagedIdpError::Duplicate => "username already registered",
            ManagedIdpError::NoHardwareKey => "no hardware key enrolled",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ManagedIdpError {}

/// Challenge lifetime (ms): hardware-key challenges are single-use and
/// short-lived.
const CHALLENGE_TTL_MS: u64 = 60_000;

/// A successful managed-IdP authentication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManagedLogin {
    /// Stable subject id, prefixed by the IdP name (`admin:dave`).
    pub subject: String,
    /// Authentication context (`mfa-hw` or `mfa-totp`).
    pub acr: String,
}

/// A managed directory IdP (AWS-Identity-Center-like).
pub struct ManagedIdp {
    /// IdP name, used as the subject prefix (`admin` / `last-resort`).
    pub name: String,
    /// If true, users must be explicitly vetted before first login
    /// (admin IdP behaviour).
    pub requires_vetting: bool,
    clock: SimClock,
    users: ShardMap<DirectoryUser>,
    challenges: ShardMap<PendingChallenge>,
    rng: Mutex<SimRng>,
    ids: IdGen,
}

/// Shards per managed-IdP map: directories are small (tens of users) but
/// login storms hit them concurrently.
const IDP_SHARDS: usize = 8;

impl ManagedIdp {
    /// Create a managed IdP.
    pub fn new(
        name: impl Into<String>,
        requires_vetting: bool,
        clock: SimClock,
        rng: SimRng,
    ) -> ManagedIdp {
        ManagedIdp {
            name: name.into(),
            requires_vetting,
            clock,
            users: ShardMap::new(IDP_SHARDS),
            challenges: ShardMap::new(IDP_SHARDS),
            rng: Mutex::new(rng),
            ids: IdGen::new("chal"),
        }
    }

    fn hash_password(salt: &[u8; 8], password: &str) -> [u8; 32] {
        let mut input = Vec::with_capacity(8 + password.len());
        input.extend_from_slice(salt);
        input.extend_from_slice(password.as_bytes());
        sha256(&input)
    }

    /// Register a user with a TOTP second factor. Returns the TOTP secret
    /// (would be shown as a QR code).
    pub fn register_totp_user(
        &self,
        username: &str,
        password: &str,
    ) -> Result<Vec<u8>, ManagedIdpError> {
        // Duplicate-check and insert under the user's shard lock so a
        // racing double-registration cannot both succeed.
        let mut users = self.users.write_shard(username);
        if users.contains_key(username) {
            return Err(ManagedIdpError::Duplicate);
        }
        let mut rng = self.rng.lock();
        let mut secret = vec![0u8; 20];
        rng.fill_bytes(&mut secret);
        let mut salt = [0u8; 8];
        rng.fill_bytes(&mut salt);
        users.insert(
            username.to_string(),
            DirectoryUser {
                username: username.to_string(),
                password_hash: Self::hash_password(&salt, password),
                salt,
                mfa: MfaMethod::Totp,
                totp_secret: Some(secret.clone()),
                hw_key: None,
                active: true,
                vetted: !self.requires_vetting,
            },
        );
        Ok(secret)
    }

    /// Register a user with a hardware key (admin flow). The account stays
    /// unusable until [`ManagedIdp::vet_user`] is called when vetting is
    /// required.
    pub fn register_hw_user(
        &self,
        username: &str,
        password: &str,
        hw_public: VerifyingKey,
    ) -> Result<(), ManagedIdpError> {
        let mut users = self.users.write_shard(username);
        if users.contains_key(username) {
            return Err(ManagedIdpError::Duplicate);
        }
        let mut rng = self.rng.lock();
        let mut salt = [0u8; 8];
        rng.fill_bytes(&mut salt);
        users.insert(
            username.to_string(),
            DirectoryUser {
                username: username.to_string(),
                password_hash: Self::hash_password(&salt, password),
                salt,
                mfa: MfaMethod::HardwareKey,
                totp_secret: None,
                hw_key: Some(hw_public),
                active: true,
                vetted: !self.requires_vetting,
            },
        );
        Ok(())
    }

    /// The human-in-the-loop identity confirmation of user story 2.
    pub fn vet_user(&self, username: &str) -> Result<(), ManagedIdpError> {
        self.users
            .with_mut(username, |u| u.vetted = true)
            .ok_or(ManagedIdpError::UnknownUser)
    }

    /// Deactivate an account ("access is revoked when an individual
    /// leaves the group").
    pub fn deactivate(&self, username: &str) -> Result<(), ManagedIdpError> {
        self.users
            .with_mut(username, |u| u.active = false)
            .ok_or(ManagedIdpError::UnknownUser)
    }

    /// TOTP login (last-resort users).
    pub fn login_totp(
        &self,
        username: &str,
        password: &str,
        code: u32,
    ) -> Result<ManagedLogin, ManagedIdpError> {
        let u = self
            .users
            .get_cloned(username)
            .ok_or(ManagedIdpError::UnknownUser)?;
        self.check_basics(&u, password)?;
        let secret = u.totp_secret.as_ref().ok_or(ManagedIdpError::BadTotp)?;
        let expected = totp_code(secret, self.clock.now_secs() / 30);
        if code != expected {
            return Err(ManagedIdpError::BadTotp);
        }
        Ok(ManagedLogin {
            subject: format!("{}:{}", self.name, u.username),
            acr: "mfa-totp".to_string(),
        })
    }

    /// Begin a hardware-key login: returns `(challenge_id, nonce)` after
    /// password verification.
    pub fn begin_hw_login(
        &self,
        username: &str,
        password: &str,
    ) -> Result<(String, [u8; 32]), ManagedIdpError> {
        let u = self
            .users
            .get_cloned(username)
            .ok_or(ManagedIdpError::UnknownUser)?;
        self.check_basics(&u, password)?;
        if u.hw_key.is_none() {
            return Err(ManagedIdpError::NoHardwareKey);
        }
        let mut nonce = [0u8; 32];
        self.rng.lock().fill_bytes(&mut nonce);
        let id = self.ids.next();
        self.challenges.insert(
            id.clone(),
            PendingChallenge {
                username: username.to_string(),
                nonce,
                expires_at_ms: self.clock.now_ms() + CHALLENGE_TTL_MS,
            },
        );
        Ok((id, nonce))
    }

    /// Complete a hardware-key login with the device's signature over the
    /// nonce. Challenges are single-use.
    pub fn finish_hw_login(
        &self,
        challenge_id: &str,
        signature: &[u8; 64],
    ) -> Result<ManagedLogin, ManagedIdpError> {
        let challenge = self
            .challenges
            .remove(challenge_id)
            .ok_or(ManagedIdpError::BadChallenge)?;
        if self.clock.now_ms() >= challenge.expires_at_ms {
            return Err(ManagedIdpError::BadChallenge);
        }
        let u = self
            .users
            .get_cloned(&challenge.username)
            .ok_or(ManagedIdpError::UnknownUser)?;
        let key = u.hw_key.as_ref().ok_or(ManagedIdpError::NoHardwareKey)?;
        if !key.verify(&challenge.nonce, signature) {
            return Err(ManagedIdpError::BadHardwareKeySignature);
        }
        Ok(ManagedLogin {
            subject: format!("{}:{}", self.name, u.username),
            acr: "mfa-hw".to_string(),
        })
    }

    fn check_basics(&self, u: &DirectoryUser, password: &str) -> Result<(), ManagedIdpError> {
        if !u.active {
            return Err(ManagedIdpError::Deactivated);
        }
        if !u.vetted {
            return Err(ManagedIdpError::NotVetted);
        }
        let supplied = Self::hash_password(&u.salt, password);
        if !dri_crypto::ct_eq(&supplied, &u.password_hash) {
            return Err(ManagedIdpError::BadPassword);
        }
        Ok(())
    }

    /// The MFA method a user enrolled with.
    pub fn mfa_method(&self, username: &str) -> Option<MfaMethod> {
        self.users.with(username, |u| u.mfa)
    }

    /// The TOTP code currently expected for a user (test/client helper —
    /// in reality this lives in the user's authenticator app).
    pub fn current_totp(&self, username: &str) -> Option<u32> {
        let when = self.clock.now_secs() / 30;
        self.users
            .with(username, |u| {
                u.totp_secret.as_ref().map(|s| totp_code(s, when))
            })
            .flatten()
    }

    /// Directory size (metrics).
    pub fn user_count(&self) -> usize {
        self.users.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ManagedIdp, ManagedIdp) {
        let clock = SimClock::new();
        let admin = ManagedIdp::new("admin", true, clock.clone(), SimRng::seed_from_u64(1));
        let last_resort = ManagedIdp::new("last-resort", false, clock, SimRng::seed_from_u64(2));
        (admin, last_resort)
    }

    #[test]
    fn totp_login_roundtrip() {
        let (_, idp) = setup();
        idp.register_totp_user("vendor1", "pw").unwrap();
        let code = idp.current_totp("vendor1").unwrap();
        let login = idp.login_totp("vendor1", "pw", code).unwrap();
        assert_eq!(login.subject, "last-resort:vendor1");
        assert_eq!(login.acr, "mfa-totp");
        // Wrong code fails.
        assert_eq!(
            idp.login_totp("vendor1", "pw", (code + 1) % 1_000_000),
            Err(ManagedIdpError::BadTotp)
        );
        // Wrong password fails before TOTP is even checked.
        assert_eq!(
            idp.login_totp("vendor1", "nope", code),
            Err(ManagedIdpError::BadPassword)
        );
    }

    #[test]
    fn admin_requires_vetting_then_hardware_key() {
        let (admin, _) = setup();
        let mut rng = SimRng::seed_from_u64(77);
        let device = HardwareKey::generate(&mut rng);
        admin
            .register_hw_user("dave", "pw", device.public())
            .unwrap();
        // Not vetted yet: even the password step refuses.
        assert_eq!(
            admin.begin_hw_login("dave", "pw"),
            Err(ManagedIdpError::NotVetted)
        );
        admin.vet_user("dave").unwrap();
        let (cid, nonce) = admin.begin_hw_login("dave", "pw").unwrap();
        let sig = device.sign_challenge(&nonce);
        let login = admin.finish_hw_login(&cid, &sig).unwrap();
        assert_eq!(login.subject, "admin:dave");
        assert_eq!(login.acr, "mfa-hw");
    }

    #[test]
    fn hw_challenge_single_use_and_signature_checked() {
        let (admin, _) = setup();
        let mut rng = SimRng::seed_from_u64(78);
        let device = HardwareKey::generate(&mut rng);
        let wrong_device = HardwareKey::generate(&mut rng);
        admin
            .register_hw_user("dave", "pw", device.public())
            .unwrap();
        admin.vet_user("dave").unwrap();

        // Wrong device's signature is rejected.
        let (cid, nonce) = admin.begin_hw_login("dave", "pw").unwrap();
        let bad_sig = wrong_device.sign_challenge(&nonce);
        assert_eq!(
            admin.finish_hw_login(&cid, &bad_sig),
            Err(ManagedIdpError::BadHardwareKeySignature)
        );
        // The challenge was consumed: replay with the right key also fails.
        let good_sig = device.sign_challenge(&nonce);
        assert_eq!(
            admin.finish_hw_login(&cid, &good_sig),
            Err(ManagedIdpError::BadChallenge)
        );
    }

    #[test]
    fn hw_challenge_expires() {
        let clock = SimClock::new();
        let admin = ManagedIdp::new("admin", false, clock.clone(), SimRng::seed_from_u64(3));
        let mut rng = SimRng::seed_from_u64(4);
        let device = HardwareKey::generate(&mut rng);
        admin
            .register_hw_user("dave", "pw", device.public())
            .unwrap();
        let (cid, nonce) = admin.begin_hw_login("dave", "pw").unwrap();
        clock.advance(CHALLENGE_TTL_MS + 1);
        let sig = device.sign_challenge(&nonce);
        assert_eq!(
            admin.finish_hw_login(&cid, &sig),
            Err(ManagedIdpError::BadChallenge)
        );
    }

    #[test]
    fn deactivated_admin_locked_out() {
        let (admin, _) = setup();
        let mut rng = SimRng::seed_from_u64(5);
        let device = HardwareKey::generate(&mut rng);
        admin
            .register_hw_user("eve", "pw", device.public())
            .unwrap();
        admin.vet_user("eve").unwrap();
        admin.deactivate("eve").unwrap();
        assert_eq!(
            admin.begin_hw_login("eve", "pw"),
            Err(ManagedIdpError::Deactivated)
        );
    }

    #[test]
    fn duplicate_registration_rejected() {
        let (_, idp) = setup();
        idp.register_totp_user("u", "pw").unwrap();
        assert_eq!(
            idp.register_totp_user("u", "pw2"),
            Err(ManagedIdpError::Duplicate)
        );
    }
}
