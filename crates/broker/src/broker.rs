//! The identity broker: sessions, per-service token policies, JWKS with
//! rotation, and revocation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dri_clock::{IdGen, SimClock};
use dri_crypto::ed25519::{PreparedVerifyingKey, SigningKey};
use dri_crypto::json::Value;
use dri_crypto::jwt::{self, Claims, Signer, Validation, Verifier};
use dri_federation::assertion::{Assertion, AssertionError};
use dri_federation::metadata::{EntityKind, FederationRegistry};
use dri_federation::types::LevelOfAssurance;
use dri_sync::{clamp_shards, hash_key, shard_index, ShardMap, ShardSet, Snapshot};
use parking_lot::RwLock;

use crate::authz::AuthorizationSource;
use crate::managed_idp::ManagedLogin;
use crate::token_cache::TokenCache;

/// Where a session's identity came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdentitySource {
    /// MyAccessID-style federated login.
    Federated,
    /// The managed Identity Provider of Last Resort.
    LastResort,
    /// The dedicated administrator IdP (hardware-key MFA).
    AdminIdp,
}

/// Per-service (per-audience) token issuance policy.
#[derive(Debug, Clone)]
pub struct TokenPolicy {
    /// Audience string services validate against (e.g. `ssh-ca`).
    pub audience: String,
    /// Token lifetime in seconds — "short-lived" is the paper's design
    /// principle #1; typical values are minutes to a few hours.
    pub ttl_secs: u64,
    /// Minimum identity assurance required.
    pub min_loa: LevelOfAssurance,
    /// Required authentication context, if any (e.g. `mfa-hw`).
    pub required_acr: Option<String>,
    /// Restrict to sessions from the administrator IdP.
    pub admin_only: bool,
}

impl TokenPolicy {
    /// A relaxed policy for ordinary research services.
    pub fn standard(audience: impl Into<String>, ttl_secs: u64) -> TokenPolicy {
        TokenPolicy {
            audience: audience.into(),
            ttl_secs,
            min_loa: LevelOfAssurance::Medium,
            required_acr: None,
            admin_only: false,
        }
    }

    /// The locked-down policy management-plane services use.
    pub fn admin(audience: impl Into<String>, ttl_secs: u64) -> TokenPolicy {
        TokenPolicy {
            audience: audience.into(),
            ttl_secs,
            min_loa: LevelOfAssurance::High,
            required_acr: Some("mfa-hw".to_string()),
            admin_only: true,
        }
    }
}

/// A broker session (the result of an interactive login).
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// Opaque session id.
    pub session_id: String,
    /// Subject (cuid for federated users, `admin:name` / `last-resort:name`
    /// for managed identities).
    pub subject: String,
    /// Authentication context achieved at login.
    pub acr: String,
    /// Identity source.
    pub source: IdentitySource,
    /// Assurance level.
    pub loa: LevelOfAssurance,
    /// Establishment time (seconds).
    pub established_at: u64,
    /// Hard expiry (seconds) — re-authentication required after this.
    pub expires_at: u64,
    /// Trace id (hex) of the login flow that established this session,
    /// when it ran traced — provenance for later incident response.
    pub trace_id: Option<String>,
}

/// Broker failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// The upstream proxy is not registered in federation metadata.
    UnknownProxy(String),
    /// Upstream assertion invalid.
    BadAssertion(AssertionError),
    /// Authorisation-led registration: the subject holds no grants.
    NotAuthorized,
    /// No such session, or session revoked.
    InvalidSession,
    /// Session past its hard expiry — interactive re-auth required.
    SessionExpired,
    /// The audience has no registered token policy.
    UnknownService(String),
    /// The subject has no roles on this audience.
    NoRolesForAudience,
    /// Session assurance below the audience's minimum.
    InsufficientLoa,
    /// Session ACR does not satisfy the audience's requirement.
    AcrMismatch,
    /// Audience is admin-only and the session is not from the admin IdP.
    AdminOnly,
    /// Subject has been revoked by incident response.
    SubjectRevoked,
    /// The broker itself is unreachable (injected outage or flaky
    /// window). Transient: callers should retry with backoff.
    Unavailable,
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::UnknownProxy(x) => write!(f, "unknown upstream proxy {x}"),
            BrokerError::BadAssertion(e) => write!(f, "bad upstream assertion: {e}"),
            BrokerError::NotAuthorized => write!(f, "subject holds no authorisation"),
            BrokerError::InvalidSession => write!(f, "invalid or revoked session"),
            BrokerError::SessionExpired => write!(f, "session expired; re-authenticate"),
            BrokerError::UnknownService(x) => write!(f, "no token policy for audience {x}"),
            BrokerError::NoRolesForAudience => write!(f, "no roles for audience"),
            BrokerError::InsufficientLoa => write!(f, "assurance below audience minimum"),
            BrokerError::AcrMismatch => write!(f, "authentication context insufficient"),
            BrokerError::AdminOnly => write!(f, "audience restricted to admin identities"),
            BrokerError::SubjectRevoked => write!(f, "subject revoked"),
            BrokerError::Unavailable => write!(f, "identity broker unavailable"),
        }
    }
}

impl std::error::Error for BrokerError {}

/// A snapshot of the broker's public keys, distributed to relying
/// services so they can validate tokens locally (OIDC JWKS document).
///
/// Snapshots are immutable: the broker publishes a fresh one (with a
/// bumped [`Jwks::epoch`]) only when the key ring changes (rotation or
/// prune). Relying services hold the snapshot behind a
/// [`dri_sync::Snapshot`] cell and validate without taking any broker
/// lock; comparing epochs tells a cache whether it is stale.
#[derive(Debug, Clone)]
pub struct Jwks {
    /// Issuer the keys belong to.
    pub issuer: String,
    /// Key-ring generation; bumped by every rotation or prune.
    pub epoch: u64,
    /// Keys are stored pre-decompressed: the curve point is recovered
    /// once at publication instead of on every signature check.
    keys: HashMap<String, PreparedVerifyingKey>,
    /// The issuer's shared verified-token cache, consulted on
    /// validation. Every service holding this snapshot reaches the same
    /// cache, so a token verified (or seeded at signing) anywhere in the
    /// trust domain is a hit everywhere else.
    cache: Option<Arc<TokenCache>>,
}

impl Jwks {
    /// Validate a token against this key set for `audience` at `now`.
    pub fn validate(
        &self,
        token: &str,
        audience: &str,
        now_secs: u64,
    ) -> Result<Claims, jwt::JwtError> {
        let kid = jwt::peek_kid(token).ok_or(jwt::JwtError::Malformed)?;
        let key = self.keys.get(&kid).ok_or(jwt::JwtError::BadSignature)?;
        let validation = Validation {
            issuer: self.issuer.clone(),
            audience: audience.to_string(),
            now: now_secs,
            leeway: 0,
        };
        match &self.cache {
            Some(cache) => cache.validate(&kid, key, token, &validation),
            None => jwt::verify(token, &Verifier::Ed25519Prepared(key), &validation),
        }
    }

    /// Number of published keys.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }
}

/// The signing-key ring, published as an immutable snapshot. The last
/// entry is the active key; older entries stay for validating in-flight
/// tokens until pruned.
struct SignerRing {
    keys: Vec<(String, SigningKey)>,
}

/// Default number of shards per concurrent map (power of two).
pub const DEFAULT_BROKER_SHARDS: usize = 16;

/// The Front Door identity broker.
///
/// Hot-path state is sharded so parallel login storms touching
/// different subjects take different locks:
///
/// * sessions — [`ShardMap`] keyed by session id;
/// * active/revoked tokens — [`ShardMap`]/[`ShardSet`] keyed by `jti`;
/// * revoked subjects — [`ShardSet`] keyed by subject;
/// * `tokens_issued` — one `AtomicU64` per subject shard, summed on
///   read;
/// * signing keys, JWKS, and token policies — read-mostly
///   [`Snapshot`] cells: readers clone an `Arc` and never hold a lock
///   while signing or validating.
pub struct IdentityBroker {
    /// Issuer URL baked into every token.
    pub issuer: String,
    clock: SimClock,
    registry: Arc<FederationRegistry>,
    authz: Arc<dyn AuthorizationSource>,
    signer: Snapshot<SignerRing>,
    jwks_cache: Snapshot<Jwks>,
    key_epoch: AtomicU64,
    policies: Snapshot<HashMap<String, TokenPolicy>>,
    sessions: ShardMap<SessionInfo>,
    active_tokens: ShardMap<(String, u64)>, // jti -> (subject, exp)
    revoked_tokens: ShardSet,
    revoked_subjects: ShardSet,
    tokens_issued: Vec<AtomicU64>, // per subject shard
    session_ttl_secs: u64,
    session_ids: IdGen,
    jti_ids: IdGen,
    key_ids: IdGen,
    faults: dri_fault::FaultHook,
    token_cache: Arc<TokenCache>,
    /// Present only when `shards == 1`: reproduces the pre-sharding
    /// design, where one `RwLock<BrokerState>` was held across entire
    /// operations — including JWT signing inside `issue_token`. Session
    /// establishment and token issuance take it for write, lookups for
    /// read, so the coarse baseline benchmarked by E9 serializes exactly
    /// what the old broker serialized.
    coarse_gate: Option<RwLock<()>>,
}

impl IdentityBroker {
    /// Create a broker with an initial signing key derived from `seed`
    /// and the default shard count.
    pub fn new(
        issuer: impl Into<String>,
        seed: [u8; 32],
        session_ttl_secs: u64,
        clock: SimClock,
        registry: Arc<FederationRegistry>,
        authz: Arc<dyn AuthorizationSource>,
    ) -> IdentityBroker {
        IdentityBroker::with_shards(
            issuer,
            seed,
            session_ttl_secs,
            clock,
            registry,
            authz,
            DEFAULT_BROKER_SHARDS,
        )
    }

    /// Like [`IdentityBroker::new`] with an explicit shard count
    /// (rounded to a power of two; `1` reproduces the coarse-lock
    /// behaviour for baseline comparisons).
    #[allow(clippy::too_many_arguments)]
    pub fn with_shards(
        issuer: impl Into<String>,
        seed: [u8; 32],
        session_ttl_secs: u64,
        clock: SimClock,
        registry: Arc<FederationRegistry>,
        authz: Arc<dyn AuthorizationSource>,
        shards: usize,
    ) -> IdentityBroker {
        let issuer = issuer.into();
        let shards = clamp_shards(shards);
        let key_ids = IdGen::new("fds-key");
        let kid = key_ids.next();
        let ring = SignerRing {
            keys: vec![(kid, SigningKey::from_seed(&seed))],
        };
        let token_cache = Arc::new(TokenCache::new(shards));
        let jwks = Jwks {
            issuer: issuer.clone(),
            epoch: 0,
            keys: ring
                .keys
                .iter()
                .map(|(kid, sk)| (kid.clone(), PreparedVerifyingKey::new(&sk.verifying_key())))
                .collect(),
            cache: Some(token_cache.clone()),
        };
        IdentityBroker {
            issuer,
            clock,
            registry,
            authz,
            signer: Snapshot::new(ring),
            jwks_cache: Snapshot::new(jwks),
            key_epoch: AtomicU64::new(0),
            policies: Snapshot::new(HashMap::new()),
            sessions: ShardMap::new(shards),
            active_tokens: ShardMap::new(shards),
            revoked_tokens: ShardSet::new(shards),
            revoked_subjects: ShardSet::new(shards),
            tokens_issued: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            session_ttl_secs,
            session_ids: IdGen::new("sess"),
            jti_ids: IdGen::new("jti"),
            key_ids,
            faults: dri_fault::FaultHook::new(),
            token_cache,
            coarse_gate: (shards == 1).then(|| RwLock::new(())),
        }
    }

    /// Attach the shared fault plane; outages of component `broker` make
    /// login and token issuance fail with [`BrokerError::Unavailable`].
    pub fn install_fault_plane(&self, plane: Arc<dri_fault::FaultPlane>) {
        self.faults.install(plane);
    }

    fn coarse_write(&self) -> Option<parking_lot::RwLockWriteGuard<'_, ()>> {
        self.coarse_gate.as_ref().map(|g| g.write())
    }

    fn coarse_read(&self) -> Option<parking_lot::RwLockReadGuard<'_, ()>> {
        self.coarse_gate.as_ref().map(|g| g.read())
    }

    /// Register (or replace) a per-audience token policy.
    pub fn register_service(&self, policy: TokenPolicy) {
        self.policies.rcu(|p| {
            let mut p = p.clone();
            p.insert(policy.audience.clone(), policy.clone());
            p
        });
    }

    /// Current JWKS snapshot for distribution to relying services.
    /// Cached: rebuilt only when the key ring changes.
    pub fn jwks(&self) -> Jwks {
        (*self.jwks_cache.load()).clone()
    }

    /// Current key-ring generation (bumped by rotation and prune).
    pub fn jwks_epoch(&self) -> u64 {
        self.key_epoch.load(Ordering::Acquire)
    }

    /// Rebuild and publish the JWKS snapshot from the current ring,
    /// bumping the epoch.
    fn republish_jwks(&self) {
        // Invalidation leads caching: the verifier epoch bumps before
        // the new key set becomes visible, so no verification cached
        // under the old ring can be served once the ring changes.
        self.token_cache.bump_epoch();
        let ring = self.signer.load();
        let epoch = self.key_epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.jwks_cache.store(Jwks {
            issuer: self.issuer.clone(),
            epoch,
            keys: ring
                .keys
                .iter()
                .map(|(kid, sk)| (kid.clone(), PreparedVerifyingKey::new(&sk.verifying_key())))
                .collect(),
            cache: Some(self.token_cache.clone()),
        });
    }

    /// Rotate the signing key. Old keys stay published for validation of
    /// in-flight tokens until pruned.
    pub fn rotate_keys(&self, seed: [u8; 32]) -> String {
        let kid = self.key_ids.next();
        self.signer.rcu(|ring| {
            let mut keys = ring.keys.clone();
            keys.push((kid.clone(), SigningKey::from_seed(&seed)));
            SignerRing { keys }
        });
        self.republish_jwks();
        kid
    }

    /// Drop all but the newest `keep` signing keys.
    pub fn prune_keys(&self, keep: usize) {
        self.signer.rcu(|ring| {
            let start = ring.keys.len().saturating_sub(keep);
            SignerRing {
                keys: ring.keys[start..].to_vec(),
            }
        });
        self.republish_jwks();
    }

    /// Establish a session from a federated (proxy) assertion. This is
    /// where *authorisation leads authentication*: an unknown subject is
    /// refused even with a perfectly valid assertion.
    pub fn login_federated(
        &self,
        proxy_entity_id: &str,
        assertion_wire: &str,
    ) -> Result<SessionInfo, BrokerError> {
        let _span = dri_trace::span_with(
            "broker.login_federated",
            dri_trace::Stage::Broker,
            &[("proxy", proxy_entity_id)],
        );
        self.faults
            .check("broker")
            .map_err(|_| BrokerError::Unavailable)?;
        let proxy = self
            .registry
            .lookup(proxy_entity_id)
            .filter(|e| e.kind == EntityKind::Proxy)
            .ok_or_else(|| BrokerError::UnknownProxy(proxy_entity_id.to_string()))?;
        let now = self.clock.now_secs();
        let assertion = Assertion::verify(assertion_wire, &proxy.signing_key, &self.issuer, now)
            .map_err(BrokerError::BadAssertion)?;
        self.establish(
            assertion.subject.clone(),
            assertion.authn_context.clone(),
            IdentitySource::Federated,
            assertion.loa,
        )
    }

    /// Establish a session from a managed-IdP login.
    pub fn login_managed(
        &self,
        login: &ManagedLogin,
        source: IdentitySource,
    ) -> Result<SessionInfo, BrokerError> {
        // Managed identities are vetted by a human (admin IdP) or invited
        // (last resort); both assert High through controlled registration.
        self.establish(
            login.subject.clone(),
            login.acr.clone(),
            source,
            LevelOfAssurance::High,
        )
    }

    fn establish(
        &self,
        subject: String,
        acr: String,
        source: IdentitySource,
        loa: LevelOfAssurance,
    ) -> Result<SessionInfo, BrokerError> {
        let _span = dri_trace::span("broker.establish", dri_trace::Stage::Broker);
        let _coarse = self.coarse_write();
        if self.revoked_subjects.contains(&subject) {
            return Err(BrokerError::SubjectRevoked);
        }
        if !self.authz.is_authorized_subject(&subject) {
            return Err(BrokerError::NotAuthorized);
        }
        let now = self.clock.now_secs();
        let session = SessionInfo {
            session_id: self.session_ids.next(),
            subject,
            acr,
            source,
            loa,
            established_at: now,
            expires_at: now + self.session_ttl_secs,
            trace_id: dri_trace::current_trace_id(),
        };
        self.sessions
            .insert(session.session_id.clone(), session.clone());
        Ok(session)
    }

    /// Issue a short-lived RBAC token for `audience` from an established
    /// session. Fails closed on every policy dimension.
    pub fn issue_token(
        &self,
        session_id: &str,
        audience: &str,
    ) -> Result<(String, Claims), BrokerError> {
        self.issue_token_with_extra(session_id, audience, Vec::new())
    }

    /// Like [`IdentityBroker::issue_token`] but attaching extra claims
    /// (e.g. the project-scoped UNIX accounts for the SSH CA).
    pub fn issue_token_with_extra(
        &self,
        session_id: &str,
        audience: &str,
        extra: Vec<(String, Value)>,
    ) -> Result<(String, Claims), BrokerError> {
        let _span = dri_trace::span_with(
            "broker.issue_token",
            dri_trace::Stage::Broker,
            &[("aud", audience)],
        );
        self.faults
            .check("broker")
            .map_err(|_| BrokerError::Unavailable)?;
        let _coarse = self.coarse_write();
        let now = self.clock.now_secs();
        let session = self
            .sessions
            .get_cloned(session_id)
            .ok_or(BrokerError::InvalidSession)?;
        let policy = self
            .policies
            .load()
            .get(audience)
            .cloned()
            .ok_or_else(|| BrokerError::UnknownService(audience.to_string()))?;
        if now >= session.expires_at {
            return Err(BrokerError::SessionExpired);
        }
        if self.revoked_subjects.contains(&session.subject) {
            return Err(BrokerError::SubjectRevoked);
        }
        if session.loa < policy.min_loa {
            return Err(BrokerError::InsufficientLoa);
        }
        if let Some(required) = &policy.required_acr {
            if &session.acr != required {
                return Err(BrokerError::AcrMismatch);
            }
        }
        if policy.admin_only && session.source != IdentitySource::AdminIdp {
            return Err(BrokerError::AdminOnly);
        }
        let roles = self.authz.roles_for(&session.subject, audience);
        if roles.is_empty() {
            return Err(BrokerError::NoRolesForAudience);
        }

        let mut claims = Claims::new(
            self.issuer.clone(),
            session.subject.clone(),
            audience,
            now,
            policy.ttl_secs,
        );
        claims.token_id = self.jti_ids.next();
        claims.session_id = session.session_id.clone();
        claims.acr = session.acr.clone();
        claims.roles = roles;
        claims.extra = extra;

        // Count the issue on the subject's shard, record the active
        // token on the jti's shard, and sign off an immutable key-ring
        // snapshot — three independent touch points, no global lock.
        let shard = shard_index(hash_key(&session.subject), self.tokens_issued.len());
        self.tokens_issued[shard].fetch_add(1, Ordering::Relaxed);
        self.active_tokens.insert(
            claims.token_id.clone(),
            (session.subject.clone(), claims.expires_at),
        );
        let ring = self.signer.load();
        let (kid, key) = ring.keys.last().expect("at least one key");
        let token = jwt::sign(&claims, &Signer::Ed25519(key), kid);
        // Issuer and verifiers share a trust domain: seed the verified-
        // token cache at sign time so the first validation is a hit.
        self.token_cache.seed(kid, &token, &claims);
        Ok((token, claims))
    }

    /// RFC 8693-style token exchange: a service holding a user's token
    /// for *its own* audience obtains a derived, narrower token for a
    /// downstream audience (e.g. Jupyter exchanging the user's `jupyter`
    /// token for a `slurm` token to submit the kernel job).
    ///
    /// The derived token:
    /// * carries the same subject and session binding;
    /// * names the exchanging service in an `act` (actor) claim;
    /// * expires no later than the subject token;
    /// * is still gated on the subject's roles for the target audience
    ///   and the target's policy (LoA / ACR / admin gates).
    pub fn exchange_token(
        &self,
        subject_token: &str,
        requesting_audience: &str,
        target_audience: &str,
    ) -> Result<(String, Claims), BrokerError> {
        let _span = dri_trace::span_with(
            "broker.exchange_token",
            dri_trace::Stage::Broker,
            &[("from", requesting_audience), ("to", target_audience)],
        );
        let now = self.clock.now_secs();
        let claims = self
            .jwks_cache
            .load()
            .validate(subject_token, requesting_audience, now)
            .map_err(|_| BrokerError::InvalidSession)?;
        if !self.introspect(&claims.token_id) {
            return Err(BrokerError::InvalidSession);
        }
        // Re-run full policy for the target audience off the same
        // session; the returned wire token is discarded because the
        // derived claims are re-signed below.
        let (_, mut derived) = self.issue_token(&claims.session_id, target_audience)?;
        // Cap the derived expiry at the subject token's and stamp the actor.
        derived
            .extra
            .push(("act".to_string(), Value::s(requesting_audience)));
        if derived.expires_at > claims.expires_at {
            derived.expires_at = claims.expires_at;
            // Correct the active-token record to the capped expiry.
            self.active_tokens.insert(
                derived.token_id.clone(),
                (derived.subject.clone(), derived.expires_at),
            );
        }
        // Re-sign (the actor claim and possibly the expiry changed).
        let ring = self.signer.load();
        let (kid, key) = ring.keys.last().expect("key");
        let token = jwt::sign(&derived, &Signer::Ed25519(key), kid);
        self.token_cache.seed(kid, &token, &derived);
        Ok((token, derived))
    }

    /// Step-up authentication: a live session presents a stronger second
    /// factor and its ACR is upgraded in place (e.g. `pwd` -> `pwd+totp`).
    /// Downgrades are refused.
    pub fn step_up_session(
        &self,
        session_id: &str,
        new_acr: &str,
    ) -> Result<SessionInfo, BrokerError> {
        let rank = |acr: &str| match acr {
            "mfa-hw" => 3,
            "mfa-totp" | "pwd+totp" => 2,
            "pwd" => 1,
            _ => 0,
        };
        self.sessions
            .with_mut(session_id, |session| {
                if rank(new_acr) < rank(&session.acr) {
                    return Err(BrokerError::AcrMismatch);
                }
                session.acr = new_acr.to_string();
                Ok(session.clone())
            })
            .unwrap_or(Err(BrokerError::InvalidSession))
    }

    /// Introspection: is the token id still active (unexpired session-side
    /// and not revoked)? Services enforcing per-session access call this
    /// in addition to local JWKS validation.
    pub fn introspect(&self, jti: &str) -> bool {
        let _coarse = self.coarse_read();
        if self.revoked_tokens.contains(jti) {
            return false;
        }
        self.active_tokens
            .with(jti, |(subject, exp)| {
                !self.revoked_subjects.contains(subject) && self.clock.now_secs() < *exp
            })
            .unwrap_or(false)
    }

    /// Revoke a single token.
    ///
    /// Revocation is enforced by introspection (the JWKS path checks
    /// signatures, not liveness); bumping the verifier epoch first is
    /// defence in depth — no verification cached before the revocation
    /// survives it.
    pub fn revoke_token(&self, jti: &str) {
        self.token_cache.bump_epoch();
        self.revoked_tokens.insert(jti.to_string());
    }

    /// End a session (logout or kill switch). Tokens already issued remain
    /// until expiry unless services introspect.
    pub fn revoke_session(&self, session_id: &str) {
        self.sessions.remove(session_id);
    }

    /// Revoke a subject outright: sessions die, introspection fails, new
    /// logins are refused. The identity-layer kill switch.
    ///
    /// The revocation mark lands first (on the subject's shard), then a
    /// cross-shard sweep removes every session — so a login racing the
    /// kill either misses the session map or is refused at establish.
    pub fn revoke_subject(&self, subject: &str) {
        self.token_cache.bump_epoch();
        self.revoked_subjects.insert(subject.to_string());
        self.sessions.retain(|_, s| s.subject != subject);
    }

    /// Lift a subject revocation (post-incident).
    pub fn reinstate_subject(&self, subject: &str) {
        self.token_cache.bump_epoch();
        self.revoked_subjects.remove(subject);
    }

    /// Look up a live session.
    pub fn session(&self, session_id: &str) -> Option<SessionInfo> {
        let _coarse = self.coarse_read();
        self.sessions.get_cloned(session_id)
    }

    /// Every live session of `subject`, sorted by session id for
    /// deterministic iteration. Incident response reads these *before*
    /// [`IdentityBroker::revoke_subject`] wipes them, e.g. to attach
    /// the originating login's trace id to the kill-switch event.
    pub fn sessions_of_subject(&self, subject: &str) -> Vec<SessionInfo> {
        let _coarse = self.coarse_read();
        let mut out = Vec::new();
        self.sessions.for_each(|_, s| {
            if s.subject == subject {
                out.push(s.clone());
            }
        });
        out.sort_by(|a, b| a.session_id.cmp(&b.session_id));
        out
    }

    /// Total tokens issued (metrics): the sum of the per-shard counters.
    pub fn tokens_issued(&self) -> u64 {
        self.tokens_issued
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Tokens issued per subject shard, in shard order. Routing is a
    /// stable hash of the subject, so for a fixed input set these
    /// counts are identical across serial and parallel runs.
    pub fn shard_token_counts(&self) -> Vec<u64> {
        self.tokens_issued
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of shards backing each concurrent map.
    pub fn shard_count(&self) -> usize {
        self.tokens_issued.len()
    }

    /// The shared verified-token cache (seeded at issuance, consulted by
    /// every published [`Jwks`] snapshot, epoch-bumped by every
    /// security-state change).
    pub fn token_cache(&self) -> &Arc<TokenCache> {
        &self.token_cache
    }

    /// Live session count (metrics).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Live sessions per shard, in shard order.
    pub fn session_shard_lens(&self) -> Vec<usize> {
        self.sessions.shard_lens()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authz::StaticAuthz;
    use dri_federation::metadata::EntityDescriptor;
    use dri_federation::types::{Attribute, EntityCategory};

    struct Fixture {
        broker: IdentityBroker,
        proxy_key: SigningKey,
        authz: Arc<StaticAuthz>,
        clock: SimClock,
    }

    const PROXY: &str = "https://proxy.myaccessid.org";
    const BROKER: &str = "https://broker.isambard.ac.uk";

    fn fixture() -> Fixture {
        let clock = SimClock::starting_at(1_000_000_000);
        let registry = Arc::new(FederationRegistry::new());
        registry.register_federation("edugain", "GEANT");
        let proxy_key = SigningKey::from_seed(&[11u8; 32]);
        registry
            .register_entity(EntityDescriptor {
                entity_id: PROXY.into(),
                display_name: "MyAccessID".into(),
                kind: EntityKind::Proxy,
                home_federation: "edugain".into(),
                categories: vec![EntityCategory::ResearchAndScholarship],
                max_loa: LevelOfAssurance::High,
                signing_key: proxy_key.verifying_key(),
            })
            .unwrap();
        let authz = Arc::new(StaticAuthz::new());
        let broker = IdentityBroker::new(
            BROKER,
            [12u8; 32],
            8 * 3600,
            clock.clone(),
            registry,
            authz.clone(),
        );
        broker.register_service(TokenPolicy::standard("ssh-ca", 900));
        broker.register_service(TokenPolicy::admin("mgmt-tailnet", 600));
        Fixture {
            broker,
            proxy_key,
            authz,
            clock,
        }
    }

    fn proxy_assertion(f: &Fixture, cuid: &str) -> String {
        let now = f.clock.now_secs();
        Assertion {
            issuer: PROXY.into(),
            subject: cuid.into(),
            audience: BROKER.into(),
            issued_at: now,
            expires_at: now + 300,
            authn_context: "pwd".into(),
            loa: LevelOfAssurance::Medium,
            attributes: vec![Attribute::new("voPersonID", cuid)],
            assertion_id: format!("a-{cuid}-{now}"),
        }
        .sign(&f.proxy_key)
    }

    #[test]
    fn authorization_leads_authentication() {
        let f = fixture();
        let wire = proxy_assertion(&f, "maid-000001");
        // Valid assertion, but no grants: refused.
        assert!(matches!(
            f.broker.login_federated(PROXY, &wire),
            Err(BrokerError::NotAuthorized)
        ));
        // After a grant appears, the same user can register.
        f.authz.grant("maid-000001", "ssh-ca", &["researcher"]);
        let wire2 = proxy_assertion(&f, "maid-000001");
        let session = f.broker.login_federated(PROXY, &wire2).unwrap();
        assert_eq!(session.subject, "maid-000001");
        assert_eq!(session.source, IdentitySource::Federated);
    }

    #[test]
    fn issued_token_validates_against_jwks() {
        let f = fixture();
        f.authz.grant("maid-000001", "ssh-ca", &["researcher"]);
        let session = f
            .broker
            .login_federated(PROXY, &proxy_assertion(&f, "maid-000001"))
            .unwrap();
        let (token, claims) = f.broker.issue_token(&session.session_id, "ssh-ca").unwrap();
        let jwks = f.broker.jwks();
        let validated = jwks.validate(&token, "ssh-ca", f.clock.now_secs()).unwrap();
        assert_eq!(validated, claims);
        assert!(validated.has_role("researcher"));
        // Wrong audience fails.
        assert!(jwks
            .validate(&token, "jupyter", f.clock.now_secs())
            .is_err());
        assert!(f.broker.introspect(&claims.token_id));
    }

    #[test]
    fn token_expiry_enforced_via_jwks() {
        let f = fixture();
        f.authz.grant("u", "ssh-ca", &["researcher"]);
        let session = f
            .broker
            .login_federated(PROXY, &proxy_assertion(&f, "u"))
            .unwrap();
        let (token, claims) = f.broker.issue_token(&session.session_id, "ssh-ca").unwrap();
        f.clock.advance_secs(901);
        assert!(f
            .broker
            .jwks()
            .validate(&token, "ssh-ca", f.clock.now_secs())
            .is_err());
        assert!(!f.broker.introspect(&claims.token_id));
    }

    #[test]
    fn session_expiry_requires_reauth() {
        let f = fixture();
        f.authz.grant("u", "ssh-ca", &["researcher"]);
        let session = f
            .broker
            .login_federated(PROXY, &proxy_assertion(&f, "u"))
            .unwrap();
        f.clock.advance_secs(8 * 3600 + 1);
        assert!(matches!(
            f.broker.issue_token(&session.session_id, "ssh-ca"),
            Err(BrokerError::SessionExpired)
        ));
    }

    #[test]
    fn no_roles_no_token() {
        let f = fixture();
        f.authz.grant("u", "ssh-ca", &["researcher"]);
        let session = f
            .broker
            .login_federated(PROXY, &proxy_assertion(&f, "u"))
            .unwrap();
        f.broker
            .register_service(TokenPolicy::standard("jupyter", 900));
        assert!(matches!(
            f.broker.issue_token(&session.session_id, "jupyter"),
            Err(BrokerError::NoRolesForAudience)
        ));
        assert!(matches!(
            f.broker.issue_token(&session.session_id, "unregistered"),
            Err(BrokerError::UnknownService(_))
        ));
    }

    #[test]
    fn admin_audience_rejects_federated_sessions() {
        let f = fixture();
        f.authz.grant("u", "mgmt-tailnet", &["sysadmin"]);
        f.authz.grant("u", "ssh-ca", &["researcher"]);
        let session = f
            .broker
            .login_federated(PROXY, &proxy_assertion(&f, "u"))
            .unwrap();
        // Federated session: admin_only + acr + loa all fail; loa first.
        let err = f.broker.issue_token(&session.session_id, "mgmt-tailnet");
        assert!(matches!(
            err,
            Err(BrokerError::InsufficientLoa)
                | Err(BrokerError::AcrMismatch)
                | Err(BrokerError::AdminOnly)
        ));
    }

    #[test]
    fn admin_session_gets_admin_token() {
        let f = fixture();
        f.authz.grant("admin:dave", "mgmt-tailnet", &["sysadmin"]);
        let login = ManagedLogin {
            subject: "admin:dave".into(),
            acr: "mfa-hw".into(),
        };
        let session = f
            .broker
            .login_managed(&login, IdentitySource::AdminIdp)
            .unwrap();
        let (token, claims) = f
            .broker
            .issue_token(&session.session_id, "mgmt-tailnet")
            .unwrap();
        assert!(claims.has_role("sysadmin"));
        assert_eq!(claims.acr, "mfa-hw");
        assert!(f
            .broker
            .jwks()
            .validate(&token, "mgmt-tailnet", f.clock.now_secs())
            .is_ok());
    }

    #[test]
    fn last_resort_session_cannot_reach_admin_audience() {
        let f = fixture();
        f.authz
            .grant("last-resort:vendor", "mgmt-tailnet", &["sysadmin"]);
        let login = ManagedLogin {
            subject: "last-resort:vendor".into(),
            acr: "mfa-totp".into(),
        };
        let session = f
            .broker
            .login_managed(&login, IdentitySource::LastResort)
            .unwrap();
        assert!(matches!(
            f.broker.issue_token(&session.session_id, "mgmt-tailnet"),
            Err(BrokerError::AcrMismatch) | Err(BrokerError::AdminOnly)
        ));
    }

    #[test]
    fn revocation_kill_switch() {
        let f = fixture();
        f.authz.grant("u", "ssh-ca", &["researcher"]);
        let session = f
            .broker
            .login_federated(PROXY, &proxy_assertion(&f, "u"))
            .unwrap();
        let (_, claims) = f.broker.issue_token(&session.session_id, "ssh-ca").unwrap();
        assert!(f.broker.introspect(&claims.token_id));

        f.broker.revoke_subject("u");
        // Introspection now fails even though the JWT is unexpired.
        assert!(!f.broker.introspect(&claims.token_id));
        // Session is gone.
        assert!(matches!(
            f.broker.issue_token(&session.session_id, "ssh-ca"),
            Err(BrokerError::InvalidSession)
        ));
        // New logins are refused.
        assert!(matches!(
            f.broker.login_federated(PROXY, &proxy_assertion(&f, "u")),
            Err(BrokerError::SubjectRevoked)
        ));
        // Reinstatement restores access.
        f.broker.reinstate_subject("u");
        assert!(f
            .broker
            .login_federated(PROXY, &proxy_assertion(&f, "u"))
            .is_ok());
    }

    #[test]
    fn key_rotation_keeps_old_tokens_valid_until_prune() {
        let f = fixture();
        f.authz.grant("u", "ssh-ca", &["researcher"]);
        let session = f
            .broker
            .login_federated(PROXY, &proxy_assertion(&f, "u"))
            .unwrap();
        let (old_token, _) = f.broker.issue_token(&session.session_id, "ssh-ca").unwrap();
        f.broker.rotate_keys([99u8; 32]);
        let (new_token, _) = f.broker.issue_token(&session.session_id, "ssh-ca").unwrap();
        let jwks = f.broker.jwks();
        assert_eq!(jwks.key_count(), 2);
        let now = f.clock.now_secs();
        assert!(jwks.validate(&old_token, "ssh-ca", now).is_ok());
        assert!(jwks.validate(&new_token, "ssh-ca", now).is_ok());
        // After pruning to 1 key, the old token no longer validates.
        f.broker.prune_keys(1);
        let jwks2 = f.broker.jwks();
        assert!(jwks2.validate(&old_token, "ssh-ca", now).is_err());
        assert!(jwks2.validate(&new_token, "ssh-ca", now).is_ok());
    }

    #[test]
    fn token_exchange_derives_narrower_token() {
        let f = fixture();
        f.authz.grant("u", "ssh-ca", &["researcher"]);
        f.broker
            .register_service(TokenPolicy::standard("jupyter", 900));
        f.broker
            .register_service(TokenPolicy::standard("slurm", 7200));
        f.authz.grant("u", "jupyter", &["researcher"]);
        f.authz.grant("u", "slurm", &["researcher"]);
        let session = f
            .broker
            .login_federated(PROXY, &proxy_assertion(&f, "u"))
            .unwrap();
        let (jupyter_token, jc) = f
            .broker
            .issue_token(&session.session_id, "jupyter")
            .unwrap();
        let (slurm_token, sc) = f
            .broker
            .exchange_token(&jupyter_token, "jupyter", "slurm")
            .unwrap();
        assert_eq!(sc.subject, jc.subject);
        assert_eq!(sc.audience, "slurm");
        // Derived expiry capped at the subject token's.
        assert!(sc.expires_at <= jc.expires_at);
        // Actor claim present.
        assert_eq!(
            sc.extra_claim("act").and_then(Value::as_str),
            Some("jupyter")
        );
        // And it validates.
        assert!(f
            .broker
            .jwks()
            .validate(&slurm_token, "slurm", f.clock.now_secs())
            .is_ok());
    }

    #[test]
    fn token_exchange_respects_target_policy() {
        let f = fixture();
        f.authz.grant("u", "ssh-ca", &["researcher"]);
        let session = f
            .broker
            .login_federated(PROXY, &proxy_assertion(&f, "u"))
            .unwrap();
        let (token, _) = f.broker.issue_token(&session.session_id, "ssh-ca").unwrap();
        // No roles on mgmt-tailnet (and LoA/ACR gates anyway): refused.
        assert!(f
            .broker
            .exchange_token(&token, "ssh-ca", "mgmt-tailnet")
            .is_err());
        // A revoked subject token cannot be exchanged.
        let (t2, c2) = f.broker.issue_token(&session.session_id, "ssh-ca").unwrap();
        f.broker.revoke_token(&c2.token_id);
        assert!(matches!(
            f.broker.exchange_token(&t2, "ssh-ca", "ssh-ca"),
            Err(BrokerError::InvalidSession)
        ));
    }

    #[test]
    fn step_up_upgrades_never_downgrades() {
        let f = fixture();
        f.authz.grant("u", "ssh-ca", &["researcher"]);
        let session = f
            .broker
            .login_federated(PROXY, &proxy_assertion(&f, "u"))
            .unwrap();
        assert_eq!(session.acr, "pwd");
        let upgraded = f
            .broker
            .step_up_session(&session.session_id, "pwd+totp")
            .unwrap();
        assert_eq!(upgraded.acr, "pwd+totp");
        // Downgrade refused.
        assert!(matches!(
            f.broker.step_up_session(&session.session_id, "pwd"),
            Err(BrokerError::AcrMismatch)
        ));
        // Unknown session refused.
        assert!(matches!(
            f.broker.step_up_session("sess-999999", "mfa-hw"),
            Err(BrokerError::InvalidSession)
        ));
    }

    #[test]
    fn single_token_revocation() {
        let f = fixture();
        f.authz.grant("u", "ssh-ca", &["researcher"]);
        let session = f
            .broker
            .login_federated(PROXY, &proxy_assertion(&f, "u"))
            .unwrap();
        let (_, c1) = f.broker.issue_token(&session.session_id, "ssh-ca").unwrap();
        let (_, c2) = f.broker.issue_token(&session.session_id, "ssh-ca").unwrap();
        f.broker.revoke_token(&c1.token_id);
        assert!(!f.broker.introspect(&c1.token_id));
        assert!(f.broker.introspect(&c2.token_id));
    }
}
