//! Epoch-invalidated verified-token cache.
//!
//! Ed25519 verification costs two scalar multiplications plus two point
//! decompressions per token, and the zero-trust posture re-validates the
//! same short-lived token at every enforcement point it crosses. The
//! steady state is therefore dominated by re-verifying bytes that were
//! already verified moments ago. This cache amortises that cost while
//! keeping the failure mode safe: **invalidation leads caching** — every
//! security-state change (key rotation/prune, token revocation, subject
//! kill switch) bumps a verifier epoch *before* the state change takes
//! effect, and a hit is served only when
//!
//! 1. the entry's stamped epoch equals the current epoch, **and**
//! 2. the claim-time checks (`iss`/`aud`/`nbf`/`exp`) re-pass against the
//!    caller's clock via [`jwt::validate_claims`] — the exact checks, in
//!    the exact order, that the uncached [`jwt::verify`] performs.
//!
//! Entries are keyed `(kid, SHA-256(token bytes))`, so a hit can only be
//! served for a byte-identical token whose header, signature and payload
//! already passed the full parse + verify once. Stale entries are removed
//! lazily on the epoch mismatch that discovers them (counted as an
//! *epoch bust*), so the counters make invalidation observable.
//!
//! The issuing broker *seeds* the cache at sign time: issuer and
//! verifiers share a trust domain (the broker publishes the JWKS the
//! services hold), so a freshly signed token's first validation is
//! already a hit.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use dri_crypto::ed25519::PreparedVerifyingKey;
use dri_crypto::jwt::{self, Claims, JwtError, Validation, Verifier};
use dri_crypto::sha2::sha256;
use dri_sync::ShardMap;

/// Default shard count for the cache map (power of two).
pub const DEFAULT_CACHE_SHARDS: usize = 16;

#[derive(Clone)]
struct CachedVerification {
    epoch: u64,
    claims: Claims,
}

/// Sharded verified-token cache with epoch invalidation.
///
/// Shared (behind an `Arc`) between the issuing broker, which seeds and
/// invalidates it, and every relying service's [`crate::Jwks`] snapshot,
/// which consults it on validation.
pub struct TokenCache {
    /// Kill switch for the cache itself: `false` restores the uncached
    /// verify path byte-for-byte (cold baseline for benchmarks).
    enabled: AtomicBool,
    epoch: AtomicU64,
    entries: ShardMap<CachedVerification>,
    hits: AtomicU64,
    misses: AtomicU64,
    epoch_busts: AtomicU64,
}

impl TokenCache {
    /// Create an enabled cache with `shards` shards (rounded to a power
    /// of two).
    pub fn new(shards: usize) -> TokenCache {
        TokenCache {
            enabled: AtomicBool::new(true),
            epoch: AtomicU64::new(0),
            entries: ShardMap::new(shards),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            epoch_busts: AtomicU64::new(0),
        }
    }

    /// Enable or disable the cache. Disabled, [`TokenCache::validate`]
    /// performs the full uncached verification and seeding is a no-op.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
    }

    /// Is the cache serving hits?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Current verifier epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Bump the verifier epoch, invalidating every cached verification.
    /// Returns the new epoch. Called *before* the security-state change
    /// it guards becomes visible: invalidation leads caching.
    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Cache hits served (signature verification skipped).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (full verification performed).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries discarded because their epoch was stale.
    pub fn epoch_busts(&self) -> u64 {
        self.epoch_busts.load(Ordering::Relaxed)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn cache_key(kid: &str, token: &str) -> String {
        let digest = sha256(token.as_bytes());
        let mut key = String::with_capacity(kid.len() + 1 + 64);
        key.push_str(kid);
        key.push(':');
        for b in digest {
            key.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            key.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        key
    }

    /// Seed the cache with a token the issuer just signed: the claims
    /// are trusted by construction, so the verifier's first validation
    /// of these bytes is a hit.
    pub fn seed(&self, kid: &str, token: &str, claims: &Claims) {
        if !self.enabled() {
            return;
        }
        self.entries.insert(
            TokenCache::cache_key(kid, token),
            CachedVerification {
                epoch: self.epoch(),
                claims: claims.clone(),
            },
        );
    }

    /// Validate `token` (whose header names `kid`, resolved by the
    /// caller to `key`) against `validation`, consulting the cache.
    ///
    /// Agreement contract: for any input, the result — `Ok` claims or
    /// `Err` kind — is identical to
    /// `jwt::verify(token, &Verifier::Ed25519Prepared(key), validation)`.
    pub fn validate(
        &self,
        kid: &str,
        key: &PreparedVerifyingKey,
        token: &str,
        validation: &Validation,
    ) -> Result<Claims, JwtError> {
        if !self.enabled() {
            return jwt::verify(token, &Verifier::Ed25519Prepared(key), validation);
        }
        let cache_key = TokenCache::cache_key(kid, token);
        let epoch = self.epoch();
        if let Some(entry) = self.entries.get_cloned(&cache_key) {
            if entry.epoch == epoch {
                // Structure and signature already verified for these
                // exact bytes; only the claim-time checks can differ.
                self.hits.fetch_add(1, Ordering::Relaxed);
                dri_trace::add_attr("cache.token", "hit");
                jwt::validate_claims(&entry.claims, validation)?;
                return Ok(entry.claims);
            }
            self.epoch_busts.fetch_add(1, Ordering::Relaxed);
            self.entries.remove(&cache_key);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        dri_trace::add_attr("cache.token", "miss");
        let claims = jwt::verify(token, &Verifier::Ed25519Prepared(key), validation)?;
        self.entries.insert(
            cache_key,
            CachedVerification {
                epoch,
                claims: claims.clone(),
            },
        );
        Ok(claims)
    }
}

impl std::fmt::Debug for TokenCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenCache")
            .field("enabled", &self.enabled())
            .field("epoch", &self.epoch())
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("epoch_busts", &self.epoch_busts())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dri_crypto::ed25519::SigningKey;
    use dri_crypto::jwt::Signer;

    fn signed(sk: &SigningKey, kid: &str, now: u64, ttl: u64) -> (String, Claims) {
        let mut claims = Claims::new("iss", "sub", "aud", now, ttl);
        claims.token_id = "jti-1".into();
        let token = jwt::sign(&claims, &Signer::Ed25519(sk), kid);
        (token, claims)
    }

    fn validation(now: u64) -> Validation {
        Validation {
            issuer: "iss".into(),
            audience: "aud".into(),
            now,
            leeway: 0,
        }
    }

    #[test]
    fn miss_then_hit_returns_identical_claims() {
        let sk = SigningKey::from_seed(&[7u8; 32]);
        let pk = PreparedVerifyingKey::new(&sk.verifying_key());
        let cache = TokenCache::new(4);
        let (token, claims) = signed(&sk, "k1", 1000, 600);
        let v = validation(1000);
        assert_eq!(cache.validate("k1", &pk, &token, &v).unwrap(), claims);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        assert_eq!(cache.validate("k1", &pk, &token, &v).unwrap(), claims);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn hit_still_enforces_expiry() {
        let sk = SigningKey::from_seed(&[7u8; 32]);
        let pk = PreparedVerifyingKey::new(&sk.verifying_key());
        let cache = TokenCache::new(4);
        let (token, _) = signed(&sk, "k1", 1000, 600);
        cache
            .validate("k1", &pk, &token, &validation(1000))
            .unwrap();
        // The cached entry must not outlive the token.
        assert_eq!(
            cache.validate("k1", &pk, &token, &validation(1600)),
            Err(JwtError::Expired)
        );
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn epoch_bump_discards_entries() {
        let sk = SigningKey::from_seed(&[7u8; 32]);
        let pk = PreparedVerifyingKey::new(&sk.verifying_key());
        let cache = TokenCache::new(4);
        let (token, _) = signed(&sk, "k1", 1000, 600);
        let v = validation(1000);
        cache.validate("k1", &pk, &token, &v).unwrap();
        cache.bump_epoch();
        cache.validate("k1", &pk, &token, &v).unwrap();
        assert_eq!(cache.epoch_busts(), 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    #[test]
    fn seeded_token_hits_on_first_validation() {
        let sk = SigningKey::from_seed(&[7u8; 32]);
        let pk = PreparedVerifyingKey::new(&sk.verifying_key());
        let cache = TokenCache::new(4);
        let (token, claims) = signed(&sk, "k1", 1000, 600);
        cache.seed("k1", &token, &claims);
        assert_eq!(
            cache
                .validate("k1", &pk, &token, &validation(1000))
                .unwrap(),
            claims
        );
        assert_eq!((cache.hits(), cache.misses()), (1, 0));
    }

    #[test]
    fn disabled_cache_neither_seeds_nor_hits() {
        let sk = SigningKey::from_seed(&[7u8; 32]);
        let pk = PreparedVerifyingKey::new(&sk.verifying_key());
        let cache = TokenCache::new(4);
        cache.set_enabled(false);
        let (token, claims) = signed(&sk, "k1", 1000, 600);
        cache.seed("k1", &token, &claims);
        assert!(cache.is_empty());
        assert_eq!(
            cache
                .validate("k1", &pk, &token, &validation(1000))
                .unwrap(),
            claims
        );
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn tampered_token_never_hits_the_verified_entry() {
        let sk = SigningKey::from_seed(&[7u8; 32]);
        let pk = PreparedVerifyingKey::new(&sk.verifying_key());
        let cache = TokenCache::new(4);
        let (token, _) = signed(&sk, "k1", 1000, 600);
        let v = validation(1000);
        cache.validate("k1", &pk, &token, &v).unwrap();
        // Any byte difference is a different SHA-256 key: full verify.
        let mut tampered = token.clone();
        tampered.pop();
        assert!(cache.validate("k1", &pk, &tampered, &v).is_err());
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }
}
