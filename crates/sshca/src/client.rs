//! The laptop-side SSH certificate client.
//!
//! Implements the user experience of user story 4: the user runs the
//! client, it opens a device-flow login, the user approves it in a
//! browser, the client submits the public key to the CA, and finally it
//! (optionally) writes transparent `ProxyJump` aliases so
//! `ssh climate-llm.ai.isambard` "just works" — the per-project UNIX
//! account and the bastion hop are hidden from the user.

use dri_broker::oidc::{DeviceFlowError, OidcProvider};
use dri_clock::SimRng;
use dri_crypto::ed25519::SigningKey;

use crate::ca::{CaError, SshCa};
use crate::cert::SshCertificate;

/// One generated SSH config alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SshAlias {
    /// The alias the user types (`<project>.<cluster>`).
    pub host_alias: String,
    /// Real login-node hostname.
    pub hostname: String,
    /// UNIX account to log in as (the per-project account).
    pub user: String,
    /// The bastion used as a transparent jump host.
    pub proxy_jump: String,
}

impl SshAlias {
    /// Render as an `ssh_config` block.
    pub fn to_config_block(&self) -> String {
        format!(
            "Host {}\n  HostName {}\n  User {}\n  ProxyJump {}\n",
            self.host_alias, self.hostname, self.user, self.proxy_jump
        )
    }
}

/// Client-side failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The device flow failed or was denied.
    Device(DeviceFlowError),
    /// The CA refused to sign.
    Ca(CaError),
    /// The device flow never started (bad client id).
    FlowStart,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Device(e) => write!(f, "device flow failed: {e}"),
            ClientError::Ca(e) => write!(f, "certificate authority refused: {e}"),
            ClientError::FlowStart => write!(f, "could not start device flow"),
        }
    }
}

impl std::error::Error for ClientError {}

/// The certificate client application state.
pub struct SshCertClient {
    /// The user's SSH keypair (generated locally; the private half never
    /// leaves the "laptop").
    key: SigningKey,
    /// The current certificate, if any.
    pub certificate: Option<SshCertificate>,
    /// Generated SSH aliases.
    pub aliases: Vec<SshAlias>,
}

impl SshCertClient {
    /// Generate a fresh user keypair.
    pub fn new(rng: &mut SimRng) -> SshCertClient {
        SshCertClient {
            key: SigningKey::from_seed(&rng.seed32()),
            certificate: None,
            aliases: Vec::new(),
        }
    }

    /// The user's SSH public key (what gets certified).
    pub fn public_key(&self) -> [u8; 32] {
        *self.key.verifying_key().as_bytes()
    }

    /// Prove possession of the private key (used by login nodes when
    /// authenticating the SSH connection itself).
    pub fn sign_auth_challenge(&self, challenge: &[u8]) -> [u8; 64] {
        self.key.sign(challenge)
    }

    /// Run the full issuance flow given an approved device grant:
    /// poll the token, submit the CSR, build aliases.
    ///
    /// `approve` is invoked with the user code and must arrange approval
    /// (in reality: the user's browser; in tests: a closure that calls
    /// `OidcProvider::approve_device`).
    #[allow(clippy::too_many_arguments)] // mirrors the real CLI's flag set
    pub fn obtain_certificate(
        &mut self,
        oidc: &OidcProvider,
        ca: &SshCa,
        client_id: &str,
        cluster_suffix: &str,
        bastion: &str,
        login_node: &str,
        approve: impl FnOnce(&str),
    ) -> Result<(), ClientError> {
        let grant = oidc
            .begin_device_flow(client_id)
            .map_err(|_| ClientError::FlowStart)?;
        approve(&grant.user_code);
        let (token, _claims) = oidc
            .poll_device(&grant.device_code)
            .map_err(ClientError::Device)?;
        let signed = ca
            .sign_request(&token, self.public_key())
            .map_err(ClientError::Ca)?;
        self.aliases = signed
            .projects
            .iter()
            .map(|(project, account)| SshAlias {
                host_alias: format!("{project}.{cluster_suffix}"),
                hostname: login_node.to_string(),
                user: account.clone(),
                proxy_jump: bastion.to_string(),
            })
            .collect();
        self.certificate = Some(signed.certificate);
        Ok(())
    }

    /// The alias matching a project, if the user has one.
    pub fn alias_for(&self, project: &str) -> Option<&SshAlias> {
        self.aliases
            .iter()
            .find(|a| a.host_alias.split('.').next() == Some(project))
    }

    /// Render the generated `ssh_config` snippet.
    pub fn ssh_config(&self) -> String {
        let mut out = String::new();
        for a in &self.aliases {
            out.push_str(&a.to_config_block());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dri_broker::authz::StaticAuthz;
    use dri_broker::broker::{IdentityBroker, IdentitySource, TokenPolicy};
    use dri_broker::managed_idp::ManagedLogin;
    use dri_broker::oidc::OidcClient;
    use dri_clock::SimClock;
    use dri_federation::metadata::FederationRegistry;
    use std::sync::Arc;

    struct Fixture {
        oidc: OidcProvider,
        ca: SshCa,
        session_id: String,
        clock: SimClock,
    }

    fn fixture() -> Fixture {
        let clock = SimClock::starting_at(9_000_000_000);
        let authz = Arc::new(StaticAuthz::new());
        authz.grant("last-resort:alice", "ssh-ca", &["researcher"]);
        authz.add_unix_account("last-resort:alice", "climate-llm", "uaaaa1111");
        authz.add_unix_account("last-resort:alice", "genomics", "ubbbb2222");
        let broker = Arc::new(IdentityBroker::new(
            "https://broker.isambard.ac.uk",
            [41u8; 32],
            3600,
            clock.clone(),
            Arc::new(FederationRegistry::new()),
            authz.clone(),
        ));
        broker.register_service(TokenPolicy::standard("ssh-ca", 900));
        let session = broker
            .login_managed(
                &ManagedLogin {
                    subject: "last-resort:alice".into(),
                    acr: "mfa-totp".into(),
                },
                IdentitySource::LastResort,
            )
            .unwrap();
        let oidc = OidcProvider::new(broker.clone(), clock.clone(), SimRng::seed_from_u64(5));
        oidc.register_client(OidcClient {
            client_id: "ssh-cert-cli".into(),
            redirect_uri: "urn:ietf:wg:oauth:2.0:oob".into(),
            audience: "ssh-ca".into(),
        });
        let ca = SshCa::new([42u8; 32], 4 * 3600, clock.clone(), broker.jwks(), authz);
        Fixture {
            oidc,
            ca,
            session_id: session.session_id,
            clock,
        }
    }

    #[test]
    fn full_flow_yields_cert_and_aliases() {
        let f = fixture();
        let mut rng = SimRng::seed_from_u64(9);
        let mut client = SshCertClient::new(&mut rng);
        client
            .obtain_certificate(
                &f.oidc,
                &f.ca,
                "ssh-cert-cli",
                "ai.isambard",
                "bastion.isambard.ac.uk",
                "login01.ai.isambard.ac.uk",
                |user_code| f.oidc.approve_device(user_code, &f.session_id).unwrap(),
            )
            .unwrap();
        let cert = client.certificate.as_ref().unwrap();
        assert_eq!(cert.principals.len(), 2);
        assert_eq!(
            cert.verify(&f.ca.public_key(), f.clock.now_secs(), Some("uaaaa1111")),
            Ok(())
        );
        // Aliases are transparent: user/bastion details are embedded.
        let alias = client.alias_for("climate-llm").unwrap();
        assert_eq!(alias.user, "uaaaa1111");
        assert_eq!(alias.proxy_jump, "bastion.isambard.ac.uk");
        let config = client.ssh_config();
        assert!(config.contains("Host climate-llm.ai.isambard"));
        assert!(config.contains("ProxyJump bastion.isambard.ac.uk"));
        assert!(config.contains("Host genomics.ai.isambard"));
    }

    #[test]
    fn denied_device_flow_surfaces_error() {
        let f = fixture();
        let mut rng = SimRng::seed_from_u64(10);
        let mut client = SshCertClient::new(&mut rng);
        let result = client.obtain_certificate(
            &f.oidc,
            &f.ca,
            "ssh-cert-cli",
            "ai.isambard",
            "bastion",
            "login01",
            |user_code| f.oidc.deny_device(user_code).unwrap(),
        );
        assert_eq!(result, Err(ClientError::Device(DeviceFlowError::Denied)));
        assert!(client.certificate.is_none());
    }

    #[test]
    fn cert_expires_requiring_new_flow() {
        let f = fixture();
        let mut rng = SimRng::seed_from_u64(11);
        let mut client = SshCertClient::new(&mut rng);
        client
            .obtain_certificate(
                &f.oidc,
                &f.ca,
                "ssh-cert-cli",
                "ai.isambard",
                "bastion",
                "login01",
                |uc| f.oidc.approve_device(uc, &f.session_id).unwrap(),
            )
            .unwrap();
        f.clock.advance_secs(4 * 3600 + 1);
        let cert = client.certificate.as_ref().unwrap();
        assert_eq!(
            cert.verify(&f.ca.public_key(), f.clock.now_secs(), None),
            Err(crate::cert::CertError::Expired)
        );
    }

    #[test]
    fn unknown_client_id_fails_fast() {
        let f = fixture();
        let mut rng = SimRng::seed_from_u64(12);
        let mut client = SshCertClient::new(&mut rng);
        let result = client.obtain_certificate(
            &f.oidc,
            &f.ca,
            "wrong-client",
            "ai.isambard",
            "bastion",
            "login01",
            |_| {},
        );
        assert_eq!(result, Err(ClientError::FlowStart));
    }
}
