//! The SSH certificate format.
//!
//! Structured after OpenSSH user certificates (`ssh-ed25519-cert-v01`):
//! a to-be-signed body carrying the certified public key, serial, key id,
//! principals, validity window, critical options and extensions, followed
//! by the CA signature. Encoding is a deterministic length-prefixed byte
//! format; signatures are real Ed25519 over the exact encoded body.

use dri_crypto::base64;
use dri_crypto::ed25519::{PreparedVerifyingKey, SigningKey, VerifyingKey};

/// Certificate type: we only model user certificates (host certs would be
/// the same machinery).
const CERT_TYPE_USER: u8 = 1;

/// A parsed SSH user certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SshCertificate {
    /// The user's certified public key.
    pub public_key: [u8; 32],
    /// CA-assigned serial.
    pub serial: u64,
    /// Key id — set to the subject (cuid) for audit trails.
    pub key_id: String,
    /// UNIX accounts this certificate may log in as.
    pub principals: Vec<String>,
    /// Start of validity (seconds).
    pub valid_after: u64,
    /// End of validity (seconds) — short-lived by design.
    pub valid_before: u64,
    /// Critical options (enforced by the server or the login fails),
    /// e.g. `("force-command", ...)` or `("source-address", cidr)`.
    pub critical_options: Vec<(String, String)>,
    /// Extensions (advisory capabilities), e.g. `permit-pty`.
    pub extensions: Vec<String>,
    /// CA signature over the body.
    pub signature: [u8; 64],
}

/// Certificate errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// Wire format unparseable.
    Malformed,
    /// CA signature invalid.
    BadSignature,
    /// Outside the validity window.
    Expired,
    /// Not yet valid.
    NotYetValid,
    /// The requested principal is not in the certificate.
    PrincipalNotAllowed,
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CertError::Malformed => "malformed certificate",
            CertError::BadSignature => "CA signature invalid",
            CertError::Expired => "certificate expired",
            CertError::NotYetValid => "certificate not yet valid",
            CertError::PrincipalNotAllowed => "principal not allowed by certificate",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CertError {}

fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_be_bytes());
    out.extend_from_slice(data);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self) -> Result<&'a [u8], CertError> {
        if self.pos + 4 > self.data.len() {
            return Err(CertError::Malformed);
        }
        let len =
            u32::from_be_bytes(self.data[self.pos..self.pos + 4].try_into().unwrap()) as usize;
        self.pos += 4;
        if self.pos + len > self.data.len() {
            return Err(CertError::Malformed);
        }
        let out = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    fn string(&mut self) -> Result<String, CertError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| CertError::Malformed)
    }

    fn u64(&mut self) -> Result<u64, CertError> {
        if self.pos + 8 > self.data.len() {
            return Err(CertError::Malformed);
        }
        let v = u64::from_be_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }

    fn u8(&mut self) -> Result<u8, CertError> {
        if self.pos >= self.data.len() {
            return Err(CertError::Malformed);
        }
        let v = self.data[self.pos];
        self.pos += 1;
        Ok(v)
    }
}

impl SshCertificate {
    /// Encode the to-be-signed body.
    fn tbs_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.push(CERT_TYPE_USER);
        put_bytes(&mut out, &self.public_key);
        out.extend_from_slice(&self.serial.to_be_bytes());
        put_str(&mut out, &self.key_id);
        out.extend_from_slice(&(self.principals.len() as u32).to_be_bytes());
        for p in &self.principals {
            put_str(&mut out, p);
        }
        out.extend_from_slice(&self.valid_after.to_be_bytes());
        out.extend_from_slice(&self.valid_before.to_be_bytes());
        out.extend_from_slice(&(self.critical_options.len() as u32).to_be_bytes());
        for (k, v) in &self.critical_options {
            put_str(&mut out, k);
            put_str(&mut out, v);
        }
        out.extend_from_slice(&(self.extensions.len() as u32).to_be_bytes());
        for e in &self.extensions {
            put_str(&mut out, e);
        }
        out
    }

    /// Sign the certificate body with the CA key, filling `signature`.
    pub fn signed(mut self, ca_key: &SigningKey) -> SshCertificate {
        self.signature = ca_key.sign(&self.tbs_bytes());
        self
    }

    /// Serialize to the base64 wire form (`ssh-ed25519-cert <b64>`).
    pub fn to_wire(&self) -> String {
        let mut out = self.tbs_bytes();
        out.extend_from_slice(&self.signature);
        format!("ssh-ed25519-cert {}", base64::encode_url(&out))
    }

    /// Parse from the wire form (no verification).
    pub fn from_wire(wire: &str) -> Result<SshCertificate, CertError> {
        let b64 = wire
            .strip_prefix("ssh-ed25519-cert ")
            .ok_or(CertError::Malformed)?;
        let data = base64::decode_url(b64).map_err(|_| CertError::Malformed)?;
        if data.len() < 64 {
            return Err(CertError::Malformed);
        }
        let (body, sig) = data.split_at(data.len() - 64);
        let mut signature = [0u8; 64];
        signature.copy_from_slice(sig);

        let mut r = Reader { data: body, pos: 0 };
        if r.u8()? != CERT_TYPE_USER {
            return Err(CertError::Malformed);
        }
        let pk = r.bytes()?;
        if pk.len() != 32 {
            return Err(CertError::Malformed);
        }
        let mut public_key = [0u8; 32];
        public_key.copy_from_slice(pk);
        let serial = r.u64()?;
        let key_id = r.string()?;
        let n_principals = r.u64_32()?;
        let mut principals = Vec::with_capacity(n_principals);
        for _ in 0..n_principals {
            principals.push(r.string()?);
        }
        let valid_after = r.u64()?;
        let valid_before = r.u64()?;
        let n_opts = r.u64_32()?;
        let mut critical_options = Vec::with_capacity(n_opts);
        for _ in 0..n_opts {
            critical_options.push((r.string()?, r.string()?));
        }
        let n_ext = r.u64_32()?;
        let mut extensions = Vec::with_capacity(n_ext);
        for _ in 0..n_ext {
            extensions.push(r.string()?);
        }
        if r.pos != body.len() {
            return Err(CertError::Malformed);
        }
        Ok(SshCertificate {
            public_key,
            serial,
            key_id,
            principals,
            valid_after,
            valid_before,
            critical_options,
            extensions,
            signature,
        })
    }

    /// Full verification: CA signature, validity window, and (optionally)
    /// that `principal` is authorised by the certificate.
    pub fn verify(
        &self,
        ca_key: &VerifyingKey,
        now_secs: u64,
        principal: Option<&str>,
    ) -> Result<(), CertError> {
        if !ca_key.verify(&self.tbs_bytes(), &self.signature) {
            return Err(CertError::BadSignature);
        }
        if now_secs < self.valid_after {
            return Err(CertError::NotYetValid);
        }
        if now_secs >= self.valid_before {
            return Err(CertError::Expired);
        }
        if let Some(p) = principal {
            if !self.principals.iter().any(|x| x == p) {
                return Err(CertError::PrincipalNotAllowed);
            }
        }
        Ok(())
    }

    /// [`SshCertificate::verify`] against a pre-decompressed CA key:
    /// same checks, same order, same errors, but the CA point
    /// decompression is paid once at trust time instead of per login.
    pub fn verify_prepared(
        &self,
        ca_key: &PreparedVerifyingKey,
        now_secs: u64,
        principal: Option<&str>,
    ) -> Result<(), CertError> {
        if !ca_key.verify(&self.tbs_bytes(), &self.signature) {
            return Err(CertError::BadSignature);
        }
        if now_secs < self.valid_after {
            return Err(CertError::NotYetValid);
        }
        if now_secs >= self.valid_before {
            return Err(CertError::Expired);
        }
        if let Some(p) = principal {
            if !self.principals.iter().any(|x| x == p) {
                return Err(CertError::PrincipalNotAllowed);
            }
        }
        Ok(())
    }

    /// Remaining lifetime at `now` (0 when expired).
    pub fn remaining_secs(&self, now_secs: u64) -> u64 {
        self.valid_before.saturating_sub(now_secs)
    }
}

impl<'a> Reader<'a> {
    /// Read a u32 count as usize (shared by the list fields).
    fn u64_32(&mut self) -> Result<usize, CertError> {
        if self.pos + 4 > self.data.len() {
            return Err(CertError::Malformed);
        }
        let v = u32::from_be_bytes(self.data[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        Ok(v as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ca: &SigningKey) -> SshCertificate {
        SshCertificate {
            public_key: [7u8; 32],
            serial: 42,
            key_id: "maid-000001".into(),
            principals: vec!["u1a2b3c4".into(), "u5d6e7f8".into()],
            valid_after: 1000,
            valid_before: 1000 + 8 * 3600,
            critical_options: vec![("source-address".into(), "10.0.0.0/8".into())],
            extensions: vec!["permit-pty".into()],
            signature: [0u8; 64],
        }
        .signed(ca)
    }

    #[test]
    fn wire_roundtrip_preserves_everything() {
        let ca = SigningKey::from_seed(&[1u8; 32]);
        let cert = sample(&ca);
        let wire = cert.to_wire();
        let parsed = SshCertificate::from_wire(&wire).unwrap();
        assert_eq!(parsed, cert);
    }

    #[test]
    fn verify_accepts_valid_cert_and_principal() {
        let ca = SigningKey::from_seed(&[1u8; 32]);
        let cert = sample(&ca);
        let pk = ca.verifying_key();
        assert_eq!(cert.verify(&pk, 5000, Some("u1a2b3c4")), Ok(()));
        assert_eq!(cert.verify(&pk, 5000, None), Ok(()));
    }

    #[test]
    fn verify_rejects_unknown_principal() {
        let ca = SigningKey::from_seed(&[1u8; 32]);
        let cert = sample(&ca);
        assert_eq!(
            cert.verify(&ca.verifying_key(), 5000, Some("root")),
            Err(CertError::PrincipalNotAllowed)
        );
    }

    #[test]
    fn verify_enforces_validity_window() {
        let ca = SigningKey::from_seed(&[1u8; 32]);
        let cert = sample(&ca);
        let pk = ca.verifying_key();
        assert_eq!(cert.verify(&pk, 999, None), Err(CertError::NotYetValid));
        assert_eq!(
            cert.verify(&pk, 1000 + 8 * 3600, None),
            Err(CertError::Expired)
        );
        assert_eq!(cert.remaining_secs(1000), 8 * 3600);
        assert_eq!(cert.remaining_secs(u64::MAX), 0);
    }

    #[test]
    fn verify_prepared_agrees_with_verify() {
        let ca = SigningKey::from_seed(&[1u8; 32]);
        let rogue = SigningKey::from_seed(&[2u8; 32]);
        let cert = sample(&ca);
        for pk in [ca.verifying_key(), rogue.verifying_key()] {
            let prepared = PreparedVerifyingKey::new(&pk);
            for now in [999u64, 1000, 5000, 1000 + 8 * 3600] {
                for principal in [None, Some("u1a2b3c4"), Some("root")] {
                    assert_eq!(
                        cert.verify_prepared(&prepared, now, principal),
                        cert.verify(&pk, now, principal)
                    );
                }
            }
        }
    }

    #[test]
    fn verify_rejects_wrong_ca() {
        let ca = SigningKey::from_seed(&[1u8; 32]);
        let rogue = SigningKey::from_seed(&[2u8; 32]);
        let cert = sample(&ca);
        assert_eq!(
            cert.verify(&rogue.verifying_key(), 5000, None),
            Err(CertError::BadSignature)
        );
    }

    #[test]
    fn tampered_principals_break_signature() {
        let ca = SigningKey::from_seed(&[1u8; 32]);
        let mut cert = sample(&ca);
        cert.principals.push("root".into());
        assert_eq!(
            cert.verify(&ca.verifying_key(), 5000, Some("root")),
            Err(CertError::BadSignature)
        );
    }

    #[test]
    fn malformed_wire_rejected() {
        assert_eq!(
            SshCertificate::from_wire("not-a-cert"),
            Err(CertError::Malformed)
        );
        assert_eq!(
            SshCertificate::from_wire("ssh-ed25519-cert aGVsbG8"),
            Err(CertError::Malformed)
        );
        // Trailing garbage after a valid body is rejected.
        let ca = SigningKey::from_seed(&[1u8; 32]);
        let cert = sample(&ca);
        let mut raw = cert.tbs_bytes();
        raw.push(0xff);
        raw.extend_from_slice(&cert.signature);
        let wire = format!("ssh-ed25519-cert {}", base64::encode_url(&raw));
        assert_eq!(SshCertificate::from_wire(&wire), Err(CertError::Malformed));
    }
}
