//! # dri-sshca — SSH certificate authority and client
//!
//! User story 4 of the paper: SSH access to the clusters is never by
//! public key alone — users present **short-lived SSH certificates**
//! minted by an online CA in the Access Zone after an OIDC device-flow
//! login. The certificate's principals are the user's *unique per-project
//! UNIX accounts*, so possession of a certificate is simultaneously
//! authentication and authorisation, and it all expires together.
//!
//! * [`cert`] — the certificate format (OpenSSH-shaped, Ed25519-signed)
//!   with principals, validity window, critical options and extensions.
//! * [`ca`] — the CA service: validates the broker-issued `ssh-ca` token,
//!   pulls the subject's project accounts from the authorisation source,
//!   and signs.
//! * [`client`] — the laptop-side client: key generation, the device-flow
//!   dance, and generation of transparent `ProxyJump` SSH aliases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ca;
pub mod cert;
pub mod client;

pub use ca::{CaError, SshCa};
pub use cert::{CertError, SshCertificate};
pub use client::{SshAlias, SshCertClient};
