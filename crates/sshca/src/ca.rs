//! The online SSH certificate authority (runs in FDS).
//!
//! Signing path, per user story 4: the client presents a broker-issued
//! token with audience `ssh-ca`; the CA validates it against the broker's
//! JWKS, asks the authorisation source for the subject's per-project UNIX
//! accounts, and signs a certificate whose principals are exactly those
//! accounts. No accounts → no certificate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dri_broker::authz::AuthorizationSource;
use dri_broker::broker::Jwks;
use dri_clock::SimClock;
use dri_crypto::ed25519::{SigningKey, VerifyingKey};
use dri_crypto::jwt::JwtError;
use dri_sync::Snapshot;
use parking_lot::RwLock;

use crate::cert::SshCertificate;

/// Token-introspection callback (typically `IdentityBroker::introspect`).
pub type IntrospectFn = Arc<dyn Fn(&str) -> bool + Send + Sync>;

/// CA failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaError {
    /// The presented token failed validation.
    BadToken(JwtError),
    /// Token lacks an acceptable role.
    RoleMissing,
    /// The subject has no project UNIX accounts to certify.
    NoPrincipals,
    /// Broker introspection says the token was revoked.
    TokenRevoked,
    /// The CA itself is unreachable (injected outage or flaky window).
    /// Already-issued certificates stay valid until their TTL — only
    /// *new* issuance fails closed.
    Unavailable,
}

impl std::fmt::Display for CaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaError::BadToken(e) => write!(f, "token rejected: {e}"),
            CaError::RoleMissing => write!(f, "token carries no usable role"),
            CaError::NoPrincipals => write!(f, "no project accounts to certify"),
            CaError::TokenRevoked => write!(f, "token revoked"),
            CaError::Unavailable => write!(f, "SSH CA unavailable"),
        }
    }
}

impl std::error::Error for CaError {}

/// Result of a successful signing request.
#[derive(Debug, Clone)]
pub struct SignedCertificate {
    /// The certificate.
    pub certificate: SshCertificate,
    /// Projects covered, as `(project_name, unix_account)` — the client
    /// uses these to build SSH aliases.
    pub projects: Vec<(String, String)>,
}

/// The SSH certificate authority.
pub struct SshCa {
    /// Audience this CA accepts tokens for.
    pub audience: String,
    ca_key: RwLock<SigningKey>,
    clock: SimClock,
    jwks: Snapshot<Jwks>,
    authz: Arc<dyn AuthorizationSource>,
    /// Certificate lifetime in seconds (short-lived by design; the E12
    /// experiment sweeps this).
    pub cert_ttl_secs: u64,
    serial: AtomicU64,
    /// Optional revocation check callback into the broker.
    introspect: Option<IntrospectFn>,
    faults: dri_fault::FaultHook,
}

impl SshCa {
    /// Create a CA.
    pub fn new(
        seed: [u8; 32],
        cert_ttl_secs: u64,
        clock: SimClock,
        jwks: Jwks,
        authz: Arc<dyn AuthorizationSource>,
    ) -> SshCa {
        SshCa {
            audience: "ssh-ca".to_string(),
            ca_key: RwLock::new(SigningKey::from_seed(&seed)),
            clock,
            jwks: Snapshot::new(jwks),
            authz,
            cert_ttl_secs,
            serial: AtomicU64::new(0),
            introspect: None,
            faults: dri_fault::FaultHook::new(),
        }
    }

    /// Attach the shared fault plane; outages of component `sshca` make
    /// [`sign_request`](SshCa::sign_request) fail closed with
    /// [`CaError::Unavailable`] while leaving issued certificates valid
    /// until TTL (validation is offline against the CA public key).
    pub fn install_fault_plane(&self, plane: Arc<dri_fault::FaultPlane>) {
        self.faults.install(plane);
    }

    /// Attach a token-introspection callback (typically
    /// `IdentityBroker::introspect`) so revoked tokens can't sign.
    pub fn with_introspection(mut self, check: IntrospectFn) -> SshCa {
        self.introspect = Some(check);
        self
    }

    /// The CA public key — distributed to every login node / bastion as
    /// the trusted user-CA key.
    pub fn public_key(&self) -> VerifyingKey {
        self.ca_key.read().verifying_key()
    }

    /// Refresh the JWKS snapshot (broker key rotation).
    pub fn update_jwks(&self, jwks: Jwks) {
        self.jwks.store(jwks);
    }

    /// Rotate the CA key (old certificates become invalid everywhere the
    /// new key is distributed — a coarse kill switch).
    pub fn rotate_key(&self, seed: [u8; 32]) {
        *self.ca_key.write() = SigningKey::from_seed(&seed);
    }

    /// Change certificate TTL (E12 sweeps this).
    pub fn set_cert_ttl(&mut self, ttl_secs: u64) {
        self.cert_ttl_secs = ttl_secs;
    }

    /// Sign a user's SSH public key after validating their `ssh-ca` token.
    pub fn sign_request(
        &self,
        token: &str,
        user_public_key: [u8; 32],
    ) -> Result<SignedCertificate, CaError> {
        let _span = dri_trace::span("sshca.sign_request", dri_trace::Stage::SshCa);
        self.faults
            .check("sshca")
            .map_err(|_| CaError::Unavailable)?;
        let now = self.clock.now_secs();
        let claims = self
            .jwks
            .load()
            .validate(token, &self.audience, now)
            .map_err(CaError::BadToken)?;
        if let Some(check) = &self.introspect {
            if !check(&claims.token_id) {
                return Err(CaError::TokenRevoked);
            }
        }
        if !claims.has_role("pi") && !claims.has_role("researcher") {
            return Err(CaError::RoleMissing);
        }
        let projects = self.authz.unix_accounts(&claims.subject);
        if projects.is_empty() {
            return Err(CaError::NoPrincipals);
        }
        let principals: Vec<String> = projects
            .iter()
            .map(|(_, account)| account.clone())
            .collect();
        let certificate = SshCertificate {
            public_key: user_public_key,
            serial: self.serial.fetch_add(1, Ordering::Relaxed) + 1,
            key_id: claims.subject.clone(),
            principals,
            valid_after: now,
            valid_before: now + self.cert_ttl_secs,
            critical_options: vec![],
            extensions: vec!["permit-pty".into(), "permit-agent-forwarding".into()],
            signature: [0u8; 64],
        }
        .signed(&self.ca_key.read());
        Ok(SignedCertificate {
            certificate,
            projects,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dri_broker::authz::StaticAuthz;
    use dri_broker::broker::{IdentityBroker, IdentitySource, TokenPolicy};
    use dri_broker::managed_idp::ManagedLogin;
    use dri_federation::metadata::FederationRegistry;

    struct Fixture {
        ca: SshCa,
        broker: Arc<IdentityBroker>,
        clock: SimClock,
        authz: Arc<StaticAuthz>,
        session_id: String,
    }

    fn fixture() -> Fixture {
        let clock = SimClock::starting_at(7_000_000_000);
        let authz = Arc::new(StaticAuthz::new());
        authz.grant("last-resort:alice", "ssh-ca", &["researcher"]);
        authz.add_unix_account("last-resort:alice", "climate-llm", "u1a2b3c4");
        let broker = Arc::new(IdentityBroker::new(
            "https://broker.isambard.ac.uk",
            [31u8; 32],
            3600,
            clock.clone(),
            Arc::new(FederationRegistry::new()),
            authz.clone(),
        ));
        broker.register_service(TokenPolicy::standard("ssh-ca", 900));
        let session = broker
            .login_managed(
                &ManagedLogin {
                    subject: "last-resort:alice".into(),
                    acr: "mfa-totp".into(),
                },
                IdentitySource::LastResort,
            )
            .unwrap();
        let broker2 = broker.clone();
        let ca = SshCa::new(
            [32u8; 32],
            8 * 3600,
            clock.clone(),
            broker.jwks(),
            authz.clone(),
        )
        .with_introspection(Arc::new(move |jti| broker2.introspect(jti)));
        Fixture {
            ca,
            broker,
            clock,
            authz,
            session_id: session.session_id,
        }
    }

    fn token(f: &Fixture) -> String {
        f.broker.issue_token(&f.session_id, "ssh-ca").unwrap().0
    }

    #[test]
    fn signs_certificate_with_project_principals() {
        let f = fixture();
        let signed = f.ca.sign_request(&token(&f), [5u8; 32]).unwrap();
        let cert = &signed.certificate;
        assert_eq!(cert.key_id, "last-resort:alice");
        assert_eq!(cert.principals, vec!["u1a2b3c4"]);
        assert_eq!(cert.remaining_secs(f.clock.now_secs()), 8 * 3600);
        assert_eq!(
            cert.verify(&f.ca.public_key(), f.clock.now_secs(), Some("u1a2b3c4")),
            Ok(())
        );
        assert_eq!(
            signed.projects,
            vec![("climate-llm".into(), "u1a2b3c4".into())]
        );
    }

    #[test]
    fn rejects_garbage_and_wrong_audience_tokens() {
        let f = fixture();
        assert!(matches!(
            f.ca.sign_request("garbage.token.here", [0u8; 32]),
            Err(CaError::BadToken(_))
        ));
        // Mint a token for a different audience.
        f.broker
            .register_service(TokenPolicy::standard("jupyter", 900));
        f.authz
            .grant("last-resort:alice", "jupyter", &["researcher"]);
        let (jupyter_token, _) = f.broker.issue_token(&f.session_id, "jupyter").unwrap();
        assert!(matches!(
            f.ca.sign_request(&jupyter_token, [0u8; 32]),
            Err(CaError::BadToken(JwtError::WrongAudience))
        ));
    }

    #[test]
    fn rejects_revoked_token_via_introspection() {
        let f = fixture();
        let (tok, claims) = f.broker.issue_token(&f.session_id, "ssh-ca").unwrap();
        f.broker.revoke_token(&claims.token_id);
        assert!(matches!(
            f.ca.sign_request(&tok, [0u8; 32]),
            Err(CaError::TokenRevoked)
        ));
    }

    #[test]
    fn no_projects_no_certificate() {
        let f = fixture();
        // A subject with the role but no unix accounts.
        f.authz.grant("last-resort:bob", "ssh-ca", &["researcher"]);
        let session = f
            .broker
            .login_managed(
                &ManagedLogin {
                    subject: "last-resort:bob".into(),
                    acr: "mfa-totp".into(),
                },
                IdentitySource::LastResort,
            )
            .unwrap();
        let (tok, _) = f.broker.issue_token(&session.session_id, "ssh-ca").unwrap();
        assert!(matches!(
            f.ca.sign_request(&tok, [0u8; 32]),
            Err(CaError::NoPrincipals)
        ));
    }

    #[test]
    fn expired_token_rejected() {
        let f = fixture();
        let tok = token(&f);
        f.clock.advance_secs(901);
        assert!(matches!(
            f.ca.sign_request(&tok, [0u8; 32]),
            Err(CaError::BadToken(JwtError::Expired))
        ));
    }

    #[test]
    fn ca_key_rotation_invalidates_old_certs() {
        let f = fixture();
        let signed = f.ca.sign_request(&token(&f), [5u8; 32]).unwrap();
        let old_pub = f.ca.public_key();
        f.ca.rotate_key([77u8; 32]);
        let new_pub = f.ca.public_key();
        let now = f.clock.now_secs();
        // Against the new CA key the old cert fails; against the old key
        // it still passes (hosts must be re-provisioned, as in reality).
        assert!(signed.certificate.verify(&new_pub, now, None).is_err());
        assert!(signed.certificate.verify(&old_pub, now, None).is_ok());
    }

    #[test]
    fn serials_increase() {
        let f = fixture();
        let c1 = f.ca.sign_request(&token(&f), [5u8; 32]).unwrap();
        let c2 = f.ca.sign_request(&token(&f), [5u8; 32]).unwrap();
        assert!(c2.certificate.serial > c1.certificate.serial);
    }
}
