//! # dri-siem — the virtual Security Operations Centre
//!
//! §III-D of the paper: the SOC (1) aggregates and scans logs from every
//! domain to raise alerts, (2) inventories software to track
//! vulnerabilities, and (3) assesses configuration against best-practice
//! baselines (CIS). All three are implemented here:
//!
//! * [`events`] — the security-event vocabulary every domain forwards;
//! * [`siem`] — the ingestion pipeline and detection engine (windowed
//!   rules: credential stuffing, token abuse, lateral movement probes,
//!   expired-credential replay) plus alert routing to the external 24/7
//!   monitor (NCC-style) and kill-switch recommendations;
//! * [`inventory`] — asset/software inventory matched against a
//!   vulnerability feed;
//! * [`cis`] — configuration checks and a compliance score;
//! * [`shape`] — trace-shape detection rules over the span tree itself
//!   (first rule: `sshca` span with no preceding `policy` span = PDP
//!   bypass).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod cis;
pub mod events;
pub mod inventory;
pub mod shape;
pub mod siem;

pub use anomaly::{AnomalyConfig, AnomalyDetector, RateAnomaly};
pub use cis::{CisCheck, CisReport, ConfigSnapshot};
pub use events::{EventKind, SecurityEvent, Severity};
pub use inventory::{Inventory, VulnFinding, Vulnerability};
pub use shape::{find_pdp_bypasses, pdp_bypass_events, PdpBypassFinding};
pub use siem::{Alert, DetectionConfig, Siem};
