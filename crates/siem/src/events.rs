//! The security-event vocabulary forwarded from every domain.

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine (successful operations).
    Info,
    /// Suspicious but not conclusive.
    Warning,
    /// Requires attention.
    High,
    /// Active incident.
    Critical,
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Failed interactive authentication.
    AuthnFailure,
    /// Successful interactive authentication.
    AuthnSuccess,
    /// RBAC token issued.
    TokenIssued,
    /// A service rejected a presented token.
    TokenRejected,
    /// Use of an expired credential (token or certificate).
    ExpiredCredentialUse,
    /// SSH certificate issued.
    CertIssued,
    /// Connection allowed by the fabric.
    ConnAllowed,
    /// Connection denied by the fabric.
    ConnDenied,
    /// Request blocked at the edge (rate/blocklist).
    EdgeBlocked,
    /// Privileged management operation executed.
    PrivilegedOp,
    /// Batch job submitted.
    JobSubmitted,
    /// Notebook session spawned.
    NotebookSpawned,
    /// Kill switch activated.
    KillSwitch,
}

/// One event in the pipeline.
#[derive(Debug, Clone)]
pub struct SecurityEvent {
    /// Simulated time (ms).
    pub at_ms: u64,
    /// Emitting component (`fds/broker`, `sws/bastion`, `mdc/login01` …).
    pub source: String,
    /// Event kind.
    pub kind: EventKind,
    /// Subject involved, when known (cuid, `admin:x`, source IP, …).
    pub subject: String,
    /// Free-text detail.
    pub detail: String,
    /// Severity assigned by the emitter.
    pub severity: Severity,
}

impl SecurityEvent {
    /// Convenience constructor.
    pub fn new(
        at_ms: u64,
        source: impl Into<String>,
        kind: EventKind,
        subject: impl Into<String>,
        detail: impl Into<String>,
        severity: Severity,
    ) -> SecurityEvent {
        SecurityEvent {
            at_ms,
            source: source.into(),
            kind,
            subject: subject.into(),
            detail: detail.into(),
            severity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_ordered() {
        assert!(Severity::Critical > Severity::High);
        assert!(Severity::High > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn event_constructor() {
        let e = SecurityEvent::new(
            10,
            "fds/broker",
            EventKind::AuthnFailure,
            "maid-1",
            "bad password",
            Severity::Warning,
        );
        assert_eq!(e.source, "fds/broker");
        assert_eq!(e.kind, EventKind::AuthnFailure);
    }
}
