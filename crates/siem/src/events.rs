//! The security-event vocabulary forwarded from every domain.

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine (successful operations).
    Info,
    /// Suspicious but not conclusive.
    Warning,
    /// Requires attention.
    High,
    /// Active incident.
    Critical,
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Failed interactive authentication.
    AuthnFailure,
    /// Successful interactive authentication.
    AuthnSuccess,
    /// RBAC token issued.
    TokenIssued,
    /// A service rejected a presented token.
    TokenRejected,
    /// Use of an expired credential (token or certificate).
    ExpiredCredentialUse,
    /// SSH certificate issued.
    CertIssued,
    /// Connection allowed by the fabric.
    ConnAllowed,
    /// Connection denied by the fabric.
    ConnDenied,
    /// Request blocked at the edge (rate/blocklist).
    EdgeBlocked,
    /// Privileged management operation executed.
    PrivilegedOp,
    /// Batch job submitted.
    JobSubmitted,
    /// Notebook session spawned.
    NotebookSpawned,
    /// Kill switch activated.
    KillSwitch,
    /// A circuit breaker changed state (closed/open/half-open).
    BreakerTransition,
    /// A login succeeded in degraded mode (IdP-of-last-resort failover).
    DegradedLogin,
    /// The fault plane injected a failure into a hop.
    FaultInjected,
    /// Trace-shape detection: a flow reached the SSH CA without a
    /// preceding policy evaluation (PDP bypass).
    PdpBypass,
    /// A dependency spent its error budget for the current window.
    BudgetExhausted,
    /// The SIEM feedback loop tightened or relaxed resilience
    /// thresholds (breaker config / retry budget) for a dependency.
    BudgetFeedback,
}

/// One event in the pipeline.
#[derive(Debug, Clone)]
pub struct SecurityEvent {
    /// Simulated time (ms).
    pub at_ms: u64,
    /// Emitting component (`fds/broker`, `sws/bastion`, `mdc/login01` …).
    pub source: String,
    /// Event kind.
    pub kind: EventKind,
    /// Subject involved, when known (cuid, `admin:x`, source IP, …).
    pub subject: String,
    /// Free-text detail.
    pub detail: String,
    /// Severity assigned by the emitter.
    pub severity: Severity,
    /// Trace id (hex) of the flow that caused this event, when the
    /// emitter ran inside a traced flow — the SOC's join key back to
    /// the full span tree of the originating login.
    pub trace_id: Option<String>,
}

impl SecurityEvent {
    /// Convenience constructor. Stamps the calling thread's active
    /// trace id (if any), so events emitted mid-flow correlate to the
    /// flow for free.
    pub fn new(
        at_ms: u64,
        source: impl Into<String>,
        kind: EventKind,
        subject: impl Into<String>,
        detail: impl Into<String>,
        severity: Severity,
    ) -> SecurityEvent {
        SecurityEvent {
            at_ms,
            source: source.into(),
            kind,
            subject: subject.into(),
            detail: detail.into(),
            severity,
            trace_id: dri_trace::current_trace_id(),
        }
    }

    /// Override the trace correlation, for emitters that act *after*
    /// the causing flow finished (e.g. a kill switch severing a session
    /// established by an earlier login carries that login's trace id).
    pub fn with_trace_id(mut self, trace_id: Option<String>) -> SecurityEvent {
        self.trace_id = trace_id;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_ordered() {
        assert!(Severity::Critical > Severity::High);
        assert!(Severity::High > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn event_constructor() {
        let e = SecurityEvent::new(
            10,
            "fds/broker",
            EventKind::AuthnFailure,
            "maid-1",
            "bad password",
            Severity::Warning,
        );
        assert_eq!(e.source, "fds/broker");
        assert_eq!(e.kind, EventKind::AuthnFailure);
        assert_eq!(e.trace_id, None, "no flow active in unit tests");
    }

    #[test]
    fn trace_id_can_be_overridden() {
        let e = SecurityEvent::new(
            10,
            "mgmt/killswitch",
            EventKind::KillSwitch,
            "maid-1",
            "severed",
            Severity::Critical,
        )
        .with_trace_id(Some("deadbeef".into()));
        assert_eq!(e.trace_id.as_deref(), Some("deadbeef"));
    }
}
