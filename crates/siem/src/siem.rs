//! The SIEM: ingestion, windowed detection rules, alerting and
//! kill-switch recommendations.
//!
//! Ingestion is a bounded MPSC channel: producers on the login hot path
//! call [`Siem::enqueue`], which is fire-and-forget (a `try_send`, no
//! detection work, no state lock). Queued events are drained in batches
//! — one state-lock acquisition per batch instead of per event — either
//! lazily by any accessor ([`Siem::alerts`], [`Siem::event_count`], …)
//! or explicitly via [`Siem::flush`], so every read still observes
//! exactly the events enqueued before it.

use std::collections::{HashMap, VecDeque};

use crossbeam::channel::{self, TrySendError};
use dri_clock::{IdGen, SimClock};
use parking_lot::RwLock;

use crate::events::{EventKind, SecurityEvent, Severity};

/// Callback notified for every raised alert (the external 24/7 monitor).
pub type AlertSink = Box<dyn Fn(&Alert) + Send + Sync>;

/// Callback invoked for every drained event (e.g. the rate-anomaly
/// detector taps the stream at batch-drain time).
pub type IngestTap = Box<dyn Fn(&SecurityEvent) + Send + Sync>;

/// Capacity of the bounded ingest queue. A full queue makes the
/// enqueuing thread drain a batch itself (backpressure by work
/// stealing), so events are never dropped.
const INGEST_QUEUE_CAP: usize = 4096;

/// Detection thresholds (all sliding windows in milliseconds).
#[derive(Debug, Clone)]
pub struct DetectionConfig {
    /// Failed authentications per subject before a credential-stuffing
    /// alert.
    pub authn_failure_threshold: usize,
    /// Window for authentication failures.
    pub authn_window_ms: u64,
    /// Token rejections per subject before a token-abuse alert.
    pub token_reject_threshold: usize,
    /// Window for token rejections.
    pub token_window_ms: u64,
    /// Denied connections from one internal source before a
    /// lateral-movement alert.
    pub lateral_threshold: usize,
    /// Window for denied connections.
    pub lateral_window_ms: u64,
    /// Expired-credential uses per subject before an alert.
    pub expired_cred_threshold: usize,
    /// Window for expired-credential uses.
    pub expired_window_ms: u64,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            authn_failure_threshold: 5,
            authn_window_ms: 60_000,
            token_reject_threshold: 5,
            token_window_ms: 60_000,
            lateral_threshold: 3,
            lateral_window_ms: 60_000,
            expired_cred_threshold: 3,
            expired_window_ms: 300_000,
        }
    }
}

/// A raised alert.
#[derive(Debug, Clone)]
pub struct Alert {
    /// Alert id.
    pub id: String,
    /// When raised (ms).
    pub at_ms: u64,
    /// Which rule fired.
    pub rule: &'static str,
    /// Offending subject / source.
    pub subject: String,
    /// Severity.
    pub severity: Severity,
    /// Evidence events counted in the window.
    pub evidence: usize,
    /// Recommended response (`revoke-subject`, `isolate-host`, …).
    pub recommendation: &'static str,
}

#[derive(Default)]
struct SiemState {
    events: Vec<SecurityEvent>,
    alerts: Vec<Alert>,
    /// Per (rule, subject) sliding windows of event timestamps.
    windows: HashMap<(&'static str, String), VecDeque<u64>>,
    /// Per (rule, subject): suppress duplicate alerts until window rolls.
    alerted: HashMap<(&'static str, String), u64>,
    events_ingested: u64,
    /// Trace-id (hex) -> indices into `events`, maintained at drain
    /// time so pulling a flow's events is a lookup, not a scan.
    trace_index: HashMap<String, Vec<usize>>,
}

impl SiemState {
    /// Store an event, keeping the trace-correlation index in step.
    fn store(&mut self, event: &SecurityEvent) {
        if let Some(tid) = &event.trace_id {
            self.trace_index
                .entry(tid.clone())
                .or_default()
                .push(self.events.len());
        }
        self.events.push(event.clone());
        self.events_ingested += 1;
    }
}

/// The SIEM service (runs in SEC).
pub struct Siem {
    clock: SimClock,
    /// Detection thresholds.
    pub config: DetectionConfig,
    state: RwLock<SiemState>,
    /// External 24/7 monitor (NCC-style) notification hook.
    external_monitor: RwLock<Vec<AlertSink>>,
    /// Per-event observers run at batch-drain time.
    taps: RwLock<Vec<IngestTap>>,
    ingest_tx: channel::Sender<SecurityEvent>,
    ingest_rx: channel::Receiver<SecurityEvent>,
    ids: IdGen,
}

impl Siem {
    /// Create a SIEM with the given detection thresholds.
    pub fn new(clock: SimClock, config: DetectionConfig) -> Siem {
        let (ingest_tx, ingest_rx) = channel::bounded(INGEST_QUEUE_CAP);
        Siem {
            clock,
            config,
            state: RwLock::new(SiemState::default()),
            external_monitor: RwLock::new(Vec::new()),
            taps: RwLock::new(Vec::new()),
            ingest_tx,
            ingest_rx,
            ids: IdGen::new("alert"),
        }
    }

    /// Register the external monitoring service callback.
    pub fn register_external_monitor(&self, callback: AlertSink) {
        self.external_monitor.write().push(callback);
    }

    /// Register a per-event observer invoked at batch-drain time (e.g.
    /// the rate-anomaly detector).
    pub fn register_tap(&self, tap: IngestTap) {
        self.taps.write().push(tap);
    }

    /// Fire-and-forget ingestion: queue the event on the bounded channel
    /// and return immediately — no detection work, no state lock. If the
    /// queue is full, the caller drains a batch itself (backpressure by
    /// work stealing) and retries; events are never dropped.
    pub fn enqueue(&self, event: SecurityEvent) {
        let mut event = event;
        loop {
            match self.ingest_tx.try_send(event) {
                Ok(()) => return,
                Err(TrySendError::Full(back)) => {
                    self.flush();
                    event = back;
                }
                Err(TrySendError::Disconnected(back)) => {
                    // The receiver lives as long as the SIEM; process
                    // inline if it is somehow gone.
                    self.process_batch(vec![back]);
                    return;
                }
            }
        }
    }

    /// Drain everything queued and run detection, merging the batch into
    /// state under a single lock acquisition. Returns alerts raised by
    /// the drained events.
    pub fn flush(&self) -> Vec<Alert> {
        let mut batch: Vec<SecurityEvent> = self.ingest_rx.try_iter().collect();
        if batch.is_empty() {
            return Vec::new();
        }
        // Merge concurrent producers into timeline order; the sort is
        // stable, so same-timestamp events keep their queue order.
        batch.sort_by_key(|e| e.at_ms);
        self.process_batch(batch)
    }

    /// Number of events waiting in the ingest queue.
    pub fn pending(&self) -> usize {
        self.ingest_rx.len()
    }

    /// Ingest a batch of events synchronously, running detection on
    /// each. Queued events are drained first so the timeline stays in
    /// order; the returned alerts are those raised by `events`.
    pub fn ingest(&self, events: Vec<SecurityEvent>) -> Vec<Alert> {
        self.flush();
        self.process_batch(events)
    }

    fn process_batch(&self, events: Vec<SecurityEvent>) -> Vec<Alert> {
        if events.is_empty() {
            return Vec::new();
        }
        let mut new_alerts = Vec::new();
        {
            // One lock acquisition for the whole batch.
            let mut state = self.state.write();
            for event in &events {
                if let Some(alert) = self.process(&mut state, event) {
                    new_alerts.push(alert);
                }
            }
        }
        {
            let taps = self.taps.read();
            if !taps.is_empty() {
                for event in &events {
                    for tap in taps.iter() {
                        tap(event);
                    }
                }
            }
        }
        if !new_alerts.is_empty() {
            let monitors = self.external_monitor.read();
            for alert in &new_alerts {
                for m in monitors.iter() {
                    m(alert);
                }
            }
        }
        new_alerts
    }

    fn process(&self, state: &mut SiemState, event: &SecurityEvent) -> Option<Alert> {
        let (rule, key, threshold, window_ms, severity, recommendation): (
            &'static str,
            String,
            usize,
            u64,
            Severity,
            &'static str,
        ) = match event.kind {
            EventKind::AuthnFailure => (
                "credential-stuffing",
                event.subject.clone(),
                self.config.authn_failure_threshold,
                self.config.authn_window_ms,
                Severity::High,
                "suspend-subject",
            ),
            EventKind::TokenRejected => (
                "token-abuse",
                event.subject.clone(),
                self.config.token_reject_threshold,
                self.config.token_window_ms,
                Severity::High,
                "revoke-subject",
            ),
            EventKind::ConnDenied if !event.source.starts_with("internet") => (
                "lateral-movement",
                event.source.clone(),
                self.config.lateral_threshold,
                self.config.lateral_window_ms,
                Severity::Critical,
                "isolate-host",
            ),
            EventKind::ExpiredCredentialUse => (
                "expired-credential-replay",
                event.subject.clone(),
                self.config.expired_cred_threshold,
                self.config.expired_window_ms,
                Severity::Warning,
                "notify-user",
            ),
            // Trace-shape finding: a single PDP bypass is already an
            // incident — no windowed accumulation needed.
            EventKind::PdpBypass => (
                "pdp-bypass",
                event.subject.clone(),
                1,
                60_000,
                Severity::Critical,
                "revoke-subject",
            ),
            _ => {
                state.store(event);
                return None;
            }
        };

        state.store(event);

        let win = state.windows.entry((rule, key.clone())).or_default();
        while win
            .front()
            .is_some_and(|t| event.at_ms.saturating_sub(*t) > window_ms)
        {
            win.pop_front();
        }
        win.push_back(event.at_ms);
        let evidence = win.len();
        if evidence < threshold {
            return None;
        }
        // Deduplicate: one alert per (rule, subject) per window.
        if let Some(last) = state.alerted.get(&(rule, key.clone())) {
            if event.at_ms.saturating_sub(*last) <= window_ms {
                return None;
            }
        }
        state.alerted.insert((rule, key.clone()), event.at_ms);
        let alert = Alert {
            id: self.ids.next(),
            at_ms: self.clock.now_ms(),
            rule,
            subject: key,
            severity,
            evidence,
            recommendation,
        };
        state.alerts.push(alert.clone());
        Some(alert)
    }

    /// All alerts so far (drains any queued events first).
    pub fn alerts(&self) -> Vec<Alert> {
        self.flush();
        self.state.read().alerts.clone()
    }

    /// Total events ingested (drains any queued events first).
    pub fn events_ingested(&self) -> u64 {
        self.flush();
        self.state.read().events_ingested
    }

    /// Events matching a kind (forensics queries; drains the queue
    /// first).
    pub fn events_of_kind(&self, kind: EventKind) -> Vec<SecurityEvent> {
        self.flush();
        self.state
            .read()
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Count of stored events (drains the queue first).
    pub fn event_count(&self) -> usize {
        self.flush();
        self.state.read().events.len()
    }

    /// Every stored event correlated to `trace_id`, in ingest order —
    /// an index lookup (O(events-of-this-trace)), not a scan of the
    /// whole store. This is how `respond_to_alert` pulls the full
    /// originating flow. Drains the queue first.
    pub fn events_for_trace(&self, trace_id: &str) -> Vec<SecurityEvent> {
        self.flush();
        let state = self.state.read();
        match state.trace_index.get(trace_id) {
            Some(indices) => indices.iter().map(|&i| state.events[i].clone()).collect(),
            None => Vec::new(),
        }
    }

    /// Number of distinct trace ids in the correlation index.
    pub fn indexed_trace_count(&self) -> usize {
        self.flush();
        self.state.read().trace_index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn siem() -> (Siem, SimClock) {
        let clock = SimClock::new();
        (Siem::new(clock.clone(), DetectionConfig::default()), clock)
    }

    fn failure(at_ms: u64, subject: &str) -> SecurityEvent {
        SecurityEvent::new(
            at_ms,
            "fds/broker",
            EventKind::AuthnFailure,
            subject,
            "bad password",
            Severity::Warning,
        )
    }

    #[test]
    fn credential_stuffing_detected_at_threshold() {
        let (siem, clock) = siem();
        for i in 0..4 {
            clock.advance(100);
            assert!(
                siem.ingest(vec![failure(clock.now_ms(), "maid-1")])
                    .is_empty(),
                "{i}"
            );
        }
        clock.advance(100);
        let alerts = siem.ingest(vec![failure(clock.now_ms(), "maid-1")]);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "credential-stuffing");
        assert_eq!(alerts[0].subject, "maid-1");
        assert_eq!(alerts[0].evidence, 5);
        assert_eq!(alerts[0].recommendation, "suspend-subject");
    }

    #[test]
    fn failures_outside_window_do_not_accumulate() {
        let (siem, clock) = siem();
        for _ in 0..10 {
            clock.advance(61_000); // each failure falls outside the window
            assert!(siem
                .ingest(vec![failure(clock.now_ms(), "maid-1")])
                .is_empty());
        }
        assert!(siem.alerts().is_empty());
    }

    #[test]
    fn different_subjects_tracked_separately() {
        let (siem, clock) = siem();
        for i in 0..4 {
            clock.advance(10);
            siem.ingest(vec![failure(clock.now_ms(), &format!("user-{i}"))]);
        }
        assert!(siem.alerts().is_empty());
    }

    #[test]
    fn duplicate_alerts_suppressed_within_window() {
        let (siem, clock) = siem();
        let mut alerts = 0;
        for _ in 0..20 {
            clock.advance(100);
            alerts += siem.ingest(vec![failure(clock.now_ms(), "maid-1")]).len();
        }
        assert_eq!(alerts, 1, "one alert per window, not one per event");
    }

    #[test]
    fn lateral_movement_from_internal_host() {
        let (siem, clock) = siem();
        let denied = |at| {
            SecurityEvent::new(
                at,
                "mdc/login01",
                EventKind::ConnDenied,
                "",
                "tried mdc/mgmt01",
                Severity::Warning,
            )
        };
        clock.advance(10);
        siem.ingest(vec![denied(clock.now_ms())]);
        clock.advance(10);
        siem.ingest(vec![denied(clock.now_ms())]);
        clock.advance(10);
        let alerts = siem.ingest(vec![denied(clock.now_ms())]);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "lateral-movement");
        assert_eq!(alerts[0].severity, Severity::Critical);
        assert_eq!(alerts[0].recommendation, "isolate-host");
    }

    #[test]
    fn internet_denials_are_not_lateral_movement() {
        let (siem, clock) = siem();
        for _ in 0..10 {
            clock.advance(10);
            siem.ingest(vec![SecurityEvent::new(
                clock.now_ms(),
                "internet/203.0.113.9",
                EventKind::ConnDenied,
                "",
                "scan",
                Severity::Info,
            )]);
        }
        assert!(siem.alerts().is_empty());
    }

    #[test]
    fn external_monitor_notified() {
        let (siem, clock) = siem();
        let notified = Arc::new(AtomicUsize::new(0));
        let n2 = notified.clone();
        siem.register_external_monitor(Box::new(move |_alert| {
            n2.fetch_add(1, Ordering::Relaxed);
        }));
        for _ in 0..5 {
            clock.advance(10);
            siem.ingest(vec![failure(clock.now_ms(), "maid-1")]);
        }
        assert_eq!(notified.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn info_events_stored_but_not_alerting() {
        let (siem, clock) = siem();
        clock.advance(5);
        siem.ingest(vec![SecurityEvent::new(
            clock.now_ms(),
            "fds/broker",
            EventKind::TokenIssued,
            "maid-1",
            "aud=ssh-ca",
            Severity::Info,
        )]);
        assert_eq!(siem.event_count(), 1);
        assert!(siem.alerts().is_empty());
        assert_eq!(siem.events_of_kind(EventKind::TokenIssued).len(), 1);
    }

    #[test]
    fn token_abuse_detected() {
        let (siem, clock) = siem();
        for _ in 0..5 {
            clock.advance(10);
            siem.ingest(vec![SecurityEvent::new(
                clock.now_ms(),
                "mdc/login01",
                EventKind::TokenRejected,
                "maid-1",
                "bad signature",
                Severity::Warning,
            )]);
        }
        let alerts = siem.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "token-abuse");
        assert_eq!(alerts[0].recommendation, "revoke-subject");
    }

    #[test]
    fn enqueue_is_deferred_until_flush_or_read() {
        let (siem, clock) = siem();
        for _ in 0..5 {
            clock.advance(10);
            siem.enqueue(failure(clock.now_ms(), "maid-1"));
        }
        assert_eq!(siem.pending(), 5);
        // Any accessor drains the queue and runs detection.
        let alerts = siem.alerts();
        assert_eq!(siem.pending(), 0);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "credential-stuffing");
        assert_eq!(siem.events_ingested(), 5);
    }

    #[test]
    fn flush_merges_concurrent_producers_in_timeline_order() {
        let (siem, clock) = siem();
        clock.advance(1_000);
        let at = clock.now_ms();
        crossbeam::thread::scope(|scope| {
            for t in 0..4 {
                let siem = &siem;
                scope.spawn(move |_| {
                    for i in 0..50 {
                        siem.enqueue(SecurityEvent::new(
                            at + i,
                            "fds/broker",
                            EventKind::TokenIssued,
                            format!("maid-{t}"),
                            "aud=ssh-ca",
                            Severity::Info,
                        ));
                    }
                });
            }
        })
        .expect("producer threads");
        assert_eq!(siem.events_ingested(), 200);
        let events = siem.events_of_kind(EventKind::TokenIssued);
        assert!(events.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
    }

    #[test]
    fn full_queue_applies_backpressure_without_losing_events() {
        let (siem, clock) = siem();
        clock.advance(10);
        let at = clock.now_ms();
        for _ in 0..(super::INGEST_QUEUE_CAP + 100) {
            siem.enqueue(SecurityEvent::new(
                at,
                "fds/broker",
                EventKind::TokenIssued,
                "maid-1",
                "aud=ssh-ca",
                Severity::Info,
            ));
        }
        assert_eq!(
            siem.events_ingested(),
            (super::INGEST_QUEUE_CAP + 100) as u64
        );
    }

    #[test]
    fn trace_index_joins_events_without_a_scan() {
        let (siem, clock) = siem();
        clock.advance(10);
        let at = clock.now_ms();
        // Two flows interleaved, plus an uncorrelated event.
        for i in 0..3u64 {
            siem.enqueue(failure(at + i, "maid-1").with_trace_id(Some("aaaa0001".into())));
            siem.enqueue(failure(at + i, "maid-2").with_trace_id(Some("bbbb0002".into())));
        }
        siem.enqueue(failure(at + 9, "maid-3"));
        let flow_a = siem.events_for_trace("aaaa0001");
        assert_eq!(flow_a.len(), 3);
        assert!(flow_a.iter().all(|e| e.subject == "maid-1"));
        assert!(flow_a.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert_eq!(siem.events_for_trace("bbbb0002").len(), 3);
        assert!(siem.events_for_trace("none").is_empty());
        assert_eq!(siem.indexed_trace_count(), 2);
    }

    #[test]
    fn tap_sees_every_drained_event() {
        let (siem, clock) = siem();
        let seen = Arc::new(AtomicUsize::new(0));
        let s2 = seen.clone();
        siem.register_tap(Box::new(move |_event| {
            s2.fetch_add(1, Ordering::Relaxed);
        }));
        for _ in 0..7 {
            clock.advance(10);
            siem.enqueue(failure(clock.now_ms(), "maid-1"));
        }
        siem.ingest(vec![failure(clock.now_ms(), "maid-2")]);
        assert_eq!(seen.load(Ordering::Relaxed), 8);
    }
}
