//! The SIEM: ingestion, windowed detection rules, alerting and
//! kill-switch recommendations.

use std::collections::{HashMap, VecDeque};

use dri_clock::{IdGen, SimClock};
use parking_lot::RwLock;

use crate::events::{EventKind, SecurityEvent, Severity};

/// Callback notified for every raised alert (the external 24/7 monitor).
pub type AlertSink = Box<dyn Fn(&Alert) + Send + Sync>;

/// Detection thresholds (all sliding windows in milliseconds).
#[derive(Debug, Clone)]
pub struct DetectionConfig {
    /// Failed authentications per subject before a credential-stuffing
    /// alert.
    pub authn_failure_threshold: usize,
    /// Window for authentication failures.
    pub authn_window_ms: u64,
    /// Token rejections per subject before a token-abuse alert.
    pub token_reject_threshold: usize,
    /// Window for token rejections.
    pub token_window_ms: u64,
    /// Denied connections from one internal source before a
    /// lateral-movement alert.
    pub lateral_threshold: usize,
    /// Window for denied connections.
    pub lateral_window_ms: u64,
    /// Expired-credential uses per subject before an alert.
    pub expired_cred_threshold: usize,
    /// Window for expired-credential uses.
    pub expired_window_ms: u64,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            authn_failure_threshold: 5,
            authn_window_ms: 60_000,
            token_reject_threshold: 5,
            token_window_ms: 60_000,
            lateral_threshold: 3,
            lateral_window_ms: 60_000,
            expired_cred_threshold: 3,
            expired_window_ms: 300_000,
        }
    }
}

/// A raised alert.
#[derive(Debug, Clone)]
pub struct Alert {
    /// Alert id.
    pub id: String,
    /// When raised (ms).
    pub at_ms: u64,
    /// Which rule fired.
    pub rule: &'static str,
    /// Offending subject / source.
    pub subject: String,
    /// Severity.
    pub severity: Severity,
    /// Evidence events counted in the window.
    pub evidence: usize,
    /// Recommended response (`revoke-subject`, `isolate-host`, …).
    pub recommendation: &'static str,
}

#[derive(Default)]
struct SiemState {
    events: Vec<SecurityEvent>,
    alerts: Vec<Alert>,
    /// Per (rule, subject) sliding windows of event timestamps.
    windows: HashMap<(&'static str, String), VecDeque<u64>>,
    /// Per (rule, subject): suppress duplicate alerts until window rolls.
    alerted: HashMap<(&'static str, String), u64>,
    events_ingested: u64,
}

/// The SIEM service (runs in SEC).
pub struct Siem {
    clock: SimClock,
    /// Detection thresholds.
    pub config: DetectionConfig,
    state: RwLock<SiemState>,
    /// External 24/7 monitor (NCC-style) notification hook.
    external_monitor: RwLock<Vec<AlertSink>>,
    ids: IdGen,
}

impl Siem {
    /// Create a SIEM with the given detection thresholds.
    pub fn new(clock: SimClock, config: DetectionConfig) -> Siem {
        Siem {
            clock,
            config,
            state: RwLock::new(SiemState::default()),
            external_monitor: RwLock::new(Vec::new()),
            ids: IdGen::new("alert"),
        }
    }

    /// Register the external monitoring service callback.
    pub fn register_external_monitor(&self, callback: AlertSink) {
        self.external_monitor.write().push(callback);
    }

    /// Ingest a batch of events, running detection on each.
    pub fn ingest(&self, events: Vec<SecurityEvent>) -> Vec<Alert> {
        let mut new_alerts = Vec::new();
        for event in events {
            if let Some(alert) = self.process(&event) {
                new_alerts.push(alert);
            }
        }
        if !new_alerts.is_empty() {
            let monitors = self.external_monitor.read();
            for alert in &new_alerts {
                for m in monitors.iter() {
                    m(alert);
                }
            }
        }
        new_alerts
    }

    fn process(&self, event: &SecurityEvent) -> Option<Alert> {
        let (rule, key, threshold, window_ms, severity, recommendation): (
            &'static str,
            String,
            usize,
            u64,
            Severity,
            &'static str,
        ) = match event.kind {
            EventKind::AuthnFailure => (
                "credential-stuffing",
                event.subject.clone(),
                self.config.authn_failure_threshold,
                self.config.authn_window_ms,
                Severity::High,
                "suspend-subject",
            ),
            EventKind::TokenRejected => (
                "token-abuse",
                event.subject.clone(),
                self.config.token_reject_threshold,
                self.config.token_window_ms,
                Severity::High,
                "revoke-subject",
            ),
            EventKind::ConnDenied if !event.source.starts_with("internet") => (
                "lateral-movement",
                event.source.clone(),
                self.config.lateral_threshold,
                self.config.lateral_window_ms,
                Severity::Critical,
                "isolate-host",
            ),
            EventKind::ExpiredCredentialUse => (
                "expired-credential-replay",
                event.subject.clone(),
                self.config.expired_cred_threshold,
                self.config.expired_window_ms,
                Severity::Warning,
                "notify-user",
            ),
            _ => {
                self.record(event.clone());
                return None;
            }
        };

        let mut state = self.state.write();
        state.events.push(event.clone());
        state.events_ingested += 1;

        let win = state
            .windows
            .entry((rule, key.clone()))
            .or_default();
        while win
            .front()
            .is_some_and(|t| event.at_ms.saturating_sub(*t) > window_ms)
        {
            win.pop_front();
        }
        win.push_back(event.at_ms);
        let evidence = win.len();
        if evidence < threshold {
            return None;
        }
        // Deduplicate: one alert per (rule, subject) per window.
        if let Some(last) = state.alerted.get(&(rule, key.clone())) {
            if event.at_ms.saturating_sub(*last) <= window_ms {
                return None;
            }
        }
        state.alerted.insert((rule, key.clone()), event.at_ms);
        let alert = Alert {
            id: self.ids.next(),
            at_ms: self.clock.now_ms(),
            rule,
            subject: key,
            severity,
            evidence,
            recommendation,
        };
        state.alerts.push(alert.clone());
        Some(alert)
    }

    fn record(&self, event: SecurityEvent) {
        let mut state = self.state.write();
        state.events.push(event);
        state.events_ingested += 1;
    }

    /// All alerts so far.
    pub fn alerts(&self) -> Vec<Alert> {
        self.state.read().alerts.clone()
    }

    /// Total events ingested.
    pub fn events_ingested(&self) -> u64 {
        self.state.read().events_ingested
    }

    /// Events matching a kind (forensics queries).
    pub fn events_of_kind(&self, kind: EventKind) -> Vec<SecurityEvent> {
        self.state
            .read()
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Count of stored events.
    pub fn event_count(&self) -> usize {
        self.state.read().events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn siem() -> (Siem, SimClock) {
        let clock = SimClock::new();
        (Siem::new(clock.clone(), DetectionConfig::default()), clock)
    }

    fn failure(at_ms: u64, subject: &str) -> SecurityEvent {
        SecurityEvent::new(
            at_ms,
            "fds/broker",
            EventKind::AuthnFailure,
            subject,
            "bad password",
            Severity::Warning,
        )
    }

    #[test]
    fn credential_stuffing_detected_at_threshold() {
        let (siem, clock) = siem();
        for i in 0..4 {
            clock.advance(100);
            assert!(siem.ingest(vec![failure(clock.now_ms(), "maid-1")]).is_empty(), "{i}");
        }
        clock.advance(100);
        let alerts = siem.ingest(vec![failure(clock.now_ms(), "maid-1")]);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "credential-stuffing");
        assert_eq!(alerts[0].subject, "maid-1");
        assert_eq!(alerts[0].evidence, 5);
        assert_eq!(alerts[0].recommendation, "suspend-subject");
    }

    #[test]
    fn failures_outside_window_do_not_accumulate() {
        let (siem, clock) = siem();
        for _ in 0..10 {
            clock.advance(61_000); // each failure falls outside the window
            assert!(siem.ingest(vec![failure(clock.now_ms(), "maid-1")]).is_empty());
        }
        assert!(siem.alerts().is_empty());
    }

    #[test]
    fn different_subjects_tracked_separately() {
        let (siem, clock) = siem();
        for i in 0..4 {
            clock.advance(10);
            siem.ingest(vec![failure(clock.now_ms(), &format!("user-{i}"))]);
        }
        assert!(siem.alerts().is_empty());
    }

    #[test]
    fn duplicate_alerts_suppressed_within_window() {
        let (siem, clock) = siem();
        let mut alerts = 0;
        for _ in 0..20 {
            clock.advance(100);
            alerts += siem.ingest(vec![failure(clock.now_ms(), "maid-1")]).len();
        }
        assert_eq!(alerts, 1, "one alert per window, not one per event");
    }

    #[test]
    fn lateral_movement_from_internal_host() {
        let (siem, clock) = siem();
        let denied = |at| {
            SecurityEvent::new(
                at,
                "mdc/login01",
                EventKind::ConnDenied,
                "",
                "tried mdc/mgmt01",
                Severity::Warning,
            )
        };
        clock.advance(10);
        siem.ingest(vec![denied(clock.now_ms())]);
        clock.advance(10);
        siem.ingest(vec![denied(clock.now_ms())]);
        clock.advance(10);
        let alerts = siem.ingest(vec![denied(clock.now_ms())]);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "lateral-movement");
        assert_eq!(alerts[0].severity, Severity::Critical);
        assert_eq!(alerts[0].recommendation, "isolate-host");
    }

    #[test]
    fn internet_denials_are_not_lateral_movement() {
        let (siem, clock) = siem();
        for _ in 0..10 {
            clock.advance(10);
            siem.ingest(vec![SecurityEvent::new(
                clock.now_ms(),
                "internet/203.0.113.9",
                EventKind::ConnDenied,
                "",
                "scan",
                Severity::Info,
            )]);
        }
        assert!(siem.alerts().is_empty());
    }

    #[test]
    fn external_monitor_notified() {
        let (siem, clock) = siem();
        let notified = Arc::new(AtomicUsize::new(0));
        let n2 = notified.clone();
        siem.register_external_monitor(Box::new(move |_alert| {
            n2.fetch_add(1, Ordering::Relaxed);
        }));
        for _ in 0..5 {
            clock.advance(10);
            siem.ingest(vec![failure(clock.now_ms(), "maid-1")]);
        }
        assert_eq!(notified.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn info_events_stored_but_not_alerting() {
        let (siem, clock) = siem();
        clock.advance(5);
        siem.ingest(vec![SecurityEvent::new(
            clock.now_ms(),
            "fds/broker",
            EventKind::TokenIssued,
            "maid-1",
            "aud=ssh-ca",
            Severity::Info,
        )]);
        assert_eq!(siem.event_count(), 1);
        assert!(siem.alerts().is_empty());
        assert_eq!(siem.events_of_kind(EventKind::TokenIssued).len(), 1);
    }

    #[test]
    fn token_abuse_detected() {
        let (siem, clock) = siem();
        for _ in 0..5 {
            clock.advance(10);
            siem.ingest(vec![SecurityEvent::new(
                clock.now_ms(),
                "mdc/login01",
                EventKind::TokenRejected,
                "maid-1",
                "bad signature",
                Severity::Warning,
            )]);
        }
        let alerts = siem.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "token-abuse");
        assert_eq!(alerts[0].recommendation, "revoke-subject");
    }
}
