//! Trace-shape detection rules: findings over the span tree itself
//! rather than over event kinds or rates.
//!
//! The first rule closes the ROADMAP item "SIEM detection rules keyed
//! on trace shape": any flow whose `sshca`-stage span has **no
//! preceding `policy`-stage span** reached the certificate authority
//! without a PDP evaluation — a policy-enforcement bypass. "Preceding"
//! is judged on the deterministic per-trace logical step counter
//! (`start_step`), so the audit yields identical findings however the
//! flows were scheduled across worker threads.

use std::collections::BTreeMap;

use dri_trace::{SpanRecord, Stage};

use crate::events::{EventKind, SecurityEvent, Severity};

/// One PDP-bypass finding: a trace that reached the SSH CA without a
/// prior policy evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdpBypassFinding {
    /// Hex trace id of the offending flow.
    pub trace_id: String,
    /// Name of the first `sshca`-stage span with no preceding `policy`
    /// span (e.g. `sshca.sign`).
    pub span_name: String,
    /// Logical step at which the unvetted CA hop started.
    pub start_step: u64,
    /// Simulated time (ms) the hop started.
    pub at_ms: u64,
}

/// Scan a span set for flows whose `sshca` span has no preceding
/// `policy` span. At most one finding is reported per trace, and the
/// findings come back sorted by trace id so repeated audits over the
/// same spans are byte-stable.
pub fn find_pdp_bypasses(spans: &[SpanRecord]) -> Vec<PdpBypassFinding> {
    // Per trace: earliest sshca span and earliest policy start step.
    let mut by_trace: BTreeMap<String, (Option<&SpanRecord>, Option<u64>)> = BTreeMap::new();
    for span in spans {
        let entry = by_trace.entry(span.trace_id.to_hex()).or_default();
        match span.stage {
            Stage::SshCa if entry.0.is_none_or(|s| span.start_step < s.start_step) => {
                entry.0 = Some(span);
            }
            Stage::Policy if entry.1.is_none_or(|step| span.start_step < step) => {
                entry.1 = Some(span.start_step);
            }
            _ => {}
        }
    }
    by_trace
        .into_iter()
        .filter_map(|(trace_id, (sshca, policy_step))| {
            let sshca = sshca?;
            let vetted = policy_step.is_some_and(|step| step < sshca.start_step);
            (!vetted).then(|| PdpBypassFinding {
                trace_id,
                span_name: sshca.name.clone(),
                start_step: sshca.start_step,
                at_ms: sshca.start_ms,
            })
        })
        .collect()
}

/// Render findings as [`EventKind::PdpBypass`] events (one per trace,
/// citing the trace id) ready for [`crate::Siem::ingest`]. The SIEM's
/// `pdp-bypass` rule alerts on the first one.
pub fn pdp_bypass_events(findings: &[PdpBypassFinding], source: &str) -> Vec<SecurityEvent> {
    findings
        .iter()
        .map(|f| {
            SecurityEvent::new(
                f.at_ms,
                source,
                EventKind::PdpBypass,
                f.trace_id.clone(),
                format!(
                    "{} at step {} with no preceding policy evaluation (trace {})",
                    f.span_name, f.start_step, f.trace_id
                ),
                Severity::Critical,
            )
            .with_trace_id(Some(f.trace_id.clone()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dri_trace::Tracer;
    use std::sync::Arc;

    /// Record one flow with the given (name, stage) hops, in order.
    fn record_flow(tracer: &Arc<Tracer>, key: &str, hops: &[(&'static str, Stage)]) -> String {
        let flow = dri_trace::flow(tracer, key, "login", Stage::Flow);
        let trace_id = dri_trace::current_trace_id().expect("flow active");
        for (name, stage) in hops {
            let _s = dri_trace::span(name, *stage);
        }
        drop(flow);
        trace_id
    }

    fn tracer() -> Arc<Tracer> {
        let t = Arc::new(Tracer::new(7, 4, dri_clock::SimClock::new()));
        t.set_enabled(true);
        t
    }

    #[test]
    fn vetted_flow_is_clean() {
        let t = tracer();
        record_flow(
            &t,
            "alice",
            &[
                ("policy.decide", Stage::Policy),
                ("sshca.sign", Stage::SshCa),
            ],
        );
        assert!(find_pdp_bypasses(&t.all_spans()).is_empty());
    }

    #[test]
    fn sshca_without_policy_is_flagged_once_per_trace() {
        let t = tracer();
        let bad = record_flow(
            &t,
            "mallory",
            &[("sshca.sign", Stage::SshCa), ("sshca.sign", Stage::SshCa)],
        );
        record_flow(
            &t,
            "alice",
            &[
                ("policy.decide", Stage::Policy),
                ("sshca.sign", Stage::SshCa),
            ],
        );
        let findings = find_pdp_bypasses(&t.all_spans());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].trace_id, bad);
        assert_eq!(findings[0].span_name, "sshca.sign");
    }

    #[test]
    fn policy_after_the_ca_hop_does_not_count() {
        let t = tracer();
        let bad = record_flow(
            &t,
            "mallory",
            &[
                ("sshca.sign", Stage::SshCa),
                ("policy.decide", Stage::Policy),
            ],
        );
        let findings = find_pdp_bypasses(&t.all_spans());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].trace_id, bad);
    }

    #[test]
    fn flows_without_sshca_are_ignored() {
        let t = tracer();
        record_flow(&t, "alice", &[("broker.issue", Stage::Broker)]);
        assert!(find_pdp_bypasses(&t.all_spans()).is_empty());
    }

    #[test]
    fn events_cite_the_trace_id_and_alert_immediately() {
        let t = tracer();
        let bad = record_flow(&t, "mallory", &[("sshca.sign", Stage::SshCa)]);
        let findings = find_pdp_bypasses(&t.all_spans());
        let events = pdp_bypass_events(&findings, "sec/siem");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::PdpBypass);
        assert_eq!(events[0].trace_id.as_deref(), Some(bad.as_str()));
        assert!(events[0].detail.contains(&bad));

        let siem = crate::Siem::new(dri_clock::SimClock::new(), Default::default());
        let alerts = siem.ingest(events);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "pdp-bypass");
        assert_eq!(alerts[0].severity, Severity::Critical);
        // The SOC can join back to the offending flow via the index.
        assert_eq!(siem.events_for_trace(&bad).len(), 1);
    }
}
