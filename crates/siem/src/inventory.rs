//! Asset & software inventory with vulnerability matching (SOC task 2).

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::events::Severity;

/// A known vulnerability in the feed.
#[derive(Debug, Clone)]
pub struct Vulnerability {
    /// Identifier (`CVE-2024-XXXX`-style).
    pub id: String,
    /// Affected software name.
    pub software: String,
    /// Versions strictly below this are vulnerable.
    pub fixed_in: Version,
    /// Severity.
    pub severity: Severity,
}

/// Semantic-ish version triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Version(pub u32, pub u32, pub u32);

impl Version {
    /// Parse `a.b.c` (missing components default to 0).
    pub fn parse(s: &str) -> Option<Version> {
        let mut it = s.split('.');
        let a = it.next()?.parse().ok()?;
        let b = it.next().unwrap_or("0").parse().ok()?;
        let c = it.next().unwrap_or("0").parse().ok()?;
        Some(Version(a, b, c))
    }
}

impl std::fmt::Display for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}.{}", self.0, self.1, self.2)
    }
}

/// A vulnerability hit on a specific asset.
#[derive(Debug, Clone)]
pub struct VulnFinding {
    /// The asset (host id).
    pub host: String,
    /// Software name.
    pub software: String,
    /// Installed version.
    pub installed: Version,
    /// The matched vulnerability.
    pub vuln_id: String,
    /// Severity.
    pub severity: Severity,
}

#[derive(Default)]
struct InventoryState {
    /// host -> software name -> version
    assets: HashMap<String, HashMap<String, Version>>,
    feed: Vec<Vulnerability>,
}

/// The inventory service.
#[derive(Default)]
pub struct Inventory {
    state: RwLock<InventoryState>,
}

impl Inventory {
    /// Empty inventory.
    pub fn new() -> Inventory {
        Inventory::default()
    }

    /// Record (or update) software installed on a host.
    pub fn record(&self, host: &str, software: &str, version: Version) {
        self.state
            .write()
            .assets
            .entry(host.to_string())
            .or_default()
            .insert(software.to_string(), version);
    }

    /// Load a vulnerability into the feed.
    pub fn add_vulnerability(&self, vuln: Vulnerability) {
        self.state.write().feed.push(vuln);
    }

    /// Scan every asset against the feed.
    pub fn scan(&self) -> Vec<VulnFinding> {
        let state = self.state.read();
        let mut findings = Vec::new();
        for (host, software_map) in &state.assets {
            for (software, version) in software_map {
                for vuln in &state.feed {
                    if vuln.software == *software && *version < vuln.fixed_in {
                        findings.push(VulnFinding {
                            host: host.clone(),
                            software: software.clone(),
                            installed: *version,
                            vuln_id: vuln.id.clone(),
                            severity: vuln.severity,
                        });
                    }
                }
            }
        }
        findings.sort_by(|a, b| (&a.host, &a.vuln_id).cmp(&(&b.host, &b.vuln_id)));
        findings
    }

    /// Number of tracked assets.
    pub fn asset_count(&self) -> usize {
        self.state.read().assets.len()
    }

    /// Number of feed entries.
    pub fn feed_size(&self) -> usize {
        self.state.read().feed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_parse_and_order() {
        assert_eq!(Version::parse("1.2.3"), Some(Version(1, 2, 3)));
        assert_eq!(Version::parse("9"), Some(Version(9, 0, 0)));
        assert_eq!(Version::parse("9.1"), Some(Version(9, 1, 0)));
        assert_eq!(Version::parse("x"), None);
        assert!(Version(9, 3, 0) < Version(9, 10, 0));
        assert!(Version(10, 0, 0) > Version(9, 99, 99));
    }

    #[test]
    fn scan_flags_only_vulnerable_versions() {
        let inv = Inventory::new();
        inv.record("sws/bastion-1", "openssh", Version(9, 3, 0));
        inv.record("sws/bastion-2", "openssh", Version(9, 8, 0));
        inv.record("mdc/login01", "slurm", Version(23, 11, 0));
        inv.add_vulnerability(Vulnerability {
            id: "CVE-2024-6387".into(),
            software: "openssh".into(),
            fixed_in: Version(9, 8, 0),
            severity: Severity::Critical,
        });
        let findings = inv.scan();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].host, "sws/bastion-1");
        assert_eq!(findings[0].vuln_id, "CVE-2024-6387");
        // Patch the host; scan comes back clean.
        inv.record("sws/bastion-1", "openssh", Version(9, 8, 0));
        assert!(inv.scan().is_empty());
    }

    #[test]
    fn counts() {
        let inv = Inventory::new();
        inv.record("a", "x", Version(1, 0, 0));
        inv.record("a", "y", Version(1, 0, 0));
        inv.record("b", "x", Version(1, 0, 0));
        assert_eq!(inv.asset_count(), 2);
        assert_eq!(inv.feed_size(), 0);
    }

    #[test]
    fn multiple_vulns_same_host_sorted() {
        let inv = Inventory::new();
        inv.record("h", "libfoo", Version(1, 0, 0));
        inv.add_vulnerability(Vulnerability {
            id: "CVE-B".into(),
            software: "libfoo".into(),
            fixed_in: Version(2, 0, 0),
            severity: Severity::High,
        });
        inv.add_vulnerability(Vulnerability {
            id: "CVE-A".into(),
            software: "libfoo".into(),
            fixed_in: Version(1, 5, 0),
            severity: Severity::Warning,
        });
        let findings = inv.scan();
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].vuln_id, "CVE-A");
        assert_eq!(findings[1].vuln_id, "CVE-B");
    }
}
