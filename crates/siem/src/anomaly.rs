//! Statistical anomaly detection over event rates.
//!
//! Complements the windowed signature rules in [`crate::siem`]: instead
//! of matching known-bad patterns, it learns per-source event-rate
//! baselines over fixed buckets and flags buckets whose rate deviates by
//! more than `z_threshold` standard deviations — the "collect as much
//! information as possible … and use it to improve its security posture"
//! loop of tenet 7.

use std::collections::HashMap;

use parking_lot::RwLock;

/// Configuration for the rate-anomaly detector.
#[derive(Debug, Clone)]
pub struct AnomalyConfig {
    /// Bucket width (ms) the event stream is aggregated into.
    pub bucket_ms: u64,
    /// Number of history buckets forming the baseline.
    pub history: usize,
    /// Flag a bucket whose rate is more than this many standard
    /// deviations above the baseline mean.
    pub z_threshold: f64,
    /// Don't flag anything until at least this many buckets of history
    /// exist (cold start).
    pub min_history: usize,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            bucket_ms: 60_000,
            history: 30,
            z_threshold: 4.0,
            min_history: 5,
        }
    }
}

/// An anomalous rate finding.
#[derive(Debug, Clone, PartialEq)]
pub struct RateAnomaly {
    /// The source whose rate deviated.
    pub source: String,
    /// Bucket start time (ms).
    pub bucket_start_ms: u64,
    /// Events observed in the bucket.
    pub observed: u64,
    /// Baseline mean.
    pub mean: f64,
    /// Z-score of the observation.
    pub z_score: f64,
}

struct SourceHistory {
    /// Completed bucket counts, oldest first.
    buckets: Vec<u64>,
    /// Start of the bucket currently filling.
    current_start_ms: u64,
    /// Count in the current bucket.
    current_count: u64,
}

/// Per-source event-rate anomaly detector.
pub struct AnomalyDetector {
    /// Configuration.
    pub config: AnomalyConfig,
    state: RwLock<HashMap<String, SourceHistory>>,
}

impl AnomalyDetector {
    /// Create a detector.
    pub fn new(config: AnomalyConfig) -> AnomalyDetector {
        AnomalyDetector {
            config,
            state: RwLock::new(HashMap::new()),
        }
    }

    /// Record one event from `source` at `at_ms`; returns an anomaly if
    /// the *completed* bucket (when the event rolls time forward) was
    /// anomalous against the source's baseline.
    pub fn observe(&self, source: &str, at_ms: u64) -> Option<RateAnomaly> {
        let bucket_ms = self.config.bucket_ms;
        let bucket_start = (at_ms / bucket_ms) * bucket_ms;
        let mut state = self.state.write();
        let hist = state
            .entry(source.to_string())
            .or_insert_with(|| SourceHistory {
                buckets: Vec::new(),
                current_start_ms: bucket_start,
                current_count: 0,
            });

        let mut finding = None;
        if bucket_start > hist.current_start_ms {
            // The previous bucket is complete: score it, then roll.
            let observed = hist.current_count;
            if hist.buckets.len() >= self.config.min_history {
                let n = hist.buckets.len() as f64;
                let mean = hist.buckets.iter().sum::<u64>() as f64 / n;
                let var = hist
                    .buckets
                    .iter()
                    .map(|b| {
                        let d = *b as f64 - mean;
                        d * d
                    })
                    .sum::<f64>()
                    / n;
                // Floor the deviation so an all-quiet baseline can still
                // be exceeded meaningfully.
                let sd = var.sqrt().max(1.0);
                let z = (observed as f64 - mean) / sd;
                if z > self.config.z_threshold {
                    finding = Some(RateAnomaly {
                        source: source.to_string(),
                        bucket_start_ms: hist.current_start_ms,
                        observed,
                        mean,
                        z_score: z,
                    });
                }
            }
            hist.buckets.push(observed);
            let overflow = hist.buckets.len().saturating_sub(self.config.history);
            if overflow > 0 {
                hist.buckets.drain(..overflow);
            }
            // Any fully-empty buckets between count as zeros in history.
            let mut gap = hist.current_start_ms + bucket_ms;
            while gap < bucket_start && hist.buckets.len() < self.config.history {
                hist.buckets.push(0);
                gap += bucket_ms;
            }
            hist.current_start_ms = bucket_start;
            hist.current_count = 0;
        }
        hist.current_count += 1;
        finding
    }

    /// Number of sources being tracked.
    pub fn tracked_sources(&self) -> usize {
        self.state.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> AnomalyDetector {
        AnomalyDetector::new(AnomalyConfig {
            bucket_ms: 1_000,
            history: 10,
            z_threshold: 4.0,
            min_history: 3,
        })
    }

    #[test]
    fn steady_rate_never_flags() {
        let d = detector();
        let mut anomalies = 0;
        // 5 events/second for 20 seconds.
        for sec in 0..20u64 {
            for e in 0..5u64 {
                if d.observe("fds/broker", sec * 1000 + e * 100).is_some() {
                    anomalies += 1;
                }
            }
        }
        assert_eq!(anomalies, 0);
    }

    #[test]
    fn burst_is_flagged_with_context() {
        let d = detector();
        // Baseline: 5/s for 10 seconds.
        for sec in 0..10u64 {
            for e in 0..5u64 {
                d.observe("fds/broker", sec * 1000 + e * 100);
            }
        }
        // Burst: 200 events in second 10.
        let mut finding = None;
        for e in 0..200u64 {
            if let Some(f) = d.observe("fds/broker", 10_000 + e * 4) {
                finding = Some(f);
            }
        }
        // The burst bucket is scored when time rolls into second 11.
        if finding.is_none() {
            finding = d.observe("fds/broker", 11_000);
        }
        let f = finding.expect("burst flagged");
        assert_eq!(f.source, "fds/broker");
        assert_eq!(f.observed, 200);
        assert!(f.z_score > 4.0, "z = {}", f.z_score);
        assert!((f.mean - 5.0).abs() < 1.0);
    }

    #[test]
    fn cold_start_is_silent() {
        let d = detector();
        // A massive burst in the very first buckets: not enough history.
        for e in 0..500u64 {
            assert!(d.observe("new-host", e * 2).is_none());
        }
        assert!(d.observe("new-host", 1_000).is_none());
    }

    #[test]
    fn sources_are_independent() {
        let d = detector();
        for sec in 0..10u64 {
            d.observe("a", sec * 1000);
            d.observe("b", sec * 1000);
        }
        // Burst only on "a".
        for e in 0..100u64 {
            d.observe("a", 10_000 + e);
        }
        let a_flag = d.observe("a", 11_000);
        let b_flag = d.observe("b", 11_000);
        assert!(a_flag.is_some());
        assert!(b_flag.is_none());
        assert_eq!(d.tracked_sources(), 2);
    }

    #[test]
    fn history_is_bounded() {
        let d = detector();
        for sec in 0..1_000u64 {
            d.observe("x", sec * 1000);
        }
        let state = d.state.read();
        assert!(state.get("x").unwrap().buckets.len() <= d.config.history);
    }
}
