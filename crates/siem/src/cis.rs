//! Configuration assessment against a CIS-style baseline (SOC task 3).
//!
//! The snapshot captures the security-relevant configuration of the
//! deployed infrastructure; each check inspects one control. The report
//! is the compliance score the paper's future-work section (CAF baseline,
//! ISO 27001) would be assessed on.

/// A point-in-time snapshot of security-relevant configuration.
#[derive(Debug, Clone)]
pub struct ConfigSnapshot {
    /// MFA enforced for administrator identities.
    pub admin_mfa_hardware: bool,
    /// MFA (any) enforced for all interactive users.
    pub user_mfa: bool,
    /// Network fabric is default-deny.
    pub default_deny_fabric: bool,
    /// Management zone reachable only via the admin overlay.
    pub mgmt_only_via_tailnet: bool,
    /// All tokens/certificates are time-limited.
    pub credentials_time_limited: bool,
    /// Longest token TTL in seconds (checked against a ceiling).
    pub max_token_ttl_secs: u64,
    /// Logs forwarded to a separate security domain.
    pub logs_shipped_to_sec: bool,
    /// Kill switches exist for bastion/tailnet/tunnels.
    pub kill_switches_present: bool,
    /// Admin identities live in a dedicated IdP.
    pub separate_admin_idp: bool,
    /// IAM flows encrypted end-to-end.
    pub iam_encrypted: bool,
    /// Per-service RBAC (no global admin).
    pub no_global_admin: bool,
    /// HPC interconnect / parallel FS encrypted (the paper admits this is
    /// *not* yet done — expect a finding).
    pub hpc_fabric_encrypted: bool,
}

impl ConfigSnapshot {
    /// The configuration the paper describes as deployed (§III–IV):
    /// everything on except HPC-fabric encryption (named a shortcoming).
    pub fn paper_deployment() -> ConfigSnapshot {
        ConfigSnapshot {
            admin_mfa_hardware: true,
            user_mfa: true,
            default_deny_fabric: true,
            mgmt_only_via_tailnet: true,
            credentials_time_limited: true,
            max_token_ttl_secs: 8 * 3600,
            logs_shipped_to_sec: true,
            kill_switches_present: true,
            separate_admin_idp: true,
            iam_encrypted: true,
            no_global_admin: true,
            hpc_fabric_encrypted: false,
        }
    }
}

/// One configuration check.
#[derive(Debug, Clone)]
pub struct CisCheck {
    /// Check id (`DRI-01`).
    pub id: &'static str,
    /// What it verifies.
    pub description: &'static str,
    /// Whether the snapshot passes.
    pub passed: bool,
}

/// The assessment report.
#[derive(Debug, Clone)]
pub struct CisReport {
    /// All executed checks.
    pub checks: Vec<CisCheck>,
}

impl CisReport {
    /// Run the baseline against a snapshot.
    pub fn assess(snapshot: &ConfigSnapshot) -> CisReport {
        let checks = vec![
            CisCheck {
                id: "DRI-01",
                description: "hardware-key MFA for administrators",
                passed: snapshot.admin_mfa_hardware,
            },
            CisCheck {
                id: "DRI-02",
                description: "MFA for all interactive users",
                passed: snapshot.user_mfa,
            },
            CisCheck {
                id: "DRI-03",
                description: "default-deny network segmentation",
                passed: snapshot.default_deny_fabric,
            },
            CisCheck {
                id: "DRI-04",
                description: "management plane only via admin overlay",
                passed: snapshot.mgmt_only_via_tailnet,
            },
            CisCheck {
                id: "DRI-05",
                description: "all credentials time-limited",
                passed: snapshot.credentials_time_limited,
            },
            CisCheck {
                id: "DRI-06",
                description: "token TTL ceiling (≤ 24h)",
                passed: snapshot.max_token_ttl_secs <= 24 * 3600,
            },
            CisCheck {
                id: "DRI-07",
                description: "logs shipped to isolated security domain",
                passed: snapshot.logs_shipped_to_sec,
            },
            CisCheck {
                id: "DRI-08",
                description: "kill switches for access paths",
                passed: snapshot.kill_switches_present,
            },
            CisCheck {
                id: "DRI-09",
                description: "dedicated administrator IdP",
                passed: snapshot.separate_admin_idp,
            },
            CisCheck {
                id: "DRI-10",
                description: "IAM flows encrypted",
                passed: snapshot.iam_encrypted,
            },
            CisCheck {
                id: "DRI-11",
                description: "no global admin; per-service RBAC",
                passed: snapshot.no_global_admin,
            },
            CisCheck {
                id: "DRI-12",
                description: "HPC fabric / parallel FS encryption",
                passed: snapshot.hpc_fabric_encrypted,
            },
        ];
        CisReport { checks }
    }

    /// Passed / total.
    pub fn score(&self) -> (usize, usize) {
        (
            self.checks.iter().filter(|c| c.passed).count(),
            self.checks.len(),
        )
    }

    /// The failing checks.
    pub fn failures(&self) -> Vec<&CisCheck> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_deployment_scores_11_of_12() {
        let report = CisReport::assess(&ConfigSnapshot::paper_deployment());
        assert_eq!(report.score(), (11, 12));
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        // The one admitted shortcoming: HPC fabric encryption.
        assert_eq!(failures[0].id, "DRI-12");
    }

    #[test]
    fn weakened_config_fails_more_checks() {
        let mut snap = ConfigSnapshot::paper_deployment();
        snap.admin_mfa_hardware = false;
        snap.default_deny_fabric = false;
        snap.max_token_ttl_secs = 30 * 24 * 3600;
        let report = CisReport::assess(&snap);
        assert_eq!(report.score(), (8, 12));
        let ids: Vec<&str> = report.failures().iter().map(|c| c.id).collect();
        assert!(ids.contains(&"DRI-01"));
        assert!(ids.contains(&"DRI-03"));
        assert!(ids.contains(&"DRI-06"));
    }

    #[test]
    fn perfect_config_scores_full() {
        let mut snap = ConfigSnapshot::paper_deployment();
        snap.hpc_fabric_encrypted = true;
        let report = CisReport::assess(&snap);
        assert_eq!(report.score(), (12, 12));
        assert!(report.failures().is_empty());
    }
}
