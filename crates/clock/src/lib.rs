//! # dri-clock — deterministic simulated time and randomness
//!
//! Every component of the simulated infrastructure takes time from a shared
//! [`SimClock`] and randomness from a seeded [`SimRng`] (xoshiro256\*\*).
//! No library code reads the wall clock or the OS entropy pool, which makes
//! every experiment reproducible bit-for-bit: the same seed and the same
//! event sequence always yield the same tokens, certificates, session ids,
//! and detection timelines.
//!
//! The clock is shared (`Arc` + atomic), cheap to clone, and monotone:
//! time only moves forward via [`SimClock::advance`] or [`SimClock::set`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, monotone simulated clock with millisecond resolution.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now_ms: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock starting at t = 0.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// A clock starting at `start_ms` milliseconds.
    pub fn starting_at(start_ms: u64) -> SimClock {
        SimClock {
            now_ms: Arc::new(AtomicU64::new(start_ms)),
        }
    }

    /// Current simulated time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::Acquire)
    }

    /// Current simulated time in whole seconds (what token `exp` claims use).
    pub fn now_secs(&self) -> u64 {
        self.now_ms() / 1000
    }

    /// Advance the clock by `delta_ms` milliseconds, returning the new time.
    pub fn advance(&self, delta_ms: u64) -> u64 {
        self.now_ms.fetch_add(delta_ms, Ordering::AcqRel) + delta_ms
    }

    /// Advance the clock by whole seconds.
    pub fn advance_secs(&self, delta_secs: u64) -> u64 {
        self.advance(delta_secs * 1000)
    }

    /// Jump to an absolute time. Panics if this would move time backwards.
    pub fn set(&self, at_ms: u64) {
        let prev = self.now_ms.swap(at_ms, Ordering::AcqRel);
        assert!(
            at_ms >= prev,
            "SimClock must be monotone ({prev} -> {at_ms})"
        );
    }
}

/// Deterministic xoshiro256\*\* PRNG.
///
/// Implemented from the public-domain reference (Blackman & Vigna). Not
/// cryptographically secure — key seeds derived from it are for simulation
/// determinism, not security.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed via splitmix64 so any u64 (including 0) gives a good state.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform value in `[lo, hi)`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo);
        lo + self.next_below(hi - lo)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fill a byte slice (used for key seeds and nonces).
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// A fresh 32-byte seed (for Ed25519 / X25519 keys).
    pub fn seed32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.fill_bytes(&mut out);
        out
    }

    /// Exponentially-distributed inter-arrival time with mean `mean`
    /// (for Poisson arrival processes in the workload generator).
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Split off an independent child RNG (deterministic derivation).
    pub fn split(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// Pick a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.next_below(items.len() as u64) as usize])
        }
    }
}

/// Monotonically increasing, human-readable unique id factory
/// (`prefix-000042`). One per subsystem keeps ids stable under refactors.
#[derive(Debug)]
pub struct IdGen {
    prefix: &'static str,
    counter: AtomicU64,
}

impl IdGen {
    /// A generator producing `prefix-N` ids starting from 1.
    pub fn new(prefix: &'static str) -> IdGen {
        IdGen {
            prefix,
            counter: AtomicU64::new(0),
        }
    }

    /// Next unique id.
    pub fn next(&self) -> String {
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        format!("{}-{:06}", self.prefix, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_shares_state() {
        let c = SimClock::new();
        let c2 = c.clone();
        assert_eq!(c.now_ms(), 0);
        c.advance(1500);
        assert_eq!(c2.now_ms(), 1500);
        assert_eq!(c2.now_secs(), 1);
        c2.advance_secs(2);
        assert_eq!(c.now_ms(), 3500);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn clock_rejects_time_travel() {
        let c = SimClock::starting_at(5000);
        c.set(100);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_below_is_in_range() {
        let mut rng = SimRng::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} should be ~0.5");
    }

    #[test]
    fn exp_draws_have_roughly_right_mean() {
        let mut rng = SimRng::seed_from_u64(11);
        let mean = 100.0;
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.next_exp(mean)).sum();
        let observed = total / n as f64;
        assert!(
            (mean * 0.95..mean * 1.05).contains(&observed),
            "observed mean {observed}"
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // All-zeros after fill would be astronomically unlikely.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn split_produces_independent_streams() {
        let mut parent = SimRng::seed_from_u64(5);
        let mut child1 = parent.split();
        let mut child2 = parent.split();
        assert_ne!(child1.next_u64(), child2.next_u64());
    }

    #[test]
    fn idgen_monotone_unique() {
        let g = IdGen::new("sess");
        assert_eq!(g.next(), "sess-000001");
        assert_eq!(g.next(), "sess-000002");
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = SimRng::seed_from_u64(2);
        let items = [1, 2, 3];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
        assert!(rng.choose::<u8>(&[]).is_none());
    }
}
