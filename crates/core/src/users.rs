//! Simulated humans and their client-side state (credentials, SSH
//! certificate client, hardware keys). These objects live "outside" the
//! infrastructure — they model what a real user's laptop holds.

use dri_broker::managed_idp::HardwareKey;
use dri_sshca::client::SshCertClient;

/// Which identity route a user authenticates through.
#[derive(Clone)]
pub enum UserKind {
    /// Institutional identity via MyAccessID federation.
    Federated {
        /// IdP entity id.
        idp_entity: String,
        /// Local username at the IdP.
        username: String,
        /// Password.
        password: String,
    },
    /// Identity Provider of Last Resort (password + TOTP).
    LastResort {
        /// Username in the managed directory.
        username: String,
        /// Password.
        password: String,
    },
    /// Administrator (dedicated IdP, hardware key).
    Admin {
        /// Username in the admin directory.
        username: String,
        /// Password.
        password: String,
        /// The user-held hardware key.
        hw_key: HardwareKey,
    },
}

/// A simulated user with client-side state.
pub struct SimUser {
    /// Stable label used to address the user in the API.
    pub label: String,
    /// Identity route.
    pub kind: UserKind,
    /// Community id / subject once known (set on first login).
    pub subject: Option<String>,
    /// SSH certificate client (lazily created on first SSH story).
    pub ssh: Option<SshCertClient>,
    /// Current broker session id, if logged in.
    pub session_id: Option<String>,
}

impl SimUser {
    /// The broker-side subject for this user, if established.
    pub fn subject(&self) -> Option<&str> {
        self.subject.as_deref()
    }
}
